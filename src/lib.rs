//! # bbb — Battery-Backed Buffers
//!
//! A from-scratch Rust reproduction of *BBB: Simplifying Persistent
//! Programming using Battery-Backed Buffers* (HPCA 2021). This facade crate
//! re-exports the workspace's public API:
//!
//! * [`sim`] — simulation kernel (clock, config, stats, PRNG),
//! * [`mem`] — DRAM/NVMM devices, memory controllers, the ADR WPQ,
//! * [`cache`] — set-associative caches with directory-based MESI coherence,
//! * [`cpu`] — the simplified out-of-order core model,
//! * [`core`] — the paper's contribution: bbPB, persistency modes, crash and
//!   recovery machinery, and the full [`core::System`] simulator,
//! * [`workloads`] — the paper's Table IV workloads and recoverable data
//!   structures,
//! * [`pstore`] — the SPSC persistent ring buffer programmed on the BBB
//!   discipline (grant/commit/release; flush-free under battery backing),
//! * [`energy`] — the draining-energy/time and battery-sizing models behind
//!   the paper's Tables V–X,
//! * [`runner`] — declarative experiment specs, the parallel point runner,
//!   and the shared ASCII/JSON report layer,
//! * [`crashfuzz`] — the crash-point sweep harness: dense/random/boundary
//!   power-failure injection, differential negative oracles, and failure
//!   shrinking to minimal regression tests,
//! * [`check`] — the trace-based persist-order checker: vector-clock
//!   PoV/PoP analysis over the simulator's event stream and the
//!   persistency litmus front-end.
//!
//! # Quickstart
//!
//! ```
//! use bbb::core::{PersistencyMode, System};
//! use bbb::sim::SimConfig;
//!
//! let cfg = SimConfig::small_for_tests();
//! let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide)?;
//! let base = sys.address_map().persistent_base();
//! // A persisting store needs no flush or fence under BBB:
//! sys.run_single_core(0, vec![bbb::cpu::Op::store_u64(base, 42)])?;
//! let image = sys.crash_now();
//! assert_eq!(image.read_u64(base), 42); // durable immediately
//! # Ok::<(), bbb::core::SystemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bbb_cache as cache;
pub use bbb_check as check;
pub use bbb_core as core;
pub use bbb_cpu as cpu;
pub use bbb_crashfuzz as crashfuzz;
pub use bbb_energy as energy;
pub use bbb_mem as mem;
pub use bbb_pstore as pstore;
pub use bbb_runner as runner;
pub use bbb_sim as sim;
pub use bbb_workloads as workloads;

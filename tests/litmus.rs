//! Memory-model litmus tests for the simulated machine: the coherence and
//! TSO-visibility properties every persistency argument in the paper rests
//! on. Run on the full 8-core Table III configuration.
//!
//! The second half drives the same shapes through `bbb-check`'s
//! persistency litmus engine, which sweeps crash points and replays each
//! traced run through the vector-clock persist-order checker.

use bbb::check::litmus::{mode_label, run_all, run_shape, shapes, Verdict};
use bbb::core::{PersistencyMode, System};
use bbb::cpu::Op;
use bbb::sim::SimConfig;

fn sys() -> System {
    System::new(SimConfig::default(), PersistencyMode::BbbMemorySide).unwrap()
}

/// Coherence (per-location SC): writes to one location are serialized;
/// the final value is the last write in the global serialization, and
/// every core observes it after its own accesses complete.
#[test]
fn coherence_single_location_serializes() {
    let mut s = sys();
    let a = s.address_map().persistent_base();
    // 8 cores each write their id, interleaved by local time.
    for round in 0..4u64 {
        for core in 0..8usize {
            s.step_op(core, &Op::store_u64(a, round * 8 + core as u64 + 1));
        }
    }
    s.drain_all_store_buffers();
    s.check_invariants();
    let img = s.crash_now();
    let v = img.read_u64(a);
    assert!(
        (1..=32).contains(&v),
        "final value {v} is one of the writes"
    );
}

/// Message passing (MP): producer writes data then flag; a consumer that
/// observes the flag must observe the data. Under BBB this extends to the
/// *crash image* — the paper's Invariant 3 at system scale.
#[test]
fn message_passing_respects_causality_in_crash_image() {
    for budget_stores in 1..=8usize {
        let mut s = sys();
        let base = s.address_map().persistent_base();
        let data = base + 0x1000;
        let flag = base;
        let mut ops = vec![
            Op::store_u64(data, 0xD0_0D),
            Op::store_u64(flag, 1),
            Op::store_u64(data + 8, 0xD1_1D),
            Op::store_u64(flag + 8, 1),
        ];
        ops.truncate(budget_stores.min(ops.len()));
        s.run_single_core(0, ops).unwrap();
        // Consumer core reads the flag then the data (timing only; the
        // causality check is on the image).
        s.run_single_core(1, vec![Op::load_u64(flag), Op::load_u64(data)])
            .unwrap();
        let img = s.crash_now();
        if img.read_u64(flag) == 1 {
            assert_eq!(img.read_u64(data), 0xD0_0D, "flag implies data");
        }
        if img.read_u64(flag + 8) == 1 {
            assert_eq!(img.read_u64(data + 8), 0xD1_1D, "flag2 implies data2");
        }
    }
}

/// Store buffering (SB litmus): under TSO each core's own stores reach the
/// L1D in program order, so a remote reader can never see the younger
/// store's effect while the older one is absent from the coherent image.
#[test]
fn tso_store_order_is_never_inverted_in_coherent_state() {
    let mut s = sys();
    let base = s.address_map().persistent_base();
    let x = base + 0x2000;
    let y = base + 0x4000;
    // Core 0: x=1; y=1 (different blocks, in-order SB drain).
    s.step_op(0, &Op::store_u64(x, 1));
    s.step_op(0, &Op::store_u64(y, 1));
    // Force both drains.
    s.drain_all_store_buffers();
    s.check_invariants();
    // Core 1 reads y then x through coherence.
    s.step_op(1, &Op::load_u64(y));
    s.step_op(1, &Op::load_u64(x));
    let img = s.crash_now();
    if img.read_u64(y) == 1 {
        assert_eq!(img.read_u64(x), 1, "y=1 implies x=1 under TSO order");
    }
}

/// Write serialization across cores: two cores exchange ownership of one
/// block many times; every byte written survives in the final image
/// (bytes of a block merge across owners rather than being lost).
#[test]
fn ownership_migration_never_loses_bytes() {
    let mut s = sys();
    let base = s.address_map().persistent_base() + 0x8000;
    for i in 0..8u64 {
        let core = (i % 2) as usize;
        s.step_op(core, &Op::store_u64(base + i * 8, i + 1));
    }
    s.drain_all_store_buffers();
    s.check_invariants();
    let img = s.crash_now();
    for i in 0..8u64 {
        assert_eq!(img.read_u64(base + i * 8), i + 1, "word {i}");
    }
}

/// Independent reads of independent writes (IRIW-flavored check at image
/// level): two writers to two locations; any combination of flags in the
/// image is allowed, but each flag individually implies its own data.
#[test]
fn independent_writers_keep_their_own_causality() {
    let mut s = sys();
    let base = s.address_map().persistent_base();
    let (d0, f0) = (base + 0x1000, base);
    let (d1, f1) = (base + 0x3000, base + 8);
    s.step_op(0, &Op::store_u64(d0, 0xAA));
    s.step_op(0, &Op::store_u64(f0, 1));
    s.step_op(1, &Op::store_u64(d1, 0xBB));
    s.step_op(1, &Op::store_u64(f1, 1));
    // Crash with store buffers battery-backed: everything committed is in.
    let img = s.crash_now();
    if img.read_u64(f0) == 1 {
        assert_eq!(img.read_u64(d0), 0xAA);
    }
    if img.read_u64(f1) == 1 {
        assert_eq!(img.read_u64(d1), 0xBB);
    }
}

/// The persistency litmus matrix: every shape under every mode must match
/// its expected allowed/forbidden verdict, and the checker must be silent
/// except where a shape deliberately breaks a software discipline.
#[test]
fn persistency_litmus_matrix_matches_expectations() {
    let rows = run_all();
    assert_eq!(rows.len(), shapes().len() * PersistencyMode::ALL.len());
    for row in &rows {
        assert!(
            row.pass(),
            "{} under {}: expected {}, observed {}, {} checker violation(s)",
            row.shape,
            mode_label(row.mode),
            row.expect.verdict.label(),
            row.observed_label(),
            row.report.violations()
        );
    }
}

/// Forbidden outcomes are *never* observed under either BBB organization,
/// across every crash point of every shape — the paper's guarantee at
/// litmus granularity.
#[test]
fn bbb_modes_forbid_every_lost_causality_outcome() {
    for shape in &shapes() {
        for mode in [
            PersistencyMode::BbbMemorySide,
            PersistencyMode::BbbProcessorSide,
        ] {
            let row = run_shape(shape, mode);
            assert_eq!(
                row.expect.verdict,
                Verdict::Forbidden,
                "{}: BBB should forbid the outcome",
                shape.name
            );
            assert_eq!(row.observed, 0, "{} under {}", shape.name, mode_label(mode));
            assert!(row.report.ok(), "{} under {}", shape.name, mode_label(mode));
        }
    }
}

/// The engine distinguishes the disciplines: stripping the flush from the
/// older store (PMEM) or the barrier from the producer (BEP) surfaces a
/// minimal ordering witness with a happens-before path.
#[test]
fn stripped_disciplines_produce_minimal_witnesses() {
    let all = shapes();
    let flushless = all.iter().find(|s| s.name == "ss+clwb_y").unwrap();
    let row = run_shape(flushless, PersistencyMode::Pmem);
    assert!(row.report.violations() >= 1, "flush-stripped PMEM witness");
    assert_eq!(row.report.witnesses[0].rule, "strict-order");

    let barrierless = all.iter().find(|s| s.name == "mp").unwrap();
    let row = run_shape(barrierless, PersistencyMode::Bep);
    assert!(row.report.violations() >= 1, "barrier-stripped BEP witness");
    assert_eq!(row.report.witnesses[0].rule, "cross-core-hb");
    assert!(
        row.report.witnesses[0].path.len() >= 3,
        "witness path spans write, observation, and overtaking write: {:?}",
        row.report.witnesses[0].path
    );
}

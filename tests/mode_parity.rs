//! Cross-mode performance relationships the paper's evaluation depends on
//! (scaled-down Fig. 7 / §V-C sanity checks, run on the real machine
//! model).

use bbb::core::{PersistencyMode, System};
use bbb::sim::SimConfig;
use bbb::workloads::{make_workload, WorkloadKind, WorkloadParams};

fn run(kind: WorkloadKind, mode: PersistencyMode, entries: usize) -> (u64, u64) {
    let mut cfg = SimConfig::default();
    cfg.bbpb.entries = entries;
    // Structures must exceed the 1 MB LLC or eADR degenerates to a
    // zero-memory-traffic machine and every ratio is meaningless.
    let params = WorkloadParams {
        initial: 60_000,
        per_core_ops: 250,
        seed: 9,
        instrument: mode.requires_flushes(),
    };
    let mut w = make_workload(kind, &cfg, params);
    let mut sys = System::new(cfg, mode).unwrap();
    sys.prepare(w.as_mut());
    let summary = sys.run(w.as_mut(), u64::MAX);
    sys.drain_all_store_buffers();
    let stats = sys.stats();
    (
        summary.cycles,
        stats.get("nvmm.writes") + stats.get("sim.residual_persist_blocks"),
    )
}

/// BBB-32 performs within a modest margin of eADR. At this reduced,
/// cache-resident scale eADR pays no memory traffic at all while BBB
/// still drains, so the margin is wider than the paper's ~1%; the
/// full-scale (cache-exceeding) comparison is the fig7 harness binary.
#[test]
fn bbb32_time_close_to_eadr() {
    for kind in [
        WorkloadKind::Ctree,
        WorkloadKind::Hashmap,
        WorkloadKind::Rtree,
    ] {
        let (eadr, _) = run(kind, PersistencyMode::Eadr, 32);
        let (bbb, _) = run(kind, PersistencyMode::BbbMemorySide, 32);
        let ratio = bbb as f64 / eadr as f64;
        assert!(
            ratio < 1.20,
            "{}: BBB-32 {ratio:.3}x eADR exceeds margin",
            kind.name()
        );
    }
}

/// Larger bbPBs never run slower (monotone benefit up to eADR parity).
#[test]
fn larger_bbpb_is_not_slower() {
    for kind in [WorkloadKind::SwapC, WorkloadKind::Hashmap] {
        let (t32, _) = run(kind, PersistencyMode::BbbMemorySide, 32);
        let (t1024, _) = run(kind, PersistencyMode::BbbMemorySide, 1024);
        assert!(
            t1024 <= t32 + t32 / 50,
            "{}: 1024 entries slower than 32 ({t1024} vs {t32})",
            kind.name()
        );
    }
}

/// The processor-side organization writes more to NVMM than the
/// memory-side one on every structure workload (§V-C).
#[test]
fn procside_writes_exceed_memside() {
    for kind in [
        WorkloadKind::Ctree,
        WorkloadKind::Hashmap,
        WorkloadKind::Rtree,
    ] {
        let (_, mem) = run(kind, PersistencyMode::BbbMemorySide, 32);
        let (_, proc) = run(kind, PersistencyMode::BbbProcessorSide, 32);
        assert!(
            proc > mem,
            "{}: processor-side {proc} <= memory-side {mem}",
            kind.name()
        );
    }
}

/// Software strict persistency (PMEM + clwb/sfence per store) is
/// substantially slower than BBB providing the same guarantee in hardware.
#[test]
fn pmem_strict_is_slower_than_bbb() {
    for kind in [WorkloadKind::Ctree, WorkloadKind::MutateNC] {
        let (bbb, _) = run(kind, PersistencyMode::BbbMemorySide, 32);
        let (pmem, _) = run(kind, PersistencyMode::Pmem, 32);
        assert!(
            pmem as f64 > bbb as f64 * 1.02,
            "{}: PMEM {pmem} not slower than BBB {bbb}",
            kind.name()
        );
    }
}

/// BBB's crash-drain set is orders of magnitude smaller than eADR's on
/// the same workload state.
#[test]
fn bbb_drain_set_is_tiny_compared_to_eadr() {
    let mk = |mode| {
        let cfg = SimConfig::default();
        let params = WorkloadParams {
            initial: 4_000,
            per_core_ops: 2_000,
            seed: 3,
            instrument: false,
        };
        // Enough operations that eADR's dirty-block population grows far
        // beyond the 8 x 32-entry bbPB bound.
        let mut w = make_workload(WorkloadKind::Ctree, &cfg, params);
        let mut sys = System::new(cfg, mode).unwrap();
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), u64::MAX);
        sys.crash_cost()
    };
    let eadr = mk(PersistencyMode::Eadr);
    let bbb = mk(PersistencyMode::BbbMemorySide);
    assert!(bbb.bbpb_entries <= 8 * 32, "bbPB bounded by capacity");
    assert!(
        eadr.above_mc_blocks() > 10 * bbb.above_mc_blocks().max(1),
        "eADR drain {} vs BBB {}",
        eadr.above_mc_blocks(),
        bbb.above_mc_blocks()
    );
}

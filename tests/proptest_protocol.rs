//! Protocol fuzzing: random multi-core access sequences must preserve the
//! coherence invariants, single-writer data semantics, and the BBB
//! persistence invariants — for every persistency mode.

use bbb::core::{PersistencyMode, System};
use bbb::cpu::Op;
use bbb::sim::SimConfig;
use proptest::prelude::*;

/// One fuzz action: (core, slot, is_store).
fn action_strategy() -> impl Strategy<Value = (usize, u64, bool)> {
    (0usize..2, 0u64..24, proptest::bool::ANY)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random reads/writes from random cores never violate the coherence
    /// or bbPB-inclusion invariants, in any mode.
    #[test]
    fn random_traffic_preserves_invariants(
        actions in proptest::collection::vec(action_strategy(), 1..120),
        mode_idx in 0usize..5,
    ) {
        let mode = PersistencyMode::ALL[mode_idx];
        let mut sys = System::new(SimConfig::small_for_tests(), mode).unwrap();
        let base = sys.address_map().persistent_base();
        let mut seq = 0u64;
        for (core, slot, is_store) in actions {
            let addr = base + slot * 0x140; // straddle sets, stay aligned
            let addr = addr & !7;
            let op = if is_store {
                seq += 1;
                Op::store_u64(addr, (seq << 8) | slot)
            } else {
                Op::load_u64(addr)
            };
            sys.step_op(core, &op);
        }
        sys.check_invariants();
    }

    /// The last committed store to each *non-racy* slot wins: for slots
    /// written by a single core, the crash image after draining reflects
    /// exactly the final value. (Slots written by multiple cores without
    /// synchronization are legitimately order-free and excluded — the
    /// per-core program-order property is what TSO/strict persistency
    /// promises.)
    #[test]
    fn last_writer_wins_for_single_core_slots(
        actions in proptest::collection::vec(action_strategy(), 1..100),
    ) {
        let mut sys =
            System::new(SimConfig::small_for_tests(), PersistencyMode::BbbMemorySide).unwrap();
        let base = sys.address_map().persistent_base();
        let mut last: std::collections::HashMap<u64, (usize, u64)> =
            std::collections::HashMap::new();
        let mut racy: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut seq = 0u64;
        for (core, slot, is_store) in actions {
            let addr = (base + slot * 0x140) & !7;
            if is_store {
                seq += 1;
                let v = (seq << 8) | slot;
                if let Some(&(prev_core, _)) = last.get(&addr) {
                    if prev_core != core {
                        racy.insert(addr);
                    }
                }
                last.insert(addr, (core, v));
                sys.step_op(core, &Op::store_u64(addr, v));
            } else {
                sys.step_op(core, &Op::load_u64(addr));
            }
        }
        sys.drain_all_store_buffers();
        let img = sys.crash_now();
        for (&addr, &(_, v)) in &last {
            if racy.contains(&addr) {
                continue;
            }
            prop_assert_eq!(img.read_u64(addr), v, "slot at {:#x}", addr);
        }
    }

    /// bbPB entries never outnumber capacity, under arbitrary traffic and
    /// tiny buffer geometries (Invariant: the battery budget is bounded).
    #[test]
    fn bbpb_occupancy_never_exceeds_capacity(
        actions in proptest::collection::vec(action_strategy(), 1..100),
        entries in 1usize..6,
    ) {
        let mut cfg = SimConfig::small_for_tests();
        cfg.bbpb.entries = entries;
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        let base = sys.address_map().persistent_base();
        let mut seq = 0u64;
        for (core, slot, is_store) in actions {
            let addr = (base + slot * 0x140) & !7;
            if is_store {
                seq += 1;
                sys.step_op(core, &Op::store_u64(addr, seq));
            } else {
                sys.step_op(core, &Op::load_u64(addr));
            }
            let cost = sys.crash_cost();
            prop_assert!(
                cost.bbpb_entries <= (entries * 2) as u64,
                "resident entries {} exceed 2 cores x {} capacity",
                cost.bbpb_entries,
                entries
            );
        }
    }
}

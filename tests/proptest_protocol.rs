//! Protocol fuzzing: random multi-core access sequences must preserve the
//! coherence invariants, single-writer data semantics, and the BBB
//! persistence invariants — for every persistency mode.
//!
//! Action sequences are drawn from the simulator's own [`SplitMix64`]
//! stream (fixed seed, reproducible failures).

use bbb::core::{PersistencyMode, System};
use bbb::cpu::Op;
use bbb::sim::{SimConfig, SplitMix64};

const CASES: u64 = 32;

/// One fuzz action: (core, slot, is_store).
fn draw_actions(rng: &mut SplitMix64, max_len: u64) -> Vec<(usize, u64, bool)> {
    let len = 1 + rng.next_below(max_len - 1);
    (0..len)
        .map(|_| (rng.next_index(2), rng.next_below(24), rng.chance(1, 2)))
        .collect()
}

/// Random reads/writes from random cores never violate the coherence
/// or bbPB-inclusion invariants, in any mode.
#[test]
fn random_traffic_preserves_invariants() {
    let mut rng = SplitMix64::new(0x9007_0001);
    for case in 0..CASES {
        let actions = draw_actions(&mut rng, 120);
        let mode = PersistencyMode::ALL[rng.next_index(PersistencyMode::ALL.len())];
        let mut sys = System::new(SimConfig::small_for_tests(), mode).unwrap();
        let base = sys.address_map().persistent_base();
        let mut seq = 0u64;
        for (core, slot, is_store) in actions {
            let addr = base + slot * 0x140; // straddle sets, stay aligned
            let addr = addr & !7;
            let op = if is_store {
                seq += 1;
                Op::store_u64(addr, (seq << 8) | slot)
            } else {
                Op::load_u64(addr)
            };
            sys.step_op(core, &op);
        }
        sys.check_invariants();
        let _ = case;
    }
}

/// The last committed store to each *non-racy* slot wins: for slots
/// written by a single core, the crash image after draining reflects
/// exactly the final value. (Slots written by multiple cores without
/// synchronization are legitimately order-free and excluded — the
/// per-core program-order property is what TSO/strict persistency
/// promises.)
#[test]
fn last_writer_wins_for_single_core_slots() {
    let mut rng = SplitMix64::new(0x9007_0002);
    for case in 0..CASES {
        let actions = draw_actions(&mut rng, 100);
        let mut sys =
            System::new(SimConfig::small_for_tests(), PersistencyMode::BbbMemorySide).unwrap();
        let base = sys.address_map().persistent_base();
        let mut last: std::collections::HashMap<u64, (usize, u64)> =
            std::collections::HashMap::new();
        let mut racy: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut seq = 0u64;
        for (core, slot, is_store) in actions {
            let addr = (base + slot * 0x140) & !7;
            if is_store {
                seq += 1;
                let v = (seq << 8) | slot;
                if let Some(&(prev_core, _)) = last.get(&addr) {
                    if prev_core != core {
                        racy.insert(addr);
                    }
                }
                last.insert(addr, (core, v));
                sys.step_op(core, &Op::store_u64(addr, v));
            } else {
                sys.step_op(core, &Op::load_u64(addr));
            }
        }
        sys.drain_all_store_buffers();
        let img = sys.crash_now();
        for (&addr, &(_, v)) in &last {
            if racy.contains(&addr) {
                continue;
            }
            assert_eq!(img.read_u64(addr), v, "case {case}: slot at {addr:#x}");
        }
    }
}

/// bbPB entries never outnumber capacity, under arbitrary traffic and
/// tiny buffer geometries (Invariant: the battery budget is bounded).
#[test]
fn bbpb_occupancy_never_exceeds_capacity() {
    let mut rng = SplitMix64::new(0x9007_0003);
    for case in 0..CASES {
        let actions = draw_actions(&mut rng, 100);
        let entries = 1 + rng.next_index(5);
        let mut cfg = SimConfig::small_for_tests();
        cfg.bbpb.entries = entries;
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        let base = sys.address_map().persistent_base();
        let mut seq = 0u64;
        for (core, slot, is_store) in actions {
            let addr = (base + slot * 0x140) & !7;
            if is_store {
                seq += 1;
                sys.step_op(core, &Op::store_u64(addr, seq));
            } else {
                sys.step_op(core, &Op::load_u64(addr));
            }
            let cost = sys.crash_cost();
            assert!(
                cost.bbpb_entries <= (entries * 2) as u64,
                "case {case}: resident entries {} exceed 2 cores x {entries} capacity",
                cost.bbpb_entries
            );
        }
    }
}

//! Tier-1 crash-point sweep: the paper's central correctness claim,
//! checked exhaustively rather than at hand-picked cycles.
//!
//! BBB's point of persistency equals its point of visibility, so
//! unmodified structure code must recover from a power failure at *any*
//! cycle. These tests drive the `bbb-crashfuzz` engine over dense +
//! random + event-boundary crash grids and also exercise its negative
//! oracles: a dead battery, and PMEM stripped of its flushes, must both
//! demonstrably lose updates — a sweep that cannot catch a machine
//! designed to lose data proves nothing about one designed not to.

use bbb::core::PersistencyMode;
use bbb::crashfuzz::{
    lost_updates_observable, merge_shards, plan_shards, shrink, sweep, sweep_shard, CrashFailure,
    GridSpec, SweepConfig, CRASHFUZZ_SEED,
};
use bbb::runner::Runner;
use bbb::sim::SimConfig;
use bbb::workloads::{RecoveryReport, WorkloadKind, WorkloadParams};

fn small() -> (SimConfig, WorkloadParams) {
    (SimConfig::small_for_tests(), WorkloadParams::smoke())
}

#[test]
fn bbb_modes_survive_every_point_of_a_dense_sweep() {
    // The tentpole assertion: ≥200 distinct crash points per pair, zero
    // recovery failures, and the battery-dropped oracle drawing blood at
    // the very same cycles.
    let (cfg, params) = small();
    for mode in [
        PersistencyMode::BbbMemorySide,
        PersistencyMode::BbbProcessorSide,
        PersistencyMode::Eadr,
    ] {
        let sc = SweepConfig::paper_discipline(
            WorkloadKind::Hashmap,
            mode,
            &cfg,
            params,
            GridSpec::smoke(),
        );
        let out = sweep(&sc);
        assert!(
            out.points >= 200,
            "{}: only {} points",
            out.label,
            out.points
        );
        assert!(
            out.failures.is_empty(),
            "{}: {} crash points failed recovery (first at cycle {})",
            out.label,
            out.failures.len(),
            out.failures[0].cycle
        );
        assert!(
            out.negative_signatures > 0,
            "{}: a dead battery never lost an update",
            out.label
        );
        assert!(out.passed());
    }
}

#[test]
fn instrumented_pmem_and_bep_barriers_survive_their_sweeps() {
    // The two software disciplines (clwb+sfence, epoch barriers) must be
    // just as crash consistent as the hardware ones — the paper's claim
    // is that BBB gets there *without* the programmer effort.
    let (cfg, params) = small();
    for mode in [PersistencyMode::Pmem, PersistencyMode::Bep] {
        let sc = SweepConfig::paper_discipline(
            WorkloadKind::Ctree,
            mode,
            &cfg,
            params,
            GridSpec::bounded(96, 32, CRASHFUZZ_SEED),
        );
        let out = sweep(&sc);
        assert!(out.expects_consistent);
        assert!(
            out.failures.is_empty(),
            "{}: {} crash points failed recovery",
            out.label,
            out.failures.len()
        );
    }
}

#[test]
fn unflushed_pmem_differential_oracle_shows_lost_updates() {
    let (cfg, params) = small();
    let sc = SweepConfig::lossy(
        WorkloadKind::Hashmap,
        PersistencyMode::Pmem,
        &cfg,
        params,
        GridSpec::bounded(64, 16, CRASHFUZZ_SEED),
    );
    let out = sweep(&sc);
    assert!(!out.expects_consistent);
    assert!(out.oracle_required);
    assert!(
        out.negative_signatures > 0,
        "PMEM without flushes must come up short of its flushed twin"
    );
    assert!(out.passed());
}

#[test]
fn array_lost_updates_are_unobservable_so_the_oracle_is_gated() {
    // In-place array updates restore older but still-valid values when
    // lost; no integrity checker can flag that, so the sweep must not
    // demand signatures there (and must say so via `oracle_required`).
    assert!(!lost_updates_observable(WorkloadKind::SwapC));
    assert!(!lost_updates_observable(WorkloadKind::MutateNC));
    assert!(lost_updates_observable(WorkloadKind::Rtree));
    assert!(lost_updates_observable(WorkloadKind::Btree));
    let (cfg, params) = small();
    let sc = SweepConfig::paper_discipline(
        WorkloadKind::SwapC,
        PersistencyMode::BbbMemorySide,
        &cfg,
        params,
        GridSpec::bounded(48, 8, CRASHFUZZ_SEED),
    );
    let out = sweep(&sc);
    assert!(!out.oracle_required);
    assert!(!out.toothless());
    assert!(out.failures.is_empty());
    assert!(out.passed());
}

#[test]
fn sweeps_are_deterministic() {
    // Same config + seed → byte-identical outcome, the property the
    // shrinker's replay-based minimization depends on.
    let (cfg, params) = small();
    let sc = SweepConfig::paper_discipline(
        WorkloadKind::Rtree,
        PersistencyMode::BbbMemorySide,
        &cfg,
        params,
        GridSpec::bounded(64, 16, CRASHFUZZ_SEED),
    );
    let a = sweep(&sc);
    let b = sweep(&sc);
    assert_eq!(a.points, b.points);
    assert_eq!(a.failures.len(), b.failures.len());
    assert_eq!(a.negative_points, b.negative_points);
    assert_eq!(a.negative_signatures, b.negative_signatures);
}

#[test]
fn sharded_parallel_sweep_matches_serial_sweep_exactly() {
    // The fixed-seed contract behind `crashfuzz`'s worker-pool sharding:
    // splitting a pair's crash points into contiguous shards, sweeping
    // the shards on a thread pool, and merging in plan order must report
    // the identical points/failures/signatures as the serial sweep —
    // for any shard count. (The only legitimate difference is replayed
    // simulation cycles, since every shard forward-runs from cycle 0.)
    let (cfg, params) = small();
    for sc in [
        SweepConfig::paper_discipline(
            WorkloadKind::Hashmap,
            PersistencyMode::BbbMemorySide,
            &cfg,
            params,
            GridSpec::bounded(64, 16, CRASHFUZZ_SEED),
        ),
        SweepConfig::lossy(
            WorkloadKind::Hashmap,
            PersistencyMode::Pmem,
            &cfg,
            params,
            GridSpec::bounded(48, 8, CRASHFUZZ_SEED),
        ),
    ] {
        let serial = sweep(&sc);
        for shard_count in [2, 3, 7] {
            let shards = plan_shards(&sc, shard_count);
            let partials = Runner::with_threads(shard_count).map(&shards, sweep_shard);
            let merged = merge_shards(&sc, &partials);
            assert_eq!(merged.points, serial.points, "{shard_count} shards");
            assert_eq!(
                merged.failures.len(),
                serial.failures.len(),
                "{shard_count} shards"
            );
            for (a, b) in merged.failures.iter().zip(&serial.failures) {
                assert_eq!(a.cycle, b.cycle);
                assert_eq!(a.battery_dropped, b.battery_dropped);
            }
            assert_eq!(merged.negative_points, serial.negative_points);
            assert_eq!(merged.negative_signatures, serial.negative_signatures);
            // Crash verdicts are per-point-deterministic, but the
            // snapshot/reuse split is not: the verdict memo is
            // shard-local, so every extra shard boundary may re-take a
            // snapshot the serial sweep's memo reused. The number of
            // verdicts computed must merge back exactly, and sharding
            // can only add snapshots, never skip one the serial sweep
            // took.
            assert_eq!(
                merged.perf.snapshots + merged.perf.snapshots_reused,
                serial.perf.snapshots + serial.perf.snapshots_reused,
                "{shard_count} shards"
            );
            assert!(
                merged.perf.snapshots >= serial.perf.snapshots,
                "{shard_count} shards"
            );
        }
    }
}

#[test]
fn crash_image_matches_destructive_fork_throughout_a_real_run() {
    // The clone-free imaging path the sweep relies on, differentially
    // validated against fork-and-crash on real multi-core workload
    // executions: at a spread of pause points, `crash_image` must equal
    // the image a cloned-and-crashed machine produces, in both battery
    // states, for every mode.
    use bbb::core::{RunCursor, StopAt, System};
    use bbb::workloads::{make_workload, suite::with_epoch_barriers};

    let (cfg, params) = small();
    for mode in PersistencyMode::ALL {
        let mut params = params;
        params.instrument = mode.requires_flushes();
        let mut w = make_workload(WorkloadKind::Hashmap, &cfg, params);
        if mode.requires_epoch_barriers() {
            w = with_epoch_barriers(w);
        }
        let mut sys = System::new(cfg.clone(), mode).expect("valid config");
        sys.prepare(w.as_mut());
        let mut cursor = RunCursor::new(cfg.cores);
        let mut at = 400;
        for _ in 0..12 {
            let s = sys.run_until(w.as_mut(), &mut cursor, StopAt::Cycle(at));
            let healthy = sys.crash_image(true);
            let dropped = sys.crash_image(false);
            assert_eq!(
                healthy,
                sys.clone().crash_now(),
                "{mode}: healthy image diverged at cycle {at}"
            );
            assert_eq!(
                dropped,
                sys.clone().crash_now_battery_dropped(),
                "{mode}: battery-dropped image diverged at cycle {at}"
            );
            if s.completed {
                break;
            }
            at += 700;
        }
    }
}

#[test]
fn crash_image_epoch_memo_is_sound_in_both_battery_states() {
    // The sweep reuses a crash verdict whenever `crash_image_epoch` is
    // unchanged, so every durable-state transition — media writes,
    // battery-backed store-buffer mutations, bbPB drains and cross-core
    // procPB migrations, cache writebacks under eADR — must bump the
    // epoch. Differential validation on real conflicting multi-core
    // runs: pause often, and whenever the epoch equals the memoized one
    // (tracked separately per battery state, exactly like the sweep's
    // memo), the freshly taken image must be byte-identical to the
    // memoized image.
    use bbb::core::{RunCursor, StopAt, System};
    use bbb::mem::NvmImage;
    use bbb::workloads::{make_workload, suite::with_epoch_barriers};

    let (cfg, params) = small();
    let mut epoch_hits = 0u64;
    // SwapC shares the whole array across cores — the cross-core
    // conflicts that drive procPB entry migrations under processor-side
    // BBB; Hashmap covers the pointer-chasing allocation path.
    for kind in [WorkloadKind::SwapC, WorkloadKind::Hashmap] {
        for mode in PersistencyMode::ALL {
            let mut params = params;
            params.instrument = mode.requires_flushes();
            let mut w = make_workload(kind, &cfg, params);
            if mode.requires_epoch_barriers() {
                w = with_epoch_barriers(w);
            }
            let mut sys = System::new(cfg.clone(), mode).expect("valid config");
            sys.prepare(w.as_mut());
            let mut cursor = RunCursor::new(cfg.cores);
            let mut memo: [Option<(u64, NvmImage)>; 2] = [None, None];
            let mut at = 150;
            for _ in 0..40 {
                let s = sys.run_until(w.as_mut(), &mut cursor, StopAt::Cycle(at));
                for (i, battery_ok) in [true, false].into_iter().enumerate() {
                    let epoch = sys.crash_image_epoch(battery_ok);
                    let image = sys.crash_image(battery_ok);
                    if let Some((e, img)) = &memo[i] {
                        if *e == epoch {
                            epoch_hits += 1;
                            assert_eq!(
                                &image, img,
                                "{kind:?}/{mode}: epoch {epoch} unchanged but the \
                                 battery_ok={battery_ok} image differs at cycle {at}"
                            );
                        }
                    }
                    memo[i] = Some((epoch, image));
                }
                if s.completed {
                    break;
                }
                at += 150;
            }
        }
    }
    assert!(
        epoch_hits > 0,
        "no pause ever repeated an epoch — the memo path went unexercised"
    );
}

#[test]
fn shrinker_emits_a_complete_regression_test() {
    // Feed the shrinker a battery-dropped failure from a real sweep so
    // the generated source goes through the full path on real data.
    let (cfg, params) = small();
    let sc = SweepConfig::paper_discipline(
        WorkloadKind::Hashmap,
        PersistencyMode::BbbMemorySide,
        &cfg,
        params,
        GridSpec::bounded(48, 8, CRASHFUZZ_SEED),
    );
    let f = CrashFailure {
        cycle: 777,
        battery_dropped: true,
        report: RecoveryReport {
            workload: WorkloadKind::Hashmap,
            recovered: 3,
            failure: Some("bucket 9: torn node".into()),
        },
    };
    let src = bbb::crashfuzz::test_source(&sc, &f);
    for needle in [
        "#[test]",
        "WorkloadKind::Hashmap",
        "PersistencyMode::BbbMemorySide",
        "StopAt::Cycle(777)",
        "crash_now_battery_dropped()",
        "verify_recovery_report",
    ] {
        assert!(src.contains(needle), "missing {needle} in:\n{src}");
    }
    // And the real shrinker on a real failure, if the lossy config
    // yields one at this scale.
    let lossy = SweepConfig::lossy(
        WorkloadKind::Hashmap,
        PersistencyMode::Pmem,
        &cfg,
        params,
        GridSpec::bounded(64, 16, CRASHFUZZ_SEED),
    );
    let reference = bbb::crashfuzz::reference_run(&lossy);
    let points =
        bbb::crashfuzz::plan_points(reference.total_cycles, &reference.event_cycles, &lossy.grid);
    if let Some(found) = bbb::crashfuzz::first_failure_at(&lossy, false, &points) {
        let rep = shrink(&lossy, &found);
        assert!(rep.failure.cycle <= found.cycle);
        assert!(rep.test_source.contains("#[test]"));
    }
}

//! Buffered Epoch Persistency semantics, end to end: durability is
//! guaranteed only at epoch boundaries, the programmer must insert the
//! barriers, and the barriers cost stalls — the three properties BBB
//! removes (paper §II-B, §III-A, §VI "persist buffers").

use bbb::core::{PersistencyMode, System};
use bbb::cpu::Op;
use bbb::sim::SimConfig;
use bbb::workloads::hashmap::check_hashmap_recovery;
use bbb::workloads::suite::with_epoch_barriers;
use bbb::workloads::{make_workload, WorkloadKind, WorkloadParams};

fn system() -> System {
    System::new(SimConfig::default(), PersistencyMode::Bep).unwrap()
}

/// Stores before a completed epoch barrier are durable; stores after it
/// (still in the volatile persist buffer) are lost at a crash.
#[test]
fn durability_stops_at_the_last_epoch_boundary() {
    let mut sys = system();
    let base = sys.address_map().persistent_base();
    sys.run_single_core(
        0,
        vec![
            Op::store_u64(base, 0x11),      // epoch 1
            Op::store_u64(base + 8, 0x22),  // epoch 1
            Op::Fence,                      // epoch boundary: all durable
            Op::store_u64(base + 16, 0x33), // epoch 2: volatile at crash
        ],
    )
    .unwrap();
    let img = sys.crash_now();
    assert_eq!(img.read_u64(base), 0x11);
    assert_eq!(img.read_u64(base + 8), 0x22);
    assert_eq!(
        img.read_u64(base + 16),
        0,
        "open-epoch store must be lost by the volatile buffer"
    );
}

/// Without barriers, BEP provides no durability at all — the hazard the
/// programmer must manage.
#[test]
fn bep_without_barriers_loses_everything_buffered() {
    let mut sys = system();
    let base = sys.address_map().persistent_base();
    let ops: Vec<Op> = (0..8u64)
        .map(|i| Op::store_u64(base + i * 8, i + 1))
        .collect();
    sys.run_single_core(0, ops).unwrap();
    let img = sys.crash_now();
    let survived = (0..8u64)
        .filter(|&i| img.read_u64(base + i * 8) != 0)
        .count();
    // Threshold draining may have pushed a few entries out, but with only
    // 8 stores against a 32-entry buffer nothing has drained.
    assert_eq!(survived, 0, "volatile buffer under capacity: all lost");
}

/// BBB on the identical (barrier-free) op stream persists everything —
/// the paper's programmability claim in one assertion.
#[test]
fn bbb_needs_no_barriers_where_bep_does() {
    let base;
    let ops: Vec<Op>;
    {
        let sys = system();
        base = sys.address_map().persistent_base();
        ops = (0..8u64)
            .map(|i| Op::store_u64(base + i * 8, i + 1))
            .collect();
    }
    let mut bbb = System::new(SimConfig::default(), PersistencyMode::BbbMemorySide).unwrap();
    bbb.run_single_core(0, ops).unwrap();
    let img = bbb.crash_now();
    for i in 0..8u64 {
        assert_eq!(img.read_u64(base + i * 8), i + 1);
    }
}

/// Epoch barriers stall: the same stream with barriers takes longer than
/// without (the performance tax BEP pays and BBB avoids).
#[test]
fn epoch_barriers_cost_cycles() {
    let mk_ops = |with_barriers: bool, base: u64| -> Vec<Op> {
        let mut v = Vec::new();
        for i in 0..50u64 {
            v.push(Op::store_u64(base + i * 0x400, i + 1));
            if with_barriers {
                v.push(Op::Fence);
            }
        }
        v
    };
    let mut bep = system();
    let base = bep.address_map().persistent_base();
    let t_barriers = bep.run_single_core(0, mk_ops(true, base)).unwrap();

    let mut bbb = System::new(SimConfig::default(), PersistencyMode::BbbMemorySide).unwrap();
    let t_bbb = bbb.run_single_core(0, mk_ops(false, base)).unwrap();
    assert!(
        t_barriers > t_bbb,
        "epoch barriers must cost stalls: BEP {t_barriers} vs BBB {t_bbb}"
    );
}

/// A full workload with per-operation epochs recovers consistently under
/// BEP: each operation is one epoch, so a crash can only lose whole
/// trailing operations, never tear one.
#[test]
fn epoch_instrumented_workload_recovers_consistently() {
    let cfg = SimConfig::default();
    let params = WorkloadParams {
        initial: 400,
        per_core_ops: 100,
        seed: 77,
        instrument: false,
    };
    let mut w = with_epoch_barriers(make_workload(WorkloadKind::Hashmap, &cfg, params));
    let mut sys = System::new(cfg, PersistencyMode::Bep).unwrap();
    sys.prepare(&mut w);
    sys.run(&mut w, 441); // crash mid-run
    let map = sys.address_map().clone();
    let img = sys.crash_now();
    let buckets = (params.initial / 2).next_power_of_two().max(64);
    let n = check_hashmap_recovery(&img, &map, map.persistent_base(), buckets)
        .expect("epoch-delimited BEP image must be consistent");
    assert!(n >= params.initial, "setup must survive: {n}");
}

//! The paper's central guarantee, tested end to end: under BBB, persist
//! order equals program order with **no flushes and no fences** — every
//! committed persisting store is durable at every possible crash point.

use bbb::core::{PersistencyMode, System};
use bbb::cpu::Op;
use bbb::sim::SimConfig;

fn system(mode: PersistencyMode) -> System {
    System::new(SimConfig::default(), mode).expect("valid config")
}

/// Crash after every prefix of a store sequence: the image must contain
/// exactly a program-order prefix (all stores up to the crash, since each
/// store is durable at commit under BBB with a battery-backed SB).
#[test]
fn bbb_prefix_durability_at_every_crash_point() {
    let n = 40u64;
    for crash_after in [0, 1, 2, 3, 5, 8, 13, 21, 34, 40] {
        let mut sys = system(PersistencyMode::BbbMemorySide);
        let base = sys.address_map().persistent_base();
        let ops: Vec<Op> = (0..crash_after)
            .map(|i| Op::store_u64(base + i * 8, i + 1))
            .collect();
        sys.run_single_core(0, ops).unwrap();
        let img = sys.crash_now();
        for i in 0..n {
            let expect = if i < crash_after { i + 1 } else { 0 };
            assert_eq!(
                img.read_u64(base + i * 8),
                expect,
                "crash after {crash_after}: slot {i}"
            );
        }
    }
}

/// The same guarantee holds when stores hit the same cache block
/// repeatedly (coalescing must preserve the latest value).
#[test]
fn bbb_coalesced_stores_keep_latest_value() {
    let mut sys = system(PersistencyMode::BbbMemorySide);
    let base = sys.address_map().persistent_base();
    let ops: Vec<Op> = (0..100u64).map(|i| Op::store_u64(base, i)).collect();
    sys.run_single_core(0, ops).unwrap();
    let img = sys.crash_now();
    assert_eq!(img.read_u64(base), 99);
}

/// Dependent stores across blocks: if the dependent (later) store is
/// durable, the earlier one must be too — on every mode that claims
/// ordering, at many crash points.
#[test]
fn dependence_ordering_under_all_hardware_modes() {
    for mode in [
        PersistencyMode::BbbMemorySide,
        PersistencyMode::BbbProcessorSide,
        PersistencyMode::Eadr,
    ] {
        for budget in [1usize, 2, 5, 10, 20] {
            let mut sys = system(mode);
            let base = sys.address_map().persistent_base();
            // Pairs: data at 0x400*i, then "valid flag" pointing at it.
            let mut ops = Vec::new();
            for i in 0..10u64 {
                ops.push(Op::store_u64(base + 0x1000 + i * 0x400, 0xDA7A_0000 | i));
                ops.push(Op::store_u64(base + i * 8, base + 0x1000 + i * 0x400));
            }
            ops.truncate(budget);
            sys.run_single_core(0, ops).unwrap();
            let img = sys.crash_now();
            for i in 0..10u64 {
                let flag = img.read_u64(base + i * 8);
                if flag != 0 {
                    assert_eq!(
                        img.read_u64(flag),
                        0xDA7A_0000 | i,
                        "{mode}: flag {i} durable but data missing (budget {budget})"
                    );
                }
            }
        }
    }
}

/// PMEM (ADR baseline) only provides the guarantee when the programmer
/// inserts the paper's Fig. 3 instrumentation.
#[test]
fn pmem_needs_flushes_for_durability() {
    // Without flushes: stores sit in volatile caches.
    let mut sys = system(PersistencyMode::Pmem);
    let base = sys.address_map().persistent_base();
    sys.run_single_core(0, vec![Op::store_u64(base, 7)])
        .unwrap();
    assert_eq!(sys.crash_now().read_u64(base), 0);

    // With clwb + sfence: durable.
    let mut sys = system(PersistencyMode::Pmem);
    sys.run_single_core(
        0,
        vec![Op::store_u64(base, 7), Op::Clwb { addr: base }, Op::Fence],
    )
    .unwrap();
    assert_eq!(sys.crash_now().read_u64(base), 7);
}

/// A store is never visible to another core before it is persistent
/// (Invariant 3): after core 1 *reads* core 0's store, a crash must show
/// that store durable.
#[test]
fn visibility_implies_persistence() {
    let mut sys = system(PersistencyMode::BbbMemorySide);
    let base = sys.address_map().persistent_base();
    sys.run_single_core(0, vec![Op::store_u64(base, 0x5EE_u64)])
        .unwrap();
    // Core 1 reads the block: coherence forwards core 0's value, which
    // means it must already be in the persistence domain.
    sys.run_single_core(1, vec![Op::load_u64(base)]).unwrap();
    let img = sys.crash_now();
    assert_eq!(img.read_u64(base), 0x5EE_u64);
}

//! End-to-end crash-recovery validation for every Table IV data structure
//! under every persistency mode.

use bbb::core::{PersistencyMode, System};
use bbb::sim::SimConfig;
use bbb::workloads::hashmap::check_hashmap_recovery;
use bbb::workloads::{
    make_workload, verify_recovery, LinkedList, Palloc, WorkloadKind, WorkloadParams,
};

fn params() -> WorkloadParams {
    WorkloadParams {
        initial: 500,
        per_core_ops: 100,
        seed: 0xDEC0DE,
        instrument: false,
    }
}

fn cfg() -> SimConfig {
    SimConfig::default()
}

/// Under BBB (memory-side), every structure — including the btree
/// extension — recovers consistently from a crash injected mid-run,
/// without any flushes in the program.
#[test]
fn bbb_every_structure_recovers_mid_run() {
    for kind in WorkloadKind::EXTENDED {
        let cfg = cfg();
        let mut w = make_workload(kind, &cfg, params());
        let mut sys = System::new(cfg.clone(), PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), 577); // cut mid-operation
        sys.check_invariants();
        let img = sys.crash_now();
        let n = verify_recovery(kind, &img, &cfg, params())
            .unwrap_or_else(|e| panic!("{}: corrupt image: {e}", kind.name()));
        assert!(n > 0, "{}: nothing recovered", kind.name());
    }
}

/// eADR gives the same guarantee (at far higher battery cost).
#[test]
fn eadr_structures_recover_mid_run() {
    for kind in [WorkloadKind::Ctree, WorkloadKind::Hashmap] {
        let cfg = cfg();
        let mut w = make_workload(kind, &cfg, params());
        let mut sys = System::new(cfg.clone(), PersistencyMode::Eadr).unwrap();
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), 577);
        let img = sys.crash_now();
        verify_recovery(kind, &img, &cfg, params()).unwrap();
    }
}

/// Processor-side BBB also recovers (it pays in NVMM writes, not in
/// correctness).
#[test]
fn procside_structures_recover_mid_run() {
    let cfg = cfg();
    let mut w = make_workload(WorkloadKind::Hashmap, &cfg, params());
    let mut sys = System::new(cfg, PersistencyMode::BbbProcessorSide).unwrap();
    sys.prepare(w.as_mut());
    sys.run(w.as_mut(), 333);
    let map = sys.address_map().clone();
    let img = sys.crash_now();
    let buckets = (params().initial / 2).next_power_of_two().max(64);
    check_hashmap_recovery(&img, &map, map.persistent_base(), buckets)
        .expect("processor-side keeps program order");
}

/// The motivating linked list (paper Fig. 2/3) across modes: BBB keeps the
/// unmodified code consistent, PMEM without flushes loses the list.
#[test]
fn linked_list_motivation_plays_out() {
    let appends = 200u64;

    // BBB, Fig. 2 code (no flushes): full recovery.
    let mut sys = System::new(cfg(), PersistencyMode::BbbMemorySide).unwrap();
    let map = sys.address_map().clone();
    let mut list = LinkedList::new(map.persistent_base());
    let mut palloc = Palloc::new(&map, 1, 4096);
    for _ in 0..appends {
        let ops = list
            .append_ops(&map, sys.arch_mem_mut(), &mut palloc, 0, false)
            .unwrap();
        sys.run_single_core(0, ops).unwrap();
    }
    let r = list.check_recovery(&sys.crash_now(), &map).unwrap();
    assert_eq!(r.reachable_nodes, appends);

    // PMEM, Fig. 2 code: data loss (or corruption) is expected.
    let mut sys = System::new(cfg(), PersistencyMode::Pmem).unwrap();
    let map = sys.address_map().clone();
    let mut list = LinkedList::new(map.persistent_base());
    let mut palloc = Palloc::new(&map, 1, 4096);
    for _ in 0..appends {
        let ops = list
            .append_ops(&map, sys.arch_mem_mut(), &mut palloc, 0, false)
            .unwrap();
        sys.run_single_core(0, ops).unwrap();
    }
    // Corruption (Err) also demonstrates the hazard.
    if let Ok(r) = list.check_recovery(&sys.crash_now(), &map) {
        assert!(r.reachable_nodes < appends, "caches cannot persist all");
    }

    // PMEM, Fig. 3 code (instrumented): full recovery again.
    let mut sys = System::new(cfg(), PersistencyMode::Pmem).unwrap();
    let map = sys.address_map().clone();
    let mut list = LinkedList::new(map.persistent_base());
    let mut palloc = Palloc::new(&map, 1, 4096);
    for _ in 0..appends {
        let ops = list
            .append_ops(&map, sys.arch_mem_mut(), &mut palloc, 0, true)
            .unwrap();
        sys.run_single_core(0, ops).unwrap();
    }
    let r = list.check_recovery(&sys.crash_now(), &map).unwrap();
    assert_eq!(r.reachable_nodes, appends);
}

/// Crashing twice at different points yields monotonically growing
/// recovered state (no lost updates between crash points).
#[test]
fn recovery_is_monotone_in_crash_point() {
    let mut last = 0;
    for budget in [100u64, 400, 900, 1600] {
        let cfg = cfg();
        let mut w = make_workload(WorkloadKind::Hashmap, &cfg, params());
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), budget);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let buckets = (params().initial / 2).next_power_of_two().max(64);
        let n = check_hashmap_recovery(&img, &map, map.persistent_base(), buckets).unwrap();
        assert!(n >= last, "recovered set shrank: {n} < {last}");
        last = n;
    }
}

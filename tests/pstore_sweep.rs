//! Tier-1 crash sweep of the bbb-pstore ring protocol.
//!
//! The pstore acceptance claim: across every persistency mode and both
//! battery states, a crash at any persisting-store boundary leaves the
//! ring recoverable to a clean prefix of committed grants — no lost, no
//! torn, no reordered record. The ring is fence-free under battery
//! backing, so the grid is planned on persisting-store boundaries (the
//! ordering-event grid would plan nothing there); the dead-battery and
//! flush-stripped differential oracles must still demonstrably lose
//! committed appends, which is what proves the checker would notice a
//! broken protocol.

use bbb::core::PersistencyMode;
use bbb::crashfuzz::{
    merge_shards, plan_shards, sweep, sweep_shard, GridSpec, SweepConfig, CRASHFUZZ_SEED,
};
use bbb::runner::Runner;
use bbb::sim::SimConfig;
use bbb::workloads::{WorkloadKind, WorkloadParams};

fn pstore_pair(mode: PersistencyMode, grid: GridSpec) -> SweepConfig {
    SweepConfig::paper_discipline(
        WorkloadKind::PstoreLog,
        mode,
        &SimConfig::small_for_tests(),
        WorkloadParams::smoke(),
        grid,
    )
    .with_store_boundaries()
}

#[test]
fn ring_protocol_survives_every_mode_and_battery_state() {
    for mode in PersistencyMode::ALL {
        let out = sweep(&pstore_pair(mode, GridSpec::smoke()));
        assert!(out.expects_consistent);
        assert!(
            out.points >= 200,
            "{}: only {} store-boundary points",
            out.label,
            out.points
        );
        assert!(
            out.failures.is_empty(),
            "{}: {} crash points lost or tore a committed grant (first at cycle {})",
            out.label,
            out.failures.len(),
            out.failures[0].cycle
        );
        if mode.has_bbpb() || mode == PersistencyMode::Eadr {
            // Committed appends live in battery-backed buffers here, so
            // dropping the battery must come up short of the watermark.
            assert!(
                out.negative_signatures > 0,
                "{}: a dead battery never lost a committed append",
                out.label
            );
        }
        assert!(out.passed(), "{}", out.label);
    }
}

#[test]
fn lossy_oracles_lose_committed_appends() {
    // PMEM with its flushes stripped, and BEP with its barriers elided,
    // must both recover strictly fewer appends than their disciplined
    // twins at some crash point: `committed_seq` counts every append, so
    // a lost record is always observable.
    for mode in [PersistencyMode::Pmem, PersistencyMode::Bep] {
        let sc = SweepConfig::lossy(
            WorkloadKind::PstoreLog,
            mode,
            &SimConfig::small_for_tests(),
            WorkloadParams::smoke(),
            GridSpec::bounded(96, 32, CRASHFUZZ_SEED),
        )
        .with_store_boundaries();
        let out = sweep(&sc);
        assert!(!out.expects_consistent);
        assert!(out.oracle_required, "pstore lost updates are observable");
        assert!(
            out.negative_signatures > 0,
            "{}: the undisciplined twin never lost an append",
            out.label
        );
        assert!(out.passed(), "{}", out.label);
    }
}

#[test]
fn sharded_pstore_sweep_reproduces_the_serial_outcome() {
    // Same fixed-seed determinism contract the Table IV sweep keeps:
    // shard the store-boundary grid any way, run the shards on a pool,
    // merge in plan order — identical points, failures, and signatures.
    let sc = pstore_pair(
        PersistencyMode::BbbMemorySide,
        GridSpec::bounded(64, 16, CRASHFUZZ_SEED),
    );
    let serial = sweep(&sc);
    assert!(serial.failures.is_empty());
    for shard_count in [2, 5] {
        let shards = plan_shards(&sc, shard_count);
        let partials = Runner::with_threads(shard_count).map(&shards, sweep_shard);
        let merged = merge_shards(&sc, &partials);
        assert_eq!(merged.points, serial.points, "{shard_count} shards");
        assert_eq!(
            merged.failures.len(),
            serial.failures.len(),
            "{shard_count} shards"
        );
        assert_eq!(merged.negative_points, serial.negative_points);
        assert_eq!(merged.negative_signatures, serial.negative_signatures);
    }
}

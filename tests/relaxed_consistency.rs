//! The paper's §III-C argument, demonstrated end to end: under relaxed
//! consistency, stores may reach the L1D out of program order, so the
//! bbPB alone cannot guarantee program-order persistency — BBB therefore
//! battery-backs the store buffer, moving the point of persistency up to
//! store *commit*.

use bbb::core::{PersistencyMode, System};
use bbb::cpu::Op;
use bbb::sim::SimConfig;

/// An op sequence engineered so a younger store is L1D-ready while an
/// older one must miss: under relaxed SB draining the younger reaches the
/// L1D (and the bbPB) first.
fn reorder_prone_ops(base: u64) -> Vec<Op> {
    vec![
        // Warm block B so a later store to it hits in M state.
        Op::store_u64(base + 0x40, 0xAAAA),
        // Cold block A: its store will need a long RdX.
        Op::store_u64(base + 0x4000, 0x0101), // older store, misses
        Op::store_u64(base + 0x40, 0xBBBB),   // younger store, hits
    ]
}

/// With the battery-backed store buffer (the paper's design), program-
/// order persistency holds even with relaxed draining: if the younger
/// store is durable, the older one is too.
#[test]
fn battery_backed_sb_preserves_program_order_under_relaxed_drain() {
    let cfg = SimConfig {
        relaxed_sb_drain: true,
        battery_backed_sb: true,
        ..SimConfig::default()
    };
    let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
    let base = sys.address_map().persistent_base();
    sys.run_single_core(0, reorder_prone_ops(base)).unwrap();
    let img = sys.crash_now();
    let younger = img.read_u64(base + 0x40);
    let older = img.read_u64(base + 0x4000);
    if younger == 0xBBBB {
        assert_eq!(older, 0x0101, "younger durable implies older durable");
    }
    // With the SB in the persistence domain, in fact *everything committed*
    // is durable.
    assert_eq!(younger, 0xBBBB);
    assert_eq!(older, 0x0101);
}

/// Ablation: without the battery-backed SB, relaxed draining can persist
/// a younger store while an older committed store is still volatile — the
/// exact hazard §III-C identifies. Many (cold-miss older, warm-hit
/// younger) pairs stream through the SB; the relaxed drain engine prefers
/// the L1-writable younger stores, so cutting the run mid-stream must
/// leave some pair with the younger durable and the older lost.
#[test]
fn without_battery_backed_sb_reordering_is_observable() {
    let cfg = SimConfig {
        relaxed_sb_drain: true,
        battery_backed_sb: false,
        ..SimConfig::default()
    };
    let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
    let base = sys.address_map().persistent_base();
    let warm = base + 0x40;
    let mut ops = vec![Op::store_u64(warm, 0)]; // make the warm block M
    for i in 1..=24u64 {
        ops.push(Op::store_u64(base + 0x4000 + i * 0x400, i)); // older: cold
        ops.push(Op::store_u64(warm, i)); // younger: hit, coalesces
    }
    sys.run_single_core(0, ops).unwrap();
    let img = sys.crash_now(); // SB contents are lost in this ablation
    let v = img.read_u64(warm);
    assert!(v > 0, "some younger stores must have drained");
    let missing_older = (1..=v)
        .filter(|&i| img.read_u64(base + 0x4000 + i * 0x400) == 0)
        .count();
    assert!(
        missing_older > 0,
        "expected the paper's hazard: warm block shows {v} but all older \
         stores up to {v} persisted"
    );
}

/// TSO draining (the default) never exposes the hazard even without the
/// battery-backed SB: the SB drains in order, so at any cut the durable
/// set is a program-order prefix.
#[test]
fn tso_drain_keeps_prefix_order_without_bb_sb() {
    let cfg = SimConfig {
        relaxed_sb_drain: false,
        battery_backed_sb: false,
        ..SimConfig::default()
    };
    let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
    let base = sys.address_map().persistent_base();
    sys.run_single_core(0, reorder_prone_ops(base)).unwrap();
    let img = sys.crash_now();
    let warm_block = img.read_u64(base + 0x40);
    let older = img.read_u64(base + 0x4000);
    // Under TSO the younger store (0xBBBB) can only be durable if the
    // older one drained first.
    if warm_block == 0xBBBB {
        assert_eq!(older, 0x0101);
    }
}

/// The relaxed configuration changes only ordering, not durability of
/// fully drained runs: after the SBs empty, both configurations persist
/// identical data.
#[test]
fn relaxed_and_tso_agree_after_full_drain() {
    let mut images = Vec::new();
    for relaxed in [false, true] {
        let cfg = SimConfig {
            relaxed_sb_drain: relaxed,
            ..SimConfig::default()
        };
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        let base = sys.address_map().persistent_base();
        let ops: Vec<Op> = (0..50u64)
            .map(|i| Op::store_u64(base + (i % 10) * 0x400, i + 1))
            .collect();
        sys.run_single_core(0, ops).unwrap();
        sys.drain_all_store_buffers();
        let img = sys.crash_now();
        let state: Vec<u64> = (0..10u64).map(|i| img.read_u64(base + i * 0x400)).collect();
        images.push(state);
    }
    assert_eq!(images[0], images[1]);
}

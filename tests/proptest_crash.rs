//! Property-based tests: random workloads, random crash points, random
//! buffer geometries — the BBB guarantees must hold for all of them.

use bbb::core::{PersistencyMode, System};
use bbb::cpu::Op;
use bbb::sim::{DrainPolicy, SimConfig};
use bbb::workloads::arrays::check_array_recovery;
use bbb::workloads::hashmap::check_hashmap_recovery;
use bbb::workloads::{make_workload, WorkloadKind, WorkloadParams};
use proptest::prelude::*;

fn small_cfg(entries: usize, threshold_pct: u8) -> SimConfig {
    let mut cfg = SimConfig::small_for_tests();
    cfg.bbpb.entries = entries;
    cfg.bbpb.drain_policy = DrainPolicy::Threshold { threshold_pct };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of aligned persisting stores, crashed after any prefix,
    /// leaves exactly that prefix durable under BBB — for any bbPB size and
    /// drain threshold.
    #[test]
    fn prefix_durability_holds_for_any_geometry(
        entries in 1usize..16,
        threshold in 1u8..=100,
        slots in proptest::collection::vec(0u64..64, 1..60),
    ) {
        let mut sys = System::new(
            small_cfg(entries, threshold),
            PersistencyMode::BbbMemorySide,
        ).unwrap();
        let base = sys.address_map().persistent_base();
        let ops: Vec<Op> = slots
            .iter()
            .enumerate()
            .map(|(i, &s)| Op::store_u64(base + s * 8, (i as u64) << 8 | 1))
            .collect();
        sys.run_single_core(0, ops).unwrap();
        let img = sys.crash_now();
        // Each slot must hold the *last* value stored to it.
        let mut expect = vec![0u64; 64];
        for (i, &s) in slots.iter().enumerate() {
            expect[s as usize] = (i as u64) << 8 | 1;
        }
        for (s, &e) in expect.iter().enumerate() {
            prop_assert_eq!(img.read_u64(base + s as u64 * 8), e, "slot {}", s);
        }
    }

    /// Random multi-core hashmap runs crashed at random op budgets always
    /// leave a walkable, untorn image under BBB.
    #[test]
    fn hashmap_recovers_from_random_crash_points(
        seed in 0u64..1000,
        budget in 1u64..600,
        entries in 2usize..12,
    ) {
        let cfg = small_cfg(entries, 75);
        let params = WorkloadParams {
            initial: 64,
            per_core_ops: 200,
            seed,
            instrument: false,
        };
        let mut w = make_workload(WorkloadKind::Hashmap, &cfg, params);
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), budget);
        sys.check_invariants();
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let buckets = (params.initial / 2).next_power_of_two().max(64);
        let n = check_hashmap_recovery(&img, &map, map.persistent_base(), buckets)
            .map_err(|e| TestCaseError::fail(format!("corrupt image: {e}")))?;
        prop_assert!(n >= params.initial, "setup data lost: {}", n);
    }

    /// Random array-swap runs never tear values, under either BBB
    /// organization.
    #[test]
    fn swaps_never_tear(
        seed in 0u64..1000,
        budget in 1u64..400,
        procside in proptest::bool::ANY,
    ) {
        let cfg = small_cfg(4, 75);
        let params = WorkloadParams {
            initial: 64,
            per_core_ops: 100,
            seed,
            instrument: false,
        };
        let mode = if procside {
            PersistencyMode::BbbProcessorSide
        } else {
            PersistencyMode::BbbMemorySide
        };
        let mut w = make_workload(WorkloadKind::SwapC, &cfg, params);
        let mut sys = System::new(cfg.clone(), mode).unwrap();
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), budget);
        let img = sys.crash_now();
        let reserve = (cfg.persistent_heap_bytes / 8).clamp(4096, 1 << 21);
        let base = sys.address_map().persistent_base() + reserve;
        let elements = params.initial.div_ceil(2) * 2;
        check_array_recovery(&img, base, elements)
            .map_err(|e| TestCaseError::fail(format!("torn value: {e}")))?;
    }

    /// eADR and BBB agree on the final durable state of a completed run
    /// (after draining): both must equal the architectural memory.
    #[test]
    fn completed_runs_agree_with_architectural_memory(
        seed in 0u64..200,
    ) {
        for mode in [PersistencyMode::Eadr, PersistencyMode::BbbMemorySide] {
            let cfg = small_cfg(4, 75);
            let params = WorkloadParams {
                initial: 32,
                per_core_ops: 40,
                seed,
                instrument: false,
            };
            // Single-core-generated workloads keep generation order equal
            // to application order so the comparison is exact.
            let mut w = make_workload(WorkloadKind::MutateNC, &cfg, params);
            let mut sys = System::new(cfg.clone(), mode).unwrap();
            sys.prepare(w.as_mut());
            sys.run(w.as_mut(), u64::MAX);
            sys.drain_all_store_buffers();
            let reserve = (cfg.persistent_heap_bytes / 8).clamp(4096, 1 << 21);
            let base = sys.address_map().persistent_base() + reserve;
            let elements = params.initial.div_ceil(2) * 2;
            let arch: Vec<u64> = (0..elements)
                .map(|i| sys.arch_mem().read_u64(base + i * 8))
                .collect();
            let img = sys.crash_now();
            for (i, &a) in arch.iter().enumerate() {
                prop_assert_eq!(
                    img.read_u64(base + i as u64 * 8),
                    a,
                    "{} element {} diverged from architectural memory",
                    mode,
                    i
                );
            }
        }
    }
}

//! Property-based tests: random workloads, random crash points, random
//! buffer geometries — the BBB guarantees must hold for all of them.
//!
//! Cases are generated with the simulator's own [`SplitMix64`] stream
//! (fixed seed, so failures reproduce exactly); each property runs a few
//! dozen independently drawn cases.

use bbb::core::{PersistencyMode, System};
use bbb::cpu::Op;
use bbb::sim::{DrainPolicy, SimConfig, SplitMix64};
use bbb::workloads::arrays::check_array_recovery;
use bbb::workloads::hashmap::check_hashmap_recovery;
use bbb::workloads::{make_workload, WorkloadKind, WorkloadParams};

const CASES: u64 = 24;

fn small_cfg(entries: usize, threshold_pct: u8) -> SimConfig {
    let mut cfg = SimConfig::small_for_tests();
    cfg.bbpb.entries = entries;
    cfg.bbpb.drain_policy = DrainPolicy::Threshold { threshold_pct };
    cfg
}

/// Any sequence of aligned persisting stores, crashed after any prefix,
/// leaves exactly that prefix durable under BBB — for any bbPB size and
/// drain threshold.
#[test]
fn prefix_durability_holds_for_any_geometry() {
    let mut rng = SplitMix64::new(0xC7A5_4001);
    for case in 0..CASES {
        let entries = 1 + rng.next_index(15);
        let threshold = 1 + rng.next_below(100) as u8;
        let slots: Vec<u64> = (0..1 + rng.next_below(59))
            .map(|_| rng.next_below(64))
            .collect();

        let mut sys = System::new(
            small_cfg(entries, threshold),
            PersistencyMode::BbbMemorySide,
        )
        .unwrap();
        let base = sys.address_map().persistent_base();
        let ops: Vec<Op> = slots
            .iter()
            .enumerate()
            .map(|(i, &s)| Op::store_u64(base + s * 8, (i as u64) << 8 | 1))
            .collect();
        sys.run_single_core(0, ops).unwrap();
        let img = sys.crash_now();
        // Each slot must hold the *last* value stored to it.
        let mut expect = vec![0u64; 64];
        for (i, &s) in slots.iter().enumerate() {
            expect[s as usize] = (i as u64) << 8 | 1;
        }
        for (s, &e) in expect.iter().enumerate() {
            assert_eq!(
                img.read_u64(base + s as u64 * 8),
                e,
                "case {case} (entries={entries} threshold={threshold}): slot {s}"
            );
        }
    }
}

/// Random multi-core hashmap runs crashed at random op budgets always
/// leave a walkable, untorn image under BBB.
#[test]
fn hashmap_recovers_from_random_crash_points() {
    let mut rng = SplitMix64::new(0xC7A5_4002);
    for case in 0..CASES {
        let seed = rng.next_below(1000);
        let budget = 1 + rng.next_below(599);
        let entries = 2 + rng.next_index(10);

        let cfg = small_cfg(entries, 75);
        let params = WorkloadParams {
            initial: 64,
            per_core_ops: 200,
            seed,
            instrument: false,
        };
        let mut w = make_workload(WorkloadKind::Hashmap, &cfg, params);
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), budget);
        sys.check_invariants();
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let buckets = (params.initial / 2).next_power_of_two().max(64);
        let n = check_hashmap_recovery(&img, &map, map.persistent_base(), buckets).unwrap_or_else(
            |e| panic!("case {case} (seed={seed} budget={budget}): corrupt image: {e}"),
        );
        assert!(
            n >= params.initial,
            "case {case} (seed={seed} budget={budget}): setup data lost: {n}"
        );
    }
}

/// Random array-swap runs never tear values, under either BBB
/// organization.
#[test]
fn swaps_never_tear() {
    let mut rng = SplitMix64::new(0xC7A5_4003);
    for case in 0..CASES {
        let seed = rng.next_below(1000);
        let budget = 1 + rng.next_below(399);
        let procside = rng.chance(1, 2);

        let cfg = small_cfg(4, 75);
        let params = WorkloadParams {
            initial: 64,
            per_core_ops: 100,
            seed,
            instrument: false,
        };
        let mode = if procside {
            PersistencyMode::BbbProcessorSide
        } else {
            PersistencyMode::BbbMemorySide
        };
        let mut w = make_workload(WorkloadKind::SwapC, &cfg, params);
        let mut sys = System::new(cfg.clone(), mode).unwrap();
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), budget);
        let img = sys.crash_now();
        let reserve = (cfg.persistent_heap_bytes / 8).clamp(4096, 1 << 21);
        let base = sys.address_map().persistent_base() + reserve;
        let elements = params.initial.div_ceil(2) * 2;
        check_array_recovery(&img, base, elements).unwrap_or_else(|e| {
            panic!("case {case} (seed={seed} budget={budget} mode={mode}): torn value: {e}")
        });
    }
}

/// eADR and BBB agree on the final durable state of a completed run
/// (after draining): both must equal the architectural memory.
#[test]
fn completed_runs_agree_with_architectural_memory() {
    let mut rng = SplitMix64::new(0xC7A5_4004);
    for case in 0..CASES {
        let seed = rng.next_below(200);
        for mode in [PersistencyMode::Eadr, PersistencyMode::BbbMemorySide] {
            let cfg = small_cfg(4, 75);
            let params = WorkloadParams {
                initial: 32,
                per_core_ops: 40,
                seed,
                instrument: false,
            };
            // Single-core-generated workloads keep generation order equal
            // to application order so the comparison is exact.
            let mut w = make_workload(WorkloadKind::MutateNC, &cfg, params);
            let mut sys = System::new(cfg.clone(), mode).unwrap();
            sys.prepare(w.as_mut());
            sys.run(w.as_mut(), u64::MAX);
            sys.drain_all_store_buffers();
            let reserve = (cfg.persistent_heap_bytes / 8).clamp(4096, 1 << 21);
            let base = sys.address_map().persistent_base() + reserve;
            let elements = params.initial.div_ceil(2) * 2;
            let arch: Vec<u64> = (0..elements)
                .map(|i| sys.arch_mem().read_u64(base + i * 8))
                .collect();
            let img = sys.crash_now();
            for (i, &a) in arch.iter().enumerate() {
                assert_eq!(
                    img.read_u64(base + i as u64 * 8),
                    a,
                    "case {case} (seed={seed}): {mode} element {i} diverged from architectural memory"
                );
            }
        }
    }
}

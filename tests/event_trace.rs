//! Golden-trace tests: the exact event sequence a two-core
//! publish/subscribe exchange produces, under BBB (memory-side) and under
//! instrumented strict PMEM.
//!
//! The golden strings are cycle-free ([`TraceEvent`]'s `Display` omits
//! cycles by design), so timing-model tweaks do not churn them — only a
//! change to *which* events fire, or their order, does. That is exactly
//! the contract the persist-order checker depends on.

use bbb::core::{PersistencyMode, System};
use bbb::cpu::Op;
use bbb::sim::{AddressMap, SimConfig, TraceEvent};

/// Producer on core 0 stores data then flag (instrumented with
/// clwb+sfence when `instrument`); consumer on core 1 waits out the
/// drains and reads flag then data. Ends with a battery-backed crash.
fn publish_subscribe(mode: PersistencyMode, instrument: bool) -> Vec<String> {
    let cfg = SimConfig::small_for_tests();
    let base = AddressMap::new(&cfg).persistent_base();
    let (data, flag) = (base, base + 0x1000);
    let mut s = System::new(cfg, mode).unwrap();
    s.set_tracing(true);
    let mut producer = vec![Op::store_u64(data, 0xD)];
    if instrument {
        producer.push(Op::Clwb { addr: data });
        producer.push(Op::Fence);
    }
    producer.push(Op::store_u64(flag, 1));
    if instrument {
        producer.push(Op::Clwb { addr: flag });
        producer.push(Op::Fence);
    }
    for op in &producer {
        s.step_op(0, op);
    }
    s.step_op(1, &Op::Compute { cycles: 4000 });
    s.step_op(1, &Op::load_u64(flag));
    s.step_op(1, &Op::load_u64(data));
    s.drain_all_store_buffers();
    s.crash_now();
    s.take_events().iter().map(TraceEvent::to_string).collect()
}

#[test]
fn bbb_publish_subscribe_golden_trace() {
    // Under BBB each store's bbPB allocation directly follows its L1D
    // visibility — PoV = PoP is visible in the raw trace — and the crash
    // drain writes both buffered blocks to NVMM.
    assert_eq!(
        publish_subscribe(PersistencyMode::BbbMemorySide, false),
        [
            "store_commit c0 b0x4000 s0 p",
            "store_commit c0 b0x4040 s1 p",
            "store_visible c0 b0x4000 s0",
            "persist_alloc c0 b0x4000 s0",
            "store_visible c0 b0x4040 s1",
            "persist_alloc c0 b0x4040 s1",
            "load_commit c1 b0x4040",
            "load_commit c1 b0x4000",
            "crash battery",
            "nvmm_write b0x4000",
            "nvmm_write b0x4040",
        ]
    );
}

#[test]
fn strict_pmem_publish_subscribe_golden_trace() {
    // Under instrumented PMEM every persisting store pays a clwb+sfence
    // pair; the WPQ accept (nvmm_write) of each flush lands between the
    // next store's commit and its visibility, and nothing is left for the
    // crash to drain.
    assert_eq!(
        publish_subscribe(PersistencyMode::Pmem, true),
        [
            "store_commit c0 b0x4000 s0 p",
            "store_visible c0 b0x4000 s0",
            "flush c0 b0x4000 wb",
            "epoch_barrier c0",
            "store_commit c0 b0x4040 s1 p",
            "nvmm_write b0x4000",
            "store_visible c0 b0x4040 s1",
            "flush c0 b0x4040 wb",
            "epoch_barrier c0",
            "nvmm_write b0x4040",
            "load_commit c1 b0x4040",
            "load_commit c1 b0x4000",
            "crash battery",
        ]
    );
}

#[test]
fn traces_replay_clean_through_the_checker() {
    // The same two traces satisfy their mode theorems end to end.
    use bbb::check::PersistOrderChecker;
    for (mode, instrument) in [
        (PersistencyMode::BbbMemorySide, false),
        (PersistencyMode::Pmem, true),
    ] {
        let cfg = SimConfig::small_for_tests();
        let base = AddressMap::new(&cfg).persistent_base();
        let mut s = System::new(cfg.clone(), mode).unwrap();
        s.set_tracing(true);
        let mut ops = vec![Op::store_u64(base, 0xD)];
        if instrument {
            ops.push(Op::Clwb { addr: base });
            ops.push(Op::Fence);
        }
        ops.push(Op::store_u64(base + 0x1000, 1));
        if instrument {
            ops.push(Op::Clwb {
                addr: base + 0x1000,
            });
            ops.push(Op::Fence);
        }
        for op in &ops {
            s.step_op(0, op);
        }
        s.crash_now();
        let report = PersistOrderChecker::run(mode, cfg.cores, &s.take_events());
        assert!(report.ok(), "{mode}: {:?}", report.witnesses);
        assert_eq!(report.persistent_stores, 2);
        assert_eq!(report.persisted, 2);
    }
}

#[test]
fn pstore_commit_path_is_flush_free_under_battery_modes() {
    // The pstore acceptance claim, proved on the raw event stream: a full
    // producer/consumer ring run — grants, commits, releases, laps —
    // retires not one `flush` or `epoch_barrier` event under the
    // battery-backed modes, while the identical ring code instrumented
    // for strict PMEM pays both at every commit. The battery trace must
    // also satisfy the mode's persist-order theorem end to end.
    use bbb::check::PersistOrderChecker;
    use bbb::workloads::{make_workload, WorkloadKind, WorkloadParams};

    let cfg = SimConfig::small_for_tests();
    for mode in [
        PersistencyMode::BbbMemorySide,
        PersistencyMode::BbbProcessorSide,
        PersistencyMode::Eadr,
        PersistencyMode::Pmem,
    ] {
        let mut params = WorkloadParams::smoke();
        params.instrument = mode.requires_flushes();
        let mut w = make_workload(WorkloadKind::PstoreLog, &cfg, params);
        let mut s = System::new(cfg.clone(), mode).unwrap();
        s.set_tracing(true);
        s.prepare(w.as_mut());
        let summary = s.run(w.as_mut(), 1_000_000);
        assert!(summary.completed, "{mode}: ring run must finish");
        s.drain_all_store_buffers();
        let events = s.take_events();
        let flushes = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Flush { .. }))
            .count();
        let barriers = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::EpochBarrier { .. }))
            .count();
        let commits = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::StoreCommit {
                        persistent: true,
                        ..
                    }
                )
            })
            .count();
        assert!(commits > 0, "{mode}: no persisting stores traced");
        if mode.requires_flushes() {
            assert!(
                flushes > 0 && barriers > 0,
                "{mode}: instrumented commits must flush ({flushes}) and fence ({barriers})"
            );
        } else {
            assert_eq!(
                (flushes, barriers),
                (0, 0),
                "{mode}: the commit path leaked ordering instructions"
            );
            let report = PersistOrderChecker::run(mode, cfg.cores, &events);
            assert!(report.ok(), "{mode}: {:?}", report.witnesses);
        }
    }
}

#[test]
fn tracing_is_off_by_default_and_drains_on_take() {
    let cfg = SimConfig::small_for_tests();
    let base = AddressMap::new(&cfg).persistent_base();
    let mut s = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
    s.step_op(0, &Op::store_u64(base, 1));
    s.drain_all_store_buffers();
    assert!(s.take_events().is_empty(), "untraced runs record nothing");
    s.set_tracing(true);
    s.step_op(0, &Op::store_u64(base + 8, 2));
    s.drain_all_store_buffers();
    assert!(!s.take_events().is_empty());
    assert!(s.take_events().is_empty(), "take drains the stream");
}

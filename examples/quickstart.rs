//! Quickstart: the paper's Fig. 2 linked list, flush-free under BBB.
//!
//! Builds the simulated 8-core machine with memory-side battery-backed
//! persist buffers, appends nodes to a persistent linked list using the
//! *unmodified* Fig. 2 code path (no `clwb`, no `sfence`), crashes the
//! machine at an arbitrary point, and verifies the recovered list.
//!
//! Run with: `cargo run --release --example quickstart`

use bbb::core::{PersistencyMode, System, SystemError};
use bbb::sim::SimConfig;
use bbb::workloads::{LinkedList, Palloc};

fn main() -> Result<(), SystemError> {
    // The paper's Table III machine with a memory-side bbPB per core.
    let cfg = SimConfig::default();
    let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide)?;
    let map = sys.address_map().clone();

    // A persistent linked list: head pointer at the start of the heap,
    // nodes allocated by palloc.
    let mut list = LinkedList::new(map.persistent_base());
    let mut palloc = Palloc::new(&map, 1, 4096);

    // AppendNode, exactly as in the paper's Fig. 2 — three plain stores,
    // zero persist instructions (`instrument = false`).
    println!("appending 1000 nodes with no flushes or fences...");
    for _ in 0..1000 {
        let ops = list
            .append_ops(&map, sys.arch_mem_mut(), &mut palloc, 0, false)
            .expect("allocator space");
        sys.run_single_core(0, ops)?;
    }
    println!(
        "done at cycle {} ({} committed ops)",
        sys.cycle(),
        sys.stats().get("cores.committed")
    );

    // Pull the plug. The battery drains the bbPBs (and store buffers) to
    // NVMM; everything committed is durable.
    let cost = sys.crash_cost();
    println!("crash! flush-on-fail drains {cost}");
    let image = sys.crash_now();

    let recovery = list
        .check_recovery(&image, &map)
        .expect("BBB guarantees a consistent image at any crash point");
    println!(
        "recovered {} of {} appended nodes - strict persistency with zero \
         programmer effort",
        recovery.reachable_nodes,
        list.len()
    );
    assert_eq!(recovery.reachable_nodes, list.len());

    // The same code on the ADR/PMEM baseline (still no flushes) loses data:
    let mut baseline = System::new(SimConfig::default(), PersistencyMode::Pmem)?;
    let bmap = baseline.address_map().clone();
    let mut blist = LinkedList::new(bmap.persistent_base());
    let mut bpalloc = Palloc::new(&bmap, 1, 4096);
    for _ in 0..1000 {
        let ops = blist
            .append_ops(&bmap, baseline.arch_mem_mut(), &mut bpalloc, 0, false)
            .expect("allocator space");
        baseline.run_single_core(0, ops)?;
    }
    let bimage = baseline.crash_now();
    match blist.check_recovery(&bimage, &bmap) {
        Ok(r) => println!(
            "PMEM baseline without flushes: only {} of {} nodes survived",
            r.reachable_nodes,
            blist.len()
        ),
        Err(e) => println!("PMEM baseline without flushes: corrupt image ({e})"),
    }
    Ok(())
}

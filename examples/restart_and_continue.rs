//! A full persistence lifecycle: run, crash, reboot, recover, continue —
//! across two simulated machine sessions, the way a real NVMM application
//! lives across power failures.
//!
//! Session 1 appends to a persistent list (no flushes — BBB), then loses
//! power. Session 2 boots a *fresh* machine from the crash image, runs
//! recovery code (walk + validate + allocator high-water scan), continues
//! appending, and crashes again. Every committed append from both
//! sessions survives.
//!
//! Run with: `cargo run --release --example restart_and_continue`

use bbb::core::{PersistencyMode, System, SystemError};
use bbb::sim::SimConfig;
use bbb::workloads::{LinkedList, Palloc};

const SESSION1_APPENDS: u64 = 600;
const SESSION2_APPENDS: u64 = 400;

fn main() -> Result<(), SystemError> {
    // ---- Session 1 ----------------------------------------------------
    let mut sys = System::new(SimConfig::default(), PersistencyMode::BbbMemorySide)?;
    let map = sys.address_map().clone();
    let head = map.persistent_base();
    let mut list = LinkedList::new(head);
    let mut palloc = Palloc::new(&map, 1, 4096);
    for _ in 0..SESSION1_APPENDS {
        let ops = list
            .append_ops(&map, sys.arch_mem_mut(), &mut palloc, 0, false)
            .expect("allocator space");
        sys.run_single_core(0, ops)?;
    }
    println!("session 1: appended {SESSION1_APPENDS} nodes, crashing...");
    let image = sys.crash_now();
    drop(sys); // the machine is gone; only the NVMM image remains

    // ---- Session 2: reboot and recover --------------------------------
    let mut sys = System::new(SimConfig::default(), PersistencyMode::BbbMemorySide)?;
    sys.adopt_image(&image);
    let map = sys.address_map().clone();
    let (mut list, high_water) =
        LinkedList::recover(&image, &map, head).expect("session-1 image is consistent");
    println!(
        "session 2: recovered {} nodes (allocator resumes above {high_water:#x})",
        list.len()
    );
    assert_eq!(list.len(), SESSION1_APPENDS, "nothing was lost");

    let mut palloc = Palloc::resuming(&map, 1, 4096, high_water);
    for _ in 0..SESSION2_APPENDS {
        let ops = list
            .append_ops(&map, sys.arch_mem_mut(), &mut palloc, 0, false)
            .expect("allocator space");
        sys.run_single_core(0, ops)?;
    }
    println!("session 2: appended {SESSION2_APPENDS} more, crashing again...");
    let image2 = sys.crash_now();

    // ---- Final validation ---------------------------------------------
    let (final_list, _) =
        LinkedList::recover(&image2, &map, head).expect("session-2 image is consistent");
    println!(
        "final recovery: {} nodes (expected {})",
        final_list.len(),
        SESSION1_APPENDS + SESSION2_APPENDS
    );
    assert_eq!(final_list.len(), SESSION1_APPENDS + SESSION2_APPENDS);
    println!("two power failures, zero flushes, zero data loss.");
    Ok(())
}

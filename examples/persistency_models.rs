//! Compares the four persistency machines on the same workload.
//!
//! Runs identical ctree insertions under PMEM (ADR + software flushes),
//! eADR, BBB memory-side, and BBB processor-side, and reports execution
//! time, NVMM writes, and the crash-drain footprint of each — the paper's
//! Table I made quantitative.
//!
//! Run with: `cargo run --release --example persistency_models`

use bbb::core::{PersistencyMode, System, SystemError};
use bbb::sim::{SimConfig, Table};
use bbb::workloads::{make_workload, WorkloadKind, WorkloadParams};

fn main() -> Result<(), SystemError> {
    let cfg = SimConfig::default();
    let params = WorkloadParams {
        initial: 20_000,
        per_core_ops: 1_000,
        seed: 42,
        instrument: false, // set per mode below
    };

    let mut t = Table::new(
        "Persistency models on ctree insertion (8 cores)",
        &[
            "Mode",
            "Flushes",
            "Cycles",
            "NVMM writes",
            "Crash drain (bytes)",
            "Recoverable w/o flushes",
        ],
    );

    for mode in PersistencyMode::ALL {
        let mut p = params;
        p.instrument = mode.requires_flushes();
        let mut w = make_workload(WorkloadKind::Ctree, &cfg, p);
        let mut sys = System::new(cfg.clone(), mode)?;
        sys.prepare(w.as_mut());
        let summary = sys.run(w.as_mut(), u64::MAX);
        sys.drain_all_store_buffers();
        let stats = sys.stats();
        let cost = sys.crash_cost();

        // "Recoverable without flushes": everything but PMEM closes the
        // PoV/PoP gap in hardware.
        let recoverable = if mode.requires_flushes() {
            "no (needs clwb+sfence)"
        } else {
            "yes"
        };
        t.row_owned(vec![
            mode.to_string(),
            if p.instrument { "clwb+sfence" } else { "none" }.into(),
            summary.cycles.to_string(),
            stats.get("nvmm.writes").to_string(),
            cost.drain_bytes().to_string(),
            recoverable.into(),
        ]);
    }
    println!("{t}");
    println!("Note the crash-drain column: eADR must drain every dirty cache block,");
    println!("BBB only its (at most) 32-entry-per-core persist buffers - the two to");
    println!("three orders of magnitude the paper's battery comparison rests on.");
    Ok(())
}

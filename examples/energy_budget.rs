//! Battery-budget explorer: how big a battery does a design point need?
//!
//! Couples the running simulator to the paper's energy model: runs a
//! workload, takes the worst-case crash-drain set the battery must cover,
//! and prices it in joules, drain time, and battery volume for both
//! platforms and both storage technologies — then sweeps bbPB sizes to
//! show the cost of over-provisioning.
//!
//! Run with: `cargo run --release --example energy_budget`

use bbb::core::{PersistencyMode, System, SystemError};
use bbb::energy::{footprint_area_mm2, volume_mm3, BatteryTech, DrainModel, EnergyCosts, Platform};
use bbb::sim::table::{si_energy, si_time};
use bbb::sim::{SimConfig, Table};
use bbb::workloads::{make_workload, WorkloadKind, WorkloadParams};

fn main() -> Result<(), SystemError> {
    // 1) What does a crash actually have to drain? Measure on the
    //    simulated machine mid-workload.
    let cfg = SimConfig::default();
    let params = WorkloadParams {
        initial: 10_000,
        per_core_ops: 500,
        seed: 7,
        instrument: false,
    };
    let mut w = make_workload(WorkloadKind::SwapC, &cfg, params);
    let mut sys = System::new(cfg.clone(), PersistencyMode::BbbMemorySide)?;
    sys.prepare(w.as_mut());
    sys.run(w.as_mut(), 2_000);
    let cost = sys.crash_cost();
    println!("mid-run crash-drain set on the simulated machine: {cost}");
    println!();

    // 2) Price the worst case (full buffers) with the paper's model.
    let costs = EnergyCosts::default();
    let mut t = Table::new(
        "Battery budget per platform (worst case: full drain set)",
        &[
            "Platform",
            "Scheme",
            "Drain energy",
            "Drain time",
            "SuperCap vol (mm^3)",
            "Li-thin vol (mm^3)",
            "Footprint vs core",
        ],
    );
    for p in [Platform::mobile(), Platform::server()] {
        let name = p.name;
        let core = p.core_area_mm2;
        let model = DrainModel::new(p, costs.clone());
        for (scheme, energy, time) in [
            (
                "eADR",
                model.eadr_drain_energy_j(false),
                model.eadr_drain_time_s(false),
            ),
            (
                "BBB-32",
                model.bbb_drain_energy_j(32),
                model.bbb_drain_time_s(32),
            ),
        ] {
            let batt = energy * costs.provisioning_factor;
            let v_sc = volume_mm3(batt, BatteryTech::SuperCap);
            let v_li = volume_mm3(batt, BatteryTech::LiThin);
            t.row_owned(vec![
                name.into(),
                scheme.into(),
                si_energy(energy),
                si_time(time),
                format!("{v_sc:.1}"),
                format!("{v_li:.3}"),
                format!("{:.1}%", 100.0 * footprint_area_mm2(v_sc) / core),
            ]);
        }
    }
    println!("{t}");

    // 3) Sweep bbPB sizes: what does doubling the buffer cost in battery?
    let model = DrainModel::new(Platform::mobile(), costs);
    println!("mobile-class BBB battery (SuperCap) vs bbPB size:");
    for entries in [8usize, 16, 32, 64, 128, 256] {
        let v = volume_mm3(model.bbb_battery_energy_j(entries), BatteryTech::SuperCap);
        println!("  {entries:4} entries -> {v:7.2} mm^3");
    }
    println!("linear in entries: performance headroom is bought with battery volume.");
    Ok(())
}

//! Crash-recovery torture test for a persistent key-value store.
//!
//! Runs the hashmap workload (a chained persistent KV store) on all 8
//! cores, injects a power failure at a series of arbitrary mid-operation
//! points, and validates the recovered image after every crash: chains
//! walkable, no torn nodes, no dangling pointers. Under BBB this holds at
//! *every* crash point with zero flushes in the program.
//!
//! Run with: `cargo run --release --example crash_recovery_kv`

use bbb::core::{PersistencyMode, System, SystemError};
use bbb::sim::{AddressMap, SimConfig};
use bbb::workloads::hashmap::check_hashmap_recovery;
use bbb::workloads::{HashmapWorkload, Palloc};

const BUCKETS: u64 = 1 << 12;
const INITIAL: u64 = 5_000;
const PER_CORE_OPS: u64 = 2_000;

fn build() -> Result<(System, HashmapWorkload, AddressMap), SystemError> {
    let cfg = SimConfig::default();
    let sys = System::new(cfg, PersistencyMode::BbbMemorySide)?;
    let map = sys.address_map().clone();
    let palloc = Palloc::new(&map, 8, BUCKETS * 8);
    let w = HashmapWorkload::new(
        map.clone(),
        map.persistent_base(),
        BUCKETS,
        palloc,
        8,
        INITIAL,
        PER_CORE_OPS,
        0xC0FFEE,
        false, // no flushes: BBB makes the plain code crash consistent
    );
    Ok((sys, w, map))
}

fn main() -> Result<(), SystemError> {
    // Crash at several arbitrary op counts, rebuilding each time so every
    // crash hits a different machine state (deterministic seeds keep the
    // experiment reproducible).
    for (i, budget) in [137u64, 1_009, 4_999, 12_345, u64::MAX].iter().enumerate() {
        let (mut sys, mut w, map) = build()?;
        sys.prepare(&mut w);
        let summary = sys.run(&mut w, *budget);
        let cost = sys.crash_cost();
        let image = sys.crash_now();
        let nodes = check_hashmap_recovery(&image, &map, map.persistent_base(), BUCKETS)
            .expect("BBB image must be consistent at any crash point");
        println!(
            "crash #{i}: after {} ops at cycle {} -> recovered {} nodes \
             (drain set: {} bbPB entries, {} SB entries)",
            summary.ops,
            sys.cycle(),
            nodes,
            cost.bbpb_entries,
            cost.sb_entries,
        );
        assert!(nodes >= INITIAL, "setup data must always survive");
    }
    println!("every crash point recovered consistently - no flushes, no fences.");
    Ok(())
}

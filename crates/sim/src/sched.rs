//! Discrete-event scheduling primitives for the system interpreter.
//!
//! The multi-core interpreter in `bbb-core` used to pick the next core to
//! step by scanning every core's local clock — O(cores) per committed op.
//! [`EventQueue`] replaces that scan with a binary min-heap of
//! `(cycle, actor)` completion events: the interpreter pops the earliest
//! event, steps that actor, and pushes its next completion. Stale entries
//! (an actor whose clock moved underneath its queued event, e.g. because a
//! crash-test driver advanced the machine between increments) are detected
//! by the caller comparing the popped cycle against the actor's current
//! clock and re-pushing — lazy invalidation, so no `decrease-key` is ever
//! needed.
//!
//! A heap rather than a timing wheel: completion times in this model are
//! analytic (an op can jump hundreds of cycles on an NVMM miss), so the
//! event horizon is unbounded and wheel buckets would mostly be empty;
//! `BinaryHeap` gives O(log cores) pops with no tuning.
//!
//! [`SchedProfile`] rides along: every scheduled completion is classified
//! into an [`EventKind`] so a finished run can report where simulated time
//! went (pipeline vs. store buffer vs. WPQ vs. bbPB vs. NVMM), which is
//! how the benchmark reports attribute cycle share per component.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::Cycle;
use crate::stats::Stats;

/// What a scheduled completion event was waiting on.
///
/// The interpreter resolves each op as one blocking transaction, so the
/// classification is by the component that dominated the op's wait:
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Core-local completion: compute, L1/store-buffer hits, and any op
    /// that finished without leaving the core.
    Pipeline = 0,
    /// Store-buffer pressure: the core stalled for a full SB, or a
    /// fence/flush waited on the SB drain engine.
    StoreBuffer = 1,
    /// WPQ acceptance: a flush (or the fence completing it) waited for
    /// the NVMM controller's write-pending queue.
    Wpq = 2,
    /// Persist-buffer activity: a bbPB/processor-side buffer drain held
    /// the op (epoch barriers under BEP, allocation stalls under BBB).
    Bbpb = 3,
    /// Memory-system service beyond the requester's L1: L2, a peer-cache
    /// intervention, or a DRAM/NVMM access.
    Nvmm = 4,
}

impl EventKind {
    /// Every kind, in stats-export order.
    pub const ALL: [EventKind; 5] = [
        EventKind::Pipeline,
        EventKind::StoreBuffer,
        EventKind::Wpq,
        EventKind::Bbpb,
        EventKind::Nvmm,
    ];

    /// Stable snake_case tag (stats keys, report meta).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Pipeline => "pipeline",
            EventKind::StoreBuffer => "store_buffer",
            EventKind::Wpq => "wpq",
            EventKind::Bbpb => "bbpb",
            EventKind::Nvmm => "nvmm",
        }
    }
}

/// Per-kind event counts and simulated-cycle totals for one run.
///
/// `cycles` accumulates each stepped op's simulated elapsed time under the
/// kind that dominated its wait, so the shares sum to the per-core busy
/// time (not wall time, and not `sim.cycles`, which is a max over cores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedProfile {
    counts: [u64; 5],
    cycles: [u64; 5],
}

impl SchedProfile {
    /// A zeroed profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completion event of `kind` that consumed `cycles` of
    /// simulated time.
    pub fn record(&mut self, kind: EventKind, cycles: Cycle) {
        self.counts[kind as usize] += 1;
        self.cycles[kind as usize] += cycles;
    }

    /// Records `n` completion events of `kind` that together consumed
    /// `cycles` of simulated time — the batch-retire fast path folds runs
    /// of pure-compute ops into one scheduler event but must attribute
    /// the same per-op counts as `n` separate [`SchedProfile::record`]
    /// calls.
    pub fn record_many(&mut self, kind: EventKind, n: u64, cycles: Cycle) {
        self.counts[kind as usize] += n;
        self.cycles[kind as usize] += cycles;
    }

    /// Adds another profile's counts and cycles into this one (merging
    /// shard- or run-level attributions additively).
    pub fn absorb(&mut self, other: &SchedProfile) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            self.cycles[i] += other.cycles[i];
        }
    }

    /// Events recorded under `kind`.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Simulated cycles attributed to `kind`.
    #[must_use]
    pub fn cycles(&self, kind: EventKind) -> u64 {
        self.cycles[kind as usize]
    }

    /// Total simulated cycles attributed across all kinds.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Total events recorded.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exports under `sched.events.<kind>` / `sched.cycles.<kind>`.
    pub fn export(&self, stats: &mut Stats) {
        for kind in EventKind::ALL {
            stats.set(&format!("sched.events.{}", kind.name()), self.count(kind));
            stats.set(&format!("sched.cycles.{}", kind.name()), self.cycles(kind));
        }
    }
}

/// A binary min-heap of `(cycle, actor)` completion events.
///
/// Ordering is lexicographic — earliest cycle first, lowest actor index on
/// ties — which reproduces exactly the "first active core with the
/// smallest local clock" choice of the scan it replaces.
///
/// # Examples
///
/// ```
/// use bbb_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(30, 1);
/// q.push(10, 2);
/// q.push(10, 0);
/// assert_eq!(q.pop(), Some((10, 0)));
/// assert_eq!(q.pop(), Some((10, 2)));
/// assert_eq!(q.pop(), Some((30, 1)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Cycle, usize)>>,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `actor`'s next completion at `at`.
    pub fn push(&mut self, at: Cycle, actor: usize) {
        self.heap.push(Reverse((at, actor)));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, usize)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// The earliest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<(Cycle, usize)> {
        self.heap.peek().map(|&Reverse(e)| e)
    }

    /// Drops every queued event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_actor_order() {
        let mut q = EventQueue::new();
        q.push(5, 3);
        q.push(5, 1);
        q.push(2, 7);
        q.push(9, 0);
        assert_eq!(q.peek(), Some((2, 7)));
        assert_eq!(q.pop(), Some((2, 7)));
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 3)));
        assert_eq!(q.pop(), Some((9, 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn matches_linear_scan_tie_break() {
        // The scan it replaces picked the *first* core with the minimal
        // clock; the heap must agree for every permutation of pushes.
        let clocks = [4u64, 2, 2, 9];
        let scan_pick = clocks
            .iter()
            .enumerate()
            .min_by_key(|&(_, &c)| c)
            .map(|(i, &c)| (c, i))
            .unwrap();
        let mut q = EventQueue::new();
        for (i, &c) in clocks.iter().enumerate().rev() {
            q.push(c, i);
        }
        assert_eq!(q.pop(), Some(scan_pick));
    }

    #[test]
    fn clear_and_len_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, 0);
        q.push(2, 1);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn profile_accumulates_per_kind() {
        let mut p = SchedProfile::new();
        p.record(EventKind::Pipeline, 10);
        p.record(EventKind::Pipeline, 5);
        p.record(EventKind::Nvmm, 300);
        assert_eq!(p.count(EventKind::Pipeline), 2);
        assert_eq!(p.cycles(EventKind::Pipeline), 15);
        assert_eq!(p.count(EventKind::Nvmm), 1);
        assert_eq!(p.total_cycles(), 315);
        assert_eq!(p.total_events(), 3);
        let mut s = Stats::new();
        p.export(&mut s);
        assert_eq!(s.get("sched.events.pipeline"), 2);
        assert_eq!(s.get("sched.cycles.nvmm"), 300);
        assert_eq!(s.get("sched.events.wpq"), 0);
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["pipeline", "store_buffer", "wpq", "bbpb", "nvmm"]
        );
    }
}

//! ASCII table rendering for the benchmark harness.
//!
//! Every `bbb-bench` binary regenerates one of the paper's tables or figure
//! series; [`Table`] gives them a uniform, column-aligned text format.

use std::fmt;

/// A simple column-aligned text table with a title and a header row.
///
/// # Examples
///
/// ```
/// use bbb_sim::Table;
/// let mut t = Table::new("Demo", &["workload", "value"]);
/// t.row(&["rtree", "1.01"]);
/// let s = t.to_string();
/// assert!(s.contains("rtree"));
/// assert!(s.contains("workload"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row from owned strings (convenient with `format!`).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    #[must_use]
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(total.min(100)))?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        writeln!(f, "{}", "-".repeat(total.min(100)))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio like the paper does: `"320x"` style multipliers.
///
/// # Examples
///
/// ```
/// use bbb_sim::table::ratio;
/// assert_eq!(ratio(320.4), "320x");
/// assert_eq!(ratio(2.75), "2.8x");
/// ```
#[must_use]
pub fn ratio(x: f64) -> String {
    if x >= 10.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.1}x")
    }
}

/// Formats an energy value in joules with an SI prefix (`mJ`, `µJ`, `nJ`).
///
/// # Examples
///
/// ```
/// use bbb_sim::table::si_energy;
/// assert_eq!(si_energy(0.0465), "46.5 mJ");
/// assert_eq!(si_energy(145e-6), "145.0 µJ");
/// ```
#[must_use]
pub fn si_energy(joules: f64) -> String {
    si(joules, "J")
}

/// Formats a duration in seconds with an SI prefix (`ms`, `µs`, `ns`).
///
/// # Examples
///
/// ```
/// use bbb_sim::table::si_time;
/// assert_eq!(si_time(0.0018), "1.8 ms");
/// assert_eq!(si_time(2.6e-6), "2.6 µs");
/// ```
#[must_use]
pub fn si_time(seconds: f64) -> String {
    si(seconds, "s")
}

fn si(value: f64, unit: &str) -> String {
    let (scaled, prefix) = if value == 0.0 {
        (0.0, "")
    } else if value.abs() >= 1.0 {
        (value, "")
    } else if value.abs() >= 1e-3 {
        (value * 1e3, "m")
    } else if value.abs() >= 1e-6 {
        (value * 1e6, "µ")
    } else {
        (value * 1e9, "n")
    };
    format!("{scaled:.1} {prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["name", "v"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "22"]);
        let out = t.to_string();
        assert!(out.contains("| name   | v  |"));
        assert!(out.contains("| longer | 22 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn owned_rows() {
        let mut t = Table::new("T", &["a"]);
        t.row_owned(vec![format!("{}", 42)]);
        assert!(t.to_string().contains("42"));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(709.0), "709x");
        assert_eq!(ratio(1.0), "1.0x");
    }

    #[test]
    fn si_formatting() {
        assert_eq!(si_energy(0.55), "550.0 mJ");
        assert_eq!(si_energy(775e-6), "775.0 µJ");
        assert_eq!(si_time(1.8e-3), "1.8 ms");
        assert_eq!(si_time(2.4e-6), "2.4 µs");
        assert_eq!(si_energy(0.0), "0.0 J");
        assert_eq!(si_energy(2.5), "2.5 J");
        assert_eq!(si_time(3e-9), "3.0 ns");
    }
}

//! The block-granular memory-port interface.
//!
//! Defined here, at the bottom of the crate stack, so that the cache
//! hierarchy (`bbb-cache`) can *use* it, the memory controllers
//! (`bbb-mem`) can *implement* it, and the persistence machinery
//! (`bbb-core`) can drain persist buffers through whichever port the
//! system wires up.

use crate::{Addr, BlockAddr, Cycle, BLOCK_BYTES};

/// A timed, block-granular interface to main memory.
pub trait MemoryPort {
    /// Reads a block; returns `(completion_cycle, data)`.
    fn read_block(&mut self, now: Cycle, block: BlockAddr) -> (Cycle, [u8; BLOCK_BYTES]);

    /// Writes a block; returns the cycle at which the write is durable
    /// (and globally performed). For NVMM this is WPQ acceptance — the ADR
    /// persist point — not media completion; for DRAM it is the access
    /// completion.
    fn write_block(&mut self, now: Cycle, block: BlockAddr, data: [u8; BLOCK_BYTES]) -> Cycle;

    /// Read-modify-writes `bytes` at `offset` within `block` as a single
    /// block write (store-granular persist-buffer drains). The default
    /// implementation reads through the timed path and then writes, which
    /// inflates read counters; real controllers override it to patch media
    /// directly.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `offset + bytes.len()` exceeds the
    /// block size.
    fn rmw_block(&mut self, now: Cycle, block: BlockAddr, offset: usize, bytes: &[u8]) -> Cycle {
        assert!(offset + bytes.len() <= BLOCK_BYTES, "RMW exceeds block");
        let (_, mut data) = self.read_block(now, block);
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.write_block(now, block, data)
    }

    /// Convenience: the block containing `addr`.
    fn block_of(&self, addr: Addr) -> BlockAddr {
        BlockAddr::containing(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct VecMem {
        data: [u8; BLOCK_BYTES],
        reads: usize,
        writes: usize,
    }

    impl MemoryPort for VecMem {
        fn read_block(&mut self, now: Cycle, _: BlockAddr) -> (Cycle, [u8; BLOCK_BYTES]) {
            self.reads += 1;
            (now + 10, self.data)
        }
        fn write_block(&mut self, now: Cycle, _: BlockAddr, data: [u8; BLOCK_BYTES]) -> Cycle {
            self.writes += 1;
            self.data = data;
            now
        }
    }

    #[test]
    fn default_rmw_reads_then_writes() {
        let mut m = VecMem {
            data: [0; BLOCK_BYTES],
            reads: 0,
            writes: 0,
        };
        let done = m.rmw_block(5, BlockAddr::from_index(0), 4, &[1, 2]);
        assert_eq!(done, 5);
        assert_eq!(m.data[4..6], [1, 2]);
        assert_eq!((m.reads, m.writes), (1, 1));
    }

    #[test]
    fn block_of_helper() {
        let m = VecMem {
            data: [0; BLOCK_BYTES],
            reads: 0,
            writes: 0,
        };
        assert_eq!(m.block_of(0x7F), BlockAddr::from_index(1));
    }

    #[test]
    #[should_panic(expected = "RMW exceeds block")]
    fn oversized_rmw_panics() {
        let mut m = VecMem {
            data: [0; BLOCK_BYTES],
            reads: 0,
            writes: 0,
        };
        m.rmw_block(0, BlockAddr::from_index(0), 60, &[0; 8]);
    }
}

//! O(1) Zipfian sampling via Walker/Vose alias tables.
//!
//! The server-scale workloads (YCSB-style KV, durable-log WAL) draw keys
//! from a Zipf(s) distribution over millions of ranks. Inverse-CDF
//! sampling is O(log n) per draw and the classic rejection samplers burn
//! several PRNG words per draw; the alias method gives exactly one
//! uniform index plus one fixed-point threshold compare — O(1) with a
//! single [`SplitMix64`] state advance of two words per sample, which
//! keeps the sharded==serial determinism contract easy to reason about.
//!
//! Floating point is confined to table construction (`powf` over the
//! rank weights); the sampling path is pure integer arithmetic, so a
//! built table is bit-deterministic under any draw interleaving.

use crate::rng::SplitMix64;

/// An O(1) sampler for the Zipf(s) distribution over ranks `0..n`.
///
/// Rank `k` is drawn with probability proportional to `(k+1)^-s`; rank 0
/// is the hottest key. `s = 0` degenerates to the uniform distribution.
///
/// # Examples
///
/// ```
/// use bbb_sim::{SplitMix64, ZipfSampler};
/// let zipf = ZipfSampler::new(1_000_000, 0.99);
/// let mut rng = SplitMix64::new(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Fixed-point (63-bit) acceptance threshold per slot: a uniform
    /// 63-bit draw below `prob[i]` keeps slot `i`, otherwise the draw is
    /// redirected to `alias[i]`.
    prob: Vec<u64>,
    alias: Vec<u32>,
    s: f64,
}

/// Fixed-point scale for the acceptance thresholds (63 fraction bits so
/// the threshold of a full slot, 1.0, still fits in a `u64`).
const FP_ONE: u64 = 1u64 << 63;

impl ZipfSampler {
    /// Builds the alias table for `Zipf(s)` over `n` ranks.
    ///
    /// Construction is O(n) time and O(n) space (12 bytes per rank);
    /// sampling afterwards is O(1) and allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, exceeds `u32::MAX`, or `s` is negative or
    /// non-finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(n <= u64::from(u32::MAX), "zipf support exceeds u32 ranks");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let n_usize = usize::try_from(n).expect("n fits usize");
        // Scaled weights p_k * n: Vose's algorithm splits them into slots
        // of unit capacity, each holding at most two ranks.
        let weights: Vec<f64> = (0..n_usize).map(|k| ((k + 1) as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.into_iter().map(|w| w * scale).collect();

        let mut prob = vec![0u64; n_usize];
        let mut alias = vec![0u32; n_usize];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (k, &w) in scaled.iter().enumerate() {
            let k = k as u32;
            if w < 1.0 {
                small.push(k);
            } else {
                large.push(k);
            }
        }
        while let (Some(&s_idx), Some(&l_idx)) = (small.last(), large.last()) {
            small.pop();
            let w = scaled[s_idx as usize];
            prob[s_idx as usize] = to_fp(w);
            alias[s_idx as usize] = l_idx;
            let rem = scaled[l_idx as usize] + w - 1.0;
            scaled[l_idx as usize] = rem;
            if rem < 1.0 {
                large.pop();
                small.push(l_idx);
            }
        }
        // Leftovers (numerically ~1.0) become full slots.
        for &k in small.iter().chain(large.iter()) {
            prob[k as usize] = FP_ONE;
            alias[k as usize] = k;
        }
        Self { prob, alias, s }
    }

    /// Number of ranks in the support.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.prob.len() as u64
    }

    /// The skew exponent the table was built for.
    #[must_use]
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `0..n` (two PRNG words, pure integer path).
    #[must_use]
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let i = rng.next_below(self.n()) as usize;
        let coin = rng.next_u64() >> 1; // uniform 63-bit
        if coin < self.prob[i] {
            i as u64
        } else {
            u64::from(self.alias[i])
        }
    }

    /// Theoretical probability mass of rank `k` (for tests/reports).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside the support.
    #[must_use]
    pub fn theoretical_mass(&self, k: u64) -> f64 {
        assert!(k < self.n(), "rank outside support");
        let total: f64 = (0..self.n()).map(|j| ((j + 1) as f64).powf(-self.s)).sum();
        ((k + 1) as f64).powf(-self.s) / total
    }
}

fn to_fp(w: f64) -> u64 {
    // w is in [0, 1]; round to the 63-bit fixed-point grid.
    let fp = (w * FP_ONE as f64).round();
    if fp >= FP_ONE as f64 {
        FP_ONE
    } else if fp <= 0.0 {
        0
    } else {
        fp as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(zipf: &ZipfSampler, seed: u64, draws: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        let mut counts = vec![0u64; zipf.n() as usize];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let zipf = ZipfSampler::new(4096, 0.99);
        let a = frequencies(&zipf, 0xBBB, 10_000);
        let b = frequencies(&zipf, 0xBBB, 10_000);
        assert_eq!(a, b);
        // A rebuilt table samples identically: construction is a pure
        // function of (n, s).
        let rebuilt = ZipfSampler::new(4096, 0.99);
        let c = frequencies(&rebuilt, 0xBBB, 10_000);
        assert_eq!(a, c);
    }

    #[test]
    fn rank_frequency_matches_theory() {
        // Observed mass of the head ranks must track the analytic Zipf
        // mass for both the YCSB default and a steeper skew.
        for s in [0.99f64, 1.2] {
            let n = 1000;
            let draws = 400_000u64;
            let zipf = ZipfSampler::new(n, s);
            let counts = frequencies(&zipf, 0x5EED ^ s.to_bits(), draws);
            for k in 0..8u64 {
                let expected = zipf.theoretical_mass(k);
                let observed = counts[k as usize] as f64 / draws as f64;
                let rel = (observed - expected).abs() / expected;
                assert!(
                    rel < 0.05,
                    "s={s} rank {k}: observed {observed:.5} vs expected {expected:.5} (rel {rel:.3})"
                );
            }
            // Bulk check: top-10 cumulative mass within 2%.
            let top10_obs: u64 = counts[..10].iter().sum();
            let top10_exp: f64 = (0..10).map(|k| zipf.theoretical_mass(k)).sum();
            let rel = (top10_obs as f64 / draws as f64 - top10_exp).abs() / top10_exp;
            assert!(rel < 0.02, "s={s} top-10 mass off by {rel:.3}");
        }
    }

    #[test]
    fn steeper_skew_concentrates_more_mass() {
        let n = 1000;
        let mild = ZipfSampler::new(n, 0.99);
        let steep = ZipfSampler::new(n, 1.2);
        assert!(steep.theoretical_mass(0) > mild.theoretical_mass(0));
        let mild_counts = frequencies(&mild, 1, 100_000);
        let steep_counts = frequencies(&steep, 1, 100_000);
        assert!(steep_counts[0] > mild_counts[0]);
    }

    #[test]
    fn degenerate_s_zero_is_uniform() {
        let n = 64u64;
        let draws = 256_000u64;
        let zipf = ZipfSampler::new(n, 0.0);
        // Every slot must be full (probability exactly 1/n each).
        let counts = frequencies(&zipf, 42, draws);
        let expected = draws as f64 / n as f64;
        for (k, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.08, "rank {k} count {c} vs uniform {expected}");
        }
        let mass = zipf.theoretical_mass(0);
        assert!((mass - 1.0 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn single_rank_support() {
        let zipf = ZipfSampler::new(1, 0.99);
        let mut rng = SplitMix64::new(9);
        for _ in 0..16 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}

//! Simulation clock: cycle counting and nanosecond conversions.
//!
//! The simulated machine runs at 2 GHz (paper Table III), so one nanosecond
//! is exactly two cycles. All device latencies in the paper are given in
//! nanoseconds; [`ns_to_cycles`] performs the conversion used everywhere.

/// Simulated clock frequency in GHz (paper Table III: 2 GHz).
pub const CLOCK_GHZ: u64 = 2;

/// A point in simulated time, measured in core clock cycles.
///
/// `Cycle` is a plain `u64` newtype-free alias: the simulator passes cycles
/// around constantly and the arithmetic is pervasive enough that a newtype
/// would add noise without catching real bugs (there is only one clock
/// domain in the model).
pub type Cycle = u64;

/// Converts a latency in nanoseconds to clock cycles at [`CLOCK_GHZ`].
///
/// # Examples
///
/// ```
/// use bbb_sim::clock::ns_to_cycles;
/// assert_eq!(ns_to_cycles(55), 110);   // DRAM access
/// assert_eq!(ns_to_cycles(150), 300);  // NVMM read
/// assert_eq!(ns_to_cycles(500), 1000); // NVMM write
/// ```
#[must_use]
pub const fn ns_to_cycles(ns: u64) -> Cycle {
    ns * CLOCK_GHZ
}

/// Converts a cycle count back to nanoseconds (integer division).
///
/// # Examples
///
/// ```
/// use bbb_sim::clock::cycles_to_ns;
/// assert_eq!(cycles_to_ns(1000), 500);
/// ```
#[must_use]
pub const fn cycles_to_ns(cycles: Cycle) -> u64 {
    cycles / CLOCK_GHZ
}

/// Converts a cycle count to seconds as `f64`, for reporting.
///
/// # Examples
///
/// ```
/// use bbb_sim::clock::cycles_to_secs;
/// assert!((cycles_to_secs(2_000_000_000) - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn cycles_to_secs(cycles: Cycle) -> f64 {
    cycles as f64 / (CLOCK_GHZ as f64 * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip() {
        for ns in [0, 1, 55, 150, 500, 1_000_000] {
            assert_eq!(cycles_to_ns(ns_to_cycles(ns)), ns);
        }
    }

    #[test]
    fn paper_latencies() {
        // Paper Table III converted at 2 GHz.
        assert_eq!(ns_to_cycles(55), 110);
        assert_eq!(ns_to_cycles(150), 300);
        assert_eq!(ns_to_cycles(500), 1000);
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(cycles_to_secs(0), 0.0);
        assert!((cycles_to_secs(2) - 1e-9).abs() < 1e-18);
    }
}

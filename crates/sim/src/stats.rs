//! Lightweight simulation statistics.
//!
//! Components own [`Counter`]s directly (cheap `u64` increments on the hot
//! path) and expose them through a flat [`Stats`] map when a run finishes.
//! The benchmark harness merges per-component maps to print the paper's
//! metrics (execution cycles, NVMM writes, bbPB rejections/drains, …).

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use bbb_sim::Counter;
/// let mut c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Self(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A flat, ordered name → value map of counters collected from a finished
/// simulation.
///
/// Keys use `component.metric` dotted names (`"nvmm.writes"`,
/// `"bbpb.rejections"`), kept sorted so reports are stable.
///
/// # Examples
///
/// ```
/// use bbb_sim::Stats;
/// let mut s = Stats::new();
/// s.set("nvmm.writes", 10);
/// s.add("nvmm.writes", 5);
/// assert_eq!(s.get("nvmm.writes"), 15);
/// assert_eq!(s.get("missing"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    values: BTreeMap<String, u64>,
}

impl Stats {
    /// Creates an empty stats map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Adds `value` to `name` (starting from 0 if absent).
    pub fn add(&mut self, name: &str, value: u64) {
        *self.values.entry(name.to_owned()).or_insert(0) += value;
    }

    /// Reads `name`, returning 0 if it was never recorded.
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merges another stats map into this one, summing shared keys.
    ///
    /// Merging is associative and commutative with [`Stats::new`] as the
    /// identity, so per-component (or per-thread) snapshots can be
    /// combined in any grouping — the property the parallel experiment
    /// runner relies on.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Merges a sequence of snapshots into one map (fold over
    /// [`Stats::merge`]).
    ///
    /// ```
    /// use bbb_sim::Stats;
    /// let mut a = Stats::new();
    /// a.set("x", 1);
    /// let mut b = Stats::new();
    /// b.set("x", 2);
    /// assert_eq!(Stats::merged([a, b]).get("x"), 3);
    /// ```
    #[must_use]
    pub fn merged<I: IntoIterator<Item = Stats>>(parts: I) -> Stats {
        let mut total = Stats::new();
        for part in parts {
            total.merge(&part);
        }
        total
    }

    /// Iterates `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of recorded metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no metric has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

impl Extend<(String, u64)> for Stats {
    fn extend<T: IntoIterator<Item = (String, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            *self.values.entry(k).or_insert(0) += v;
        }
    }
}

impl FromIterator<(String, u64)> for Stats {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> Self {
        let mut s = Stats::new();
        s.extend(iter);
        s
    }
}

/// A power-of-two-bucketed histogram for latency/occupancy distributions.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts zeros
/// and ones). 64 buckets cover the full `u64` range.
///
/// # Examples
///
/// ```
/// use bbb_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(5);
/// h.record(5);
/// assert_eq!(h.samples(), 3);
/// assert_eq!(h.max(), 5);
/// assert!((h.mean() - 10.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    samples: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [0; 64],
            samples: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()).saturating_sub(1) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.samples += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub const fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest sample seen (0 when empty).
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of all samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Smallest value `v` such that at least `pct` percent of samples are
    /// `<= 2^ceil(log2 v)` — an upper bound on the percentile at bucket
    /// granularity. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not in `(0, 100]`.
    #[must_use]
    pub fn percentile_upper_bound(&self, pct: u8) -> u64 {
        assert!(pct > 0 && pct <= 100, "percentile must be in (0, 100]");
        if self.samples == 0 {
            return 0;
        }
        let target = (u128::from(self.samples) * u128::from(pct)).div_ceil(100) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << (i + 1) };
            }
        }
        self.max
    }

    /// Counts per occupied bucket: `(bucket_upper_bound, count)`.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 1 } else { 1u64 << (i + 1) }, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(format!("{c}"), "10");
    }

    #[test]
    fn stats_set_add_get() {
        let mut s = Stats::new();
        assert!(s.is_empty());
        s.set("a", 3);
        s.add("a", 2);
        s.add("b", 1);
        assert_eq!(s.get("a"), 5);
        assert_eq!(s.get("b"), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_sums_shared_keys() {
        let mut a = Stats::new();
        a.set("x", 1);
        a.set("y", 2);
        let mut b = Stats::new();
        b.set("y", 3);
        b.set("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    fn sample(pairs: &[(&str, u64)]) -> Stats {
        let mut s = Stats::new();
        for &(k, v) in pairs {
            s.set(k, v);
        }
        s
    }

    #[test]
    fn merge_identity_is_empty() {
        let a = sample(&[("x", 1), ("y", 2)]);
        let mut left = Stats::new();
        left.merge(&a);
        assert_eq!(left, a, "empty ∘ a = a");
        let mut right = a.clone();
        right.merge(&Stats::new());
        assert_eq!(right, a, "a ∘ empty = a");
    }

    #[test]
    fn merge_is_associative() {
        let a = sample(&[("x", 1)]);
        let b = sample(&[("x", 2), ("y", 3)]);
        let c = sample(&[("y", 4), ("z", 5)]);
        // (a ∘ b) ∘ c
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab;
        ab_c.merge(&c);
        // a ∘ (b ∘ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn merge_is_commutative() {
        let a = sample(&[("x", 1), ("y", 2)]);
        let b = sample(&[("y", 3), ("z", 4)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merged_folds_snapshots() {
        let parts = [
            sample(&[("x", 1)]),
            sample(&[("x", 2), ("y", 1)]),
            Stats::new(),
        ];
        let total = Stats::merged(parts);
        assert_eq!(total.get("x"), 3);
        assert_eq!(total.get("y"), 1);
        assert_eq!(Stats::merged([]), Stats::new());
    }

    #[test]
    fn iteration_is_sorted() {
        let s: Stats = [("b".to_owned(), 2), ("a".to_owned(), 1)]
            .into_iter()
            .collect();
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile_upper_bound(50), 0);
        for v in [0u64, 1, 2, 3, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.samples(), 7);
        assert_eq!(h.max(), 1000);
        let buckets: Vec<(u64, u64)> = h.occupied_buckets().collect();
        // zeros+ones -> bucket 1; {2,3} -> 2^2; {4} -> 4..8 bucket (8); 8 -> 16; 1000 -> 1024.
        assert_eq!(buckets[0], (1, 2));
        assert!(h.percentile_upper_bound(50) <= 8);
        assert_eq!(h.percentile_upper_bound(100), 1024);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let _ = Histogram::new().percentile_upper_bound(0);
    }

    #[test]
    fn display_lists_all() {
        let mut s = Stats::new();
        s.set("m", 7);
        assert_eq!(format!("{s}"), "m = 7\n");
    }
}

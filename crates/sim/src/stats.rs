//! Lightweight simulation statistics.
//!
//! Components own [`Counter`]s directly (cheap `u64` increments on the hot
//! path) and expose them through a flat [`Stats`] map when a run finishes.
//! The benchmark harness merges per-component maps to print the paper's
//! metrics (execution cycles, NVMM writes, bbPB rejections/drains, …).

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use bbb_sim::Counter;
/// let mut c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Self(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A flat, ordered name → value map of counters collected from a finished
/// simulation.
///
/// Keys use `component.metric` dotted names (`"nvmm.writes"`,
/// `"bbpb.rejections"`), kept sorted so reports are stable.
///
/// # Examples
///
/// ```
/// use bbb_sim::Stats;
/// let mut s = Stats::new();
/// s.set("nvmm.writes", 10);
/// s.add("nvmm.writes", 5);
/// assert_eq!(s.get("nvmm.writes"), 15);
/// assert_eq!(s.get("missing"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    values: BTreeMap<String, u64>,
}

impl Stats {
    /// Creates an empty stats map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Adds `value` to `name` (starting from 0 if absent).
    pub fn add(&mut self, name: &str, value: u64) {
        *self.values.entry(name.to_owned()).or_insert(0) += value;
    }

    /// Reads `name`, returning 0 if it was never recorded.
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merges another stats map into this one, summing shared keys.
    ///
    /// Merging is associative and commutative with [`Stats::new`] as the
    /// identity, so per-component (or per-thread) snapshots can be
    /// combined in any grouping — the property the parallel experiment
    /// runner relies on.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Merges a sequence of snapshots into one map (fold over
    /// [`Stats::merge`]).
    ///
    /// ```
    /// use bbb_sim::Stats;
    /// let mut a = Stats::new();
    /// a.set("x", 1);
    /// let mut b = Stats::new();
    /// b.set("x", 2);
    /// assert_eq!(Stats::merged([a, b]).get("x"), 3);
    /// ```
    #[must_use]
    pub fn merged<I: IntoIterator<Item = Stats>>(parts: I) -> Stats {
        let mut total = Stats::new();
        for part in parts {
            total.merge(&part);
        }
        total
    }

    /// Iterates `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of recorded metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no metric has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

impl Extend<(String, u64)> for Stats {
    fn extend<T: IntoIterator<Item = (String, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            *self.values.entry(k).or_insert(0) += v;
        }
    }
}

impl FromIterator<(String, u64)> for Stats {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> Self {
        let mut s = Stats::new();
        s.extend(iter);
        s
    }
}

/// A power-of-two-bucketed histogram for latency/occupancy distributions.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts zeros
/// and ones). 64 buckets cover the full `u64` range.
///
/// # Examples
///
/// ```
/// use bbb_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(5);
/// h.record(5);
/// assert_eq!(h.samples(), 3);
/// assert_eq!(h.max(), 5);
/// assert!((h.mean() - 10.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    samples: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [0; 64],
            samples: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()).saturating_sub(1) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.samples += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub const fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest sample seen (0 when empty).
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of all samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Smallest value `v` such that at least `pct` percent of samples are
    /// `<= 2^ceil(log2 v)` — an upper bound on the percentile at bucket
    /// granularity. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not in `(0, 100]`.
    #[must_use]
    pub fn percentile_upper_bound(&self, pct: u8) -> u64 {
        assert!(pct > 0 && pct <= 100, "percentile must be in (0, 100]");
        if self.samples == 0 {
            return 0;
        }
        let target = (u128::from(self.samples) * u128::from(pct)).div_ceil(100) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << (i + 1) };
            }
        }
        self.max
    }

    /// Counts per occupied bucket: `(bucket_upper_bound, count)`.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 1 } else { 1u64 << (i + 1) }, c))
    }
}

/// Sub-buckets per power-of-two major bucket in [`LatencyHistogram`]
/// (5 significant bits → ≤ 1/32 ≈ 3.1% relative quantization error).
const LAT_SUBS: u64 = 32;
/// Values below `2 * LAT_SUBS` are counted exactly (one bucket per value).
const LAT_EXACT: u64 = 2 * LAT_SUBS;
/// First major exponent that uses sub-bucketing.
const LAT_FIRST_MAJOR: u32 = 6; // 2^6 == LAT_EXACT
/// Total bucket count: 64 exact + 32 subs for each major 6..=63.
const LAT_BUCKETS: usize = LAT_EXACT as usize + (64 - LAT_FIRST_MAJOR as usize) * LAT_SUBS as usize;

/// An HDR-style log-bucketed latency histogram with mergeable state.
///
/// Values `< 64` land in exact unit buckets; larger values land in one of
/// 32 linear sub-buckets within their power-of-two major bucket, bounding
/// relative quantization error at ~3%. Unlike [`Histogram`] (whose
/// power-of-two buckets only support order-of-magnitude upper bounds),
/// this resolution is tight enough to report tail percentiles.
///
/// [`LatencyHistogram::merge`] is associative and commutative with an
/// empty histogram as identity — the same `Stats`-style monoid contract
/// the sharded experiment runner relies on, so per-shard histograms can
/// be combined in any grouping before percentiles are read.
///
/// # Examples
///
/// ```
/// use bbb_sim::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile_permille(500);
/// assert!((485..=515).contains(&p50), "p50 = {p50}");
/// assert!(h.percentile_permille(999) >= 960);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Box<[u64; LAT_BUCKETS]>,
    samples: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; LAT_BUCKETS]),
            samples: 0,
            sum: 0,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        if value < LAT_EXACT {
            value as usize
        } else {
            let major = 63 - value.leading_zeros(); // >= LAT_FIRST_MAJOR
            let sub = (value >> (major - 5)) & (LAT_SUBS - 1);
            LAT_EXACT as usize
                + (major - LAT_FIRST_MAJOR) as usize * LAT_SUBS as usize
                + sub as usize
        }
    }

    /// Lower bound of bucket `idx` (the value reported for percentiles
    /// that resolve to it).
    fn lower_bound(idx: usize) -> u64 {
        if idx < LAT_EXACT as usize {
            idx as u64
        } else {
            let rel = idx - LAT_EXACT as usize;
            let major = LAT_FIRST_MAJOR + (rel / LAT_SUBS as usize) as u32;
            let sub = (rel % LAT_SUBS as usize) as u64;
            (1u64 << major) + (sub << (major - 5))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index_of(value)] += 1;
        self.samples += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Records `count` identical samples.
    pub fn record_many(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.buckets[Self::index_of(value)] += count;
        self.samples += count;
        self.sum += u128::from(value) * u128::from(count);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub const fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest sample seen (0 when empty).
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of all samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Merges another histogram into this one (bucket-wise sum).
    ///
    /// Associative and commutative with [`LatencyHistogram::new`] as the
    /// identity, so shard snapshots combine in any grouping.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.samples += other.samples;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at the given permille rank (500 → p50, 990 → p99,
    /// 999 → p999), reported at bucket-lower-bound granularity (exact for
    /// values < 64, within ~3% above). Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `permille` is not in `(0, 1000]`.
    #[must_use]
    pub fn percentile_permille(&self, permille: u32) -> u64 {
        assert!(
            permille > 0 && permille <= 1000,
            "permille must be in (0, 1000]"
        );
        if self.samples == 0 {
            return 0;
        }
        if permille == 1000 {
            return self.max;
        }
        let target = (u128::from(self.samples) * u128::from(permille)).div_ceil(1000) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The max is a tighter bound than the top bucket's span.
                return Self::lower_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// True when no sample has been recorded.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.samples == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(format!("{c}"), "10");
    }

    #[test]
    fn stats_set_add_get() {
        let mut s = Stats::new();
        assert!(s.is_empty());
        s.set("a", 3);
        s.add("a", 2);
        s.add("b", 1);
        assert_eq!(s.get("a"), 5);
        assert_eq!(s.get("b"), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_sums_shared_keys() {
        let mut a = Stats::new();
        a.set("x", 1);
        a.set("y", 2);
        let mut b = Stats::new();
        b.set("y", 3);
        b.set("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    fn sample(pairs: &[(&str, u64)]) -> Stats {
        let mut s = Stats::new();
        for &(k, v) in pairs {
            s.set(k, v);
        }
        s
    }

    #[test]
    fn merge_identity_is_empty() {
        let a = sample(&[("x", 1), ("y", 2)]);
        let mut left = Stats::new();
        left.merge(&a);
        assert_eq!(left, a, "empty ∘ a = a");
        let mut right = a.clone();
        right.merge(&Stats::new());
        assert_eq!(right, a, "a ∘ empty = a");
    }

    #[test]
    fn merge_is_associative() {
        let a = sample(&[("x", 1)]);
        let b = sample(&[("x", 2), ("y", 3)]);
        let c = sample(&[("y", 4), ("z", 5)]);
        // (a ∘ b) ∘ c
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab;
        ab_c.merge(&c);
        // a ∘ (b ∘ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn merge_is_commutative() {
        let a = sample(&[("x", 1), ("y", 2)]);
        let b = sample(&[("y", 3), ("z", 4)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merged_folds_snapshots() {
        let parts = [
            sample(&[("x", 1)]),
            sample(&[("x", 2), ("y", 1)]),
            Stats::new(),
        ];
        let total = Stats::merged(parts);
        assert_eq!(total.get("x"), 3);
        assert_eq!(total.get("y"), 1);
        assert_eq!(Stats::merged([]), Stats::new());
    }

    #[test]
    fn iteration_is_sorted() {
        let s: Stats = [("b".to_owned(), 2), ("a".to_owned(), 1)]
            .into_iter()
            .collect();
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile_upper_bound(50), 0);
        for v in [0u64, 1, 2, 3, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.samples(), 7);
        assert_eq!(h.max(), 1000);
        let buckets: Vec<(u64, u64)> = h.occupied_buckets().collect();
        // zeros+ones -> bucket 1; {2,3} -> 2^2; {4} -> 4..8 bucket (8); 8 -> 16; 1000 -> 1024.
        assert_eq!(buckets[0], (1, 2));
        assert!(h.percentile_upper_bound(50) <= 8);
        assert_eq!(h.percentile_upper_bound(100), 1024);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let _ = Histogram::new().percentile_upper_bound(0);
    }

    #[test]
    fn display_lists_all() {
        let mut s = Stats::new();
        s.set("m", 7);
        assert_eq!(format!("{s}"), "m = 7\n");
    }

    #[test]
    fn latency_histogram_exact_below_64() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.samples(), 64);
        assert_eq!(h.max(), 63);
        // Exact unit buckets: p50 of 0..=63 is the 32nd value.
        assert_eq!(h.percentile_permille(500), 31);
        assert_eq!(h.percentile_permille(1000), 63);
    }

    #[test]
    fn latency_histogram_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 1_000, 10_000, 1_000_000, u64::MAX / 2] {
            let mut single = LatencyHistogram::new();
            single.record(v);
            let got = single.percentile_permille(500);
            let rel = (v as f64 - got as f64).abs() / v as f64;
            assert!(rel <= 1.0 / 32.0 + 1e-12, "v={v} got={got} rel={rel}");
            h.record(v);
        }
        assert_eq!(h.samples(), 5);
    }

    #[test]
    fn latency_histogram_percentiles_track_uniform() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (permille, expect) in [(500u32, 50_000u64), (990, 99_000), (999, 99_900)] {
            let got = h.percentile_permille(permille);
            let rel = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(rel < 0.04, "p{permille}: got {got}, expect ~{expect}");
        }
        assert_eq!(h.percentile_permille(1000), 100_000);
    }

    #[test]
    fn latency_histogram_merge_is_monoid() {
        let mk = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 5, 900]);
        let b = mk(&[2, 2, 70_000]);
        let c = mk(&[0, 1_000_000]);
        // Identity.
        let mut id = LatencyHistogram::new();
        id.merge(&a);
        assert_eq!(id, a);
        // Commutativity.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // Merge equals recording the concatenation.
        let all = mk(&[1, 5, 900, 2, 2, 70_000, 0, 1_000_000]);
        assert_eq!(ab_c, all);
    }

    #[test]
    fn latency_histogram_record_many_matches_loop() {
        let mut a = LatencyHistogram::new();
        a.record_many(137, 1000);
        a.record_many(0, 3);
        a.record_many(9, 0);
        let mut b = LatencyHistogram::new();
        for _ in 0..1000 {
            b.record(137);
        }
        for _ in 0..3 {
            b.record(0);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn latency_histogram_bad_permille_panics() {
        let _ = LatencyHistogram::new().percentile_permille(0);
    }
}

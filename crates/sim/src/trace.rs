//! Event tracing for the persist-order checker.
//!
//! The simulator is instrumented with a lightweight event stream: every
//! layer that moves a store closer to (or away from) durability records a
//! [`TraceEvent`] into a [`TraceLog`]. The logs are plain owned `Vec`s —
//! no shared interior mutability — so `System` stays `Clone + Send` and a
//! crash-fuzz fork carries an independent copy of its trace.
//!
//! Tracing is off by default: a disabled log drops events in `push`, so
//! the hot path costs one branch. `bbb-check` enables it, merges the
//! per-component logs by cycle, and replays the stream through the
//! vector-clock analyses described in DESIGN.md.

use crate::{BlockAddr, Cycle};

/// One observable step in the life of a store (or of the machine).
///
/// `seq` fields are per-core store sequence numbers assigned at commit;
/// they let the checker correlate the commit, L1D-visibility, and
/// persist-buffer-allocation events of one store across component logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A store left the core and entered the post-commit store buffer.
    StoreCommit {
        /// Committing core.
        core: usize,
        /// Target cache block.
        block: BlockAddr,
        /// Per-core store sequence number.
        seq: u64,
        /// True when the target lies in the persistent heap.
        persistent: bool,
        /// Commit cycle.
        cycle: Cycle,
    },
    /// A store drained from the store buffer into the L1D: its point of
    /// visibility to other cores.
    StoreVisible {
        /// Storing core.
        core: usize,
        /// Target cache block.
        block: BlockAddr,
        /// Per-core store sequence number.
        seq: u64,
        /// Cycle the L1D write completed.
        cycle: Cycle,
    },
    /// A persisting store was offered to a persist buffer (bbPB or the
    /// processor-side buffer) at its point of visibility.
    PersistAlloc {
        /// Storing core.
        core: usize,
        /// Target cache block.
        block: BlockAddr,
        /// Per-core store sequence number.
        seq: u64,
        /// Allocation cycle (equals the visibility cycle unless rejected).
        cycle: Cycle,
        /// True when the store merged into an already-resident entry.
        coalesced: bool,
        /// True when the buffer was full and the store stalled for a slot
        /// (the alloc cycle then trails the visibility cycle).
        rejected: bool,
        /// True when the buffer is inside the battery persistence domain
        /// (bbPB designs), false for BEP's volatile buffer.
        battery: bool,
    },
    /// A persist-buffer entry drained to the NVMM write-pending queue.
    PbDrain {
        /// Core owning the buffer.
        core: usize,
        /// Drained block.
        block: BlockAddr,
        /// Cycle the drain packet left the buffer.
        cycle: Cycle,
        /// True for drains forced by coherence or eviction rather than
        /// the capacity-threshold policy.
        forced: bool,
    },
    /// A bbPB entry migrated to another core's buffer on an ownership
    /// transfer (memory-side design, paper §III-A).
    PbMove {
        /// Previous holder.
        from: usize,
        /// New holder.
        to: usize,
        /// Migrated block.
        block: BlockAddr,
        /// Transfer cycle.
        cycle: Cycle,
    },
    /// An L1D victim was evicted (self-inclusion drain for the holder's
    /// bbPB entry, if any).
    L1Evict {
        /// Evicting core.
        core: usize,
        /// Victim block.
        block: BlockAddr,
        /// Eviction cycle.
        cycle: Cycle,
    },
    /// An LLC victim was evicted.
    LlcEvict {
        /// Victim block.
        block: BlockAddr,
        /// Eviction cycle.
        cycle: Cycle,
        /// True when the victim was dirty.
        dirty: bool,
        /// True when the dirty writeback was suppressed by the bbPB
        /// endurance optimization (paper §III-B).
        suppressed: bool,
    },
    /// The NVMM controller accepted a block into its write-pending queue:
    /// the ADR point of persistency.
    NvmmWrite {
        /// Persisted block.
        block: BlockAddr,
        /// Accept cycle.
        cycle: Cycle,
        /// True when the write merged with a queued entry for the block.
        coalesced: bool,
    },
    /// An epoch barrier (`sfence`/`ofence` class) retired on a core.
    EpochBarrier {
        /// Fencing core.
        core: usize,
        /// Retire cycle.
        cycle: Cycle,
    },
    /// A `clwb`-class writeback instruction retired.
    Flush {
        /// Flushing core.
        core: usize,
        /// Flushed block.
        block: BlockAddr,
        /// Completion cycle.
        cycle: Cycle,
        /// True when a dirty copy was actually pushed toward memory.
        wrote_back: bool,
    },
    /// A load retired (read visibility; the checker derives reads-from
    /// happens-before edges from these).
    LoadCommit {
        /// Loading core.
        core: usize,
        /// Read block.
        block: BlockAddr,
        /// Retire cycle.
        cycle: Cycle,
    },
    /// Power failed. Events after this record the battery-backed drain
    /// (or its absence when `battery_ok` is false).
    Crash {
        /// Cycle of the failure.
        cycle: Cycle,
        /// False models a dead/dropped battery (negative oracle).
        battery_ok: bool,
    },
}

impl TraceEvent {
    /// The cycle at which the event occurred (merge key).
    #[must_use]
    pub const fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::StoreCommit { cycle, .. }
            | TraceEvent::StoreVisible { cycle, .. }
            | TraceEvent::PersistAlloc { cycle, .. }
            | TraceEvent::PbDrain { cycle, .. }
            | TraceEvent::PbMove { cycle, .. }
            | TraceEvent::L1Evict { cycle, .. }
            | TraceEvent::LlcEvict { cycle, .. }
            | TraceEvent::NvmmWrite { cycle, .. }
            | TraceEvent::EpochBarrier { cycle, .. }
            | TraceEvent::Flush { cycle, .. }
            | TraceEvent::LoadCommit { cycle, .. }
            | TraceEvent::Crash { cycle, .. } => cycle,
        }
    }

    /// A stable snake_case tag for the event kind (golden traces, JSON).
    #[must_use]
    pub const fn kind(&self) -> &'static str {
        match self {
            TraceEvent::StoreCommit { .. } => "store_commit",
            TraceEvent::StoreVisible { .. } => "store_visible",
            TraceEvent::PersistAlloc { .. } => "persist_alloc",
            TraceEvent::PbDrain { .. } => "pb_drain",
            TraceEvent::PbMove { .. } => "pb_move",
            TraceEvent::L1Evict { .. } => "l1_evict",
            TraceEvent::LlcEvict { .. } => "llc_evict",
            TraceEvent::NvmmWrite { .. } => "nvmm_write",
            TraceEvent::EpochBarrier { .. } => "epoch_barrier",
            TraceEvent::Flush { .. } => "flush",
            TraceEvent::LoadCommit { .. } => "load_commit",
            TraceEvent::Crash { .. } => "crash",
        }
    }
}

impl std::fmt::Display for TraceEvent {
    /// Compact cycle-free rendering used by the golden-trace tests: the
    /// event kind plus its identifying operands. Cycles are deliberately
    /// omitted so timing-model tweaks do not churn golden sequences.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TraceEvent::StoreCommit {
                core,
                block,
                seq,
                persistent,
                ..
            } => {
                let p = if persistent { " p" } else { "" };
                write!(f, "store_commit c{core} b{:#x} s{seq}{p}", block.index())
            }
            TraceEvent::StoreVisible {
                core, block, seq, ..
            } => {
                write!(f, "store_visible c{core} b{:#x} s{seq}", block.index())
            }
            TraceEvent::PersistAlloc {
                core,
                block,
                seq,
                coalesced,
                rejected,
                ..
            } => {
                let c = if coalesced { " coalesced" } else { "" };
                let r = if rejected { " rejected" } else { "" };
                write!(
                    f,
                    "persist_alloc c{core} b{:#x} s{seq}{c}{r}",
                    block.index()
                )
            }
            TraceEvent::PbDrain {
                core,
                block,
                forced,
                ..
            } => {
                let fr = if forced { " forced" } else { "" };
                write!(f, "pb_drain c{core} b{:#x}{fr}", block.index())
            }
            TraceEvent::PbMove {
                from, to, block, ..
            } => {
                write!(f, "pb_move c{from}->c{to} b{:#x}", block.index())
            }
            TraceEvent::L1Evict { core, block, .. } => {
                write!(f, "l1_evict c{core} b{:#x}", block.index())
            }
            TraceEvent::LlcEvict {
                block,
                dirty,
                suppressed,
                ..
            } => {
                let d = if dirty { " dirty" } else { "" };
                let s = if suppressed { " suppressed" } else { "" };
                write!(f, "llc_evict b{:#x}{d}{s}", block.index())
            }
            TraceEvent::NvmmWrite {
                block, coalesced, ..
            } => {
                let c = if coalesced { " coalesced" } else { "" };
                write!(f, "nvmm_write b{:#x}{c}", block.index())
            }
            TraceEvent::EpochBarrier { core, .. } => write!(f, "epoch_barrier c{core}"),
            TraceEvent::Flush {
                core,
                block,
                wrote_back,
                ..
            } => {
                let wb = if wrote_back { " wb" } else { "" };
                write!(f, "flush c{core} b{:#x}{wb}", block.index())
            }
            TraceEvent::LoadCommit { core, block, .. } => {
                write!(f, "load_commit c{core} b{:#x}", block.index())
            }
            TraceEvent::Crash { battery_ok, .. } => {
                let b = if battery_ok { "battery" } else { "no-battery" };
                write!(f, "crash {b}")
            }
        }
    }
}

/// An owned, cloneable event recorder.
///
/// Disabled by default; [`TraceLog::push`] is a no-op until
/// [`TraceLog::set_enabled`] turns recording on.
///
/// # Examples
///
/// ```
/// use bbb_sim::{BlockAddr, TraceEvent, TraceLog};
///
/// let mut log = TraceLog::default();
/// log.push(TraceEvent::EpochBarrier { core: 0, cycle: 10 });
/// assert!(log.is_empty(), "disabled logs drop events");
/// log.set_enabled(true);
/// log.push(TraceEvent::EpochBarrier { core: 0, cycle: 10 });
/// assert_eq!(log.take().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Turns recording on or off. Turning it off keeps already-recorded
    /// events.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True when `push` records.
    #[must_use]
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` if the log is enabled.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Removes and returns every recorded event (in recording order).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Recorded events so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Merges per-component logs into one cycle-ordered stream.
///
/// The sort is stable, so events recorded by the same component at the
/// same cycle keep their recording order, and ties across components keep
/// the caller's log order (pass logs upstream-first: core pipeline,
/// persist buffers, memory controller).
#[must_use]
pub fn merge_logs(logs: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = logs.into_iter().flatten().collect();
    all.sort_by_key(TraceEvent::cycle);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockAddr;

    fn ev(cycle: Cycle, core: usize) -> TraceEvent {
        TraceEvent::EpochBarrier { core, cycle }
    }

    #[test]
    fn disabled_log_drops_events() {
        let mut log = TraceLog::default();
        log.push(ev(1, 0));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_records_and_takes() {
        let mut log = TraceLog::default();
        log.set_enabled(true);
        log.push(ev(1, 0));
        log.push(ev(2, 1));
        assert_eq!(log.len(), 2);
        let events = log.take();
        assert_eq!(events.len(), 2);
        assert!(log.is_empty(), "take drains the log");
        assert!(log.is_enabled(), "take keeps recording on");
    }

    #[test]
    fn clone_forks_the_log() {
        let mut log = TraceLog::default();
        log.set_enabled(true);
        log.push(ev(1, 0));
        let mut fork = log.clone();
        fork.push(ev(2, 0));
        assert_eq!(log.len(), 1, "parent unaffected by fork's push");
        assert_eq!(fork.len(), 2);
    }

    #[test]
    fn merge_is_cycle_ordered_and_stable() {
        let a = vec![ev(5, 0), ev(5, 1), ev(9, 0)];
        let b = vec![ev(1, 2), ev(5, 2)];
        let merged = merge_logs(vec![a, b]);
        let cycles: Vec<Cycle> = merged.iter().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![1, 5, 5, 5, 9]);
        // Stability: within cycle 5, log `a`'s events precede log `b`'s.
        let cores: Vec<usize> = merged
            .iter()
            .filter_map(|e| match e {
                TraceEvent::EpochBarrier { core, cycle: 5 } => Some(*core),
                _ => None,
            })
            .collect();
        assert_eq!(cores, vec![0, 1, 2]);
    }

    #[test]
    fn display_is_compact_and_cycle_free() {
        let e = TraceEvent::StoreCommit {
            core: 3,
            block: BlockAddr::from_index(0x10),
            seq: 7,
            persistent: true,
            cycle: 999,
        };
        assert_eq!(e.to_string(), "store_commit c3 b0x10 s7 p");
        assert!(!e.to_string().contains("999"));
        assert_eq!(e.kind(), "store_commit");
        assert_eq!(e.cycle(), 999);
    }
}

//! Deterministic pseudo-random numbers for reproducible simulations.
//!
//! Simulators need bit-identical runs across machines and crate upgrades, so
//! instead of depending on `rand` at runtime we carry a tiny SplitMix64
//! implementation (Steele, Lea & Flood's finalizer; the same generator used
//! to seed xoshiro). It is statistically strong enough for workload address
//! generation, which is all we use it for.

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use bbb_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for all practical simulation purposes.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)` using Lemire's
    /// multiply-shift reduction (bias is negligible at 64 bits).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly random `usize` index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }

    /// Derives an independent child generator; handy for giving each
    /// simulated core its own stream from one master seed.
    pub fn split(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_reference_values() {
        // Reference outputs for seed 1234567 from the canonical SplitMix64.
        let mut r = SplitMix64::new(1_234_567);
        assert_eq!(r.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(r.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn bounded_values_cover_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = SplitMix64::new(11);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SplitMix64::new(2024);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.next_index(10)] += 1;
        }
        for &b in &buckets {
            // Each bucket within 5% of the expected 10k.
            assert!((9_500..=10_500).contains(&b), "bucket count {b}");
        }
    }
}

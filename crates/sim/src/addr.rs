//! Physical addresses, cache-block addresses, and the machine address map.
//!
//! The simulated machine has a flat physical address space split between a
//! DRAM region and an NVMM region (paper Fig. 4), each 8 GB by default. A
//! sub-range of the NVMM region is the *persistent heap*: pages allocated by
//! `palloc` live there, and a store is a **persisting store** exactly when
//! its address falls inside that range (paper §III-A: persisting stores are
//! distinguished by the pages they access, not by special instructions).

use crate::config::SimConfig;

/// Base-2 log of the cache block size (64-byte blocks).
pub const BLOCK_SHIFT: u32 = 6;

/// Cache block size in bytes (paper Table III: 64 B).
pub const BLOCK_BYTES: usize = 1 << BLOCK_SHIFT;

/// A byte-granular physical address.
pub type Addr = u64;

/// A cache-block-aligned address, used as the key for every cache, bbPB, and
/// WPQ structure in the simulator.
///
/// The wrapped value is the *block number* (address >> [`BLOCK_SHIFT`]), not
/// the byte address; use [`BlockAddr::base`] to recover the byte address.
///
/// # Examples
///
/// ```
/// use bbb_sim::{Addr, BlockAddr};
/// let a: Addr = 0x1234;
/// let b = BlockAddr::containing(a);
/// assert_eq!(b.base(), 0x1200);
/// assert_eq!(b.offset_of(a), 0x34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Returns the block containing byte address `addr`.
    #[must_use]
    pub const fn containing(addr: Addr) -> Self {
        Self(addr >> BLOCK_SHIFT)
    }

    /// Creates a block address directly from a block number.
    #[must_use]
    pub const fn from_index(index: u64) -> Self {
        Self(index)
    }

    /// The block number (byte address >> [`BLOCK_SHIFT`]).
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first byte address of this block.
    #[must_use]
    pub const fn base(self) -> Addr {
        self.0 << BLOCK_SHIFT
    }

    /// The byte offset of `addr` within this block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is not inside this block.
    #[must_use]
    pub fn offset_of(self, addr: Addr) -> usize {
        debug_assert_eq!(Self::containing(addr), self, "address not in block");
        (addr - self.base()) as usize
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk:{:#x}", self.base())
    }
}

/// Which physical region an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Volatile DRAM.
    Dram,
    /// Non-volatile main memory outside the persistent heap (data placed in
    /// NVMM that the program does not require to be crash-consistent).
    NvmmVolatile,
    /// The persistent heap inside NVMM; stores here are persisting stores.
    NvmmPersistent,
}

impl Region {
    /// True for both NVMM sub-regions.
    #[must_use]
    pub const fn is_nvmm(self) -> bool {
        matches!(self, Region::NvmmVolatile | Region::NvmmPersistent)
    }
}

/// The machine's physical address map (paper Fig. 4).
///
/// Layout: `[0, dram_bytes)` is DRAM; `[dram_bytes, dram_bytes + nvmm_bytes)`
/// is NVMM; the persistent heap is a prefix of the NVMM range starting at
/// [`AddressMap::persistent_base`].
///
/// # Examples
///
/// ```
/// use bbb_sim::{AddressMap, SimConfig, Region};
/// let map = AddressMap::new(&SimConfig::default());
/// assert_eq!(map.region_of(0), Region::Dram);
/// assert_eq!(map.region_of(map.persistent_base()), Region::NvmmPersistent);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    dram_bytes: u64,
    nvmm_bytes: u64,
    persistent_bytes: u64,
}

impl AddressMap {
    /// Builds the map from a simulator configuration.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> Self {
        Self {
            dram_bytes: cfg.dram_bytes,
            nvmm_bytes: cfg.nvmm_bytes,
            persistent_bytes: cfg.persistent_heap_bytes.min(cfg.nvmm_bytes),
        }
    }

    /// First NVMM byte address (== DRAM size).
    #[must_use]
    pub const fn nvmm_base(&self) -> Addr {
        self.dram_bytes
    }

    /// One past the last valid physical address.
    #[must_use]
    pub const fn end(&self) -> Addr {
        self.dram_bytes + self.nvmm_bytes
    }

    /// First byte of the persistent heap.
    ///
    /// The heap is placed at the start of the NVMM range.
    #[must_use]
    pub const fn persistent_base(&self) -> Addr {
        self.dram_bytes
    }

    /// One past the last persistent-heap byte.
    #[must_use]
    pub const fn persistent_end(&self) -> Addr {
        self.dram_bytes + self.persistent_bytes
    }

    /// Classifies a byte address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the physical address space.
    #[must_use]
    pub fn region_of(&self, addr: Addr) -> Region {
        assert!(
            addr < self.end(),
            "address {addr:#x} outside physical memory"
        );
        if addr < self.dram_bytes {
            Region::Dram
        } else if addr < self.persistent_end() {
            Region::NvmmPersistent
        } else {
            Region::NvmmVolatile
        }
    }

    /// True if `addr` lies anywhere in NVMM.
    #[must_use]
    pub fn is_nvmm(&self, addr: Addr) -> bool {
        self.region_of(addr).is_nvmm()
    }

    /// True if `addr` lies in the persistent heap, i.e. stores to it are
    /// persisting stores that must enter the persistence domain.
    #[must_use]
    pub fn is_persistent(&self, addr: Addr) -> bool {
        self.region_of(addr) == Region::NvmmPersistent
    }

    /// True if every byte of `block` lies in the persistent heap.
    ///
    /// Blocks never straddle the region boundary in practice because the
    /// regions are block-aligned, so checking the base byte suffices.
    #[must_use]
    pub fn is_persistent_block(&self, block: BlockAddr) -> bool {
        self.is_persistent(block.base())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(&SimConfig::default())
    }

    #[test]
    fn block_alignment() {
        let b = BlockAddr::containing(0x1fff);
        assert_eq!(b.base(), 0x1fc0);
        assert_eq!(b.base() % BLOCK_BYTES as u64, 0);
        assert_eq!(BlockAddr::containing(b.base()), b);
    }

    #[test]
    fn block_index_round_trip() {
        let b = BlockAddr::from_index(42);
        assert_eq!(b.index(), 42);
        assert_eq!(b.base(), 42 * BLOCK_BYTES as u64);
    }

    #[test]
    fn regions_partition_space() {
        let m = map();
        assert_eq!(m.region_of(0), Region::Dram);
        assert_eq!(m.region_of(m.nvmm_base() - 1), Region::Dram);
        assert_eq!(m.region_of(m.nvmm_base()), Region::NvmmPersistent);
        assert_eq!(m.region_of(m.persistent_end() - 1), Region::NvmmPersistent);
        assert_eq!(m.region_of(m.persistent_end()), Region::NvmmVolatile);
        assert_eq!(m.region_of(m.end() - 1), Region::NvmmVolatile);
    }

    #[test]
    #[should_panic(expected = "outside physical memory")]
    fn out_of_range_panics() {
        let m = map();
        let _ = m.region_of(m.end());
    }

    #[test]
    fn persistent_predicates_agree() {
        let m = map();
        let a = m.persistent_base() + 128;
        assert!(m.is_persistent(a));
        assert!(m.is_nvmm(a));
        assert!(m.is_persistent_block(BlockAddr::containing(a)));
        assert!(!m.is_persistent(0));
    }

    #[test]
    fn persistent_heap_clamped_to_nvmm() {
        let cfg = SimConfig {
            persistent_heap_bytes: u64::MAX,
            ..SimConfig::default()
        };
        let m = AddressMap::new(&cfg);
        assert_eq!(m.persistent_end(), m.end());
    }

    #[test]
    fn display_shows_base() {
        let b = BlockAddr::containing(0x1240);
        assert_eq!(format!("{b}"), "blk:0x1240");
    }
}

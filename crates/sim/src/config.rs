//! Simulated-machine configuration (paper Table III plus BBB parameters).
//!
//! [`SimConfig::default`] reproduces the paper's evaluated machine: 8
//! out-of-order cores at 2 GHz with 8-wide issue/retire, ROB 192, LSQ 32,
//! private 128 kB L1s, a shared 1 MB L2 (the LLC), hybrid 8 GB DRAM +
//! 8 GB NVMM main memory, and a 32-entry bbPB per core with a 75% drain
//! threshold.

use crate::clock::ns_to_cycles;
use crate::Cycle;

/// Kibibyte multiplier for readable cache-size constants.
pub const KIB: u64 = 1024;
/// Mebibyte multiplier.
pub const MIB: u64 = 1024 * KIB;
/// Gibibyte multiplier.
pub const GIB: u64 = 1024 * MIB;

/// Per-core pipeline parameters (paper Table III, "Processor" row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Maximum instructions dispatched into the ROB per cycle.
    pub issue_width: usize,
    /// Maximum instructions retired per cycle.
    pub retire_width: usize,
    /// Reorder-buffer capacity.
    pub rob_entries: usize,
    /// Load/store-queue capacity.
    pub lsq_entries: usize,
    /// Post-commit store-buffer capacity.
    pub store_buffer_entries: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            issue_width: 8,
            retire_width: 8,
            rob_entries: 192,
            lsq_entries: 32,
            store_buffer_entries: 32,
        }
    }
}

/// One cache level's geometry and access latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit/access latency in cycles.
    pub latency: Cycle,
}

impl CacheConfig {
    /// Number of 64-byte blocks this cache holds.
    #[must_use]
    pub fn blocks(&self) -> usize {
        (self.capacity_bytes / crate::BLOCK_BYTES as u64) as usize
    }

    /// Number of sets (`blocks / ways`).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of `ways` blocks.
    #[must_use]
    pub fn sets(&self) -> usize {
        let blocks = self.blocks();
        assert_eq!(
            blocks % self.ways,
            0,
            "capacity must divide evenly into ways"
        );
        blocks / self.ways
    }
}

/// Main-memory timing (paper Table III, DRAM and NVMM rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemTiming {
    /// DRAM read/write latency in cycles (55 ns).
    pub dram_access: Cycle,
    /// NVMM read latency in cycles (150 ns).
    pub nvmm_read: Cycle,
    /// NVMM write latency in cycles (500 ns).
    pub nvmm_write: Cycle,
    /// Entries in the NVMM controller's write-pending queue (the ADR
    /// persistence domain of the baseline machine).
    pub wpq_entries: usize,
    /// Independent NVMM banks that service requests in parallel (one
    /// 64-byte write per bank per 500 ns). 32 banks sustain ~4 GB/s of
    /// writes — sized so the WPQ absorbs the paper's worst-case
    /// back-to-back persist rate, as implied by eADR (and BBB-32) running
    /// without write-bandwidth stalls in the paper's results.
    pub nvmm_channels: usize,
}

impl Default for MemTiming {
    fn default() -> Self {
        Self {
            dram_access: ns_to_cycles(55),
            nvmm_read: ns_to_cycles(150),
            nvmm_write: ns_to_cycles(500),
            wpq_entries: 64,
            nvmm_channels: 32,
        }
    }
}

/// When the bbPB drains entries to NVMM (paper §III-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainPolicy {
    /// Watermark draining (the paper's policy): when the buffer fills, a
    /// burst drains least-recently-written entries until occupancy falls
    /// back to `threshold_pct` percent of capacity (75% is the evaluated
    /// default). Every entry stays coalescable until the buffer is
    /// genuinely out of room, so the whole capacity acts as the
    /// coalescing window.
    Threshold {
        /// Occupancy percentage (0–100] a drain burst empties down to.
        threshold_pct: u8,
    },
    /// Drain whenever the buffer is non-empty. An ablation point: loses
    /// coalescing opportunities, increasing NVMM writes.
    Eager,
}

impl DrainPolicy {
    /// The paper's default: a 75% drain threshold.
    #[must_use]
    pub const fn paper_default() -> Self {
        DrainPolicy::Threshold { threshold_pct: 75 }
    }

    /// Number of occupied entries (resident plus drains in flight) at
    /// which a drain burst begins, for a buffer of `capacity` entries.
    #[must_use]
    pub fn trigger_level(&self, capacity: usize) -> usize {
        match *self {
            DrainPolicy::Eager => 1,
            DrainPolicy::Threshold { .. } => capacity.max(1),
        }
    }

    /// Number of *resident* entries a drain burst stops at.
    #[must_use]
    pub fn stop_level(&self, capacity: usize) -> usize {
        match *self {
            DrainPolicy::Eager => 0,
            DrainPolicy::Threshold { threshold_pct } => {
                (capacity * usize::from(threshold_pct)) / 100
            }
        }
    }
}

/// Battery-backed persist buffer parameters (paper §III, §V-D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbpbConfig {
    /// Entries per core (64-byte blocks for the memory-side design,
    /// individual stores for the processor-side design). Paper default: 32.
    pub entries: usize,
    /// Draining policy; paper default is 75% threshold.
    pub drain_policy: DrainPolicy,
    /// Cycles a draining entry stays occupied before its slot frees: the
    /// core-to-memory-controller round trip of the drain packet (plus WPQ
    /// backpressure when the queue is full). This is what makes very small
    /// bbPBs reject bursts of persisting stores (paper Fig. 8(a)).
    pub drain_latency: Cycle,
}

impl Default for BbpbConfig {
    fn default() -> Self {
        Self {
            entries: 32,
            drain_policy: DrainPolicy::paper_default(),
            drain_latency: 64,
        }
    }
}

/// Complete configuration of the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of cores (paper: 8).
    pub cores: usize,
    /// Per-core pipeline parameters.
    pub core: CoreConfig,
    /// Private L1 data cache (128 kB, 8-way, 2 cycles).
    pub l1d: CacheConfig,
    /// Shared L2, the LLC (1 MB, 8-way, 11 cycles).
    pub l2: CacheConfig,
    /// Main-memory timing.
    pub mem: MemTiming,
    /// bbPB geometry and drain policy.
    pub bbpb: BbpbConfig,
    /// DRAM capacity in bytes (8 GB).
    pub dram_bytes: u64,
    /// NVMM capacity in bytes (8 GB).
    pub nvmm_bytes: u64,
    /// Size of the persistent heap carved out of NVMM.
    pub persistent_heap_bytes: u64,
    /// Interconnect hop latency between a core and the shared L2, and
    /// between the L2 and a memory controller, in cycles.
    pub noc_hop: Cycle,
    /// Battery-back the store buffer so PoP moves up to store commit
    /// (required for program-order persistency under relaxed consistency,
    /// paper §III-C). On by default, matching the paper's design.
    pub battery_backed_sb: bool,
    /// Model relaxed consistency: the store buffer may write ready stores to
    /// the L1D out of program order. Off by default (TSO).
    pub relaxed_sb_drain: bool,
    /// BBB endurance optimization (paper §III-B): drop dirty persistent
    /// LLC evictions instead of writing them back (the bbPB has or had the
    /// line). On by default; turning it off is an ablation point.
    pub suppress_persistent_writebacks: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cores: 8,
            core: CoreConfig::default(),
            l1d: CacheConfig {
                capacity_bytes: 128 * KIB,
                ways: 8,
                latency: 2,
            },
            l2: CacheConfig {
                capacity_bytes: MIB,
                ways: 8,
                latency: 11,
            },
            mem: MemTiming::default(),
            bbpb: BbpbConfig::default(),
            dram_bytes: 8 * GIB,
            nvmm_bytes: 8 * GIB,
            persistent_heap_bytes: GIB,
            noc_hop: 4,
            battery_backed_sb: true,
            relaxed_sb_drain: false,
            suppress_persistent_writebacks: true,
        }
    }
}

impl SimConfig {
    /// A scaled-down machine for unit tests: tiny caches and buffers so
    /// evictions, rejections, and drains happen within a few hundred
    /// operations instead of millions.
    #[must_use]
    pub fn small_for_tests() -> Self {
        Self {
            cores: 2,
            l1d: CacheConfig {
                capacity_bytes: 2 * KIB,
                ways: 2,
                latency: 2,
            },
            l2: CacheConfig {
                capacity_bytes: 8 * KIB,
                ways: 4,
                latency: 11,
            },
            bbpb: BbpbConfig {
                entries: 4,
                drain_policy: DrainPolicy::paper_default(),
                drain_latency: 64,
            },
            dram_bytes: MIB,
            nvmm_bytes: MIB,
            persistent_heap_bytes: 512 * KIB,
            ..Self::default()
        }
    }

    /// Validates internal consistency, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any structural parameter is zero, a cache geometry
    /// does not divide evenly, or the L2 is smaller than one core's L1D
    /// (the inclusion invariant would be unsatisfiable).
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be > 0".into());
        }
        if self.bbpb.entries == 0 {
            return Err("bbPB must have at least one entry".into());
        }
        if self.core.store_buffer_entries == 0 || self.core.rob_entries == 0 {
            return Err("core buffers must be non-empty".into());
        }
        for (name, c) in [("l1d", &self.l1d), ("l2", &self.l2)] {
            if c.ways == 0 || c.capacity_bytes == 0 {
                return Err(format!("{name}: ways and capacity must be > 0"));
            }
            let blocks = c.blocks();
            if blocks == 0 || blocks % c.ways != 0 {
                return Err(format!("{name}: capacity must divide into ways"));
            }
        }
        if self.l2.capacity_bytes < self.l1d.capacity_bytes {
            return Err("L2 must be at least as large as one L1D (inclusion)".into());
        }
        if let DrainPolicy::Threshold { threshold_pct } = self.bbpb.drain_policy {
            if threshold_pct == 0 || threshold_pct > 100 {
                return Err("drain threshold must be in (0, 100]".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table3() {
        let c = SimConfig::default();
        assert_eq!(c.cores, 8);
        assert_eq!(c.core.issue_width, 8);
        assert_eq!(c.core.rob_entries, 192);
        assert_eq!(c.core.lsq_entries, 32);
        assert_eq!(c.l1d.capacity_bytes, 128 * KIB);
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.l1d.latency, 2);
        assert_eq!(c.l2.capacity_bytes, MIB);
        assert_eq!(c.l2.latency, 11);
        assert_eq!(c.mem.dram_access, 110);
        assert_eq!(c.mem.nvmm_read, 300);
        assert_eq!(c.mem.nvmm_write, 1000);
        assert_eq!(c.bbpb.entries, 32);
        assert_eq!(
            c.bbpb.drain_policy,
            DrainPolicy::Threshold { threshold_pct: 75 }
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cache_geometry() {
        let c = SimConfig::default();
        assert_eq!(c.l1d.blocks(), 2048);
        assert_eq!(c.l1d.sets(), 256);
        assert_eq!(c.l2.blocks(), 16384);
        assert_eq!(c.l2.sets(), 2048);
    }

    #[test]
    fn drain_threshold_levels() {
        let p = DrainPolicy::paper_default();
        assert_eq!(p.trigger_level(32), 32); // bursts begin when full
        assert_eq!(p.stop_level(32), 24); // ... and empty down to 75%
        assert_eq!(p.stop_level(4), 3);
        assert_eq!(p.stop_level(1), 0); // a 1-entry buffer drains fully
        assert_eq!(DrainPolicy::Eager.trigger_level(32), 1);
        assert_eq!(DrainPolicy::Eager.stop_level(32), 0);
        // A 1% threshold on a tiny buffer drains (almost) everything.
        assert_eq!(DrainPolicy::Threshold { threshold_pct: 1 }.stop_level(4), 0);
    }

    #[test]
    fn small_config_is_valid() {
        assert!(SimConfig::small_for_tests().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let c = SimConfig {
            cores: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.bbpb.entries = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.l1d.ways = 3; // 2048 blocks % 3 != 0
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.l2.capacity_bytes = 64 * KIB; // smaller than L1D
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.bbpb.drain_policy = DrainPolicy::Threshold { threshold_pct: 0 };
        assert!(c.validate().is_err());
    }
}

//! Fast, deterministic hashing for simulator-internal maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant — properties the simulator's internal maps do not need,
//! at a cost that dominates the hot paths that *do* need a map lookup per
//! access: the sparse page store behind every memory read, the WPQ entry
//! table, and the persist-state holder index. [`FxHasher`] is the
//! multiply-and-rotate hash used by rustc's `FxHashMap`: one `u64`
//! multiply per word of input, unkeyed, and therefore also *stable across
//! processes and runs* — a property the crash-point sweeps' bit-identical
//! determinism contract is entitled to rely on.
//!
//! No map whose iteration order reaches observable output may use this
//! (or any) `HashMap` directly; the simulator's rule — iterate in sorted
//! or insertion order when the result is observable — is unchanged.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-style Fx hash state. One multiply per written word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// 64-bit Fx multiplier (the fractional bits of the golden ratio).
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.add_to_hash(u64::from_le_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the fast, unkeyed [`FxHasher`]. Use for
/// simulator-internal lookups on hot paths; never iterate one into
/// observable output.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` over [`FxHasher`], same caveats as [`FxHashMap`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(b"bbb"), hash_of(b"bbb"));
        let mut a = FxHasher::default();
        a.write_u64(0x1234);
        let mut b = FxHasher::default();
        b.write_u64(0x1234);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_basic_inputs() {
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
        assert_ne!(hash_of(b"ab"), hash_of(b"ba"));
        assert_ne!(hash_of(&[0]), hash_of(&[0, 0]));
        let mut h = FxHasher::default();
        h.write_u64(1);
        let mut g = FxHasher::default();
        g.write_u64(2);
        assert_ne!(h.finish(), g.finish());
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.remove(&7), Some(14));
        assert!(!m.contains_key(&7));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(3);
        assert!(s.contains(&3));
    }

    #[test]
    fn page_index_keys_spread() {
        // The page store keys maps by `addr >> 12`; sequential page
        // indices must not collide in the low bits the table uses.
        let hashes: Vec<u64> = (0u64..64)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u64(i);
                h.finish()
            })
            .collect();
        let mut low7: Vec<u64> = hashes.iter().map(|h| h >> 57).collect();
        low7.sort_unstable();
        low7.dedup();
        assert!(low7.len() > 32, "top bits too clustered: {}", low7.len());
    }
}

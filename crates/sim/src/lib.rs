//! Simulation kernel for the BBB (Battery-Backed Buffers) reproduction.
//!
//! This crate holds the pieces every other crate in the workspace builds on:
//!
//! * [`Cycle`] arithmetic and the 2 GHz clock conversions used throughout the
//!   paper's configuration (ns ↔ cycles),
//! * the physical [`AddressMap`] splitting the flat address space into DRAM,
//!   NVMM, and the persistent heap,
//! * the [`SimConfig`] describing the simulated machine (paper Table III),
//! * a deterministic [`SplitMix64`] PRNG so runs are bit-reproducible,
//! * lightweight [`stats`] counters, and
//! * an ASCII [`table`] renderer the benchmark harness uses to print the
//!   paper's tables and figure series.
//!
//! # Examples
//!
//! ```
//! use bbb_sim::{SimConfig, AddressMap};
//!
//! let cfg = SimConfig::default();
//! assert_eq!(cfg.cores, 8);
//! let map = AddressMap::new(&cfg);
//! assert!(map.is_nvmm(map.persistent_base()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod clock;
pub mod config;
pub mod hash;
pub mod port;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod table;
pub mod trace;
pub mod zipf;

pub use addr::{Addr, AddressMap, BlockAddr, Region, BLOCK_BYTES, BLOCK_SHIFT};
pub use clock::{Cycle, CLOCK_GHZ};
pub use config::{BbpbConfig, CacheConfig, CoreConfig, DrainPolicy, MemTiming, SimConfig};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use port::MemoryPort;
pub use rng::SplitMix64;
pub use sched::{EventKind, EventQueue, SchedProfile};
pub use stats::{Counter, Histogram, LatencyHistogram, Stats};
pub use table::Table;
pub use trace::{merge_logs, TraceEvent, TraceLog};
pub use zipf::ZipfSampler;

// Experiment points run off-thread in the experiment runner: the
// configuration crosses into workers and the stats snapshot crosses back.
// Both are plain owned data; keep that checked at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + Clone>() {}
    assert_send_sync::<SimConfig>();
    assert_send_sync::<Stats>();
};

//! Private L1 data cache.
//!
//! Thin wrapper around a [`SetAssocArray`] of [`L1Line`]s with the small
//! state-manipulation operations the protocol needs. All coherence policy
//! lives in [`crate::hierarchy`]; the L1 itself only stores lines.

use bbb_sim::{BlockAddr, CacheConfig, BLOCK_BYTES};

use crate::array::SetAssocArray;
use crate::block::{L1Line, Mesi};

/// One core's private L1 data cache.
///
/// # Examples
///
/// ```
/// use bbb_cache::l1::L1Cache;
/// use bbb_cache::Mesi;
/// use bbb_sim::{BlockAddr, CacheConfig};
///
/// let cfg = CacheConfig { capacity_bytes: 2048, ways: 2, latency: 2 };
/// let mut l1 = L1Cache::new(&cfg);
/// let b = BlockAddr::from_index(1);
/// l1.fill(b, Mesi::E, [0; 64], false);
/// assert_eq!(l1.state_of(b), Mesi::E);
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    lines: SetAssocArray<L1Line>,
}

impl L1Cache {
    /// Builds an L1 from its configuration.
    #[must_use]
    pub fn new(cfg: &CacheConfig) -> Self {
        Self {
            lines: SetAssocArray::new(cfg.sets(), cfg.ways),
        }
    }

    /// Current MESI state of `block` ([`Mesi::I`] if absent).
    #[must_use]
    pub fn state_of(&self, block: BlockAddr) -> Mesi {
        self.lines.get(block).map_or(Mesi::I, |l| l.state)
    }

    /// Looks up a line, refreshing LRU.
    pub fn touch(&mut self, block: BlockAddr) -> Option<&mut L1Line> {
        self.lines.get_touch(block)
    }

    /// Looks up a line without LRU update.
    #[must_use]
    pub fn peek(&self, block: BlockAddr) -> Option<&L1Line> {
        self.lines.get(block)
    }

    /// Mutable lookup without LRU update.
    pub fn peek_mut(&mut self, block: BlockAddr) -> Option<&mut L1Line> {
        self.lines.get_mut(block)
    }

    /// Installs a block, returning the evicted victim line if the set was
    /// full. The victim's data must be written back to the L2 by the caller
    /// if it is in [`Mesi::M`].
    pub fn fill(
        &mut self,
        block: BlockAddr,
        state: Mesi,
        data: [u8; BLOCK_BYTES],
        persistent: bool,
    ) -> Option<L1Line> {
        debug_assert_ne!(state, Mesi::I, "cannot fill an invalid line");
        self.lines
            .insert(block, L1Line::new(block, state, data, persistent))
            .map(|(_, line)| line)
    }

    /// Invalidates a block, returning the removed line (with its data, which
    /// matters when it was in M).
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<L1Line> {
        self.lines.remove(block)
    }

    /// Downgrades an M/E line to S, returning a copy of its data (the
    /// intervention response payload).
    ///
    /// # Panics
    ///
    /// Panics if the block is not present.
    pub fn downgrade_to_shared(&mut self, block: BlockAddr) -> [u8; BLOCK_BYTES] {
        let line = self.lines.get_mut(block).expect("downgrade of absent line");
        line.state = Mesi::S;
        line.data
    }

    /// The block an incoming fill would evict, if any.
    #[must_use]
    pub fn victim_for(&self, block: BlockAddr) -> Option<BlockAddr> {
        self.lines.victim_for(block)
    }

    /// Iterates all valid lines (crash draining under eADR).
    pub fn iter(&self) -> impl Iterator<Item = &L1Line> {
        self.lines.iter().map(|(_, l)| l)
    }

    /// Number of valid lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when the cache holds no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> L1Cache {
        L1Cache::new(&CacheConfig {
            capacity_bytes: 2048,
            ways: 2,
            latency: 2,
        })
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn fill_and_state() {
        let mut l1 = cache();
        assert_eq!(l1.state_of(b(0)), Mesi::I);
        l1.fill(b(0), Mesi::E, [1; 64], true);
        assert_eq!(l1.state_of(b(0)), Mesi::E);
        assert!(l1.peek(b(0)).unwrap().persistent);
        assert_eq!(l1.len(), 1);
        assert!(!l1.is_empty());
    }

    #[test]
    fn invalidate_returns_data() {
        let mut l1 = cache();
        l1.fill(b(0), Mesi::M, [7; 64], false);
        let line = l1.invalidate(b(0)).unwrap();
        assert_eq!(line.data, [7; 64]);
        assert_eq!(line.state, Mesi::M);
        assert_eq!(l1.state_of(b(0)), Mesi::I);
        assert!(l1.invalidate(b(0)).is_none());
    }

    #[test]
    fn downgrade_keeps_line_shared() {
        let mut l1 = cache();
        l1.fill(b(3), Mesi::M, [9; 64], true);
        let data = l1.downgrade_to_shared(b(3));
        assert_eq!(data, [9; 64]);
        assert_eq!(l1.state_of(b(3)), Mesi::S);
    }

    #[test]
    #[should_panic(expected = "absent line")]
    fn downgrade_absent_panics() {
        let mut l1 = cache();
        l1.downgrade_to_shared(b(1));
    }

    #[test]
    fn eviction_on_conflict() {
        // 2048 B / 64 B = 32 blocks, 2 ways => 16 sets. Blocks 0, 16, 32
        // collide in set 0.
        let mut l1 = cache();
        l1.fill(b(0), Mesi::E, [0; 64], false);
        l1.fill(b(16), Mesi::E, [1; 64], false);
        assert_eq!(l1.victim_for(b(32)), Some(b(0)));
        let victim = l1.fill(b(32), Mesi::E, [2; 64], false).unwrap();
        assert_eq!(victim.block, b(0));
    }
}

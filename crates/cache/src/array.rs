//! Generic set-associative storage with LRU replacement.
//!
//! Both cache levels store their lines in a [`SetAssocArray`]; the payload
//! type differs (L1 lines vs L2 lines-with-directory) but lookup, insertion,
//! and LRU victim selection are identical.

use bbb_sim::BlockAddr;

/// A set-associative array of `T` payloads indexed by [`BlockAddr`], with
/// true-LRU replacement within each set.
///
/// Storage is struct-of-arrays: tags, LRU stamps, and payloads live in
/// separate dense lanes indexed by `set * ways + way`. A tag probe — the
/// operation every cache access starts with — scans only the `tags` lane,
/// so an 8-way set costs one 64-byte cache line instead of striding over
/// interleaved (tag, stamp, payload) records whose payloads (64-byte data
/// blocks) push each way onto its own line.
///
/// # Examples
///
/// ```
/// use bbb_cache::SetAssocArray;
/// use bbb_sim::BlockAddr;
///
/// let mut a: SetAssocArray<u32> = SetAssocArray::new(2, 2);
/// let b0 = BlockAddr::from_index(0);
/// assert!(a.insert(b0, 10).is_none()); // no victim
/// assert_eq!(a.get(b0), Some(&10));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocArray<T> {
    sets: usize,
    ways: usize,
    /// Tag lane: the resident block's index, or [`INVALID_TAG`] for an
    /// invalid way. Invariant: `tags[i] == INVALID_TAG` iff
    /// `payloads[i].is_none()`.
    tags: Vec<u64>,
    /// LRU stamp lane (monotonic use ticks; larger = more recent).
    last_use: Vec<u64>,
    /// Payload lane; `None` = invalid way.
    payloads: Vec<Option<T>>,
    /// Monotonic use stamp for LRU.
    tick: u64,
    /// Occupancy bitset, one bit per slot (bit `i % 64` of word `i / 64`).
    /// Whole-array walks ([`SetAssocArray::iter`]) scan these words and
    /// emit set bits in ascending slot order — no per-walk sort, and a
    /// mostly-empty array costs O(words + valid) instead of striding over
    /// every way.
    occupied_words: Vec<u64>,
    /// Number of set bits in `occupied_words` (valid lines).
    valid: usize,
}

/// Tag sentinel for an invalid way. Real block indices never reach it:
/// the address map bounds block indices far below `u64::MAX`.
const INVALID_TAG: u64 = u64::MAX;

impl<T> SetAssocArray<T> {
    /// Creates an array of `sets` sets × `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or `sets` is not a power of two
    /// (block index bits select the set).
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "geometry must be non-zero");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let mut payloads = Vec::with_capacity(sets * ways);
        payloads.resize_with(sets * ways, || None);
        Self {
            sets,
            ways,
            tags: vec![INVALID_TAG; sets * ways],
            last_use: vec![0; sets * ways],
            payloads,
            tick: 0,
            occupied_words: vec![0; (sets * ways).div_ceil(64)],
            valid: 0,
        }
    }

    /// Marks slot `i` valid in the occupancy bitset.
    fn mark_occupied(&mut self, i: usize) {
        debug_assert_eq!(self.occupied_words[i / 64] >> (i % 64) & 1, 0);
        self.occupied_words[i / 64] |= 1u64 << (i % 64);
        self.valid += 1;
    }

    /// Marks slot `i` invalid in the occupancy bitset.
    fn mark_vacant(&mut self, i: usize) {
        debug_assert_eq!(self.occupied_words[i / 64] >> (i % 64) & 1, 1);
        self.occupied_words[i / 64] &= !(1u64 << (i % 64));
        self.valid -= 1;
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() as usize) & (self.sets - 1)
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The slot index holding `block`, scanning only the tag lane.
    #[inline]
    fn find(&self, block: BlockAddr) -> Option<usize> {
        let base = self.set_of(block) * self.ways;
        let tag = block.index();
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag)
            .map(|w| base + w)
    }

    /// Looks up a block, refreshing its LRU position on hit.
    pub fn get_touch(&mut self, block: BlockAddr) -> Option<&mut T> {
        let tick = self.bump();
        let i = self.find(block)?;
        self.last_use[i] = tick;
        self.payloads[i].as_mut()
    }

    /// Looks up a block without changing LRU state.
    #[must_use]
    pub fn get(&self, block: BlockAddr) -> Option<&T> {
        self.find(block).and_then(|i| self.payloads[i].as_ref())
    }

    /// Mutable lookup without changing LRU state.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let i = self.find(block)?;
        self.payloads[i].as_mut()
    }

    /// True if the block is present.
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.find(block).is_some()
    }

    /// Inserts a payload for `block`, evicting the set's LRU entry if the
    /// set is full. Returns the evicted `(block, payload)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if the block is already present — callers must update in
    /// place via [`SetAssocArray::get_touch`] instead of reinserting.
    pub fn insert(&mut self, block: BlockAddr, payload: T) -> Option<(BlockAddr, T)> {
        assert!(!self.contains(block), "duplicate insert of {block}");
        debug_assert_ne!(block.index(), INVALID_TAG, "block index hits sentinel");
        let tick = self.bump();
        let base = self.set_of(block) * self.ways;

        // Prefer an invalid way (lowest way index first, as before).
        if let Some(w) = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == INVALID_TAG)
        {
            let i = base + w;
            self.tags[i] = block.index();
            self.last_use[i] = tick;
            self.payloads[i] = Some(payload);
            self.mark_occupied(i);
            return None;
        }

        // Evict the LRU way (first minimal stamp on ties, matching the
        // old interleaved scan).
        let victim = (base..base + self.ways)
            .min_by_key(|&i| self.last_use[i])
            .expect("non-empty set");
        let old_block = BlockAddr::from_index(self.tags[victim]);
        let old = self.payloads[victim]
            .replace(payload)
            .expect("victim way was occupied");
        self.tags[victim] = block.index();
        self.last_use[victim] = tick;
        Some((old_block, old))
    }

    /// Removes a block, returning its payload.
    pub fn remove(&mut self, block: BlockAddr) -> Option<T> {
        let i = self.find(block)?;
        self.tags[i] = INVALID_TAG;
        self.mark_vacant(i);
        self.payloads[i].take()
    }

    /// The block that would be evicted if `block` were inserted now
    /// (`None` if the set still has a free way or would hit).
    #[must_use]
    pub fn victim_for(&self, block: BlockAddr) -> Option<BlockAddr> {
        if self.contains(block) {
            return None;
        }
        let base = self.set_of(block) * self.ways;
        let set = &self.tags[base..base + self.ways];
        if set.contains(&INVALID_TAG) {
            return None;
        }
        (base..base + self.ways)
            .min_by_key(|&i| self.last_use[i])
            .map(|i| BlockAddr::from_index(self.tags[i]))
    }

    /// Iterates `(block, payload)` over all valid lines in slot order
    /// (set-major, then way) — the same order the interleaved layout gave.
    ///
    /// The walk scans the occupancy bitset, whose set bits come out in
    /// ascending slot order for free: no per-walk sort or allocation.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> {
        self.occupied_words
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| {
                let mut word = word;
                std::iter::from_fn(move || {
                    if word == 0 {
                        return None;
                    }
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(w * 64 + bit)
                })
            })
            .map(|i| {
                let p = self.payloads[i]
                    .as_ref()
                    .expect("occupied slot has payload");
                (BlockAddr::from_index(self.tags[i]), p)
            })
    }

    /// Number of valid lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.valid
    }

    /// True if no line is valid.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn insert_and_lookup() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(4, 2);
        assert!(a.insert(b(0), 1).is_none());
        assert_eq!(a.get(b(0)), Some(&1));
        assert!(a.contains(b(0)));
        assert!(!a.contains(b(4)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: blocks 0, 4, 8 all map to set 0 with 4 sets? No —
        // use sets=1 so everything collides.
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 2);
        a.insert(b(0), 0);
        a.insert(b(1), 1);
        // Touch 0 so 1 becomes LRU.
        a.get_touch(b(0));
        let evicted = a.insert(b(2), 2).expect("full set evicts");
        assert_eq!(evicted, (b(1), 1));
        assert!(a.contains(b(0)) && a.contains(b(2)));
    }

    #[test]
    fn victim_prediction_matches_eviction() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 2);
        assert_eq!(a.victim_for(b(0)), None); // free way
        a.insert(b(0), 0);
        a.insert(b(1), 1);
        a.get_touch(b(1));
        assert_eq!(a.victim_for(b(2)), Some(b(0)));
        let evicted = a.insert(b(2), 2).unwrap();
        assert_eq!(evicted.0, b(0));
        // Present block has no victim.
        assert_eq!(a.victim_for(b(2)), None);
    }

    #[test]
    fn remove_frees_way() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 1);
        a.insert(b(0), 7);
        assert_eq!(a.remove(b(0)), Some(7));
        assert_eq!(a.remove(b(0)), None);
        assert!(a.insert(b(1), 8).is_none());
        assert!(!a.is_empty());
    }

    #[test]
    fn set_mapping_respects_index_bits() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(2, 1);
        // Blocks 0 and 2 map to set 0; block 1 maps to set 1.
        a.insert(b(0), 0);
        a.insert(b(1), 1);
        let evicted = a.insert(b(2), 2).unwrap();
        assert_eq!(evicted.0, b(0));
        assert!(a.contains(b(1)));
    }

    #[test]
    fn iter_covers_all_lines() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(4, 2);
        for i in 0..5 {
            a.insert(b(i), i as i32);
        }
        let mut seen: Vec<u64> = a.iter().map(|(blk, _)| blk.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "duplicate insert")]
    fn duplicate_insert_panics() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 2);
        a.insert(b(0), 0);
        a.insert(b(0), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        let _: SetAssocArray<i32> = SetAssocArray::new(3, 1);
    }

    #[test]
    fn get_touch_updates_recency() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 3);
        a.insert(b(0), 0);
        a.insert(b(1), 1);
        a.insert(b(2), 2);
        a.get_touch(b(0));
        a.get_touch(b(1));
        // 2 is now LRU.
        assert_eq!(a.victim_for(b(3)), Some(b(2)));
    }
}

//! Generic set-associative storage with LRU replacement.
//!
//! Both cache levels store their lines in a [`SetAssocArray`]; the payload
//! type differs (L1 lines vs L2 lines-with-directory) but lookup, insertion,
//! and LRU victim selection are identical.

use bbb_sim::BlockAddr;

/// A set-associative array of `T` payloads indexed by [`BlockAddr`], with
/// true-LRU replacement within each set.
///
/// # Examples
///
/// ```
/// use bbb_cache::SetAssocArray;
/// use bbb_sim::BlockAddr;
///
/// let mut a: SetAssocArray<u32> = SetAssocArray::new(2, 2);
/// let b0 = BlockAddr::from_index(0);
/// assert!(a.insert(b0, 10).is_none()); // no victim
/// assert_eq!(a.get(b0), Some(&10));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocArray<T> {
    sets: usize,
    ways: usize,
    /// `sets * ways` slots; `None` = invalid way.
    slots: Vec<Option<Slot<T>>>,
    /// Monotonic use stamp for LRU.
    tick: u64,
}

#[derive(Debug, Clone)]
struct Slot<T> {
    block: BlockAddr,
    last_use: u64,
    payload: T,
}

impl<T> SetAssocArray<T> {
    /// Creates an array of `sets` sets × `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or `sets` is not a power of two
    /// (block index bits select the set).
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "geometry must be non-zero");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let mut slots = Vec::with_capacity(sets * ways);
        slots.resize_with(sets * ways, || None);
        Self {
            sets,
            ways,
            slots,
            tick: 0,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() as usize) & (self.sets - 1)
    }

    fn set_range(&self, block: BlockAddr) -> std::ops::Range<usize> {
        let s = self.set_of(block);
        s * self.ways..(s + 1) * self.ways
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a block, refreshing its LRU position on hit.
    pub fn get_touch(&mut self, block: BlockAddr) -> Option<&mut T> {
        let tick = self.bump();
        let range = self.set_range(block);
        self.slots[range]
            .iter_mut()
            .flatten()
            .find(|s| s.block == block)
            .map(|s| {
                s.last_use = tick;
                &mut s.payload
            })
    }

    /// Looks up a block without changing LRU state.
    #[must_use]
    pub fn get(&self, block: BlockAddr) -> Option<&T> {
        self.slots[self.set_range(block)]
            .iter()
            .flatten()
            .find(|s| s.block == block)
            .map(|s| &s.payload)
    }

    /// Mutable lookup without changing LRU state.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let range = self.set_range(block);
        self.slots[range]
            .iter_mut()
            .flatten()
            .find(|s| s.block == block)
            .map(|s| &mut s.payload)
    }

    /// True if the block is present.
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.get(block).is_some()
    }

    /// Inserts a payload for `block`, evicting the set's LRU entry if the
    /// set is full. Returns the evicted `(block, payload)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if the block is already present — callers must update in
    /// place via [`SetAssocArray::get_touch`] instead of reinserting.
    pub fn insert(&mut self, block: BlockAddr, payload: T) -> Option<(BlockAddr, T)> {
        assert!(!self.contains(block), "duplicate insert of {block}");
        let tick = self.bump();
        let range = self.set_range(block);

        // Prefer an invalid way.
        if let Some(slot) = self.slots[range.clone()].iter_mut().find(|s| s.is_none()) {
            *slot = Some(Slot {
                block,
                last_use: tick,
                payload,
            });
            return None;
        }

        // Evict the LRU way.
        let victim_idx = self.slots[range]
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.as_ref().map_or(u64::MAX, |s| s.last_use))
            .map(|(i, _)| i)
            .expect("non-empty set");
        let base = self.set_of(block) * self.ways;
        let old = self.slots[base + victim_idx]
            .replace(Slot {
                block,
                last_use: tick,
                payload,
            })
            .expect("victim way was occupied");
        Some((old.block, old.payload))
    }

    /// Removes a block, returning its payload.
    pub fn remove(&mut self, block: BlockAddr) -> Option<T> {
        let range = self.set_range(block);
        for slot in &mut self.slots[range] {
            if slot.as_ref().is_some_and(|s| s.block == block) {
                return slot.take().map(|s| s.payload);
            }
        }
        None
    }

    /// The block that would be evicted if `block` were inserted now
    /// (`None` if the set still has a free way or would hit).
    #[must_use]
    pub fn victim_for(&self, block: BlockAddr) -> Option<BlockAddr> {
        if self.contains(block) {
            return None;
        }
        let set = &self.slots[self.set_range(block)];
        if set.iter().any(|s| s.is_none()) {
            return None;
        }
        set.iter()
            .flatten()
            .min_by_key(|s| s.last_use)
            .map(|s| s.block)
    }

    /// Iterates `(block, payload)` over all valid lines.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> {
        self.slots.iter().flatten().map(|s| (s.block, &s.payload))
    }

    /// Number of valid lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// True if no line is valid.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn insert_and_lookup() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(4, 2);
        assert!(a.insert(b(0), 1).is_none());
        assert_eq!(a.get(b(0)), Some(&1));
        assert!(a.contains(b(0)));
        assert!(!a.contains(b(4)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: blocks 0, 4, 8 all map to set 0 with 4 sets? No —
        // use sets=1 so everything collides.
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 2);
        a.insert(b(0), 0);
        a.insert(b(1), 1);
        // Touch 0 so 1 becomes LRU.
        a.get_touch(b(0));
        let evicted = a.insert(b(2), 2).expect("full set evicts");
        assert_eq!(evicted, (b(1), 1));
        assert!(a.contains(b(0)) && a.contains(b(2)));
    }

    #[test]
    fn victim_prediction_matches_eviction() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 2);
        assert_eq!(a.victim_for(b(0)), None); // free way
        a.insert(b(0), 0);
        a.insert(b(1), 1);
        a.get_touch(b(1));
        assert_eq!(a.victim_for(b(2)), Some(b(0)));
        let evicted = a.insert(b(2), 2).unwrap();
        assert_eq!(evicted.0, b(0));
        // Present block has no victim.
        assert_eq!(a.victim_for(b(2)), None);
    }

    #[test]
    fn remove_frees_way() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 1);
        a.insert(b(0), 7);
        assert_eq!(a.remove(b(0)), Some(7));
        assert_eq!(a.remove(b(0)), None);
        assert!(a.insert(b(1), 8).is_none());
        assert!(!a.is_empty());
    }

    #[test]
    fn set_mapping_respects_index_bits() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(2, 1);
        // Blocks 0 and 2 map to set 0; block 1 maps to set 1.
        a.insert(b(0), 0);
        a.insert(b(1), 1);
        let evicted = a.insert(b(2), 2).unwrap();
        assert_eq!(evicted.0, b(0));
        assert!(a.contains(b(1)));
    }

    #[test]
    fn iter_covers_all_lines() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(4, 2);
        for i in 0..5 {
            a.insert(b(i), i as i32);
        }
        let mut seen: Vec<u64> = a.iter().map(|(blk, _)| blk.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "duplicate insert")]
    fn duplicate_insert_panics() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 2);
        a.insert(b(0), 0);
        a.insert(b(0), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        let _: SetAssocArray<i32> = SetAssocArray::new(3, 1);
    }

    #[test]
    fn get_touch_updates_recency() {
        let mut a: SetAssocArray<i32> = SetAssocArray::new(1, 3);
        a.insert(b(0), 0);
        a.insert(b(1), 1);
        a.insert(b(2), 2);
        a.get_touch(b(0));
        a.get_touch(b(1));
        // 2 is now LRU.
        assert_eq!(a.victim_for(b(3)), Some(b(2)));
    }
}

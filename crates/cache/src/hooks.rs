//! Interfaces between the coherence protocol and the rest of the system.
//!
//! [`MemoryPort`] abstracts the DRAM/NVMM controllers so the hierarchy can
//! fill and write back blocks without owning the memory system.
//! [`CoherenceHooks`] surfaces exactly the protocol events the paper's
//! Table II attaches bbPB actions to; `bbb-core` implements it for the BBB
//! persistence machinery, while [`NullHooks`] gives the baseline behavior
//! (always write dirty evictions back).

use bbb_sim::{BlockAddr, Cycle, BLOCK_BYTES};

pub use bbb_sim::MemoryPort;

/// What to do with a dirty block being evicted from the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritebackDecision {
    /// Write the block back to memory (baseline MESI behavior).
    WriteBack,
    /// Drop the block silently. BBB does this for persistent blocks: the
    /// bbPB has (or had) the line, so memory already holds — or is about to
    /// hold, via the forced drain — the latest value (paper §III-B).
    Suppress,
}

/// Observer for the coherence events that interact with the persistence
/// domain (paper Fig. 6 and Table II).
///
/// All methods have no-op-adjacent defaults so simple experiments can
/// implement only what they need.
pub trait CoherenceHooks {
    /// A remote core `requester` gained exclusive ownership of `block`,
    /// invalidating `victim`'s L1 copy (Fig. 6(a) RdX on an M block, or
    /// Fig. 6(b) Upgrade on an S block). If the victim's bbPB holds the
    /// block, BBB moves the entry — without draining — to the requester's
    /// bbPB, which becomes responsible for draining it.
    fn on_remote_invalidate(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        victim: usize,
        requester: usize,
        mem: &mut dyn MemoryPort,
    ) {
        let _ = (now, block, victim, requester, mem);
    }

    /// A remote read downgraded `owner`'s M copy to S (Fig. 6(c)). Under
    /// BBB the block *stays* in the owner's bbPB and the traditional
    /// downgrade writeback to memory is skipped (the bbPB is a persistence-
    /// domain extension of memory).
    fn on_remote_downgrade(&mut self, now: Cycle, block: BlockAddr, owner: usize) {
        let _ = (now, block, owner);
    }

    /// The LLC is evicting a dirty block. The hook may force-drain a bbPB
    /// entry (to keep the LLC dirty-inclusive of bbPBs) and decide whether
    /// the LLC writeback happens at all. `data` is the latest block value.
    fn on_llc_dirty_evict(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        data: &[u8; BLOCK_BYTES],
        persistent: bool,
        mem: &mut dyn MemoryPort,
    ) -> WritebackDecision {
        let _ = (now, block, data, persistent, mem);
        WritebackDecision::WriteBack
    }

    /// The LLC is evicting a *clean* block (still requires bbPB inclusion
    /// enforcement under BBB: a clean-in-LLC block can still sit in a bbPB
    /// after a downgrade skipped its writeback).
    fn on_llc_clean_evict(&mut self, now: Cycle, block: BlockAddr, mem: &mut dyn MemoryPort) {
        let _ = (now, block, mem);
    }

    /// `core`'s L1 evicted its copy of `block`. BBB keeps each bbPB
    /// included in its own core's L1 (the two-level-hierarchy analogue of
    /// the paper's private-L2 inclusion): once the L1 copy is gone, no
    /// future coherence message would reach this bbPB, so a resident entry
    /// must drain now or Invariant 4 ("a block resides in at most one
    /// bbPB") could be violated by another core's later store.
    fn on_l1_evict(&mut self, now: Cycle, block: BlockAddr, core: usize, mem: &mut dyn MemoryPort) {
        let _ = (now, block, core, mem);
    }
}

/// Baseline hooks: every dirty eviction writes back; nothing else happens.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullHooks;

impl CoherenceHooks for NullHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeMem;
    impl MemoryPort for FakeMem {
        fn read_block(&mut self, now: Cycle, _: BlockAddr) -> (Cycle, [u8; BLOCK_BYTES]) {
            (now + 1, [0; BLOCK_BYTES])
        }
        fn write_block(&mut self, now: Cycle, _: BlockAddr, _: [u8; BLOCK_BYTES]) -> Cycle {
            now + 1
        }
    }

    #[test]
    fn null_hooks_default_to_writeback() {
        let mut h = NullHooks;
        let mut m = FakeMem;
        let d = h.on_llc_dirty_evict(0, BlockAddr::from_index(0), &[0; 64], true, &mut m);
        assert_eq!(d, WritebackDecision::WriteBack);
        // Defaults are callable no-ops.
        h.on_remote_invalidate(0, BlockAddr::from_index(0), 0, 1, &mut m);
        h.on_remote_downgrade(0, BlockAddr::from_index(0), 0);
        h.on_llc_clean_evict(0, BlockAddr::from_index(0), &mut m);
        h.on_l1_evict(0, BlockAddr::from_index(0), 0, &mut m);
    }
}

//! Cache hierarchy for the BBB reproduction.
//!
//! Models the paper's two-level hierarchy (Table III): a private L1D per
//! core and a shared, inclusive L2 — the last-level cache (LLC) — with a
//! directory-based MESI protocol (paper §IV-A). Blocks carry real 64-byte
//! payloads, so dirty data moves with coherence messages exactly as it
//! would in hardware, and a crash at any cycle yields a concrete memory
//! image.
//!
//! The persistence machinery of `bbb-core` attaches through two small
//! traits instead of being woven into the protocol:
//!
//! * [`MemoryPort`] — routes fills and writebacks to the DRAM/NVMM
//!   controllers owned by the system,
//! * [`CoherenceHooks`] — receives the coherence events the paper's
//!   Table II assigns bbPB actions to (remote invalidation, remote
//!   intervention/downgrade, dirty LLC eviction) and decides whether dirty
//!   persistent evictions write back or are silently dropped.
//!
//! Transactions are *blocking*: the directory resolves one request at a
//! time and all latencies are charged analytically on the requester. This
//! sidesteps the transient-state race matrix of a pipelined protocol while
//! preserving every state transition and every bbPB interaction the paper
//! describes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod block;
pub mod hierarchy;
pub mod hooks;
pub mod l1;
pub mod l2;

pub use array::SetAssocArray;
pub use block::{cores_in, L1Line, L2Line, Mesi};
pub use hierarchy::{AccessResult, CacheHierarchy, FlushResult};
pub use hooks::{CoherenceHooks, MemoryPort, NullHooks, WritebackDecision};

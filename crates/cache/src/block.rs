//! Cache line types and MESI states.

use bbb_sim::{BlockAddr, BLOCK_BYTES};

/// MESI coherence state of an L1 copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mesi {
    /// Modified: this L1 holds the only, dirty copy.
    M,
    /// Exclusive: the only copy, clean.
    E,
    /// Shared: one of possibly several clean copies.
    S,
    /// Invalid.
    #[default]
    I,
}

impl Mesi {
    /// True when the line may be read without a coherence transaction.
    #[must_use]
    pub const fn readable(self) -> bool {
        !matches!(self, Mesi::I)
    }

    /// True when the line may be written without a coherence transaction.
    #[must_use]
    pub const fn writable(self) -> bool {
        matches!(self, Mesi::M)
    }
}

/// One line of a private L1 data cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L1Line {
    /// Block this line caches.
    pub block: BlockAddr,
    /// Coherence state.
    pub state: Mesi,
    /// Block payload.
    pub data: [u8; BLOCK_BYTES],
    /// Set when the block maps to the persistent heap. Mirrors the
    /// per-block annotation bit the paper adds to suppress redundant
    /// writebacks (paper §III-B).
    pub persistent: bool,
}

impl L1Line {
    /// Creates a line in the given state.
    #[must_use]
    pub fn new(block: BlockAddr, state: Mesi, data: [u8; BLOCK_BYTES], persistent: bool) -> Self {
        Self {
            block,
            state,
            data,
            persistent,
        }
    }
}

/// One line of the shared, inclusive L2 (the LLC), with its directory
/// entry.
///
/// The directory tracks which L1s hold the block: at most one `owner` (an
/// L1 in M state) or any number of `sharers` (L1s in S/E state). When an
/// L1 owns the block, the L2 payload may be stale until a downgrade or
/// writeback refreshes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Line {
    /// Block this line caches.
    pub block: BlockAddr,
    /// Block payload (authoritative only when `owner` is `None`).
    pub data: [u8; BLOCK_BYTES],
    /// Dirty relative to main memory.
    pub dirty: bool,
    /// Persistent-heap annotation bit.
    pub persistent: bool,
    /// Core index of the L1 holding the block in M, if any.
    pub owner: Option<usize>,
    /// Bitmask of cores whose L1 holds the block in S or E.
    pub sharers: u64,
}

impl L2Line {
    /// Creates a clean line with no L1 copies.
    #[must_use]
    pub fn new(block: BlockAddr, data: [u8; BLOCK_BYTES], persistent: bool) -> Self {
        Self {
            block,
            data,
            dirty: false,
            persistent,
            owner: None,
            sharers: 0,
        }
    }

    /// Adds a core to the sharer set.
    pub fn add_sharer(&mut self, core: usize) {
        self.sharers |= 1 << core;
    }

    /// Removes a core from the sharer set.
    pub fn remove_sharer(&mut self, core: usize) {
        self.sharers &= !(1 << core);
    }

    /// True if `core`'s L1 is recorded as a sharer.
    #[must_use]
    pub fn has_sharer(&self, core: usize) -> bool {
        self.sharers & (1 << core) != 0
    }

    /// Iterates the sharer core indices.
    pub fn sharer_cores(&self) -> impl Iterator<Item = usize> + '_ {
        cores_in(self.sharers)
    }

    /// The raw sharer bitmask. Copy this out before mutating the cache
    /// (drive [`cores_in`] with it) — it decouples sharer iteration from
    /// the line borrow without collecting into a `Vec`.
    #[must_use]
    pub fn sharer_mask(&self) -> u64 {
        self.sharers
    }

    /// Number of L1 sharers.
    #[must_use]
    pub fn sharer_count(&self) -> usize {
        self.sharers.count_ones() as usize
    }

    /// True when no L1 holds any copy.
    #[must_use]
    pub fn unowned(&self) -> bool {
        self.owner.is_none() && self.sharers == 0
    }
}

/// Iterates the set core indices of a sharer bitmask, lowest first.
/// Allocation-free (one `u64` of state), for coherence hot paths.
pub fn cores_in(mask: u64) -> impl Iterator<Item = usize> {
    std::iter::successors(if mask == 0 { None } else { Some(mask) }, |&m| {
        let rest = m & (m - 1); // clear lowest set bit
        (rest != 0).then_some(rest)
    })
    .map(|m| m.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesi_permissions() {
        assert!(Mesi::M.readable() && Mesi::M.writable());
        assert!(Mesi::E.readable() && !Mesi::E.writable());
        assert!(Mesi::S.readable() && !Mesi::S.writable());
        assert!(!Mesi::I.readable() && !Mesi::I.writable());
        assert_eq!(Mesi::default(), Mesi::I);
    }

    #[test]
    fn sharer_set_operations() {
        let mut l = L2Line::new(BlockAddr::from_index(1), [0; 64], false);
        assert!(l.unowned());
        l.add_sharer(0);
        l.add_sharer(5);
        assert!(l.has_sharer(0) && l.has_sharer(5) && !l.has_sharer(1));
        assert_eq!(l.sharer_count(), 2);
        assert_eq!(l.sharer_cores().collect::<Vec<_>>(), vec![0, 5]);
        l.remove_sharer(0);
        assert!(!l.has_sharer(0));
        assert_eq!(l.sharer_count(), 1);
        assert!(!l.unowned());
    }

    #[test]
    fn owner_blocks_unowned() {
        let mut l = L2Line::new(BlockAddr::from_index(2), [0; 64], true);
        l.owner = Some(3);
        assert!(!l.unowned());
        assert!(l.persistent);
    }
}

//! The directory-based MESI protocol over the two-level hierarchy.
//!
//! [`CacheHierarchy`] owns every core's L1D and the shared inclusive L2
//! (the LLC), and resolves each access as one blocking transaction: latency
//! is accumulated analytically along the path the request takes (L1 → NoC →
//! L2 → peer L1 or memory), state is updated atomically, and the relevant
//! [`CoherenceHooks`] fire for every event the paper's Table II assigns a
//! bbPB action to.
//!
//! Directory convention: an L1 holding a block in **M or E** is recorded as
//! the line's `owner` (E→M upgrades are silent in MESI, so the directory
//! cannot distinguish them anyway); L1s holding **S** are recorded in the
//! sharer mask.

use bbb_sim::{AddressMap, BlockAddr, Counter, Cycle, SimConfig, Stats, BLOCK_BYTES};

use crate::block::{cores_in, L2Line, Mesi};
use crate::hooks::{CoherenceHooks, MemoryPort, WritebackDecision};
use crate::l1::L1Cache;
use crate::l2::L2Cache;

/// Timing and hit/miss outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the access completes at the requesting core.
    pub completion: Cycle,
    /// True if the access was satisfied by the requester's L1.
    pub l1_hit: bool,
}

/// Outcome of a `clwb`-style flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushResult {
    /// Cycle at which the flushed data is durable (WPQ acceptance). Equals
    /// the issue cycle when the block was already clean everywhere.
    pub persist: Cycle,
    /// True if any dirty data actually moved to memory.
    pub wrote_back: bool,
}

#[derive(Debug, Default, Clone)]
struct Counters {
    l1_hits: Counter,
    l1_misses: Counter,
    l2_hits: Counter,
    l2_misses: Counter,
    interventions: Counter,
    upgrades: Counter,
    invalidations: Counter,
    back_invalidations: Counter,
    writebacks: Counter,
    suppressed_writebacks: Counter,
    flushes: Counter,
}

/// The full cache hierarchy: per-core L1Ds plus the shared L2 directory.
///
/// See the crate docs for the modeling approach; unit tests below exercise
/// every coherence case of the paper's Table II.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1s: Vec<L1Cache>,
    l2: L2Cache,
    map: AddressMap,
    l1_lat: Cycle,
    l2_lat: Cycle,
    noc: Cycle,
    counters: Counters,
    /// Monotone mutation counter: bumped on every access that can change
    /// cached *contents* — L1-miss reads, writes, flushes. L1 read hits
    /// only refresh LRU stamps and are not counted. Coarse on purpose —
    /// an unchanged version proves unchanged dirty contents; the converse
    /// need not hold.
    version: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy for a machine configuration.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> Self {
        Self {
            l1s: (0..cfg.cores).map(|_| L1Cache::new(&cfg.l1d)).collect(),
            l2: L2Cache::new(&cfg.l2),
            map: AddressMap::new(cfg),
            l1_lat: cfg.l1d.latency,
            l2_lat: cfg.l2.latency,
            noc: cfg.noc_hop,
            counters: Counters::default(),
            version: 0,
        }
    }

    /// Monotone mutation counter: equal versions within one hierarchy's
    /// lifetime prove no access touched the caches in between.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of cores (L1 caches).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.l1s.len()
    }

    /// Immutable view of one core's L1 (tests and crash draining).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1(&self, core: usize) -> &L1Cache {
        &self.l1s[core]
    }

    /// Immutable view of the shared L2.
    #[must_use]
    pub fn l2(&self) -> &L2Cache {
        &self.l2
    }

    /// A load of `block` by `core`. Returns the access result and the
    /// current block payload.
    pub fn read(
        &mut self,
        now: Cycle,
        core: usize,
        block: BlockAddr,
        mem: &mut dyn MemoryPort,
        hooks: &mut dyn CoherenceHooks,
    ) -> (AccessResult, [u8; BLOCK_BYTES]) {
        if let Some(line) = self.l1s[core].touch(block) {
            if line.state.readable() {
                // L1 read hits refresh LRU stamps only — they cannot change
                // any cached *contents*, so the mutation counter stays put.
                self.counters.l1_hits.inc();
                return (
                    AccessResult {
                        completion: now + self.l1_lat,
                        l1_hit: true,
                    },
                    line.data,
                );
            }
        }
        self.version += 1;
        self.counters.l1_misses.inc();
        let mut t = now + self.l1_lat + self.noc + self.l2_lat;

        let (data, fill_state) = if let Some(owner) = self.l2_owner(block) {
            // L2 hit with a remote M/E owner: intervention (Fig. 6(c)).
            self.counters.l2_hits.inc();
            debug_assert_ne!(owner, core, "owner would have hit in its own L1");
            self.counters.interventions.inc();
            let was_m = self.l1s[owner].state_of(block) == Mesi::M;
            let data = self.l1s[owner].downgrade_to_shared(block);
            let line = self
                .l2
                .touch(block)
                .expect("inclusion: owner implies L2 line");
            line.owner = None;
            line.add_sharer(owner);
            if was_m {
                line.data = data;
                // BBB note: the dirty data stays dirty in the LLC; the
                // traditional flush-to-memory on M->S downgrade is already
                // absorbed by the inclusive LLC, and the paper's
                // optimization (skip the memory write) applies when this
                // line is eventually evicted.
                line.dirty = true;
                hooks.on_remote_downgrade(now, block, owner);
            }
            t += 2 * self.noc + self.l1_lat;
            (data, Mesi::S)
        } else if let Some(line) = self.l2.touch(block) {
            // Plain L2 hit.
            self.counters.l2_hits.inc();
            let state = if line.unowned() { Mesi::E } else { Mesi::S };
            (line.data, state)
        } else {
            // L2 miss: fetch from memory. Dirty-inclusion of bbPBs
            // guarantees no bbPB holds the block (asserted by bbb-core's
            // hooks in debug builds), so memory data is current.
            self.counters.l2_misses.inc();
            let (done, data) = mem.read_block(t, block);
            t = done;
            let persistent = self.map.is_persistent_block(block);
            let victim = self.l2.fill(block, data, persistent);
            if let Some(v) = victim {
                let accepted = self.evict_l2_line(t, v, mem, hooks);
                t = t.max(accepted);
            }
            (data, Mesi::E)
        };

        // Record the requester in the directory.
        {
            let line = self.l2.peek_mut(block).expect("line just ensured");
            match fill_state {
                Mesi::E => {
                    debug_assert!(line.unowned());
                    line.owner = Some(core);
                }
                Mesi::S => line.add_sharer(core),
                _ => unreachable!("fills are E or S"),
            }
        }

        t += self.noc; // data back to the L1
        let persistent = self.map.is_persistent_block(block);
        if let Some(victim) = self.l1s[core].fill(block, fill_state, data, persistent) {
            self.retire_l1_victim(t, core, victim.block, victim.state, victim.data, mem, hooks);
        }
        (
            AccessResult {
                completion: t,
                l1_hit: false,
            },
            data,
        )
    }

    /// A store by `core` writing `bytes` at `offset` within `block`.
    /// Obtains M state (invalidating remote copies per Table II), applies
    /// the payload to the L1 line, and returns the access result.
    ///
    /// # Panics
    ///
    /// Panics if `offset + bytes.len()` exceeds the block size.
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        &mut self,
        now: Cycle,
        core: usize,
        block: BlockAddr,
        offset: usize,
        bytes: &[u8],
        mem: &mut dyn MemoryPort,
        hooks: &mut dyn CoherenceHooks,
    ) -> AccessResult {
        assert!(offset + bytes.len() <= BLOCK_BYTES, "store exceeds block");
        self.version += 1;
        // Fast path: the requester already owns the line — M outright, or E
        // via the silent upgrade (the directory records us as owner either
        // way). A single tag probe serves the whole store.
        let fast = match self.l1s[core].touch(block) {
            Some(line) if matches!(line.state, Mesi::M | Mesi::E) => {
                line.state = Mesi::M;
                line.data[offset..offset + bytes.len()].copy_from_slice(bytes);
                true
            }
            _ => false,
        };
        if fast {
            self.counters.l1_hits.inc();
            debug_assert_eq!(self.l2_owner(block), Some(core));
            return AccessResult {
                completion: now + self.l1_lat,
                l1_hit: true,
            };
        }
        let state = self.l1s[core].state_of(block);
        let result = match state {
            Mesi::M | Mesi::E => unreachable!("owned lines take the fast path"),
            Mesi::S => {
                // Upgrade: invalidate the other sharers (Fig. 6(b)).
                self.counters.l1_misses.inc();
                self.counters.upgrades.inc();
                let t = now + self.l1_lat + self.noc + self.l2_lat;
                // Copy the directory bitmask out so sharer iteration does
                // not hold the line borrow (and allocates nothing).
                let mask = self
                    .l2
                    .touch(block)
                    .expect("inclusion: S implies L2 line")
                    .sharer_mask();
                for o in cores_in(mask).filter(|&c| c != core) {
                    self.counters.invalidations.inc();
                    self.l1s[o].invalidate(block);
                    hooks.on_remote_invalidate(now, block, o, core, mem);
                }
                let line = self.l2.peek_mut(block).expect("line present");
                line.sharers = 0;
                line.owner = Some(core);
                self.l1s[core].touch(block).expect("line present").state = Mesi::M;
                AccessResult {
                    completion: t + 2 * self.noc,
                    l1_hit: false,
                }
            }
            Mesi::I => {
                // Read-exclusive (Fig. 6(a) when a remote M copy exists).
                self.counters.l1_misses.inc();
                let mut t = now + self.l1_lat + self.noc + self.l2_lat;
                let data = if let Some(owner) = self.l2_owner(block) {
                    self.counters.l2_hits.inc();
                    debug_assert_ne!(owner, core);
                    self.counters.invalidations.inc();
                    let line = self.l1s[owner].invalidate(block).expect("directory owner");
                    hooks.on_remote_invalidate(now, block, owner, core, mem);
                    let l2line = self.l2.touch(block).expect("inclusion");
                    if line.state == Mesi::M {
                        l2line.data = line.data;
                        l2line.dirty = true;
                    }
                    l2line.owner = None;
                    t += 2 * self.noc + self.l1_lat;
                    l2line.data
                } else if self.l2.contains_block(block) {
                    self.counters.l2_hits.inc();
                    let mask = self.l2.touch(block).expect("present").sharer_mask();
                    if cores_in(mask).any(|c| c != core) {
                        t += 2 * self.noc;
                    }
                    for o in cores_in(mask).filter(|&c| c != core) {
                        self.counters.invalidations.inc();
                        self.l1s[o].invalidate(block);
                        hooks.on_remote_invalidate(now, block, o, core, mem);
                    }
                    let line = self.l2.peek_mut(block).expect("present");
                    line.sharers = 0;
                    line.data
                } else {
                    self.counters.l2_misses.inc();
                    let (done, data) = mem.read_block(t, block);
                    t = done;
                    let persistent = self.map.is_persistent_block(block);
                    if let Some(v) = self.l2.fill(block, data, persistent) {
                        let accepted = self.evict_l2_line(t, v, mem, hooks);
                        t = t.max(accepted);
                    }
                    data
                };
                {
                    let line = self.l2.peek_mut(block).expect("ensured");
                    line.owner = Some(core);
                    line.sharers = 0;
                }
                t += self.noc;
                let persistent = self.map.is_persistent_block(block);
                if let Some(victim) = self.l1s[core].fill(block, Mesi::M, data, persistent) {
                    self.retire_l1_victim(
                        t,
                        core,
                        victim.block,
                        victim.state,
                        victim.data,
                        mem,
                        hooks,
                    );
                }
                AccessResult {
                    completion: t,
                    l1_hit: false,
                }
            }
        };

        let line = self.l1s[core].peek_mut(block).expect("M line installed");
        debug_assert_eq!(line.state, Mesi::M);
        line.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        result
    }

    /// A `clwb`-style flush of `block` issued by `core`: writes any dirty
    /// copy back to memory and leaves caches clean, without invalidating.
    pub fn flush(
        &mut self,
        now: Cycle,
        core: usize,
        block: BlockAddr,
        mem: &mut dyn MemoryPort,
    ) -> FlushResult {
        let _ = core; // the flush path is identical regardless of issuer
        self.version += 1;
        self.counters.flushes.inc();
        let t = now + self.l1_lat + self.noc + self.l2_lat;

        let Some(owner) = self.l2_owner_or_none(block) else {
            return FlushResult {
                persist: now,
                wrote_back: false,
            };
        };

        let (data, was_dirty) = match owner {
            Some(o) if self.l1s[o].state_of(block) == Mesi::M => {
                let data = self.l1s[o].downgrade_to_shared(block);
                let line = self.l2.peek_mut(block).expect("inclusion");
                line.data = data;
                line.owner = None;
                line.add_sharer(o);
                (data, true)
            }
            Some(o) => {
                // Owner in E: clean; demote to S for simplicity.
                let data = self.l1s[o].downgrade_to_shared(block);
                let line = self.l2.peek_mut(block).expect("inclusion");
                line.owner = None;
                line.add_sharer(o);
                (data, line.dirty)
            }
            None => {
                let line = self.l2.peek(block).expect("checked present");
                (line.data, line.dirty)
            }
        };

        if !was_dirty {
            return FlushResult {
                persist: now,
                wrote_back: false,
            };
        }
        let persist = mem.write_block(t, block, data);
        let line = self.l2.peek_mut(block).expect("present");
        line.dirty = false;
        FlushResult {
            persist,
            wrote_back: true,
        }
    }

    /// Every block that holds dirty data anywhere in the hierarchy, with
    /// its latest payload — the drain set of an eADR crash. The list is
    /// deduplicated: an L1 M copy supersedes the (stale) L2 payload.
    #[must_use]
    pub fn dirty_blocks(&self) -> Vec<(BlockAddr, [u8; BLOCK_BYTES], bool)> {
        let mut out = Vec::new();
        for line in self.l2.iter() {
            if let Some(o) = line.owner {
                let l1 = self.l1s[o].peek(line.block).expect("inclusion");
                if l1.state == Mesi::M {
                    out.push((line.block, l1.data, line.persistent));
                    continue;
                }
            }
            if line.dirty {
                out.push((line.block, line.data, line.persistent));
            }
        }
        out
    }

    /// Latest value of `block` visible in the hierarchy, if cached.
    #[must_use]
    pub fn peek_block(&self, block: BlockAddr) -> Option<[u8; BLOCK_BYTES]> {
        let line = self.l2.peek(block)?;
        if let Some(o) = line.owner {
            if let Some(l1) = self.l1s[o].peek(block) {
                return Some(l1.data);
            }
        }
        Some(line.data)
    }

    /// Verifies the inclusion and directory invariants; call from tests.
    ///
    /// # Panics
    ///
    /// Panics (with a description) on the first violation found.
    pub fn check_invariants(&self) {
        for (core, l1) in self.l1s.iter().enumerate() {
            for line in l1.iter() {
                let l2 = self
                    .l2
                    .peek(line.block)
                    .unwrap_or_else(|| panic!("inclusion violated: {} not in L2", line.block));
                match line.state {
                    Mesi::M | Mesi::E => assert_eq!(
                        l2.owner,
                        Some(core),
                        "directory owner mismatch for {}",
                        line.block
                    ),
                    Mesi::S => assert!(
                        l2.has_sharer(core),
                        "directory sharer mismatch for {}",
                        line.block
                    ),
                    Mesi::I => {}
                }
            }
        }
        for line in self.l2.iter() {
            if let Some(o) = line.owner {
                let st = self.l1s[o].state_of(line.block);
                assert!(
                    matches!(st, Mesi::M | Mesi::E),
                    "owner {o} of {} holds state {st:?}",
                    line.block
                );
                assert_eq!(line.sharers, 0, "owned line with sharers: {}", line.block);
            }
            for c in line.sharer_cores() {
                assert_eq!(
                    self.l1s[c].state_of(line.block),
                    Mesi::S,
                    "sharer {c} of {} not in S",
                    line.block
                );
            }
        }
    }

    /// Exports counters under the `cache.` prefix.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let c = &self.counters;
        let mut s = Stats::new();
        s.set("cache.l1_hits", c.l1_hits.get());
        s.set("cache.l1_misses", c.l1_misses.get());
        s.set("cache.l2_hits", c.l2_hits.get());
        s.set("cache.l2_misses", c.l2_misses.get());
        s.set("cache.interventions", c.interventions.get());
        s.set("cache.upgrades", c.upgrades.get());
        s.set("cache.invalidations", c.invalidations.get());
        s.set("cache.back_invalidations", c.back_invalidations.get());
        s.set("cache.writebacks", c.writebacks.get());
        s.set("cache.suppressed_writebacks", c.suppressed_writebacks.get());
        s.set("cache.flushes", c.flushes.get());
        s
    }

    /// Owner core of `block` if the L2 records one and it isn't `block`'s
    /// requester-side L1 state that matters. `None` when the block is
    /// absent from L2 or unowned.
    fn l2_owner(&self, block: BlockAddr) -> Option<usize> {
        self.l2.peek(block).and_then(|l| l.owner)
    }

    /// `None` when the block is absent from the L2 entirely, otherwise
    /// `Some(owner_or_none)`.
    fn l2_owner_or_none(&self, block: BlockAddr) -> Option<Option<usize>> {
        self.l2.peek(block).map(|l| l.owner)
    }

    /// Folds an evicted L1 line's state back into the L2 directory and
    /// notifies the persistence hooks (bbPB self-inclusion, see
    /// [`CoherenceHooks::on_l1_evict`]).
    #[allow(clippy::too_many_arguments)]
    fn retire_l1_victim(
        &mut self,
        now: Cycle,
        core: usize,
        block: BlockAddr,
        state: Mesi,
        data: [u8; BLOCK_BYTES],
        mem: &mut dyn MemoryPort,
        hooks: &mut dyn CoherenceHooks,
    ) {
        let line = self
            .l2
            .peek_mut(block)
            .expect("inclusion: L1 victim must be in L2");
        match state {
            Mesi::M => {
                debug_assert_eq!(line.owner, Some(core));
                line.owner = None;
                line.data = data;
                line.dirty = true;
            }
            Mesi::E => {
                debug_assert_eq!(line.owner, Some(core));
                line.owner = None;
            }
            Mesi::S => line.remove_sharer(core),
            Mesi::I => {}
        }
        hooks.on_l1_evict(now, block, core, mem);
    }

    /// Handles an LLC eviction: back-invalidate L1 copies, then consult the
    /// hooks about the (possibly suppressed) writeback. Returns the cycle
    /// the victim's writeback is accepted by memory — the fill that forced
    /// the eviction cannot complete earlier (a full WPQ backpressures the
    /// LLC victim buffer, throttling every mode identically).
    fn evict_l2_line(
        &mut self,
        now: Cycle,
        mut victim: L2Line,
        mem: &mut dyn MemoryPort,
        hooks: &mut dyn CoherenceHooks,
    ) -> Cycle {
        if let Some(o) = victim.owner {
            self.counters.back_invalidations.inc();
            if let Some(l1line) = self.l1s[o].invalidate(victim.block) {
                if l1line.state == Mesi::M {
                    victim.data = l1line.data;
                    victim.dirty = true;
                }
            }
        }
        for c in cores_in(victim.sharer_mask()) {
            self.counters.back_invalidations.inc();
            self.l1s[c].invalidate(victim.block);
        }
        if victim.dirty {
            match hooks.on_llc_dirty_evict(now, victim.block, &victim.data, victim.persistent, mem)
            {
                WritebackDecision::WriteBack => {
                    self.counters.writebacks.inc();
                    mem.write_block(now, victim.block, victim.data)
                }
                WritebackDecision::Suppress => {
                    self.counters.suppressed_writebacks.inc();
                    now
                }
            }
        } else {
            hooks.on_llc_clean_evict(now, victim.block, mem);
            now
        }
    }
}

impl L2Cache {
    /// True if the block is present (helper local to the protocol).
    #[must_use]
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        self.peek(block).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHooks;
    use bbb_mem::ByteStore;

    /// A memory port over a plain byte store with fixed latencies, plus
    /// write logging for assertions.
    struct TestMem {
        store: ByteStore,
        read_lat: Cycle,
        write_lat: Cycle,
        writes: Vec<BlockAddr>,
    }

    impl TestMem {
        fn new() -> Self {
            Self {
                store: ByteStore::new(),
                read_lat: 300,
                write_lat: 0, // persist point: immediate accept
                writes: Vec::new(),
            }
        }
    }

    impl MemoryPort for TestMem {
        fn read_block(&mut self, now: Cycle, block: BlockAddr) -> (Cycle, [u8; BLOCK_BYTES]) {
            (now + self.read_lat, self.store.read_block(block))
        }
        fn write_block(&mut self, now: Cycle, block: BlockAddr, data: [u8; BLOCK_BYTES]) -> Cycle {
            self.writes.push(block);
            self.store.write_block(block, &data);
            now + self.write_lat
        }
    }

    fn cfg() -> SimConfig {
        SimConfig::small_for_tests()
    }

    /// A block inside the persistent heap of the small test config.
    fn pblock(cfg_: &SimConfig, i: u64) -> BlockAddr {
        let map = AddressMap::new(cfg_);
        BlockAddr::containing(map.persistent_base() + i * BLOCK_BYTES as u64)
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = pblock(&c, 0);
        mem.store.write_block(b, &[0x11; 64]);

        let (r1, d1) = h.read(0, 0, b, &mut mem, &mut hooks);
        assert!(!r1.l1_hit);
        assert_eq!(d1, [0x11; 64]);
        assert!(r1.completion > 300);

        let (r2, d2) = h.read(r1.completion, 0, b, &mut mem, &mut hooks);
        assert!(r2.l1_hit);
        assert_eq!(r2.completion, r1.completion + c.l1d.latency);
        assert_eq!(d2, [0x11; 64]);
        h.check_invariants();
        assert_eq!(h.stats().get("cache.l1_hits"), 1);
        assert_eq!(h.stats().get("cache.l2_misses"), 1);
    }

    #[test]
    fn exclusive_fill_then_silent_upgrade() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = pblock(&c, 1);

        h.read(0, 0, b, &mut mem, &mut hooks);
        assert_eq!(h.l1(0).state_of(b), Mesi::E);
        let w = h.write(100, 0, b, 0, &[0xAA], &mut mem, &mut hooks);
        assert!(w.l1_hit, "E->M upgrade is silent");
        assert_eq!(h.l1(0).state_of(b), Mesi::M);
        assert_eq!(h.peek_block(b).unwrap()[0], 0xAA);
        h.check_invariants();
    }

    #[test]
    fn read_shared_by_two_cores() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = pblock(&c, 2);

        h.read(0, 0, b, &mut mem, &mut hooks);
        h.read(1000, 1, b, &mut mem, &mut hooks);
        // First reader had E; second read finds an owner -> intervention
        // downgrades (clean E, no dirty data) or plain share.
        assert_eq!(h.l1(0).state_of(b), Mesi::S);
        assert_eq!(h.l1(1).state_of(b), Mesi::S);
        h.check_invariants();
    }

    #[test]
    fn write_invalidates_remote_m_copy_fig6a() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = pblock(&c, 3);

        h.write(0, 0, b, 0, &[0x01], &mut mem, &mut hooks);
        assert_eq!(h.l1(0).state_of(b), Mesi::M);
        // Core 1 writes: RdX must invalidate core 0 and transfer the data.
        h.write(1000, 1, b, 1, &[0x02], &mut mem, &mut hooks);
        assert_eq!(h.l1(0).state_of(b), Mesi::I);
        assert_eq!(h.l1(1).state_of(b), Mesi::M);
        let data = h.peek_block(b).unwrap();
        assert_eq!(&data[..2], &[0x01, 0x02], "both writes merged");
        assert_eq!(h.stats().get("cache.invalidations"), 1);
        h.check_invariants();
    }

    #[test]
    fn upgrade_invalidates_sharers_fig6b() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = pblock(&c, 4);

        h.read(0, 0, b, &mut mem, &mut hooks);
        h.read(1000, 1, b, &mut mem, &mut hooks);
        assert_eq!(h.l1(0).state_of(b), Mesi::S);
        // Core 1 upgrades S -> M.
        let w = h.write(2000, 1, b, 0, &[0x5A], &mut mem, &mut hooks);
        assert!(!w.l1_hit);
        assert_eq!(h.l1(0).state_of(b), Mesi::I);
        assert_eq!(h.l1(1).state_of(b), Mesi::M);
        assert_eq!(h.stats().get("cache.upgrades"), 1);
        h.check_invariants();
    }

    #[test]
    fn read_downgrades_remote_m_copy_fig6c() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = pblock(&c, 5);

        h.write(0, 0, b, 0, &[0x77], &mut mem, &mut hooks);
        let (_, data) = h.read(1000, 1, b, &mut mem, &mut hooks);
        assert_eq!(data[0], 0x77, "intervention forwards dirty data");
        assert_eq!(h.l1(0).state_of(b), Mesi::S);
        assert_eq!(h.l1(1).state_of(b), Mesi::S);
        // No memory writeback happened: dirty data absorbed by LLC.
        assert!(mem.writes.is_empty());
        assert_eq!(h.stats().get("cache.interventions"), 1);
        h.check_invariants();
    }

    #[test]
    fn flush_writes_back_dirty_data_and_cleans() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = pblock(&c, 6);

        h.write(0, 0, b, 0, &[0xEE], &mut mem, &mut hooks);
        let f = h.flush(100, 0, b, &mut mem);
        assert!(f.wrote_back);
        assert_eq!(mem.writes, vec![b]);
        assert_eq!(mem.store.read_block(b)[0], 0xEE);
        // Second flush: nothing dirty.
        let f2 = h.flush(200, 0, b, &mut mem);
        assert!(!f2.wrote_back);
        assert_eq!(f2.persist, 200);
        h.check_invariants();
    }

    #[test]
    fn flush_of_uncached_block_is_noop() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let b = pblock(&c, 7);
        let f = h.flush(50, 0, b, &mut mem);
        assert!(!f.wrote_back);
        assert_eq!(f.persist, 50);
    }

    #[test]
    fn llc_eviction_writes_back_dirty_block() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        // Small config L2: 8 KiB / 64 = 128 blocks, 4 ways, 32 sets.
        // Blocks with the same (index % 32) collide.
        let base = pblock(&c, 0);
        let collide = |k: u64| BlockAddr::from_index(base.index() + k * 32);
        // Dirty the first block from core 0, then stream four more through
        // the same L2 set from core 1, forcing an LLC eviction while core
        // 0's L1 still holds the dirty line (back-invalidation required).
        h.write(0, 0, collide(0), 0, &[0xD1], &mut mem, &mut hooks);
        for k in 1..=4 {
            h.read(1000 * k, 1, collide(k), &mut mem, &mut hooks);
        }
        assert!(
            mem.writes.contains(&collide(0)),
            "dirty victim written back: {:?}",
            mem.writes
        );
        assert_eq!(h.l1(0).state_of(collide(0)), Mesi::I, "back-invalidated");
        assert_eq!(mem.store.read_block(collide(0))[0], 0xD1);
        assert!(h.stats().get("cache.writebacks") >= 1);
        assert!(h.stats().get("cache.back_invalidations") >= 1);
        h.check_invariants();
    }

    #[test]
    fn dirty_blocks_reports_l1_m_payload() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = pblock(&c, 8);
        h.write(0, 0, b, 0, &[0xBB], &mut mem, &mut hooks);
        let dirty = h.dirty_blocks();
        assert_eq!(dirty.len(), 1);
        let (blk, data, persistent) = dirty[0];
        assert_eq!(blk, b);
        assert_eq!(data[0], 0xBB);
        assert!(persistent);
    }

    #[test]
    fn dram_blocks_are_not_persistent() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = BlockAddr::from_index(4); // DRAM region
        h.write(0, 0, b, 0, &[0x01], &mut mem, &mut hooks);
        let dirty = h.dirty_blocks();
        assert_eq!(dirty.len(), 1);
        assert!(!dirty[0].2);
    }

    #[test]
    fn ping_pong_preserves_data_and_invariants() {
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = NullHooks;
        let b = pblock(&c, 9);
        let mut t = 0;
        for i in 0..16u8 {
            let core = (i % 2) as usize;
            h.write(t, core, b, i as usize, &[i], &mut mem, &mut hooks);
            t += 500;
        }
        h.check_invariants();
        let data = h.peek_block(b).unwrap();
        for i in 0..16u8 {
            assert_eq!(data[i as usize], i, "byte {i} survived the ping-pong");
        }
    }

    #[test]
    fn suppression_hook_is_respected() {
        struct SuppressAll;
        impl CoherenceHooks for SuppressAll {
            fn on_llc_dirty_evict(
                &mut self,
                _: Cycle,
                _: BlockAddr,
                _: &[u8; BLOCK_BYTES],
                _: bool,
                _: &mut dyn MemoryPort,
            ) -> WritebackDecision {
                WritebackDecision::Suppress
            }
        }
        let c = cfg();
        let mut h = CacheHierarchy::new(&c);
        let mut mem = TestMem::new();
        let mut hooks = SuppressAll;
        let base = pblock(&c, 0);
        let collide = |k: u64| BlockAddr::from_index(base.index() + k * 32);
        h.write(0, 0, collide(0), 0, &[0xD1], &mut mem, &mut hooks);
        for k in 1..=4 {
            h.read(1000 * k, 0, collide(k), &mut mem, &mut hooks);
        }
        assert!(!mem.writes.contains(&collide(0)), "writeback suppressed");
        assert!(h.stats().get("cache.suppressed_writebacks") >= 1);
    }
}

//! Shared, inclusive L2 — the last-level cache with the MESI directory.

use bbb_sim::{BlockAddr, CacheConfig, BLOCK_BYTES};

use crate::array::SetAssocArray;
use crate::block::L2Line;

/// The shared L2/LLC. Inclusion invariant: every block present in any L1
/// is present here, and the directory entry on each line records which L1s
/// hold it.
///
/// # Examples
///
/// ```
/// use bbb_cache::l2::L2Cache;
/// use bbb_sim::{BlockAddr, CacheConfig};
///
/// let cfg = CacheConfig { capacity_bytes: 8192, ways: 4, latency: 11 };
/// let mut l2 = L2Cache::new(&cfg);
/// let b = BlockAddr::from_index(1);
/// l2.fill(b, [0; 64], false);
/// assert!(l2.peek(b).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct L2Cache {
    lines: SetAssocArray<L2Line>,
}

impl L2Cache {
    /// Builds the L2 from its configuration.
    #[must_use]
    pub fn new(cfg: &CacheConfig) -> Self {
        Self {
            lines: SetAssocArray::new(cfg.sets(), cfg.ways),
        }
    }

    /// Looks up a line, refreshing LRU.
    pub fn touch(&mut self, block: BlockAddr) -> Option<&mut L2Line> {
        self.lines.get_touch(block)
    }

    /// Looks up a line without LRU update.
    #[must_use]
    pub fn peek(&self, block: BlockAddr) -> Option<&L2Line> {
        self.lines.get(block)
    }

    /// Mutable lookup without LRU update.
    pub fn peek_mut(&mut self, block: BlockAddr) -> Option<&mut L2Line> {
        self.lines.get_mut(block)
    }

    /// Installs a freshly fetched block (clean, no L1 copies). Returns the
    /// evicted victim, whose directory entry tells the caller which L1s to
    /// back-invalidate and whose dirty bit decides the writeback.
    pub fn fill(
        &mut self,
        block: BlockAddr,
        data: [u8; BLOCK_BYTES],
        persistent: bool,
    ) -> Option<L2Line> {
        self.lines
            .insert(block, L2Line::new(block, data, persistent))
            .map(|(_, line)| line)
    }

    /// Removes a block (used when the protocol must drop a line outside the
    /// normal LRU path).
    pub fn remove(&mut self, block: BlockAddr) -> Option<L2Line> {
        self.lines.remove(block)
    }

    /// The block an incoming fill would evict, if any.
    #[must_use]
    pub fn victim_for(&self, block: BlockAddr) -> Option<BlockAddr> {
        self.lines.victim_for(block)
    }

    /// Iterates all valid lines (crash draining under eADR, invariant
    /// checks in tests).
    pub fn iter(&self) -> impl Iterator<Item = &L2Line> {
        self.lines.iter().map(|(_, l)| l)
    }

    /// Number of valid lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when the cache holds no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> L2Cache {
        L2Cache::new(&CacheConfig {
            capacity_bytes: 8192,
            ways: 4,
            latency: 11,
        })
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn fill_starts_clean_and_unowned() {
        let mut l2 = cache();
        l2.fill(b(0), [3; 64], true);
        let line = l2.peek(b(0)).unwrap();
        assert!(!line.dirty);
        assert!(line.unowned());
        assert!(line.persistent);
    }

    #[test]
    fn directory_updates_via_peek_mut() {
        let mut l2 = cache();
        l2.fill(b(0), [0; 64], false);
        {
            let line = l2.peek_mut(b(0)).unwrap();
            line.owner = Some(2);
            line.dirty = true;
        }
        let line = l2.peek(b(0)).unwrap();
        assert_eq!(line.owner, Some(2));
        assert!(line.dirty);
    }

    #[test]
    fn eviction_returns_directory_state() {
        // 8192/64 = 128 blocks, 4 ways => 32 sets; blocks 0,32,64,96,128
        // collide in set 0.
        let mut l2 = cache();
        for i in 0..4 {
            l2.fill(b(i * 32), [i as u8; 64], false);
        }
        l2.peek_mut(b(0)).unwrap().add_sharer(5);
        // Re-touch all but block 32 so it is LRU.
        l2.touch(b(0));
        l2.touch(b(64));
        l2.touch(b(96));
        let victim = l2.fill(b(128), [9; 64], false).unwrap();
        assert_eq!(victim.block, b(32));
        assert_eq!(l2.len(), 4);
    }

    #[test]
    fn remove_drops_line() {
        let mut l2 = cache();
        l2.fill(b(1), [1; 64], false);
        assert!(l2.remove(b(1)).is_some());
        assert!(l2.peek(b(1)).is_none());
        assert!(l2.is_empty());
    }
}

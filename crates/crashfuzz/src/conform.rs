//! Cycle-granular crash-image sweeps for litmus op schedules.
//!
//! The conformance driver (`bbb-check conform`) needs the set of
//! post-crash images a scheduled litmus execution can produce — not just
//! at op boundaries, but *inside* ops, where store-buffer drains and
//! persist-buffer bursts are in flight. This module reuses the crash-
//! point sweep machinery on a [`ScheduledOps`] bridge: a reference pass
//! records the run length and every persisting-store boundary
//! ([`bbb_core::System::run_probed_stores`]), [`plan_points`] straddles
//! each boundary with dense/random filler, and a single forward pass
//! takes a non-destructive [`bbb_core::System::crash_image`] at every
//! planned cycle, memoized by [`bbb_core::System::crash_image_epoch`].

use bbb_core::{NvmImage, Op, PersistencyMode, RunCursor, ScheduledOps, StopAt, System};
use bbb_sim::SimConfig;

use crate::grid::{plan_points, GridSpec};

/// Sweeps battery-intact crash images across one scheduled execution at
/// cycle granularity. Returns the distinct-epoch images in crash-cycle
/// order, always including the final (run-complete) image.
///
/// # Panics
///
/// Panics if the configuration is rejected by [`System::new`].
#[must_use]
pub fn schedule_images(
    cfg: &SimConfig,
    mode: PersistencyMode,
    ops: &[(usize, Op)],
    grid: &GridSpec,
) -> Vec<NvmImage> {
    // Reference pass: run length + persisting-store boundary cycles.
    let mut sys = System::new(cfg.clone(), mode).expect("litmus config");
    let mut w = ScheduledOps::new(ops, cfg.cores);
    let mut cursor = RunCursor::new(cfg.cores);
    let mut store_cycles = Vec::new();
    sys.run_probed_stores(&mut w, &mut cursor, &mut store_cycles);
    let total = sys.cycle();
    let final_image = sys.crash_image(true);
    if total == 0 {
        return vec![final_image];
    }

    // Forward pass: one machine, paused at each planned cycle.
    let points = plan_points(total, &store_cycles, grid);
    let mut sys = System::new(cfg.clone(), mode).expect("litmus config");
    let mut w = ScheduledOps::new(ops, cfg.cores);
    let mut cursor = RunCursor::new(cfg.cores);
    let mut images = Vec::with_capacity(points.len() + 1);
    let mut last_epoch = None;
    for point in points {
        sys.run_until(&mut w, &mut cursor, StopAt::Cycle(point));
        let epoch = sys.crash_image_epoch(true);
        if last_epoch != Some(epoch) {
            images.push(sys.crash_image(true));
            last_epoch = Some(epoch);
        }
    }
    images.push(final_image);
    images
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::CRASHFUZZ_SEED;
    use bbb_sim::AddressMap;

    fn ops(base: u64) -> Vec<(usize, Op)> {
        vec![
            (0, Op::store_u64(base, 1)),
            (1, Op::store_u64(base + 0x1000, 2)),
            (0, Op::store_u64(base + 0x2000, 3)),
            (0, Op::Fence),
            (1, Op::store_u64(base + 0x3000, 4)),
        ]
    }

    #[test]
    fn sweep_is_deterministic_and_ends_with_the_final_image() {
        let cfg = SimConfig::small_for_tests();
        let base = AddressMap::new(&cfg).persistent_base();
        let grid = GridSpec::bounded(8, 4, CRASHFUZZ_SEED);
        for mode in PersistencyMode::ALL {
            let a = schedule_images(&cfg, mode, &ops(base), &grid);
            let b = schedule_images(&cfg, mode, &ops(base), &grid);
            assert!(!a.is_empty());
            let pairs = a.iter().zip(&b);
            for (x, y) in pairs {
                assert_eq!(x.read_u64(base), y.read_u64(base));
                assert_eq!(x.read_u64(base + 0x3000), y.read_u64(base + 0x3000));
            }
            // The last image is the completed run: everything persisted
            // under battery-backed modes.
            if mode != PersistencyMode::Pmem && mode != PersistencyMode::Bep {
                let last = a.last().unwrap();
                assert_eq!(last.read_u64(base), 1);
                assert_eq!(last.read_u64(base + 0x3000), 4);
            }
        }
    }

    #[test]
    fn battery_prefix_discipline_holds_at_every_swept_cycle() {
        // Under pov-pop modes every image must be a schedule prefix:
        // seeing a later store implies every earlier one.
        let cfg = SimConfig::small_for_tests();
        let base = AddressMap::new(&cfg).persistent_base();
        let grid = GridSpec::bounded(32, 16, CRASHFUZZ_SEED);
        let locs = [base, base + 0x1000, base + 0x2000, base + 0x3000];
        for mode in [
            PersistencyMode::Eadr,
            PersistencyMode::BbbMemorySide,
            PersistencyMode::BbbProcessorSide,
        ] {
            for img in schedule_images(&cfg, mode, &ops(base), &grid) {
                let seen: Vec<bool> = locs.iter().map(|&a| img.read_u64(a) != 0).collect();
                for i in 1..seen.len() {
                    assert!(
                        !seen[i] || seen[i - 1],
                        "{mode:?}: store {i} persisted before store {}",
                        i - 1
                    );
                }
            }
        }
    }
}

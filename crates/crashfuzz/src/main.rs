//! `crashfuzz` — sweep power failures across every (workload, mode) pair.
//!
//! ```text
//! crashfuzz [--smoke] [--json] [--seed N] [--pstore]
//!
//!   --smoke   CI grid: smoke-sized workloads, ~300 planned points/pair
//!   --json    also write BENCH_crashfuzz.json (or set BBB_JSON=1)
//!   --seed N  random-point seed (default 0xBBB5EED)
//!   --pstore  sweep the bbb-pstore ring protocol instead of the Table IV
//!             suite: every mode under the paper's discipline with crash
//!             points planned on persisting-store boundaries, plus the
//!             lossy PMEM/BEP differential oracles (report: crashfuzz-pstore)
//! ```
//!
//! Exit status is non-zero when any pair fails: a consistency violation
//! under a mode that guarantees consistency (the reproducer test is
//! printed, shrunk), or a negative oracle that drew no blood.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use bbb_core::PersistencyMode;
use bbb_crashfuzz::{
    lost_updates_observable, merge_shards, plan_shards, shrink, sweep_shard, GridSpec, SweepConfig,
    SweepOutcome, SweepPerf, SweepShard, CRASHFUZZ_SEED,
};
use bbb_runner::{json_requested, Report, Runner};
use bbb_sim::{EventKind, SimConfig, Table};
use bbb_workloads::{WorkloadKind, WorkloadParams};

fn usage() -> ! {
    eprintln!("usage: crashfuzz [--smoke] [--json] [--seed N] [--pstore]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut pstore = false;
    let mut seed = CRASHFUZZ_SEED;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--pstore" => pstore = true,
            "--json" => {} // consumed by json_requested()
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => usage(),
            },
            _ => usage(),
        }
    }

    let cfg = SimConfig::default();
    let params = if smoke {
        WorkloadParams::smoke()
    } else {
        WorkloadParams {
            initial: 2048,
            per_core_ops: 256,
            seed: 0xB0B,
            instrument: false,
        }
    };
    let grid = if smoke {
        GridSpec {
            seed,
            ..GridSpec::smoke()
        }
    } else {
        GridSpec::bounded(512, 128, seed)
    };

    // Every pair under the paper's discipline, plus — for workloads
    // whose lost updates the checker can observe — the two lossy
    // differential oracles. `--pstore` swaps in the ring-protocol sweep:
    // same shape, but crash points land on persisting-store boundaries
    // (the protocol is fence-free under BBB, so ordering events would
    // plan nothing) and the report is kept separate so the committed
    // Table IV artifact stays byte-stable.
    let suite: &[WorkloadKind] = if pstore {
        &[WorkloadKind::PstoreLog]
    } else {
        &WorkloadKind::ALL
    };
    let mut configs = Vec::new();
    for &kind in suite {
        for mode in PersistencyMode::ALL {
            let mut sc = SweepConfig::paper_discipline(kind, mode, &cfg, params, grid);
            if pstore {
                sc = sc.with_store_boundaries();
            }
            configs.push(sc);
        }
        if lost_updates_observable(kind) {
            for mode in [PersistencyMode::Pmem, PersistencyMode::Bep] {
                let mut sc = SweepConfig::lossy(kind, mode, &cfg, params, grid);
                if pstore {
                    sc = sc.with_store_boundaries();
                }
                configs.push(sc);
            }
        }
    }

    // Two-phase parallel sweep. Phase 1 plans each pair's crash grid
    // (one reference run per pair) and shards the points so every worker
    // thread gets a contiguous chunk; phase 2 flattens the shards of all
    // pairs into one work list for the pool. Shard outcomes merge back
    // in plan order, so the table below is bit-identical to a serial
    // sweep at any `BBB_THREADS`.
    let runner = Runner::from_env();
    // Perf-timing site: wall time is reported, never fed back into the sim.
    #[allow(clippy::disallowed_methods)]
    let wall = Instant::now();
    let shards_per_pair = runner.threads();
    let shard_sets: Vec<Vec<SweepShard>> =
        runner.map(&configs, |c| plan_shards(c, shards_per_pair));
    let flat: Vec<SweepShard> = shard_sets.iter().flatten().cloned().collect();
    let mut partials = runner.map(&flat, sweep_shard).into_iter();
    let outcomes: Vec<SweepOutcome> = configs
        .iter()
        .zip(&shard_sets)
        .map(|(cfg, set)| {
            let parts: Vec<_> = (0..set.len())
                .map(|_| partials.next().expect("shard"))
                .collect();
            merge_shards(cfg, &parts)
        })
        .collect();
    let wall_secs = wall.elapsed().as_secs_f64();

    let mut perf = SweepPerf::default();
    for out in &outcomes {
        perf.absorb(&out.perf);
    }

    let report_name = if pstore {
        "crashfuzz-pstore"
    } else {
        "crashfuzz"
    };
    let mut report = Report::with_json(report_name, json_requested());
    report.meta_scale_name(if smoke { "smoke" } else { "full" });
    report.meta("seed", seed);
    report.meta("grid", if smoke { "smoke" } else { "full" });
    report.meta("pairs", configs.len());
    let mut table = Table::new(
        "Crash-point sweep",
        &[
            "pair",
            "points",
            "failures",
            "neg points",
            "signatures",
            "status",
        ],
    );
    let mut total_points = 0usize;
    let mut total_failures = 0usize;
    for out in &outcomes {
        total_points += out.points;
        total_failures += out.failures.len();
        table.row_owned(vec![
            out.label.clone(),
            out.points.to_string(),
            out.failures.len().to_string(),
            out.negative_points.to_string(),
            out.negative_signatures.to_string(),
            status(out).to_owned(),
        ]);
    }
    report.table(table);
    report.note(format!(
        "{} pairs, {} crash points swept, {} consistency failures",
        outcomes.len(),
        total_points,
        total_failures
    ));
    report.meta("total_points", total_points);
    report.meta("total_failures", total_failures);
    report.meta("threads", runner.threads());
    report.meta("wall_seconds", wall_secs);
    report.meta("points_per_sec", total_points as f64 / wall_secs.max(1e-9));
    report.meta(
        "sim_cycles_per_sec",
        perf.sim_cycles as f64 / wall_secs.max(1e-9),
    );
    report.emit().expect("report written");

    emit_perf_report(
        &runner,
        &flat,
        total_points,
        wall_secs,
        &perf,
        smoke,
        pstore,
    );

    let mut failed = false;
    for (cfg, out) in configs.iter().zip(&outcomes) {
        if out.passed() {
            continue;
        }
        failed = true;
        if let Some(first) = out.failures.first() {
            eprintln!(
                "\n{}: {} crash point(s) failed recovery; shrinking the first…",
                out.label,
                out.failures.len()
            );
            let rep = shrink(cfg, first);
            eprintln!(
                "minimal reproducer (cycle {} of a {}-op run):\n\n{}\n",
                rep.failure.cycle, rep.config.params.per_core_ops, rep.test_source
            );
        }
        if out.toothless() {
            eprintln!(
                "\n{}: negative oracle swept {} points without one lost-update \
                 signature — the recovery checker has no teeth here",
                out.label, out.negative_points
            );
        }
    }
    std::process::exit(i32::from(failed));
}

/// Writes the `perf` wall-time report (and `BENCH_perf.json` when JSON
/// output is requested): sweep throughput, the copy-on-write snapshot
/// economics of the clone-free crash imaging path, and the scheduler's
/// per-component simulated-cycle attribution. CI's perf-smoke job
/// archives this file and alarms on >1.5× wall-time regression against
/// the recorded budget. The ASCII form goes to stderr: it carries
/// wall-clock numbers, and stdout must stay byte-identical across
/// `BBB_THREADS` settings.
fn emit_perf_report(
    runner: &Runner,
    shards: &[SweepShard],
    total_points: usize,
    wall_secs: f64,
    perf: &SweepPerf,
    smoke: bool,
    pstore: bool,
) {
    // The pstore sweep keeps its own perf artifact: BENCH_perf.json is a
    // committed Table IV artifact the CI perf job alarms on.
    let name = if pstore { "perf-pstore" } else { "perf" };
    let mut report = Report::with_json(name, json_requested());
    report.meta_scale_name(if smoke { "smoke" } else { "full" });
    report.meta("threads", runner.threads());
    report.meta("shards", shards.len());
    report.meta("wall_seconds", wall_secs);
    report.meta("points", total_points);
    report.meta("points_per_sec", total_points as f64 / wall_secs.max(1e-9));
    report.meta(
        "sim_cycles_per_sec",
        perf.sim_cycles as f64 / wall_secs.max(1e-9),
    );
    for kind in EventKind::ALL {
        report.meta(
            &format!("sched.events.{}", kind.name()),
            perf.sched.count(kind),
        );
        report.meta(
            &format!("sched.cycles.{}", kind.name()),
            perf.sched.cycles(kind),
        );
    }
    let mut table = Table::new("Crash-sweep wall time", &["metric", "value"]);
    table.row_owned(vec!["wall_seconds".into(), format!("{wall_secs:.3}")]);
    table.row_owned(vec![
        "points_per_sec".into(),
        format!("{:.1}", total_points as f64 / wall_secs.max(1e-9)),
    ]);
    table.row_owned(vec![
        "sim_cycles_per_sec".into(),
        format!("{:.0}", perf.sim_cycles as f64 / wall_secs.max(1e-9)),
    ]);
    table.row_owned(vec!["snapshots".into(), perf.snapshots.to_string()]);
    table.row_owned(vec![
        "snapshots_reused".into(),
        perf.snapshots_reused.to_string(),
    ]);
    table.row_owned(vec![
        "snapshot_pages_shared".into(),
        perf.pages_shared.to_string(),
    ]);
    table.row_owned(vec![
        "snapshot_pages_copied".into(),
        perf.pages_copied.to_string(),
    ]);
    table.row_owned(vec![
        "clone_bytes_avoided".into(),
        perf.clone_bytes_avoided.to_string(),
    ]);
    report.table(table);
    // Where simulated time went, per scheduler event kind: the profile the
    // event-driven interpreter attributes as each op completes.
    let mut sched = Table::new(
        "Simulated-cycle attribution",
        &["component", "events", "cycles", "share"],
    );
    let total = perf.sched.total_cycles().max(1);
    for kind in EventKind::ALL {
        sched.row_owned(vec![
            kind.name().into(),
            perf.sched.count(kind).to_string(),
            perf.sched.cycles(kind).to_string(),
            format!(
                "{:.1}%",
                100.0 * perf.sched.cycles(kind) as f64 / total as f64
            ),
        ]);
    }
    report.table(sched);
    report.note(format!(
        "{} snapshots: {} pages shared, {} copied ({} clone bytes avoided)",
        perf.snapshots, perf.pages_shared, perf.pages_copied, perf.clone_bytes_avoided
    ));
    report.emit_to_stderr().expect("perf report written");
}

fn status(out: &SweepOutcome) -> &'static str {
    if out.passed() {
        "ok"
    } else if out.toothless() {
        "TOOTHLESS"
    } else {
        "FAILED"
    }
}

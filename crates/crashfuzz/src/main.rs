//! `crashfuzz` — sweep power failures across every (workload, mode) pair.
//!
//! ```text
//! crashfuzz [--smoke] [--json] [--seed N]
//!
//!   --smoke   CI grid: smoke-sized workloads, ~300 planned points/pair
//!   --json    also write BENCH_crashfuzz.json (or set BBB_JSON=1)
//!   --seed N  random-point seed (default 0xBBB5EED)
//! ```
//!
//! Exit status is non-zero when any pair fails: a consistency violation
//! under a mode that guarantees consistency (the reproducer test is
//! printed, shrunk), or a negative oracle that drew no blood.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bbb_core::PersistencyMode;
use bbb_crashfuzz::{
    lost_updates_observable, shrink, sweep, GridSpec, SweepConfig, SweepOutcome, CRASHFUZZ_SEED,
};
use bbb_runner::{json_requested, Report, Runner};
use bbb_sim::{SimConfig, Table};
use bbb_workloads::{WorkloadKind, WorkloadParams};

fn usage() -> ! {
    eprintln!("usage: crashfuzz [--smoke] [--json] [--seed N]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = CRASHFUZZ_SEED;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--json" => {} // consumed by json_requested()
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => usage(),
            },
            _ => usage(),
        }
    }

    let cfg = SimConfig::default();
    let params = if smoke {
        WorkloadParams::smoke()
    } else {
        WorkloadParams {
            initial: 2048,
            per_core_ops: 256,
            seed: 0xB0B,
            instrument: false,
        }
    };
    let grid = if smoke {
        GridSpec {
            seed,
            ..GridSpec::smoke()
        }
    } else {
        GridSpec::bounded(512, 128, seed)
    };

    // Every pair under the paper's discipline, plus — for workloads
    // whose lost updates the checker can observe — the two lossy
    // differential oracles.
    let mut configs = Vec::new();
    for kind in WorkloadKind::ALL {
        for mode in PersistencyMode::ALL {
            configs.push(SweepConfig::paper_discipline(
                kind, mode, &cfg, params, grid,
            ));
        }
        if lost_updates_observable(kind) {
            configs.push(SweepConfig::lossy(
                kind,
                PersistencyMode::Pmem,
                &cfg,
                params,
                grid,
            ));
            configs.push(SweepConfig::lossy(
                kind,
                PersistencyMode::Bep,
                &cfg,
                params,
                grid,
            ));
        }
    }

    let outcomes = Runner::from_env().map(&configs, sweep);

    let mut report = Report::with_json("crashfuzz", json_requested());
    report.meta("seed", seed);
    report.meta("grid", if smoke { "smoke" } else { "full" });
    report.meta("pairs", configs.len());
    let mut table = Table::new(
        "Crash-point sweep",
        &[
            "pair",
            "points",
            "failures",
            "neg points",
            "signatures",
            "status",
        ],
    );
    let mut total_points = 0usize;
    let mut total_failures = 0usize;
    for out in &outcomes {
        total_points += out.points;
        total_failures += out.failures.len();
        table.row_owned(vec![
            out.label.clone(),
            out.points.to_string(),
            out.failures.len().to_string(),
            out.negative_points.to_string(),
            out.negative_signatures.to_string(),
            status(out).to_owned(),
        ]);
    }
    report.table(table);
    report.note(format!(
        "{} pairs, {} crash points swept, {} consistency failures",
        outcomes.len(),
        total_points,
        total_failures
    ));
    report.meta("total_points", total_points);
    report.meta("total_failures", total_failures);
    report.emit().expect("report written");

    let mut failed = false;
    for (cfg, out) in configs.iter().zip(&outcomes) {
        if out.passed() {
            continue;
        }
        failed = true;
        if let Some(first) = out.failures.first() {
            eprintln!(
                "\n{}: {} crash point(s) failed recovery; shrinking the first…",
                out.label,
                out.failures.len()
            );
            let rep = shrink(cfg, first);
            eprintln!(
                "minimal reproducer (cycle {} of a {}-op run):\n\n{}\n",
                rep.failure.cycle, rep.config.params.per_core_ops, rep.test_source
            );
        }
        if out.toothless() {
            eprintln!(
                "\n{}: negative oracle swept {} points without one lost-update \
                 signature — the recovery checker has no teeth here",
                out.label, out.negative_points
            );
        }
    }
    std::process::exit(i32::from(failed));
}

fn status(out: &SweepOutcome) -> &'static str {
    if out.passed() {
        "ok"
    } else if out.toothless() {
        "TOOTHLESS"
    } else {
        "FAILED"
    }
}

//! Failure shrinking: turn a crash-sweep failure into the smallest
//! reproducer we can find, printed as a ready-to-paste regression test.
//!
//! Two shrink dimensions, applied greedily:
//!
//! 1. **Workload size** — halve `per_core_ops` and `initial` while a
//!    dense re-scan of the smaller run still fails. Smaller runs make the
//!    regression test fast and the failing state legible.
//! 2. **Crash cycle** — on the final configuration, find the earliest
//!    failing point of a dense grid, then walk cycle-by-cycle through the
//!    preceding stride to the *minimal* failing cycle.

use bbb_sim::{Cycle, SimConfig};

use crate::grid::GridSpec;
use crate::sweep::{first_failure_at, reference_run, CrashFailure, SweepConfig};

/// Dense points used for each shrink re-scan.
const RESCAN_POINTS: usize = 256;

/// A shrunk failure plus its generated regression test.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The shrunk configuration that still fails.
    pub config: SweepConfig,
    /// Minimal failing crash cycle found.
    pub failure: CrashFailure,
    /// A complete `#[test]` function reproducing the failure, ready to
    /// paste into `tests/crash_sweep.rs`.
    pub test_source: String,
}

fn rescan(cfg: &SweepConfig, battery_dropped: bool) -> Option<CrashFailure> {
    let reference = reference_run(cfg);
    let spec = GridSpec::bounded(RESCAN_POINTS, 0, cfg.grid.seed);
    let points = crate::grid::plan_points(reference.total_cycles, &reference.event_cycles, &spec);
    first_failure_at(cfg, battery_dropped, &points)
}

/// Shrinks `failure` (found while sweeping `cfg`) to a minimal
/// reproducer. Deterministic and bounded: each re-scan replays one run.
#[must_use]
pub fn shrink(cfg: &SweepConfig, failure: &CrashFailure) -> Reproducer {
    let battery = failure.battery_dropped;
    let mut best_cfg = cfg.clone();
    let mut best = failure.clone();

    // Dimension 1: workload size.
    loop {
        let mut cand = best_cfg.clone();
        let mut changed = false;
        if cand.params.per_core_ops > 4 {
            cand.params.per_core_ops /= 2;
            changed = true;
        }
        if cand.params.initial > 8 {
            cand.params.initial /= 2;
            changed = true;
        }
        if !changed {
            break;
        }
        match rescan(&cand, battery) {
            Some(f) => {
                best_cfg = cand;
                best = f;
            }
            None => break, // smaller run no longer fails; keep the last one
        }
    }

    // Dimension 2: minimal failing cycle. `rescan` already found the
    // earliest failing point on a dense grid; walk the stride before it
    // cycle by cycle.
    if let Some(f) = rescan(&best_cfg, battery) {
        best = f;
    }
    let reference = reference_run(&best_cfg);
    let stride = (reference.total_cycles / RESCAN_POINTS as u64).max(1);
    if stride > 1 {
        let lo = best.cycle.saturating_sub(stride - 1).max(1);
        let window: Vec<Cycle> = (lo..=best.cycle).collect();
        if let Some(f) = first_failure_at(&best_cfg, battery, &window) {
            best = f;
        }
    }

    let test_source = test_source(&best_cfg, &best);
    Reproducer {
        config: best_cfg,
        failure: best,
        test_source,
    }
}

/// Chooses the named `SimConfig` constructor the machine was derived
/// from; `exact` is false when fields beyond cores/heap/bbPB-entries were
/// customized (the generated test then carries a warning comment).
fn base_expr(cfg: &SimConfig) -> (&'static str, bool) {
    for (expr, base) in [
        ("SimConfig::small_for_tests()", SimConfig::small_for_tests()),
        ("SimConfig::default()", SimConfig::default()),
    ] {
        let mut adjusted = base;
        adjusted.cores = cfg.cores;
        adjusted.persistent_heap_bytes = cfg.persistent_heap_bytes;
        adjusted.bbpb.entries = cfg.bbpb.entries;
        if *cfg == adjusted {
            return (expr, true);
        }
    }
    ("SimConfig::default()", false)
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a complete `#[test]` reproducing `failure` under `cfg`.
#[must_use]
pub fn test_source(cfg: &SweepConfig, failure: &CrashFailure) -> String {
    let (base, exact) = base_expr(&cfg.cfg);
    let caveat = if exact {
        String::new()
    } else {
        "    // WARNING: the sweep's machine customized more SimConfig fields than\n    // cores/heap/bbPB entries below — port those too.\n".to_owned()
    };
    let barrier_line = if cfg.epoch_barriers {
        "    let mut w = bbb::workloads::suite::with_epoch_barriers(w);\n"
    } else {
        ""
    };
    let crash_call = if failure.battery_dropped {
        "crash_now_battery_dropped"
    } else {
        "crash_now"
    };
    let detail = failure
        .report
        .failure
        .as_deref()
        .unwrap_or("(verification failure)");
    let wl_variant = format!("{:?}", cfg.workload);
    let mode_variant = format!("{:?}", cfg.mode);
    format!(
        r#"#[test]
fn crashfuzz_regression_{wl_fn}_{mode_fn}_cycle_{cycle}() {{
    // Generated by bbb-crashfuzz: power failure at cycle {cycle} leaves
    // {wl_name} unrecoverable under {mode_debug}.
    // Observed: {detail}
    use bbb::core::{{PersistencyMode, RunCursor, StopAt, System}};
    use bbb::sim::SimConfig;
    use bbb::workloads::{{make_workload, verify_recovery_report, WorkloadKind, WorkloadParams}};

{caveat}    let mut cfg = {base};
    cfg.cores = {cores};
    cfg.persistent_heap_bytes = {heap};
    cfg.bbpb.entries = {entries};
    let params = WorkloadParams {{
        initial: {initial},
        per_core_ops: {ops},
        seed: {seed:#x},
        instrument: {instrument},
    }};
    let mut w = make_workload(WorkloadKind::{wl_variant}, &cfg, params);
{barrier_line}    let mut sys = System::new(cfg.clone(), PersistencyMode::{mode_variant}).unwrap();
    sys.prepare(w.as_mut());
    let mut cursor = RunCursor::new(cfg.cores);
    sys.run_until(w.as_mut(), &mut cursor, StopAt::Cycle({cycle}));
    let image = sys.{crash_call}();
    let report = verify_recovery_report(WorkloadKind::{wl_variant}, &image, &cfg, params);
    assert!(report.ok(), "{{report}}");
}}"#,
        wl_fn = sanitize(cfg.workload.name()),
        mode_fn = sanitize(cfg.mode_tag()),
        cycle = failure.cycle,
        wl_name = cfg.workload.name(),
        mode_debug = cfg.mode,
        detail = detail,
        base = base,
        cores = cfg.cfg.cores,
        heap = cfg.cfg.persistent_heap_bytes,
        entries = cfg.cfg.bbpb.entries,
        initial = cfg.params.initial,
        ops = cfg.params.per_core_ops,
        seed = cfg.params.seed,
        instrument = cfg.params.instrument,
        wl_variant = wl_variant,
        mode_variant = mode_variant,
        crash_call = crash_call,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::CRASHFUZZ_SEED;
    use bbb_core::PersistencyMode;
    use bbb_workloads::{RecoveryReport, WorkloadKind, WorkloadParams};

    fn lossy_cfg() -> SweepConfig {
        SweepConfig::lossy(
            WorkloadKind::Hashmap,
            PersistencyMode::Pmem,
            &SimConfig::small_for_tests(),
            WorkloadParams::smoke(),
            GridSpec::bounded(64, 0, CRASHFUZZ_SEED),
        )
    }

    #[test]
    fn generated_test_mentions_every_load_bearing_parameter() {
        let cfg = lossy_cfg();
        let f = CrashFailure {
            cycle: 1234,
            battery_dropped: false,
            report: RecoveryReport {
                workload: WorkloadKind::Hashmap,
                recovered: 7,
                failure: Some("bucket 3: dangling node pointer".into()),
            },
        };
        let src = test_source(&cfg, &f);
        assert!(src.contains("#[test]"));
        assert!(src.contains("StopAt::Cycle(1234)"));
        assert!(src.contains("WorkloadKind::Hashmap"));
        assert!(src.contains("PersistencyMode::Pmem"));
        assert!(src.contains("SimConfig::small_for_tests()"));
        assert!(src.contains("dangling node pointer"));
        assert!(src.contains("crashfuzz_regression_hashmap_pmem_cycle_1234"));
        assert!(!src.contains("WARNING"), "small_for_tests is an exact base");
    }

    #[test]
    fn battery_dropped_failures_use_the_dropped_crash_call() {
        let cfg = lossy_cfg();
        let f = CrashFailure {
            cycle: 9,
            battery_dropped: true,
            report: RecoveryReport {
                workload: WorkloadKind::Hashmap,
                recovered: 0,
                failure: Some("torn".into()),
            },
        };
        assert!(test_source(&cfg, &f).contains("crash_now_battery_dropped()"));
    }

    #[test]
    fn shrink_finds_a_smaller_failing_run_for_unflushed_pmem() {
        // Unflushed PMEM fails recovery at some crash point even at tiny
        // scale, so the shrinker must both shrink the workload and keep a
        // failing cycle.
        let cfg = lossy_cfg();
        let reference = reference_run(&cfg);
        let points =
            crate::grid::plan_points(reference.total_cycles, &reference.event_cycles, &cfg.grid);
        let Some(found) = first_failure_at(&cfg, false, &points) else {
            // Nothing to shrink at this scale; the sweep-level negative
            // oracle (final differential) covers the teeth check instead.
            return;
        };
        let rep = shrink(&cfg, &found);
        assert!(rep.failure.cycle <= found.cycle);
        assert!(rep.config.params.per_core_ops <= cfg.params.per_core_ops);
        assert!(!rep.failure.report.ok());
        assert!(rep.test_source.contains("#[test]"));
    }
}

//! Crash-point planning: choosing the cycles at which to inject power
//! failures.
//!
//! A useful sweep mixes three families of points:
//!
//! * **dense** — an even stride across the whole run, so no phase of the
//!   execution goes unprobed,
//! * **random** — SplitMix64-seeded points that break any accidental
//!   alignment between the stride and the machine's own periodicity
//!   (drain thresholds, epoch lengths),
//! * **boundary** — the cycles `e-1`, `e`, `e+1` straddling every observed
//!   ordering event (epoch barriers, forced bbPB drains, WPQ backpressure
//!   stalls). Persistency bugs live at these edges: the interesting
//!   question is always "what if power fails one cycle before/after the
//!   hardware committed to an ordering decision".

use std::collections::BTreeSet;

use bbb_sim::{Cycle, SplitMix64};

/// Default planner seed (sweeps are bit-reproducible given a seed).
pub const CRASHFUZZ_SEED: u64 = 0xBBB_5EED;

/// How many points of each family to plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    /// Target number of evenly-strided points across the run.
    pub dense_points: usize,
    /// Number of seeded-random points.
    pub random_points: usize,
    /// Seed for the random family.
    pub seed: u64,
}

impl GridSpec {
    /// The CI smoke grid: enough points (≥ 200 on any non-trivial run)
    /// to straddle every drain/backpressure edge of a smoke-sized
    /// workload, small enough to sweep every (workload, mode) pair in
    /// seconds.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            dense_points: 224,
            random_points: 64,
            seed: CRASHFUZZ_SEED,
        }
    }

    /// An explicitly-sized grid (for tests and the shrinker).
    #[must_use]
    pub fn bounded(dense_points: usize, random_points: usize, seed: u64) -> Self {
        Self {
            dense_points,
            random_points,
            seed,
        }
    }
}

/// Plans the sorted, deduplicated set of crash cycles for a run that
/// lasted `total` cycles and exhibited ordering events at `events`.
///
/// Every returned point lies in `1..=total`; the same inputs always
/// produce the same plan.
///
/// # Panics
///
/// Panics if `total == 0` (nothing ran; there is nothing to crash).
#[must_use]
pub fn plan_points(total: Cycle, events: &[Cycle], spec: &GridSpec) -> Vec<Cycle> {
    assert!(total > 0, "cannot plan crash points for an empty run");
    let mut set = BTreeSet::new();
    if spec.dense_points > 0 {
        let stride = (total / spec.dense_points as u64).max(1);
        let mut t = stride;
        while t <= total {
            set.insert(t);
            t += stride;
        }
    }
    let mut rng = SplitMix64::new(spec.seed);
    for _ in 0..spec.random_points {
        set.insert(1 + rng.next_below(total));
    }
    for &e in events {
        for p in [e.saturating_sub(1), e, e.saturating_add(1)] {
            if (1..=total).contains(&p) {
                set.insert(p);
            }
        }
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_sorted_deduplicated_and_in_range() {
        let spec = GridSpec::bounded(50, 20, 7);
        let points = plan_points(1000, &[3, 500, 999], &spec);
        assert!(points.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        assert!(points.iter().all(|&p| (1..=1000).contains(&p)));
        assert!(points.len() >= 50);
    }

    #[test]
    fn plan_is_deterministic() {
        let spec = GridSpec::smoke();
        let a = plan_points(5000, &[100, 2000], &spec);
        let b = plan_points(5000, &[100, 2000], &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn boundary_points_straddle_events() {
        let spec = GridSpec::bounded(0, 0, 1);
        let points = plan_points(1000, &[500], &spec);
        assert_eq!(points, vec![499, 500, 501]);
    }

    #[test]
    fn event_at_run_edges_is_clamped() {
        let spec = GridSpec::bounded(0, 0, 1);
        // e-1 = 0 is dropped (nothing ran yet); e+1 past the end is dropped.
        assert_eq!(plan_points(10, &[1, 10], &spec), vec![1, 2, 9, 10]);
    }

    #[test]
    fn dense_stride_covers_short_runs_cycle_by_cycle() {
        let spec = GridSpec::bounded(100, 0, 1);
        let points = plan_points(8, &[], &spec);
        assert_eq!(points, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn zero_length_run_panics() {
        let _ = plan_points(0, &[], &GridSpec::smoke());
    }
}

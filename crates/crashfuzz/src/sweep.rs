//! The crash-injection sweep engine.
//!
//! A sweep validates one `(workload, mode)` pair in two deterministic
//! passes over the *same* simulated execution:
//!
//! 1. **Reference pass** — run the workload to completion one op at a
//!    time, sampling [`System::probe_events`] between ops to learn the
//!    run length and the cycles of every ordering event (epoch barriers,
//!    forced bbPB drains, WPQ backpressure stalls).
//! 2. **Forward crash pass** — replay the identical execution, pausing at
//!    each planned crash cycle (ascending, so the whole pass costs one
//!    run); at each point take a non-destructive [`System::crash_image`]
//!    — persist-domain contents overlaid on a copy-on-write snapshot of
//!    NVMM media, zero clones of the machine — and check the recovered
//!    image with the workload's structure checker.
//!
//! The forward pass shards: [`plan_shards`] splits the planned points
//! into contiguous chunks, and each [`sweep_shard`] forward-runs its own
//! fresh cursor from cycle zero to its chunk (the simulation is
//! deterministic, so every shard replays the identical execution).
//! Shards of many configurations can then fill a worker pool; merging
//! the per-shard outcomes in plan order ([`merge_shards`]) reproduces
//! the serial sweep's output bit for bit at any thread count.
//!
//! For configurations whose mode *guarantees* consistency (BBB, eADR,
//! instrumented PMEM, BEP with epoch barriers) any checker failure is a
//! bug — it is recorded and later shrunk to a minimal reproducer. For
//! deliberately lossy configurations (PMEM without flushes, BEP without
//! barriers) and for battery-dropped crashes of battery-backed modes, the
//! sweep instead *requires* lost-update signatures: a checker that never
//! flags a machine designed to lose data has no teeth.

use bbb_core::{PersistencyMode, RunCursor, StopAt, System, Workload, PAGE_BYTES};
use bbb_sim::{Cycle, SchedProfile, SimConfig};
use bbb_workloads::suite::with_epoch_barriers;
use bbb_workloads::{
    make_workload, verify_recovery_report, RecoveryReport, WorkloadKind, WorkloadParams,
};

use crate::grid::{plan_points, GridSpec};

/// One `(workload, mode, machine, discipline, grid)` sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Structure workload under test.
    pub workload: WorkloadKind,
    /// Persistency mode of the simulated machine.
    pub mode: PersistencyMode,
    /// Machine configuration.
    pub cfg: SimConfig,
    /// Workload sizing and seed.
    pub params: WorkloadParams,
    /// Insert an epoch barrier after every high-level operation (the
    /// discipline BEP requires for durability).
    pub epoch_barriers: bool,
    /// Plan crash points on *persisting-store* boundaries instead of
    /// ordering events. Store-granular protocols (the pstore ring: plain
    /// stores, no fences under BBB) have their interesting crash points
    /// between stores, where the ordering probe sees nothing.
    pub store_boundaries: bool,
    /// Crash-point plan.
    pub grid: GridSpec,
}

impl SweepConfig {
    /// A configuration following the paper's correct programming
    /// discipline for `mode`: `clwb`/`sfence` instrumentation under PMEM,
    /// per-operation epoch barriers under BEP, unmodified code elsewhere.
    /// Such a configuration must recover consistently from *every* crash
    /// point.
    #[must_use]
    pub fn paper_discipline(
        workload: WorkloadKind,
        mode: PersistencyMode,
        cfg: &SimConfig,
        mut params: WorkloadParams,
        grid: GridSpec,
    ) -> Self {
        params.instrument = mode.requires_flushes();
        Self {
            workload,
            mode,
            cfg: cfg.clone(),
            params,
            epoch_barriers: mode.requires_epoch_barriers(),
            store_boundaries: false,
            grid,
        }
    }

    /// The same configuration planning its crash grid on persisting-store
    /// boundaries (see [`SweepConfig::store_boundaries`]).
    #[must_use]
    pub fn with_store_boundaries(mut self) -> Self {
        self.store_boundaries = true;
        self
    }

    /// A deliberately lossy configuration: the same mode with its required
    /// discipline *removed* (PMEM without flushes, BEP without barriers).
    /// The sweep uses these as differential negative oracles.
    #[must_use]
    pub fn lossy(
        workload: WorkloadKind,
        mode: PersistencyMode,
        cfg: &SimConfig,
        mut params: WorkloadParams,
        grid: GridSpec,
    ) -> Self {
        params.instrument = false;
        Self {
            workload,
            mode,
            cfg: cfg.clone(),
            params,
            epoch_barriers: false,
            store_boundaries: false,
            grid,
        }
    }

    /// True when this configuration's mode + discipline guarantee that
    /// every crash point recovers consistently.
    #[must_use]
    pub fn expects_consistent(&self) -> bool {
        match self.mode {
            PersistencyMode::Pmem => self.params.instrument,
            PersistencyMode::Eadr
            | PersistencyMode::BbbMemorySide
            | PersistencyMode::BbbProcessorSide => true,
            PersistencyMode::Bep => self.epoch_barriers,
        }
    }

    /// True when the mode's durability depends on a battery above the
    /// memory controller — exactly the modes whose battery-dropped crash
    /// must show lost updates.
    #[must_use]
    pub fn battery_oracle(&self) -> bool {
        self.mode.has_bbpb() || matches!(self.mode, PersistencyMode::Eadr)
    }

    /// Short mode tag for labels and generated test names.
    #[must_use]
    pub fn mode_tag(&self) -> &'static str {
        match self.mode {
            PersistencyMode::Pmem => "pmem",
            PersistencyMode::Eadr => "eadr",
            PersistencyMode::BbbMemorySide => "bbb-mem",
            PersistencyMode::BbbProcessorSide => "bbb-proc",
            PersistencyMode::Bep => "bep",
        }
    }

    /// Human-readable pair label, e.g. `hashmap/bbb-mem` or
    /// `swapC/pmem (lossy)`.
    #[must_use]
    pub fn label(&self) -> String {
        let suffix = if self.expects_consistent() {
            ""
        } else {
            " (lossy)"
        };
        format!("{}/{}{}", self.workload.name(), self.mode_tag(), suffix)
    }

    /// The same pair under the mode's correct discipline — the partner a
    /// lossy configuration's final recovery count is compared against.
    #[must_use]
    pub fn consistent_twin(&self) -> Self {
        let mut twin =
            Self::paper_discipline(self.workload, self.mode, &self.cfg, self.params, self.grid);
        twin.store_boundaries = self.store_boundaries;
        twin
    }
}

/// True when `kind`'s recovery checker can observe a lost update.
/// Growth-tracking structures (trees, hashmap) record every successful
/// insert in the image, so a lost one shows up as a smaller recovered
/// count or a dangling pointer. In-place array updates (`Mutate*`,
/// `Swap*`) are unobservable: losing one restores an older but still
/// structurally valid value, which no integrity checker can flag. The
/// sweep only *requires* negative-oracle signatures where they are
/// observable.
#[must_use]
pub fn lost_updates_observable(kind: WorkloadKind) -> bool {
    matches!(
        kind,
        WorkloadKind::Rtree
            | WorkloadKind::Ctree
            | WorkloadKind::Hashmap
            | WorkloadKind::Btree
            // The ring's committed-sequence watermark counts every append,
            // so a lost commit is a smaller recovered count (or a torn
            // window).
            | WorkloadKind::PstoreLog
    )
}

/// What the reference pass learned about the execution.
#[derive(Debug, Clone)]
pub struct Reference {
    /// Total run length in cycles.
    pub total_cycles: Cycle,
    /// Ops committed over the whole run.
    pub total_ops: u64,
    /// Cycles at which an ordering event (fence, forced drain, WPQ
    /// backpressure stall) was first observed.
    pub event_cycles: Vec<Cycle>,
}

fn build(cfg: &SweepConfig) -> (Box<dyn Workload>, System) {
    let mut w = make_workload(cfg.workload, &cfg.cfg, cfg.params);
    if cfg.epoch_barriers {
        w = with_epoch_barriers(w);
    }
    let mut sys = System::new(cfg.cfg.clone(), cfg.mode).expect("valid sweep config");
    sys.prepare(w.as_mut());
    (w, sys)
}

/// Pass 1: runs the workload to completion op by op, recording run length
/// and ordering-event cycles. Deterministic: the forward crash pass
/// replays exactly this execution.
#[must_use]
pub fn reference_run(cfg: &SweepConfig) -> Reference {
    let (mut w, mut sys) = build(cfg);
    let mut cursor = RunCursor::new(cfg.cfg.cores);
    let mut event_cycles = Vec::new();
    if cfg.store_boundaries {
        sys.run_probed_stores(w.as_mut(), &mut cursor, &mut event_cycles);
    } else {
        sys.run_probed(w.as_mut(), &mut cursor, &mut event_cycles);
    }
    Reference {
        total_cycles: sys.cycle(),
        total_ops: cursor.ops(),
        event_cycles,
    }
}

/// One crash point whose recovered image failed verification.
#[derive(Debug, Clone)]
pub struct CrashFailure {
    /// Crash cycle.
    pub cycle: Cycle,
    /// True when the failing crash was the battery-dropped variant.
    pub battery_dropped: bool,
    /// The checker's verdict.
    pub report: RecoveryReport,
}

/// Snapshot-cost and throughput accounting for one sweep (or shard).
///
/// The pre-COW sweep deep-cloned the whole `System` once or twice per
/// crash point; these counters quantify what the copy-on-write
/// [`System::crash_image`] path avoids. All counters are exact and
/// deterministic, so they merge additively across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepPerf {
    /// Crash images taken (healthy + battery-dropped + lossy finals).
    pub snapshots: u64,
    /// Media pages shared between a crash image and the live run —
    /// pages a deep clone would have copied and COW did not.
    pub pages_shared: u64,
    /// Media pages the overlay actually deep-copied (persist-domain
    /// contents landing on pages still shared with the live run).
    pub pages_copied: u64,
    /// Bytes of media never copied thanks to COW snapshots
    /// (`pages_shared * PAGE_BYTES`).
    pub clone_bytes_avoided: u64,
    /// Crash points whose image provably matched the previous point's
    /// ([`System::crash_image_epoch`] unchanged), so the snapshot and
    /// recovery check were skipped and the prior verdict reused.
    pub snapshots_reused: u64,
    /// Simulated cycles executed by the forward crash pass(es).
    pub sim_cycles: u64,
    /// Per-component completion-event attribution of the forward crash
    /// pass(es): which component (pipeline, store buffer, WPQ, persist
    /// buffer, memory system) dominated each committed op's wait. Covers
    /// the same runs as `sim_cycles`.
    pub sched: SchedProfile,
}

impl SweepPerf {
    /// Adds another shard's counters into this one.
    pub fn absorb(&mut self, other: &SweepPerf) {
        self.snapshots += other.snapshots;
        self.pages_shared += other.pages_shared;
        self.pages_copied += other.pages_copied;
        self.clone_bytes_avoided += other.clone_bytes_avoided;
        self.snapshots_reused += other.snapshots_reused;
        self.sim_cycles += other.sim_cycles;
        self.sched.absorb(&other.sched);
    }

    /// Records one crash image against the live system's media stats
    /// (taken just before the image): every resident page starts shared;
    /// the image's COW counter delta says how many the overlay copied.
    fn record_snapshot(&mut self, resident_before: usize, copies_before: u64, copies_after: u64) {
        let copied = copies_after - copies_before;
        let shared = (resident_before as u64).saturating_sub(copied);
        self.snapshots += 1;
        self.pages_shared += shared;
        self.pages_copied += copied;
        self.clone_bytes_avoided += shared * PAGE_BYTES as u64;
    }
}

/// The result of sweeping one configuration.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Pair label (see [`SweepConfig::label`]).
    pub label: String,
    /// Swept workload.
    pub workload: WorkloadKind,
    /// Swept mode.
    pub mode: PersistencyMode,
    /// Whether the configuration promised consistency at every point.
    pub expects_consistent: bool,
    /// Whether the negative oracles are *required* to draw blood — true
    /// only for workloads whose lost updates are observable (see
    /// [`lost_updates_observable`]).
    pub oracle_required: bool,
    /// Distinct crash points swept.
    pub points: usize,
    /// Consistency violations (only possible when `expects_consistent`).
    pub failures: Vec<CrashFailure>,
    /// Crash points probed by a negative oracle (battery-dropped forks,
    /// or every point of a lossy configuration).
    pub negative_points: usize,
    /// Lost-update signatures the negative oracles observed.
    pub negative_signatures: usize,
    /// Snapshot-cost and throughput counters.
    pub perf: SweepPerf,
}

impl SweepOutcome {
    /// True when a negative oracle that *should* have seen lost updates
    /// ran but never saw one — the recovery checker failed to flag a
    /// machine designed to lose data.
    #[must_use]
    pub fn toothless(&self) -> bool {
        self.oracle_required && self.negative_points > 0 && self.negative_signatures == 0
    }

    /// Overall verdict: no consistency violations and every negative
    /// oracle drew blood.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && !self.toothless()
    }
}

/// One worker's slice of a configuration's sweep: a contiguous chunk of
/// the planned crash points, replayed on the worker's own forward cursor.
#[derive(Debug, Clone)]
pub struct SweepShard {
    /// Configuration being swept.
    pub cfg: SweepConfig,
    /// Contiguous ascending slice of the planned crash cycles.
    pub points: Vec<Cycle>,
    /// True on the last shard of a lossy configuration: after its final
    /// point it runs the machine to completion and performs the
    /// final-recovery differential against the consistent twin.
    pub lossy_final: bool,
}

/// The partial outcome one shard contributes (merge with
/// [`merge_shards`] in plan order to recover the serial sweep's output).
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Points this shard swept.
    pub points: usize,
    /// Consistency violations, in ascending crash-cycle order.
    pub failures: Vec<CrashFailure>,
    /// Negative-oracle probes this shard ran.
    pub negative_points: usize,
    /// Lost-update signatures this shard observed.
    pub negative_signatures: usize,
    /// Snapshot-cost and throughput counters.
    pub perf: SweepPerf,
}

/// Pass 1 plus planning: learns the run, plans the crash grid, and splits
/// it into at most `shards` contiguous chunks (fewer when there are fewer
/// points). With `shards == 1` the single shard is the serial sweep.
///
/// The simulation is deterministic, so the concatenated per-shard
/// verdicts are identical for every shard count — only wall-clock
/// parallelism changes.
#[must_use]
pub fn plan_shards(cfg: &SweepConfig, shards: usize) -> Vec<SweepShard> {
    let reference = reference_run(cfg);
    let points = plan_points(reference.total_cycles, &reference.event_cycles, &cfg.grid);
    let shards = shards.clamp(1, points.len().max(1));
    let chunk = points.len().div_ceil(shards).max(1);
    let mut out: Vec<SweepShard> = points
        .chunks(chunk)
        .map(|c| SweepShard {
            cfg: cfg.clone(),
            points: c.to_vec(),
            lossy_final: false,
        })
        .collect();
    if out.is_empty() {
        out.push(SweepShard {
            cfg: cfg.clone(),
            points: Vec::new(),
            lossy_final: false,
        });
    }
    if !cfg.expects_consistent() {
        out.last_mut().expect("at least one shard").lossy_final = true;
    }
    out
}

/// Runs one shard: forward-runs a fresh machine to each of its points
/// (ascending), taking a non-destructive [`System::crash_image`] at each
/// — no system clones anywhere on this path.
#[must_use]
pub fn sweep_shard(shard: &SweepShard) -> ShardOutcome {
    let cfg = &shard.cfg;
    let expects_consistent = cfg.expects_consistent();
    let (mut w, mut sys) = build(cfg);
    let mut cursor = RunCursor::new(cfg.cfg.cores);
    let mut failures = Vec::new();
    let mut negative_points = 0;
    let mut negative_signatures = 0;
    let mut perf = SweepPerf::default();
    // Verdict memo per battery state: consecutive points frequently step
    // zero ops (boundary triples) or touch nothing the image reads, and
    // an unchanged epoch *proves* the image is byte-identical to the
    // previous point's, so the snapshot and checker run are skipped.
    let mut memo: Option<(u64, RecoveryReport)> = None;
    let mut memo_dropped: Option<(u64, RecoveryReport)> = None;
    for &p in &shard.points {
        sys.run_until(w.as_mut(), &mut cursor, StopAt::Cycle(p));
        let epoch = sys.crash_image_epoch(true);
        let report = match &memo {
            Some((e, r)) if *e == epoch => {
                perf.snapshots_reused += 1;
                r.clone()
            }
            _ => {
                let (resident, copies_before) = sys.media_cow_stats();
                let image = sys.crash_image(true);
                perf.record_snapshot(resident, copies_before, image.as_store().cow_page_copies());
                let r = verify_recovery_report(cfg.workload, &image, &cfg.cfg, cfg.params);
                memo = Some((epoch, r.clone()));
                r
            }
        };
        if expects_consistent {
            if !report.ok() {
                failures.push(CrashFailure {
                    cycle: p,
                    battery_dropped: false,
                    report: report.clone(),
                });
            }
        } else {
            negative_points += 1;
            if !report.ok() {
                negative_signatures += 1;
            }
        }
        if cfg.battery_oracle() {
            negative_points += 1;
            let depoch = sys.crash_image_epoch(false);
            let dropped = match &memo_dropped {
                Some((e, r)) if *e == depoch => {
                    perf.snapshots_reused += 1;
                    r.clone()
                }
                _ => {
                    let (resident, copies_before) = sys.media_cow_stats();
                    let image = sys.crash_image(false);
                    perf.record_snapshot(
                        resident,
                        copies_before,
                        image.as_store().cow_page_copies(),
                    );
                    let r = verify_recovery_report(cfg.workload, &image, &cfg.cfg, cfg.params);
                    memo_dropped = Some((depoch, r.clone()));
                    r
                }
            };
            // A dead battery must lose updates relative to the healthy
            // crash at the same cycle: either the image is torn, or fewer
            // elements survive.
            if !dropped.ok() || dropped.recovered < report.recovered {
                negative_signatures += 1;
            }
        }
    }

    if shard.lossy_final {
        // Final differential: run the lossy machine to completion and
        // compare its recovered count against the same pair under the
        // mode's correct discipline. A machine that skips the required
        // flushes/barriers must come up short (or torn).
        negative_points += 1;
        sys.run_until(w.as_mut(), &mut cursor, StopAt::End);
        let lossy_final = {
            let (resident, copies_before) = sys.media_cow_stats();
            let image = sys.crash_image(true);
            perf.record_snapshot(resident, copies_before, image.as_store().cow_page_copies());
            verify_recovery_report(cfg.workload, &image, &cfg.cfg, cfg.params)
        };
        let twin_final = {
            let twin = cfg.consistent_twin();
            let (mut tw, mut tsys) = build(&twin);
            let mut tcursor = RunCursor::new(twin.cfg.cores);
            tsys.run_until(tw.as_mut(), &mut tcursor, StopAt::End);
            let image = tsys.crash_image(true);
            verify_recovery_report(twin.workload, &image, &twin.cfg, twin.params)
        };
        if !lossy_final.ok() || lossy_final.recovered < twin_final.recovered {
            negative_signatures += 1;
        }
    }

    perf.sim_cycles += sys.cycle();
    perf.sched.absorb(sys.sched_profile());
    ShardOutcome {
        points: shard.points.len(),
        failures,
        negative_points,
        negative_signatures,
        perf,
    }
}

/// Folds per-shard outcomes (in plan order) into the configuration's
/// [`SweepOutcome`] — identical to what a 1-shard serial sweep produces.
#[must_use]
pub fn merge_shards(cfg: &SweepConfig, shards: &[ShardOutcome]) -> SweepOutcome {
    let mut points = 0;
    let mut failures = Vec::new();
    let mut negative_points = 0;
    let mut negative_signatures = 0;
    let mut perf = SweepPerf::default();
    for s in shards {
        points += s.points;
        failures.extend(s.failures.iter().cloned());
        negative_points += s.negative_points;
        negative_signatures += s.negative_signatures;
        perf.absorb(&s.perf);
    }
    SweepOutcome {
        label: cfg.label(),
        workload: cfg.workload,
        mode: cfg.mode,
        expects_consistent: cfg.expects_consistent(),
        oracle_required: lost_updates_observable(cfg.workload),
        points,
        failures,
        negative_points,
        negative_signatures,
        perf,
    }
}

/// Runs the full two-pass sweep for one configuration, serially (the
/// single-shard case of [`plan_shards`] + [`sweep_shard`]).
#[must_use]
pub fn sweep(cfg: &SweepConfig) -> SweepOutcome {
    let shards = plan_shards(cfg, 1);
    let partials: Vec<ShardOutcome> = shards.iter().map(sweep_shard).collect();
    merge_shards(cfg, &partials)
}

/// Crashes one deterministic execution at each of `points` (ascending)
/// via non-destructive [`System::crash_image`], returning the first
/// failing point. `battery_dropped` selects the crash variant. The
/// shrinker's workhorse.
#[must_use]
pub fn first_failure_at(
    cfg: &SweepConfig,
    battery_dropped: bool,
    points: &[Cycle],
) -> Option<CrashFailure> {
    let (mut w, mut sys) = build(cfg);
    let mut cursor = RunCursor::new(cfg.cfg.cores);
    for &p in points {
        sys.run_until(w.as_mut(), &mut cursor, StopAt::Cycle(p));
        let image = sys.crash_image(!battery_dropped);
        let report = verify_recovery_report(cfg.workload, &image, &cfg.cfg, cfg.params);
        if !report.ok() {
            return Some(CrashFailure {
                cycle: p,
                battery_dropped,
                report,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::CRASHFUZZ_SEED;

    fn small() -> (SimConfig, WorkloadParams) {
        (SimConfig::small_for_tests(), WorkloadParams::smoke())
    }

    #[test]
    fn reference_pass_sees_the_whole_run() {
        let (cfg, params) = small();
        let sc = SweepConfig::paper_discipline(
            WorkloadKind::Hashmap,
            PersistencyMode::BbbMemorySide,
            &cfg,
            params,
            GridSpec::bounded(16, 4, CRASHFUZZ_SEED),
        );
        let r = reference_run(&sc);
        assert!(r.total_cycles > 0);
        assert!(r.total_ops > 0);
        // The reference pass is deterministic.
        let r2 = reference_run(&sc);
        assert_eq!(r.total_cycles, r2.total_cycles);
        assert_eq!(r.total_ops, r2.total_ops);
        assert_eq!(r.event_cycles, r2.event_cycles);
    }

    #[test]
    fn bbb_sweep_has_no_failures_and_battery_oracle_bites() {
        let (cfg, params) = small();
        let sc = SweepConfig::paper_discipline(
            WorkloadKind::Hashmap,
            PersistencyMode::BbbMemorySide,
            &cfg,
            params,
            GridSpec::bounded(48, 16, CRASHFUZZ_SEED),
        );
        let out = sweep(&sc);
        assert!(out.expects_consistent);
        assert!(
            out.failures.is_empty(),
            "BBB must survive every crash point"
        );
        assert!(
            out.negative_signatures > 0,
            "dead battery must lose updates"
        );
        assert!(out.passed());
    }

    #[test]
    fn lossy_pmem_sweep_shows_lost_updates() {
        let (cfg, params) = small();
        let sc = SweepConfig::lossy(
            WorkloadKind::Hashmap,
            PersistencyMode::Pmem,
            &cfg,
            params,
            GridSpec::bounded(32, 8, CRASHFUZZ_SEED),
        );
        let out = sweep(&sc);
        assert!(!out.expects_consistent);
        assert!(out.failures.is_empty(), "lossy configs record no failures");
        assert!(!out.toothless(), "unflushed PMEM must exhibit a signature");
        assert!(out.passed());
    }

    #[test]
    fn array_workloads_do_not_require_oracle_signatures() {
        // In-place array updates, when lost, restore older but still
        // structurally valid values, so the checkers cannot observe them;
        // the sweep must not demand signatures there.
        assert!(!lost_updates_observable(WorkloadKind::SwapC));
        assert!(lost_updates_observable(WorkloadKind::Hashmap));
        let (cfg, params) = small();
        let sc = SweepConfig::paper_discipline(
            WorkloadKind::SwapC,
            PersistencyMode::Eadr,
            &cfg,
            params,
            GridSpec::bounded(16, 4, CRASHFUZZ_SEED),
        );
        let out = sweep(&sc);
        assert!(!out.oracle_required);
        assert!(!out.toothless());
        assert!(out.passed());
    }

    #[test]
    fn paper_discipline_sets_mode_requirements() {
        let (cfg, params) = small();
        let pmem = SweepConfig::paper_discipline(
            WorkloadKind::Ctree,
            PersistencyMode::Pmem,
            &cfg,
            params,
            GridSpec::smoke(),
        );
        assert!(pmem.params.instrument && !pmem.epoch_barriers);
        assert!(pmem.expects_consistent());
        let bep = SweepConfig::paper_discipline(
            WorkloadKind::Ctree,
            PersistencyMode::Bep,
            &cfg,
            params,
            GridSpec::smoke(),
        );
        assert!(bep.epoch_barriers && !bep.params.instrument);
        assert!(bep.expects_consistent());
        let lossy = SweepConfig::lossy(
            WorkloadKind::Ctree,
            PersistencyMode::Bep,
            &cfg,
            params,
            GridSpec::smoke(),
        );
        assert!(!lossy.expects_consistent());
        assert_eq!(lossy.consistent_twin().label(), bep.label());
    }
}

//! # bbb-crashfuzz — crash-point sweep harness
//!
//! The paper's central claim is a *correctness* claim: with battery-backed
//! buffers next to each L1D, the point of visibility equals the point of
//! persistency, so unmodified lock-free code recovers from a power failure
//! at **any** cycle. One hand-picked crash point per test cannot carry
//! that claim; this crate sweeps crashes across entire executions.
//!
//! Pipeline, per `(workload, mode)` pair:
//!
//! 1. [`sweep::reference_run`] replays the (deterministic) execution op by
//!    op, recording its length and the cycles of ordering events —
//!    epoch barriers, forced bbPB drains, WPQ backpressure stalls.
//! 2. [`grid::plan_points`] turns that into a crash plan: a dense stride,
//!    SplitMix64-seeded random points, and boundary points straddling
//!    every event (`e-1`, `e`, `e+1`).
//! 3. [`sweep::plan_shards`] splits the plan into contiguous chunks;
//!    [`sweep::sweep_shard`] replays the run once per shard, pausing at
//!    each planned cycle to take a non-destructive, copy-on-write
//!    [`bbb_core::System::crash_image`] (zero machine clones) and verify
//!    the recovered image with the workload's structure checker;
//!    [`sweep::merge_shards`] folds shard outcomes back in plan order.
//!    [`sweep::sweep`] is the serial single-shard composition.
//! 4. Differential negative oracles keep the checkers honest: a
//!    battery-dropped crash of a battery-backed mode, PMEM without
//!    flushes, and BEP without barriers must each exhibit lost-update
//!    signatures — a sweep that cannot catch a machine *designed* to lose
//!    data proves nothing about one designed not to.
//! 5. On failure, [`shrink::shrink`] halves the workload and walks back
//!    to the minimal failing cycle, emitting a ready-to-paste `#[test]`
//!    regression reproducer.
//!
//! The `crashfuzz` binary sweeps every pair in parallel on the
//! experiment-runner worker pool (`bbb_runner::Runner::map`) and reports
//! through the shared ASCII/JSON report layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conform;
pub mod grid;
pub mod shrink;
pub mod sweep;

pub use conform::schedule_images;
pub use grid::{plan_points, GridSpec, CRASHFUZZ_SEED};
pub use shrink::{shrink, test_source, Reproducer};
pub use sweep::{
    first_failure_at, lost_updates_observable, merge_shards, plan_shards, reference_run, sweep,
    sweep_shard, CrashFailure, Reference, ShardOutcome, SweepConfig, SweepOutcome, SweepPerf,
    SweepShard,
};

//! The full simulated machine.
//!
//! [`System`] wires the cores (`bbb-cpu`), the cache hierarchy
//! (`bbb-cache`), the hybrid main memory (`bbb-mem`), and the persistence
//! machinery of this crate into the machine of the paper's Table III, and
//! interprets committed op streams against it.
//!
//! # Execution model
//!
//! Each core is a sequential interpreter over its op stream with a
//! background store-buffer drain engine; the scheduler always advances the
//! core with the smallest local clock, so cores interleave in simulated-
//! time order. A store commits into the store buffer in one cycle; the
//! drain engine retires one entry at a time into the L1D through the
//! coherence protocol, and — under BBB — allocates the block into the
//! core's bbPB **in the same cycle the L1D is written**, which is the
//! design's central property (PoV == PoP).

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use bbb_cache::CacheHierarchy;
use bbb_cpu::{CoreState, Op, SbEntry};
use bbb_mem::{ByteStore, NvmImage};
use bbb_sim::{
    merge_logs, AddressMap, BlockAddr, Cycle, EventKind, EventQueue, MemoryPort, SchedProfile,
    SimConfig, Stats, TraceEvent, TraceLog,
};

use crate::crash::CrashCost;
use crate::latency::PersistLatencyTracker;
use crate::memories::Memories;
use crate::mode::PersistencyMode;
use crate::persist::PersistState;
use crate::stream::OpStream;
use crate::workload::Workload;

/// Errors from building or driving a [`System`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// A core index exceeded the configured core count.
    CoreOutOfRange {
        /// Requested core.
        core: usize,
        /// Configured core count.
        cores: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SystemError::CoreOutOfRange { core, cores } => {
                write!(f, "core {core} out of range (machine has {cores})")
            }
        }
    }
}

impl Error for SystemError {}

/// Summary of a finished (or op-budget-limited) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Final simulated time (max over cores, store buffers drained).
    pub cycles: Cycle,
    /// Ops committed across all cores.
    pub ops: u64,
    /// True when every core's workload stream ended (vs. budget cut).
    pub completed: bool,
}

/// Where [`System::run_until`] should stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopAt {
    /// Stop once this many ops (cumulative over the cursor) have committed.
    Ops(u64),
    /// Stop at the first op boundary where simulated time has reached this
    /// cycle — the crash-at-cycle hook. The op that crossed the boundary
    /// has committed, and the machine is exactly as a power failure at that
    /// instant would find it (store buffers and persist buffers mid-flight).
    Cycle(Cycle),
    /// Run until every core's op stream ends.
    End,
}

/// Resumable state of a multi-core run: the per-core op queues and
/// liveness that [`System::run`] keeps internally. Holding it outside the
/// call lets a driver advance one run in increments via
/// [`System::run_until`] and, between increments, crash-test clones of the
/// machine without replaying from cycle zero.
#[derive(Debug, Clone)]
pub struct RunCursor {
    queues: Vec<VecDeque<Op>>,
    active: Vec<bool>,
    ops: u64,
    /// Pending per-core completion events: at most one `(ready_at, core)`
    /// entry per active core. Seeded lazily on the first
    /// [`System::run_until`] call; stale entries (a core whose clock was
    /// advanced between increments, e.g. by a crash-test driver) are
    /// detected on pop and re-pushed at the current clock.
    events: EventQueue,
}

impl RunCursor {
    /// A cursor at the start of a run on an `n`-core machine.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Self {
            queues: vec![VecDeque::new(); cores],
            active: vec![true; cores],
            ops: 0,
            events: EventQueue::new(),
        }
    }

    /// Ops committed so far through this cursor.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// True once every core's op stream has ended.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.active.iter().all(|&a| !a)
    }

    /// Completion events currently queued. The scheduler's invariant is
    /// one event per active core; lazy stale-event invalidation can
    /// transiently exceed that, and the compaction pass in
    /// [`System::run_until`] guarantees the count stays `O(cores)` on
    /// arbitrarily long runs — tests assert against this accessor.
    #[must_use]
    pub fn queued_events(&self) -> usize {
        self.events.len()
    }
}

/// What a probed run ([`System::run_probed`] family) records boundary
/// cycles for. Kept separate from [`EventProbe`] on purpose: adding fields
/// to the probe struct would change boundary detection — and therefore the
/// committed sweep artifacts — for every existing workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeKind {
    /// Persist-relevant ordering events (fences, forced drains, WPQ
    /// backpressure): the default crash-point planner signal.
    Ordering,
    /// Committed persisting stores: the store-granular grid the pstore
    /// protocol sweep crashes on.
    PersistingStores,
}

/// The op source driving a run: batch workloads refill the cursor's
/// per-core queues, pull-based streams hand the scheduler one op at a
/// time with no intermediate buffer.
enum Feed<'a> {
    /// Batch interface: `next_batch` vectors queued per core.
    Batch(&'a mut dyn Workload),
    /// Pull interface: `next_op`, zero queueing.
    Stream(&'a mut dyn OpStream),
}

/// Why a compute batch-retire fold returned to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FoldOutcome {
    /// The stop condition fired on one of the folded ops.
    Stopped,
    /// Another core's event became due mid-fold.
    Yielded,
    /// The queue's run of compute ops ended; keep stepping this core.
    RanDry,
}

/// Monotone event counters sampled between ops — the cheap signal a
/// crash-point planner uses to place boundary points straddling epoch
/// barriers, forced bbPB drains, and WPQ backpressure stalls, without
/// paying for a full [`Stats`] merge per op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventProbe {
    /// Fences committed across all cores (epoch barriers under BEP).
    pub fences: u64,
    /// Persist-buffer drains forced by coherence/inclusion (memory-side),
    /// or any ordered drain (processor-side organizations).
    pub forced_drains: u64,
    /// WPQ backpressure stalls at the NVMM controller.
    pub wpq_backpressure: u64,
}

/// The simulated machine.
///
/// `System` is `Clone`: every component is plain owned data, so a clone is
/// an independent machine whose future — including a destructive
/// [`System::crash_now`] — cannot affect the original. Crash-point sweeps
/// rely on this to fork the machine at each injection point.
#[derive(Clone)]
pub struct System {
    cfg: SimConfig,
    hierarchy: CacheHierarchy,
    memories: Memories,
    persist: PersistState,
    cores: Vec<CoreState>,
    arch: ByteStore,
    now_max: Cycle,
    /// Pipeline-level event recorder (store commit/visibility, persist
    /// allocation, loads, fences, flushes, crashes). Component logs live
    /// in `persist` and the NVMM controller; [`System::take_events`]
    /// merges them all.
    trace: TraceLog,
    /// Per-kind event counts and simulated-cycle attribution (see
    /// [`EventKind`]); exported under `sched.*` by [`System::stats`].
    profile: SchedProfile,
    /// Commit→point-of-persistence latency per persisting store; exported
    /// under `persist.latency.*` by [`System::stats`].
    persist_lat: PersistLatencyTracker,
    /// Ops committed since the last periodic debug audit.
    audit_countdown: u32,
}

/// How many committed ops the always-on debug audit lets pass between
/// [`System::check_invariants`] sweeps. Large enough that debug test runs
/// stay fast; small enough that every multi-thousand-op sweep is audited
/// many times.
const DEBUG_AUDIT_PERIOD: u32 = 4096;

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("mode", &self.persist.mode())
            .field("cores", &self.cores.len())
            .field("now_max", &self.now_max)
            .finish_non_exhaustive()
    }
}

// Experiment points run whole `System`s on worker threads. Every component
// is plain owned data — no `Rc`, `RefCell`, or raw pointers — and this
// assertion keeps it that way at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<System>();
    assert_send::<Box<dyn crate::Workload>>();
};

impl System {
    /// Builds a machine from a configuration and persistency mode.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if the configuration fails
    /// [`SimConfig::validate`].
    pub fn new(cfg: SimConfig, mode: PersistencyMode) -> Result<Self, SystemError> {
        cfg.validate().map_err(SystemError::InvalidConfig)?;
        let hierarchy = CacheHierarchy::new(&cfg);
        let memories = Memories::new(&cfg);
        let persist = PersistState::new(&cfg, mode);
        let cores = (0..cfg.cores)
            .map(|i| CoreState::new(i, cfg.core.store_buffer_entries))
            .collect();
        let persist_lat = PersistLatencyTracker::new(mode, cfg.battery_backed_sb, cfg.cores);
        Ok(Self {
            cfg,
            hierarchy,
            memories,
            persist,
            cores,
            arch: ByteStore::new(),
            now_max: 0,
            trace: TraceLog::default(),
            profile: SchedProfile::default(),
            persist_lat,
            audit_countdown: 0,
        })
    }

    /// Enables or disables event tracing across every component (the
    /// pipeline, persist buffers, and the NVMM controller). Off by
    /// default; the persist-order checker (`bbb-check`) turns it on.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
        self.persist.set_tracing(on);
        self.memories.nvmm_mut().set_tracing(on);
    }

    /// Drains every component's event log into one cycle-ordered stream.
    /// Ties within a cycle keep component order: pipeline events first,
    /// then persist-state and per-core buffer events, then NVMM
    /// persist-point events.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        let mut logs = vec![self.trace.take()];
        logs.extend(self.persist.take_trace_logs());
        logs.push(self.memories.nvmm_mut().take_trace());
        merge_logs(logs)
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The active persistency mode.
    #[must_use]
    pub fn mode(&self) -> PersistencyMode {
        self.persist.mode()
    }

    /// The physical address map.
    #[must_use]
    pub fn address_map(&self) -> &AddressMap {
        self.memories.map()
    }

    /// The functional architectural memory workloads generate against.
    #[must_use]
    pub fn arch_mem(&self) -> &ByteStore {
        &self.arch
    }

    /// Mutable architectural memory (workload setup).
    pub fn arch_mem_mut(&mut self) -> &mut ByteStore {
        &mut self.arch
    }

    /// Current simulated time (the furthest any core has progressed).
    #[must_use]
    pub fn cycle(&self) -> Cycle {
        self.now_max
    }

    /// Pre-loads bytes into both the architectural memory and the backing
    /// media (warm start: state that existed before the measured window).
    pub fn preload(&mut self, addr: u64, bytes: &[u8]) {
        self.arch.write(addr, bytes);
        // Propagate block-granular to media.
        let first = BlockAddr::containing(addr);
        let last = BlockAddr::containing(addr + bytes.len().max(1) as u64 - 1);
        for idx in first.index()..=last.index() {
            let block = BlockAddr::from_index(idx);
            let data = self.arch.read_block(block);
            self.memories.load(block, &data);
        }
    }

    /// Pre-loads one `u64` (convenience over [`System::preload`]).
    pub fn preload_u64(&mut self, addr: u64, value: u64) {
        self.preload(addr, &value.to_le_bytes());
    }

    /// Boots this (fresh) machine from a post-crash NVMM image: the
    /// image's contents become both the architectural memory and the NVMM
    /// media, exactly as a reboot would find them. Recovery code then
    /// runs as ordinary workload operations.
    pub fn adopt_image(&mut self, image: &bbb_mem::NvmImage) {
        let pages: Vec<(u64, Vec<u8>)> = image
            .as_store()
            .iter_pages()
            .map(|(a, p)| (a, p.to_vec()))
            .collect();
        for (base, page) in pages {
            self.arch.write(base, &page);
        }
        self.sync_media_from_arch();
    }

    /// Runs a workload's [`Workload::setup`] against architectural memory
    /// and mirrors the result into the backing media (warm start for the
    /// measured window).
    pub fn prepare(&mut self, workload: &mut dyn Workload) {
        workload.setup(&mut self.arch);
        self.sync_media_from_arch();
    }

    /// [`System::prepare`] for pull-based op streams.
    pub fn prepare_stream(&mut self, stream: &mut dyn OpStream) {
        stream.setup(&mut self.arch);
        self.sync_media_from_arch();
    }

    /// Copies every materialized architectural-memory page into the
    /// backing media without consuming simulated time.
    pub fn sync_media_from_arch(&mut self) {
        let pages: Vec<(u64, Vec<u8>)> = self
            .arch
            .iter_pages()
            .map(|(a, p)| (a, p.to_vec()))
            .collect();
        for (base, page) in pages {
            for (i, chunk) in page.chunks_exact(bbb_sim::BLOCK_BYTES).enumerate() {
                let block = BlockAddr::containing(base + (i * bbb_sim::BLOCK_BYTES) as u64);
                let mut data = [0u8; bbb_sim::BLOCK_BYTES];
                data.copy_from_slice(chunk);
                self.memories.load(block, &data);
            }
        }
    }

    /// Runs a complete op stream on one core (single-threaded experiments
    /// and examples), returning the completion cycle. The store buffer is
    /// *not* force-drained afterwards — crash semantics stay observable.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::CoreOutOfRange`] for a bad core index.
    pub fn run_single_core(&mut self, core: usize, ops: Vec<Op>) -> Result<Cycle, SystemError> {
        if core >= self.cores.len() {
            return Err(SystemError::CoreOutOfRange {
                core,
                cores: self.cores.len(),
            });
        }
        for op in ops {
            self.step_op(core, &op);
        }
        Ok(self.cores[core].ready_at)
    }

    /// Drives a multi-threaded workload to completion or until `op_budget`
    /// total ops have committed (`u64::MAX` for unlimited). Store buffers
    /// are pumped (not force-drained) at the end.
    pub fn run(&mut self, workload: &mut dyn Workload, op_budget: u64) -> RunSummary {
        let mut cursor = RunCursor::new(self.cores.len());
        let summary = self.run_until(workload, &mut cursor, StopAt::Ops(op_budget));
        // Let in-progress drains finish pumping where possible.
        for c in 0..self.cores.len() {
            let t = self.cores[c].ready_at;
            self.pump_sb(c, t);
        }
        RunSummary {
            cycles: self.now_max,
            ..summary
        }
    }

    /// Advances a multi-threaded run until `stop` is reached or the
    /// workload completes, updating `cursor` so a later call resumes where
    /// this one left off. Unlike [`System::run`] nothing is pumped
    /// afterwards — a crash injected right after it returns sees the
    /// machine mid-flight, which is the point.
    ///
    /// Scheduling is event-driven: the cursor carries a min-heap of
    /// per-core completion events and each iteration pops the earliest
    /// `(cycle, core)` pair — O(log cores) instead of the O(cores) scan
    /// this replaces, with identical core choice (earliest clock, lowest
    /// index on ties) and therefore identical observable behavior.
    ///
    /// # Panics
    ///
    /// Panics if the cursor was built for a different core count.
    pub fn run_until(
        &mut self,
        workload: &mut dyn Workload,
        cursor: &mut RunCursor,
        stop: StopAt,
    ) -> RunSummary {
        self.run_inner(Feed::Batch(workload), cursor, stop, None)
    }

    /// [`System::run`] for a pull-based [`OpStream`]: drives the stream to
    /// completion or until `op_budget` total ops have committed, pulling
    /// exactly one op at a time — no per-request `Vec` is ever built, so
    /// the run's memory footprint is the generator's live state alone.
    pub fn run_stream(&mut self, stream: &mut dyn OpStream, op_budget: u64) -> RunSummary {
        let mut cursor = RunCursor::new(self.cores.len());
        let summary = self.run_stream_until(stream, &mut cursor, StopAt::Ops(op_budget));
        for c in 0..self.cores.len() {
            let t = self.cores[c].ready_at;
            self.pump_sb(c, t);
        }
        RunSummary {
            cycles: self.now_max,
            ..summary
        }
    }

    /// [`System::run_until`] for a pull-based [`OpStream`].
    ///
    /// # Panics
    ///
    /// Panics if the cursor was built for a different core count.
    pub fn run_stream_until(
        &mut self,
        stream: &mut dyn OpStream,
        cursor: &mut RunCursor,
        stop: StopAt,
    ) -> RunSummary {
        self.run_inner(Feed::Stream(stream), cursor, stop, None)
    }

    /// [`System::run_probed`] for a pull-based [`OpStream`]: records the
    /// cycle at which the monotone [`EventProbe`] counters first changed
    /// after each committed op — the crash-point planner signal, fed
    /// directly from a stream.
    pub fn run_stream_probed(
        &mut self,
        stream: &mut dyn OpStream,
        cursor: &mut RunCursor,
        event_cycles: &mut Vec<Cycle>,
    ) -> RunSummary {
        self.run_inner(
            Feed::Stream(stream),
            cursor,
            StopAt::End,
            Some((event_cycles, ProbeKind::Ordering)),
        )
    }

    /// Runs the workload to completion while recording, after each
    /// committed op, the cycle at which the monotone [`EventProbe`]
    /// counters first changed. Equivalent to stepping one op at a time
    /// with [`System::run_until`] and sampling [`System::probe_events`]
    /// between steps — the crash-point planner's reference pass — but
    /// without a scheduler entry/exit and heap re-seed per op.
    pub fn run_probed(
        &mut self,
        workload: &mut dyn Workload,
        cursor: &mut RunCursor,
        event_cycles: &mut Vec<Cycle>,
    ) -> RunSummary {
        self.run_inner(
            Feed::Batch(workload),
            cursor,
            StopAt::End,
            Some((event_cycles, ProbeKind::Ordering)),
        )
    }

    /// Like [`System::run_probed`], but records the cycle after every
    /// committed *persisting store* instead of after ordering events. The
    /// pstore crash sweep plans on this grid: a store-granular protocol
    /// (plain stores, no fences under BBB) has its interesting crash
    /// points at store boundaries, which the ordering probe — fences,
    /// forced drains, WPQ backpressure — cannot see at all on a
    /// battery-backed machine.
    pub fn run_probed_stores(
        &mut self,
        workload: &mut dyn Workload,
        cursor: &mut RunCursor,
        event_cycles: &mut Vec<Cycle>,
    ) -> RunSummary {
        self.run_inner(
            Feed::Batch(workload),
            cursor,
            StopAt::End,
            Some((event_cycles, ProbeKind::PersistingStores)),
        )
    }

    fn run_inner(
        &mut self,
        mut feed: Feed<'_>,
        cursor: &mut RunCursor,
        stop: StopAt,
        mut probe: Option<(&mut Vec<Cycle>, ProbeKind)>,
    ) -> RunSummary {
        let mut last = match probe {
            Some((_, ProbeKind::Ordering)) => self.probe_events(),
            _ => EventProbe::default(),
        };
        let mut last_pstores: Vec<u64> = match probe {
            Some((_, ProbeKind::PersistingStores)) => self
                .cores
                .iter()
                .map(|c| c.persisting_stores.get())
                .collect(),
            _ => Vec::new(),
        };
        let n = self.cores.len();
        assert_eq!(cursor.queues.len(), n, "cursor built for another machine");
        // Seed one completion event per active core on the cursor's first
        // use. The invariant from here on: exactly one queued event per
        // active core (stepping pops it and pushes the successor).
        if cursor.events.is_empty() {
            for c in 0..n {
                if cursor.active[c] {
                    cursor.events.push(self.cores[c].ready_at, c);
                }
            }
        }
        'sched: loop {
            match stop {
                StopAt::Ops(budget) if cursor.ops >= budget => break,
                StopAt::Cycle(at) if self.now_max >= at => break,
                _ => {}
            }
            // Heap hygiene: stale events are invalidated lazily (detected
            // on pop and re-pushed at the current clock), which is O(1)
            // per event but lets entries accumulate if something queues
            // duplicates — e.g. a driver mixing run_until with direct
            // clock advances across many increments. Past a small bound
            // the heap is rebuilt from the per-core clocks instead:
            // correct because every live core's next event is fully
            // determined by `ready_at`, so stale and duplicate entries
            // carry no information.
            if cursor.events.len() > 2 * n + 8 {
                cursor.events.clear();
                for c in 0..n {
                    if cursor.active[c] {
                        cursor.events.push(self.cores[c].ready_at, c);
                    }
                }
            }
            let Some((at, core)) = cursor.events.pop() else {
                break;
            };
            if !cursor.active[core] {
                continue;
            }
            if at != self.cores[core].ready_at {
                // Stale: the core's clock moved between run_until calls
                // (run_single_core, drain_all_store_buffers, …).
                // Reschedule at the current clock.
                cursor.events.push(self.cores[core].ready_at, core);
                continue;
            }
            // Step this core inline while it stays the globally earliest
            // event: re-pushing and immediately re-popping the same core
            // for back-to-back ops would be pure heap churn, and comparing
            // `(ready_at, core)` against the heap root reproduces the pop
            // order (cycle, then lowest core index) exactly.
            loop {
                let op = match cursor.queues[core].pop_front() {
                    Some(op) => op,
                    None => match feed {
                        Feed::Batch(ref mut workload) => {
                            match workload.next_batch(core, &mut self.arch) {
                                Some(batch) => cursor.queues[core].extend(batch),
                                None => {
                                    cursor.active[core] = false;
                                    continue 'sched; // stream ended: drop the core's event
                                }
                            }
                            match cursor.queues[core].pop_front() {
                                Some(op) => op,
                                None => {
                                    cursor.events.push(self.cores[core].ready_at, core);
                                    continue 'sched;
                                }
                            }
                        }
                        // Streams bypass the queue entirely: one op pulled,
                        // one op stepped — no per-request buffer exists.
                        Feed::Stream(ref mut stream) => {
                            match stream.next_op(core, &mut self.arch) {
                                Some(op) => op,
                                None => {
                                    cursor.active[core] = false;
                                    continue 'sched;
                                }
                            }
                        }
                    },
                };
                // Batch-retire fast path: fold a run of consecutive queued
                // pure-compute ops into one scheduler event. Each folded op
                // replays step_op's Compute semantics exactly — per-op SB
                // pump at the advancing clock, per-op stop check, per-op
                // yield check against the heap root — so the fold commits
                // precisely the ops the unfolded loop would have before
                // yielding, at identical cycles, with identical SB/WPQ/bbPB
                // side effects. Disabled under a probe: probed runs must
                // sample boundary state between every op.
                if probe.is_none() {
                    if let Op::Compute { cycles } = op {
                        match self.fold_computes(core, cycles, cursor, stop) {
                            FoldOutcome::Stopped => {
                                cursor.events.push(self.cores[core].ready_at, core);
                                break 'sched;
                            }
                            FoldOutcome::Yielded => {
                                cursor.events.push(self.cores[core].ready_at, core);
                                continue 'sched;
                            }
                            FoldOutcome::RanDry => continue,
                        }
                    }
                }
                self.step_op(core, &op);
                cursor.ops += 1;
                match probe {
                    Some((ref mut sink, ProbeKind::Ordering)) => {
                        let p = self.probe_events();
                        if p != last {
                            sink.push(self.now_max);
                            last = p;
                        }
                    }
                    Some((ref mut sink, ProbeKind::PersistingStores)) => {
                        // Only the stepping core's counter can move.
                        let p = self.cores[core].persisting_stores.get();
                        if p != last_pstores[core] {
                            sink.push(self.now_max);
                            last_pstores[core] = p;
                        }
                    }
                    None => {}
                }
                // The stop check runs between ops exactly as it would at
                // the top of the scheduler loop; on a stop the core's next
                // event is queued, restoring the one-event-per-active-core
                // invariant.
                let stopped = match stop {
                    StopAt::Ops(budget) => cursor.ops >= budget,
                    StopAt::Cycle(at) => self.now_max >= at,
                    _ => false,
                };
                if stopped {
                    cursor.events.push(self.cores[core].ready_at, core);
                    break 'sched;
                }
                match cursor.events.peek() {
                    // Another core's event is due first (or ties with a
                    // lower index): yield to it.
                    Some(next) if next < (self.cores[core].ready_at, core) => {
                        cursor.events.push(self.cores[core].ready_at, core);
                        continue 'sched;
                    }
                    // Still the earliest (or the only active core).
                    _ => {}
                }
            }
        }
        RunSummary {
            cycles: self.now_max,
            ops: cursor.ops,
            completed: cursor.finished(),
        }
    }

    /// Retires `first_cycles` of compute plus every consecutive
    /// [`Op::Compute`] at the front of `core`'s queue, as one scheduler
    /// event but with per-op semantics: the SB is pumped at each op's
    /// start cycle (so background drains hit the hierarchy at the same
    /// instants as unfolded stepping), the stop condition is evaluated
    /// after each op, and the yield check runs against the heap root after
    /// each op — the fold ends exactly where the unfolded loop would have
    /// left this core. Profile counts attribute one pipeline event per
    /// folded op via [`SchedProfile::record_many`], keeping `sched.*`
    /// stats identical to unfolded runs.
    fn fold_computes(
        &mut self,
        core: usize,
        first_cycles: u32,
        cursor: &mut RunCursor,
        stop: StopAt,
    ) -> FoldOutcome {
        let mut folded = 0u64;
        let mut spent: Cycle = 0;
        let mut cycles = first_cycles;
        let outcome = loop {
            let now = self.cores[core].ready_at;
            self.pump_sb(core, now);
            let end = now + Cycle::from(cycles);
            self.cores[core].ready_at = end;
            self.now_max = self.now_max.max(end);
            spent += end - now;
            folded += 1;
            let stopped = match stop {
                StopAt::Ops(budget) => cursor.ops + folded >= budget,
                StopAt::Cycle(at) => self.now_max >= at,
                StopAt::End => false,
            };
            if stopped {
                break FoldOutcome::Stopped;
            }
            if let Some(next) = cursor.events.peek() {
                if next < (self.cores[core].ready_at, core) {
                    break FoldOutcome::Yielded;
                }
            }
            match cursor.queues[core].front() {
                Some(&Op::Compute { cycles: c }) => {
                    cycles = c;
                    cursor.queues[core].pop_front();
                }
                _ => break FoldOutcome::RanDry,
            }
        };
        self.cores[core].committed.add(folded);
        self.profile.record_many(EventKind::Pipeline, folded, spent);
        cursor.ops += folded;
        self.bump_audit(folded);
        outcome
    }

    /// Advances the periodic debug-audit countdown by `n` committed ops.
    fn bump_audit(&mut self, n: u64) {
        self.audit_countdown = self
            .audit_countdown
            .saturating_add(u32::try_from(n).unwrap_or(u32::MAX));
        if self.audit_countdown >= DEBUG_AUDIT_PERIOD {
            self.audit_countdown = 0;
            if cfg!(debug_assertions) {
                self.check_invariants();
            }
        }
    }

    /// Interprets one op on `core` at the core's local clock.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn step_op(&mut self, core: usize, op: &Op) {
        let now = self.cores[core].ready_at;
        self.pump_sb(core, now);
        let (end, kind) = match *op {
            Op::Compute { cycles } => (now + Cycle::from(cycles), EventKind::Pipeline),
            Op::Load { addr, .. } => {
                let block = BlockAddr::containing(addr);
                let (done, kind) = if self.cores[core].sb.holds_block(block) {
                    // Store-to-load forwarding from the SB.
                    (now + self.cfg.l1d.latency, EventKind::Pipeline)
                } else {
                    let (res, _) = self.hierarchy.read(
                        now,
                        core,
                        block,
                        &mut self.memories,
                        &mut self.persist,
                    );
                    let kind = if res.l1_hit {
                        EventKind::Pipeline
                    } else {
                        EventKind::Nvmm
                    };
                    (res.completion, kind)
                };
                self.trace.push(TraceEvent::LoadCommit {
                    core,
                    block,
                    cycle: done,
                });
                (done, kind)
            }
            Op::Store { addr, size, bytes } => {
                let block = BlockAddr::containing(addr);
                let offset = block.offset_of(addr);
                assert!(
                    offset + size as usize <= bbb_sim::BLOCK_BYTES,
                    "store spans cache blocks"
                );
                let persistent = self.memories.map().is_persistent(addr);
                let mut t = now;
                while self.cores[core].sb.is_full() {
                    let freed = self.drain_one_sb(core);
                    self.cores[core].sb_full_stalls.add(freed.saturating_sub(t));
                    t = t.max(freed);
                }
                let seq = self.cores[core].stores.get();
                let entry = SbEntry {
                    block,
                    offset,
                    len: size as usize,
                    bytes,
                    persistent,
                    committed: t,
                    seq,
                };
                self.cores[core].sb.push(entry).expect("space ensured");
                self.trace.push(TraceEvent::StoreCommit {
                    core,
                    block,
                    seq,
                    persistent,
                    cycle: t,
                });
                // Architectural memory reflects *committed* stores only.
                // Workload generators read it to plan their next ops, so
                // writing it here (not at op-generation time) is what
                // keeps cross-core visibility honest: a core can chain to
                // another core's node only after the publishing store has
                // actually committed — exactly the coherence order a real
                // load would observe.
                self.arch.write(addr, &bytes[..size as usize]);
                self.cores[core].stores.inc();
                if persistent {
                    self.cores[core].persisting_stores.inc();
                    self.cores[core].persisting_store_bytes.add(size as u64);
                    self.persist_lat.on_store_commit(core, block, t);
                }
                let kind = if t > now {
                    EventKind::StoreBuffer
                } else {
                    EventKind::Pipeline
                };
                (t + 1, kind)
            }
            Op::Clwb { addr } => {
                // Program order: all older stores must reach the L1D before
                // the line is written back.
                let t = self.drain_sb_all(core, now);
                let block = BlockAddr::containing(addr);
                let f = self.hierarchy.flush(t, core, block, &mut self.memories);
                self.trace.push(TraceEvent::Flush {
                    core,
                    block,
                    cycle: f.persist,
                    wrote_back: f.wrote_back,
                });
                self.cores[core].record_flush(f.persist);
                self.persist_lat.on_clwb(core, block, f.persist);
                let kind = if f.wrote_back {
                    EventKind::Wpq
                } else if t > now {
                    EventKind::StoreBuffer
                } else {
                    EventKind::Pipeline
                };
                (t + 1, kind)
            }
            Op::Fence => {
                let sb_done = self.drain_sb_all(core, now);
                let mut t = sb_done;
                if self.persist.mode() == PersistencyMode::Bep {
                    // Epoch barrier: stall until the volatile persist
                    // buffer has fully drained to the persistence domain
                    // (the stall the paper's §III-A notes BEP still pays).
                    t = self
                        .persist
                        .procpb_mut(core)
                        .drain_all_timed(t, &mut self.memories);
                }
                let done = self.cores[core].flushes_done_by(t);
                // BEP point of persistence: by `t` the SB and the volatile
                // procPB have both fully drained, so every persisting
                // store this core committed before the barrier is durable.
                self.persist_lat.on_fence(core, t);
                self.cores[core]
                    .fence_stall_cycles
                    .add(done.saturating_sub(now));
                self.cores[core].fences.inc();
                self.trace
                    .push(TraceEvent::EpochBarrier { core, cycle: done });
                let kind = if t > sb_done {
                    EventKind::Bbpb
                } else if done > t {
                    EventKind::Wpq
                } else if sb_done > now {
                    EventKind::StoreBuffer
                } else {
                    EventKind::Pipeline
                };
                (done, kind)
            }
        };
        self.cores[core].committed.inc();
        self.cores[core].ready_at = end.max(now);
        self.profile.record(kind, self.cores[core].ready_at - now);
        self.now_max = self.now_max.max(self.cores[core].ready_at);
        // Always-on debug audit: every few thousand committed ops, sweep
        // the coherence, inclusion, and holder-index invariants so every
        // debug test and crashfuzz sweep runs them for free. Release
        // builds keep only the counter arithmetic.
        self.bump_audit(1);
    }

    /// Injects a power failure *now*: drains exactly the active persistence
    /// domain (per mode) to NVMM and returns the post-crash image recovery
    /// code would see.
    pub fn crash_now(&mut self) -> NvmImage {
        let now = self.now_max;
        let mode = self.persist.mode();
        self.memories.nvmm_mut().note_crash(now, true);
        match mode {
            PersistencyMode::Pmem => {
                // ADR: only the WPQ survives (already merged into media).
            }
            PersistencyMode::Eadr => {
                for (block, data, _) in self.hierarchy.dirty_blocks() {
                    if self.memories.map().is_nvmm(block.base()) {
                        self.memories.nvmm_mut().write(now, block, data);
                    }
                }
                self.crash_drain_store_buffers(now);
            }
            PersistencyMode::BbbMemorySide => {
                for c in 0..self.cores.len() {
                    self.persist
                        .bbpb_mut(c)
                        .crash_drain(now, self.memories.nvmm_mut());
                }
                self.crash_drain_store_buffers(now);
            }
            PersistencyMode::BbbProcessorSide => {
                // Cross-core k-way merge by each buffer's front τ tag:
                // per-core FCFS is preserved (fronts only), and same-line
                // conflicts across cores resolve in coherence order rather
                // than core index. The coherence hooks drain a core's
                // entries for a block before another core can own the line,
                // so cross-core procPB conflicts cannot arise in practice —
                // this canonicalizes the order defensively.
                loop {
                    let next = (0..self.cores.len())
                        .filter_map(|c| {
                            self.persist
                                .procpb(c)
                                .front_tau()
                                .map(|(committed, seq)| (committed, c, seq))
                        })
                        .min();
                    let Some((_, c, _)) = next else { break };
                    self.persist
                        .procpb_mut(c)
                        .crash_drain_oldest(now, self.memories.nvmm_mut());
                }
                for c in 0..self.cores.len() {
                    // Buffers are empty; this clears in-flight drains.
                    self.persist
                        .procpb_mut(c)
                        .crash_drain(now, self.memories.nvmm_mut());
                }
                self.crash_drain_store_buffers(now);
            }
            PersistencyMode::Bep => {
                // Volatile persist buffers: their contents are LOST. Only
                // the WPQ survives — durability holds only up to the last
                // completed epoch barrier.
                for c in 0..self.cores.len() {
                    self.persist.procpb_mut(c).crash_discard();
                }
            }
        }
        self.memories.crash_image()
    }

    /// Injects a power failure with the battery disconnected or dead: the
    /// contents of every battery-backed structure above the memory
    /// controller — bbPBs or processor-side buffers, battery-backed store
    /// buffers, eADR's cache drain — are LOST. Only the ADR'd WPQ, whose
    /// writes are already merged into media, survives.
    ///
    /// This is the differential *negative* oracle for crash-consistency
    /// checking: modes whose durability story depends on the battery must
    /// exhibit lost updates relative to [`System::crash_now`] at the same
    /// point, proving the recovery checkers detect real inconsistency.
    pub fn crash_now_battery_dropped(&mut self) -> NvmImage {
        self.memories.nvmm_mut().note_crash(self.now_max, false);
        for c in 0..self.cores.len() {
            match self.persist.mode() {
                PersistencyMode::BbbMemorySide => {
                    self.persist.bbpb_mut(c).crash_discard();
                }
                PersistencyMode::BbbProcessorSide | PersistencyMode::Bep => {
                    self.persist.procpb_mut(c).crash_discard();
                }
                PersistencyMode::Pmem | PersistencyMode::Eadr => {}
            }
        }
        // Store buffers are volatile without the battery: discard, never
        // drain — and eADR's flush-on-fail cache drain never happens.
        for core in &mut self.cores {
            core.sb.drain_all();
        }
        self.memories.crash_image()
    }

    /// The post-crash image if power failed *now*, without crashing: the
    /// persist-domain contents that would drain (per mode, same order as
    /// [`System::crash_now`]) are overlaid onto a copy-on-write snapshot
    /// of NVMM media, so the live system is untouched and unshared pages
    /// are never copied. With `battery_ok == false` every battery-backed
    /// structure is lost and the image is the media snapshot alone —
    /// byte-identical to [`System::crash_now_battery_dropped`].
    ///
    /// Crash-point sweeps call this instead of cloning the whole system
    /// and crashing the clone; the two paths produce byte-identical
    /// images (see the differential tests).
    #[must_use]
    pub fn crash_image(&self, battery_ok: bool) -> NvmImage {
        let mut media = self.memories.nvmm().media_snapshot();
        if battery_ok {
            match self.persist.mode() {
                PersistencyMode::Pmem => {
                    // ADR: only the WPQ survives (already merged into media).
                }
                PersistencyMode::Eadr => {
                    for (block, data, _) in self.hierarchy.dirty_blocks() {
                        if self.memories.map().is_nvmm(block.base()) {
                            media.write_block(block, &data);
                        }
                    }
                    self.overlay_store_buffers(&mut media);
                }
                PersistencyMode::BbbMemorySide => {
                    for c in 0..self.cores.len() {
                        for (block, data) in self.persist.bbpb(c).drain_set() {
                            media.write_block(block, &data);
                        }
                    }
                    self.overlay_store_buffers(&mut media);
                }
                PersistencyMode::BbbProcessorSide => {
                    // Same cross-core k-way front-τ merge as
                    // [`System::crash_now`], over borrowed entry slices.
                    let pbs: Vec<Vec<&crate::StoreEntry>> = (0..self.cores.len())
                        .map(|c| self.persist.procpb(c).iter().collect())
                        .collect();
                    let mut heads = vec![0usize; pbs.len()];
                    loop {
                        let next = pbs
                            .iter()
                            .enumerate()
                            .filter_map(|(c, pb)| pb.get(heads[c]).map(|e| (e.committed, c, e.seq)))
                            .min();
                        let Some((_, c, _)) = next else { break };
                        let e = pbs[c][heads[c]];
                        heads[c] += 1;
                        media.write(e.block.base() + e.offset as u64, &e.bytes[..e.len]);
                    }
                    self.overlay_store_buffers(&mut media);
                }
                PersistencyMode::Bep => {
                    // Volatile persist buffers: contents lost even with the
                    // battery; only the WPQ (in media) survives.
                }
            }
        }
        NvmImage::from_store(media)
    }

    /// A fingerprint of everything [`System::crash_image`] can read: equal
    /// epochs at two probe points of the *same* system prove the two images
    /// are byte-identical, so a crash-point sweep can reuse the previous
    /// point's recovery verdict without snapshotting again.
    ///
    /// Soundness: each summand is a monotone per-structure mutation
    /// counter (media, battery-backed store buffers, persist buffers, or
    /// the cache hierarchy for eADR), so an unchanged *sum* implies every
    /// summand — hence every structure the image derives from — is
    /// unchanged. The converse does not hold (a counter can bump without
    /// changing image bytes); a changed epoch only costs a fresh snapshot.
    #[must_use]
    pub fn crash_image_epoch(&self, battery_ok: bool) -> u64 {
        let media = self.memories.nvmm().media_version();
        if !battery_ok {
            // Battery dropped: the image is the media snapshot alone.
            return media;
        }
        let sb: u64 = if self.cfg.battery_backed_sb {
            self.cores.iter().map(|c| c.sb.version()).sum()
        } else {
            0
        };
        match self.persist.mode() {
            // Only the WPQ survives, and it is already merged into media.
            PersistencyMode::Pmem | PersistencyMode::Bep => media,
            PersistencyMode::Eadr => media + sb + self.hierarchy.version(),
            PersistencyMode::BbbMemorySide | PersistencyMode::BbbProcessorSide => {
                media + sb + self.persist.buffers_version()
            }
        }
    }

    /// Overlays persistent store-buffer entries onto a media snapshot in
    /// coherence order τ = (commit cycle, core index, per-core sequence) —
    /// the non-destructive mirror of
    /// [`System::crash_drain_store_buffers`].
    fn overlay_store_buffers(&self, media: &mut ByteStore) {
        if !self.cfg.battery_backed_sb {
            return;
        }
        let mut entries: Vec<(Cycle, usize, u64, &SbEntry)> = Vec::new();
        for (c, core) in self.cores.iter().enumerate() {
            for e in core.sb.iter().filter(|e| e.persistent) {
                entries.push((e.committed, c, e.seq, e));
            }
        }
        entries.sort_unstable_by_key(|&(committed, core, seq, _)| (committed, core, seq));
        for (_, _, _, e) in entries {
            media.write(e.block.base() + e.offset as u64, &e.bytes[..e.len]);
        }
    }

    /// Snapshot-cost accounting for [`System::crash_image`]: the number of
    /// materialized NVMM media pages (all shared, not copied, when a COW
    /// snapshot forks) and the media store's lifetime copy-on-write page
    /// copies. Crash-point sweeps difference the copy counter across an
    /// image's lifetime to report pages shared vs. copied.
    #[must_use]
    pub fn media_cow_stats(&self) -> (usize, u64) {
        let nvmm = self.memories.nvmm();
        (nvmm.media_resident_pages(), nvmm.media_cow_page_copies())
    }

    /// Samples the monotone event counters a crash-point planner wants to
    /// straddle (see [`EventProbe`]). Cheap enough to call between ops.
    #[must_use]
    pub fn probe_events(&self) -> EventProbe {
        EventProbe {
            fences: self.cores.iter().map(|c| c.fences.get()).sum(),
            forced_drains: self.persist.forced_drains(),
            wpq_backpressure: self.memories.nvmm().wpq_backpressure_events(),
        }
    }

    /// The flush-on-fail drain set if power failed right now (for the
    /// energy model), without mutating anything.
    #[must_use]
    pub fn crash_cost(&self) -> CrashCost {
        let mode = self.persist.mode();
        let sb_in_domain = !matches!(mode, PersistencyMode::Pmem | PersistencyMode::Bep)
            && self.cfg.battery_backed_sb;
        let (sb_entries, sb_bytes) = if sb_in_domain {
            let mut entries = 0u64;
            let mut bytes = 0u64;
            for c in &self.cores {
                for e in c.sb.iter().filter(|e| e.persistent) {
                    entries += 1;
                    bytes += e.len as u64;
                }
            }
            (entries, bytes)
        } else {
            (0, 0)
        };
        let dirty_cache_blocks = if mode == PersistencyMode::Eadr {
            self.hierarchy
                .dirty_blocks()
                .iter()
                .filter(|(b, _, _)| self.memories.map().is_nvmm(b.base()))
                .count() as u64
        } else {
            0
        };
        CrashCost {
            mode,
            bbpb_entries: if mode.has_bbpb() {
                self.persist.total_resident_entries()
            } else {
                0
            },
            sb_entries,
            sb_bytes,
            dirty_cache_blocks,
            wpq_blocks: self.memories.nvmm().wpq_occupancy(self.now_max) as u64,
        }
    }

    /// Persistent blocks that are dirty in the persistence-mode's holding
    /// structures but not yet written to NVMM media: dirty persistent
    /// cache blocks under eADR, resident bbPB entries under BBB. A
    /// steady-state write comparison adds these to the media write count
    /// (they are writes the measured window produced whose media cost
    /// falls just past its end).
    #[must_use]
    pub fn residual_persist_blocks(&self) -> u64 {
        match self.persist.mode() {
            PersistencyMode::Eadr => self
                .hierarchy
                .dirty_blocks()
                .iter()
                .filter(|(_, _, persistent)| *persistent)
                .count() as u64,
            PersistencyMode::BbbMemorySide | PersistencyMode::BbbProcessorSide => {
                self.persist.total_resident_entries()
            }
            PersistencyMode::Pmem | PersistencyMode::Bep => self
                .hierarchy
                .dirty_blocks()
                .iter()
                .filter(|(_, _, persistent)| *persistent)
                .count() as u64,
        }
    }

    /// Merged statistics from every component, plus run-level metrics.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = self.hierarchy.stats();
        s.merge(&self.memories.stats());
        s.merge(&self.persist.stats());
        for c in &self.cores {
            s.merge(&c.stats());
        }
        s.set("sim.cycles", self.now_max);
        s.set(
            "sim.residual_persist_blocks",
            self.residual_persist_blocks(),
        );
        self.profile.export(&mut s);
        self.persist_lat.export(&mut s);
        s
    }

    /// The commit→point-of-persistence latency distribution of every
    /// persisting store stepped on this machine (see `latency` module
    /// docs for where each mode's PoP is observed). Mergeable: shard
    /// histograms combine with [`bbb_sim::LatencyHistogram::merge`].
    #[must_use]
    pub fn persist_latency(&self) -> &bbb_sim::LatencyHistogram {
        self.persist_lat.histogram()
    }

    /// Per-kind event counts and simulated-cycle attribution for every op
    /// stepped on this machine so far (pipeline vs. store buffer vs. WPQ
    /// vs. bbPB vs. NVMM — see [`EventKind`]).
    #[must_use]
    pub fn sched_profile(&self) -> &SchedProfile {
        &self.profile
    }

    /// Verifies the cache-coherence and bbPB-inclusion invariants. Tests
    /// call this after runs.
    ///
    /// # Panics
    ///
    /// Panics (with a description) on the first violation.
    pub fn check_invariants(&self) {
        self.hierarchy.check_invariants();
        // The O(1) holder index must agree with the exhaustive scan for
        // every resident or indexed block (satellite fix audit).
        self.persist.check_holder_index();
        if self.persist.mode() == PersistencyMode::BbbMemorySide {
            // Invariant 4 + LLC inclusion: every bbPB-resident block is in
            // the L2 and in at most one bbPB.
            for core in 0..self.cores.len() {
                for (block, _) in self.persist.bbpb(core).drain_set() {
                    assert_eq!(
                        self.persist.holder_of(block),
                        Some(core),
                        "block in multiple bbPBs"
                    );
                    assert!(
                        self.hierarchy.l2().peek(block).is_some(),
                        "LLC inclusion of bbPB violated for {block}"
                    );
                }
            }
        }
    }

    /// Forces every store buffer empty (end-of-measurement barrier).
    /// Entries drain interleaved across cores in commit-time order, so the
    /// final memory state reflects simulated time rather than core index.
    pub fn drain_all_store_buffers(&mut self) {
        loop {
            let next = (0..self.cores.len())
                .filter_map(|c| self.cores[c].sb.front().map(|e| (e.committed, c)))
                .min();
            let Some((_, core)) = next else { break };
            let done = self.drain_one_sb(core);
            self.cores[core].ready_at = self.cores[core].ready_at.max(done);
        }
    }

    /// Drains SB entries whose turn has come by `now`.
    fn pump_sb(&mut self, core: usize, now: Cycle) {
        while !self.cores[core].sb.is_empty() && self.cores[core].sb_drain_busy_until <= now {
            self.drain_one_sb(core);
        }
    }

    /// Drains every SB entry, returning when the last reaches the L1D.
    fn drain_sb_all(&mut self, core: usize, now: Cycle) -> Cycle {
        while !self.cores[core].sb.is_empty() {
            self.drain_one_sb(core);
        }
        now.max(self.cores[core].sb_drain_busy_until)
    }

    /// Retires one SB entry into the L1D (and, under BBB, into the bbPB in
    /// the same cycle). Under TSO the oldest entry drains; under the
    /// relaxed-consistency configuration any L1-writable entry may drain
    /// first (paper §III-C) — which is exactly why BBB battery-backs the
    /// store buffer: PoP is at commit, so program-order persistency
    /// survives the out-of-order L1D writes. Returns the cycle the drain
    /// engine frees.
    fn drain_one_sb(&mut self, core: usize) -> Cycle {
        let e = if self.cfg.relaxed_sb_drain {
            // Prefer an entry whose block is already writable in the L1D
            // (no coherence transaction needed): out-of-order drain.
            let ready = self.cores[core]
                .sb
                .iter()
                .position(|e| self.hierarchy.l1(core).state_of(e.block).writable());
            match ready {
                Some(i) => self.cores[core].sb.pop_at(i).expect("index valid"),
                None => self.cores[core].sb.pop_front().expect("non-empty"),
            }
        } else {
            self.cores[core]
                .sb
                .pop_front()
                .expect("drain_one_sb on empty SB")
        };
        let start = self.cores[core].sb_drain_busy_until.max(e.committed);
        let res = self.hierarchy.write(
            start,
            core,
            e.block,
            e.offset,
            &e.bytes[..e.len],
            &mut self.memories,
            &mut self.persist,
        );
        let mut done = res.completion;
        self.trace.push(TraceEvent::StoreVisible {
            core,
            block: e.block,
            seq: e.seq,
            cycle: done,
        });
        if e.persistent {
            match self.persist.mode() {
                PersistencyMode::BbbMemorySide => {
                    let data = self
                        .hierarchy
                        .peek_block(e.block)
                        .expect("block just written");
                    let out =
                        self.persist
                            .allocate_block(core, done, e.block, data, &mut self.memories);
                    self.trace.push(TraceEvent::PersistAlloc {
                        core,
                        block: e.block,
                        seq: e.seq,
                        cycle: out.done,
                        coalesced: out.coalesced,
                        rejected: out.rejected,
                        battery: true,
                    });
                    done = out.done.max(done);
                }
                PersistencyMode::BbbProcessorSide | PersistencyMode::Bep => {
                    let battery = self.persist.mode() == PersistencyMode::BbbProcessorSide;
                    let out = self.persist.procpb_mut(core).push(
                        done,
                        e.block,
                        e.offset,
                        &e.bytes[..e.len],
                        e.committed,
                        e.seq,
                        &mut self.memories,
                    );
                    self.trace.push(TraceEvent::PersistAlloc {
                        core,
                        block: e.block,
                        seq: e.seq,
                        cycle: out.done,
                        coalesced: out.coalesced,
                        rejected: out.rejected,
                        battery,
                    });
                    done = out.done.max(done);
                }
                PersistencyMode::Pmem | PersistencyMode::Eadr => {}
            }
        }
        if e.persistent {
            // No-battery-SB machines: the drain *is* the store's arrival
            // in the battery domain (no-op for every other persist point).
            self.persist_lat.on_sb_drain(e.committed, done);
        }
        self.cores[core].sb_drain_busy_until = done;
        self.now_max = self.now_max.max(done);
        done
    }

    /// Crash path: persistent SB entries drain when the SB is battery
    /// backed. Cross-core conflicts resolve by the entries' coherence
    /// order τ = (commit cycle, core index, per-core sequence) — the same
    /// key [`System::drain_all_store_buffers`] merges by — never by bare
    /// core index (DESIGN.md §9.4, resolved ledger item 1). Returns the
    /// bytes actually moved to NVMM — each entry contributes its store
    /// length (1–8 bytes), the same figure [`CrashCost::drain_bytes`]
    /// charges.
    fn crash_drain_store_buffers(&mut self, now: Cycle) -> u64 {
        if !self.cfg.battery_backed_sb {
            return 0;
        }
        // Each per-core SB is commit-ordered FIFO, so a flat sort by
        // (committed, core, seq) is exactly the k-way τ merge.
        let mut entries: Vec<(Cycle, usize, u64, SbEntry)> = Vec::new();
        for (c, core) in self.cores.iter_mut().enumerate() {
            for e in core.sb.drain_all() {
                if e.persistent {
                    entries.push((e.committed, c, e.seq, e));
                }
            }
        }
        entries.sort_unstable_by_key(|&(committed, core, seq, _)| (committed, core, seq));
        let mut bytes = 0u64;
        for (_, _, _, e) in entries {
            bytes += e.len as u64;
            self.memories
                .nvmm_mut()
                .rmw_block(now, e.block, e.offset, &e.bytes[..e.len]);
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(mode: PersistencyMode) -> System {
        System::new(SimConfig::small_for_tests(), mode).expect("valid config")
    }

    fn pbase(s: &System) -> u64 {
        s.address_map().persistent_base()
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = SimConfig::small_for_tests();
        cfg.cores = 0;
        let err = System::new(cfg, PersistencyMode::Eadr).unwrap_err();
        assert!(matches!(err, SystemError::InvalidConfig(_)));
        assert!(format!("{err}").contains("invalid configuration"));
    }

    #[test]
    fn core_out_of_range_is_reported() {
        let mut s = sys(PersistencyMode::Eadr);
        let err = s.run_single_core(99, vec![]).unwrap_err();
        assert_eq!(err, SystemError::CoreOutOfRange { core: 99, cores: 2 });
    }

    #[test]
    fn bbb_store_is_durable_without_flushes() {
        let mut s = sys(PersistencyMode::BbbMemorySide);
        let a = pbase(&s);
        s.run_single_core(0, vec![Op::store_u64(a, 0xFEED)])
            .unwrap();
        let img = s.crash_now();
        assert_eq!(img.read_u64(a), 0xFEED);
    }

    #[test]
    fn pmem_store_without_flush_is_lost() {
        let mut s = sys(PersistencyMode::Pmem);
        let a = pbase(&s);
        s.run_single_core(0, vec![Op::store_u64(a, 0xFEED)])
            .unwrap();
        let img = s.crash_now();
        assert_eq!(img.read_u64(a), 0, "volatile caches lost the store");
    }

    #[test]
    fn pmem_store_with_flush_and_fence_is_durable() {
        let mut s = sys(PersistencyMode::Pmem);
        let a = pbase(&s);
        s.run_single_core(
            0,
            vec![Op::store_u64(a, 0xBEEF), Op::Clwb { addr: a }, Op::Fence],
        )
        .unwrap();
        let img = s.crash_now();
        assert_eq!(img.read_u64(a), 0xBEEF);
    }

    #[test]
    fn eadr_store_is_durable_without_flushes() {
        let mut s = sys(PersistencyMode::Eadr);
        let a = pbase(&s);
        s.run_single_core(0, vec![Op::store_u64(a, 0xACE)]).unwrap();
        let img = s.crash_now();
        assert_eq!(img.read_u64(a), 0xACE);
    }

    #[test]
    fn procside_store_is_durable_without_flushes() {
        let mut s = sys(PersistencyMode::BbbProcessorSide);
        let a = pbase(&s);
        s.run_single_core(0, vec![Op::store_u64(a, 0xCAFE)])
            .unwrap();
        let img = s.crash_now();
        assert_eq!(img.read_u64(a), 0xCAFE);
    }

    #[test]
    fn dram_stores_never_survive() {
        for mode in PersistencyMode::ALL {
            let mut s = sys(mode);
            s.run_single_core(0, vec![Op::store_u64(0x100, 42)])
                .unwrap();
            let img = s.crash_now();
            assert_eq!(img.read_u64(0x100), 0, "{mode}: DRAM data must die");
        }
    }

    #[test]
    fn program_order_is_preserved_in_crash_image() {
        // The linked-list hazard of paper Fig. 2: node init must persist
        // before the head pointer. Under BBB both are durable instantly, so
        // any crash sees a prefix-consistent state.
        let mut s = sys(PersistencyMode::BbbMemorySide);
        let node = pbase(&s) + 0x400;
        let head = pbase(&s);
        s.run_single_core(
            0,
            vec![Op::store_u64(node, 0x1234), Op::store_u64(head, node)],
        )
        .unwrap();
        let img = s.crash_now();
        let head_val = img.read_u64(head);
        if head_val != 0 {
            assert_eq!(img.read_u64(head_val), 0x1234, "head implies node");
        }
    }

    #[test]
    fn loads_observe_prior_stores() {
        let mut s = sys(PersistencyMode::BbbMemorySide);
        let a = pbase(&s) + 0x100;
        s.preload_u64(a, 0x11);
        let end = s
            .run_single_core(
                0,
                vec![Op::load_u64(a), Op::store_u64(a, 0x22), Op::load_u64(a)],
            )
            .unwrap();
        assert!(end > 0);
        s.check_invariants();
    }

    #[test]
    fn preload_reaches_arch_and_media() {
        let mut s = sys(PersistencyMode::Pmem);
        let a = pbase(&s) + 24;
        s.preload_u64(a, 0x77);
        assert_eq!(s.arch_mem().read_u64(a), 0x77);
        let img = s.crash_now();
        assert_eq!(img.read_u64(a), 0x77);
    }

    #[test]
    fn compute_advances_time() {
        let mut s = sys(PersistencyMode::Eadr);
        let end = s
            .run_single_core(0, vec![Op::Compute { cycles: 1000 }])
            .unwrap();
        assert_eq!(end, 1000);
        assert_eq!(s.cycle(), 1000);
    }

    #[test]
    fn fence_without_flushes_is_cheap() {
        let mut s = sys(PersistencyMode::BbbMemorySide);
        let a = pbase(&s);
        s.run_single_core(0, vec![Op::store_u64(a, 1), Op::Fence])
            .unwrap();
        // The fence only waits for the SB drain (which here includes one
        // cold-miss fill from NVMM, ~300 cycles) — never for the
        // 1000-cycle NVMM write a PMEM-style flush would require.
        assert!(s.cycle() < 500, "cycle = {}", s.cycle());
    }

    #[test]
    fn pmem_fence_pays_flush_latency() {
        let a_cfg = SimConfig::small_for_tests();
        let mut bbb = System::new(a_cfg.clone(), PersistencyMode::BbbMemorySide).unwrap();
        let mut pmem = System::new(a_cfg, PersistencyMode::Pmem).unwrap();
        let a = pbase(&bbb);
        let ops = |flush: bool| {
            let mut v = Vec::new();
            for i in 0..20u64 {
                v.push(Op::store_u64(a + i * 64, i));
                if flush {
                    v.push(Op::Clwb { addr: a + i * 64 });
                    v.push(Op::Fence);
                }
            }
            v
        };
        let t_bbb = bbb.run_single_core(0, ops(false)).unwrap();
        let t_pmem = pmem.run_single_core(0, ops(true)).unwrap();
        assert!(
            t_pmem > 2 * t_bbb,
            "strict persistency in software must be much slower: {t_pmem} vs {t_bbb}"
        );
    }

    #[test]
    fn stats_aggregate_across_components() {
        let mut s = sys(PersistencyMode::BbbMemorySide);
        let a = pbase(&s);
        s.run_single_core(0, vec![Op::store_u64(a, 1), Op::load_u64(a + 64)])
            .unwrap();
        s.drain_all_store_buffers();
        let st = s.stats();
        assert_eq!(st.get("cores.stores"), 1);
        assert_eq!(st.get("cores.persisting_stores"), 1);
        assert!(st.get("cores.committed") >= 2);
        assert!(st.get("bbpb.allocations") >= 1);
        assert!(st.get("sim.cycles") > 0);
    }

    #[test]
    fn crash_cost_reflects_mode() {
        // eADR: dirty cache blocks dominate; BBB: bbPB entries.
        let mut eadr = sys(PersistencyMode::Eadr);
        let mut bbb = sys(PersistencyMode::BbbMemorySide);
        let a = pbase(&eadr);
        let ops: Vec<Op> = (0..8u64).map(|i| Op::store_u64(a + i * 64, i)).collect();
        eadr.run_single_core(0, ops.clone()).unwrap();
        eadr.drain_all_store_buffers();
        bbb.run_single_core(0, ops).unwrap();
        bbb.drain_all_store_buffers();

        let ce = eadr.crash_cost();
        let cb = bbb.crash_cost();
        assert!(ce.dirty_cache_blocks >= 4);
        assert_eq!(ce.bbpb_entries, 0);
        assert!(cb.bbpb_entries >= 1);
        assert_eq!(cb.dirty_cache_blocks, 0);
        // The headline claim in miniature: BBB's drain set is far smaller.
        assert!(cb.above_mc_blocks() < ce.above_mc_blocks());
    }

    #[test]
    fn multicore_ping_pong_stays_consistent() {
        let mut s = sys(PersistencyMode::BbbMemorySide);
        let a = pbase(&s);

        // Arch memory reflects *committed* stores, so an unsynchronized
        // read-increment-store from two cores is a genuine lost-update
        // race. Serialize like real code would: a lock held from batch
        // generation until the holder's next request (by which point its
        // store has committed and is architecturally visible).
        struct PingPong {
            left: [u32; 2],
            addr: u64,
            holder: Option<usize>,
        }
        impl Workload for PingPong {
            fn name(&self) -> &str {
                "pingpong"
            }
            fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
                if self.holder == Some(core) {
                    self.holder = None;
                }
                if self.left[core] == 0 {
                    return None;
                }
                if self.holder.is_some() {
                    return Some(vec![Op::Compute { cycles: 16 }]);
                }
                self.holder = Some(core);
                self.left[core] -= 1;
                let v = arch.read_u64(self.addr) + 1;
                Some(vec![Op::load_u64(self.addr), Op::store_u64(self.addr, v)])
            }
        }

        let mut w = PingPong {
            left: [25, 25],
            addr: a,
            holder: None,
        };
        let summary = s.run(&mut w, u64::MAX);
        assert!(summary.completed);
        // 50 increment batches of 2 ops each, plus any contended spins.
        assert!(summary.ops >= 100);
        s.check_invariants();
        s.drain_all_store_buffers();
        let img = s.crash_now();
        assert_eq!(img.read_u64(a), 50, "all 50 increments durable");
    }

    #[test]
    fn run_respects_op_budget() {
        let mut s = sys(PersistencyMode::Eadr);
        let a = pbase(&s);
        struct Infinite {
            addr: u64,
        }
        impl Workload for Infinite {
            fn name(&self) -> &str {
                "infinite"
            }
            fn next_batch(&mut self, _core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
                let v = arch.read_u64(self.addr) + 1;
                arch.write_u64(self.addr, v);
                Some(vec![Op::store_u64(self.addr, v)])
            }
        }
        let summary = s.run(&mut Infinite { addr: a }, 10);
        assert_eq!(summary.ops, 10);
        assert!(!summary.completed);
    }

    #[test]
    fn run_until_in_increments_matches_one_shot_run() {
        // The resumable path must be the same machine as `run`: advancing
        // a cursor in cycle-bounded increments, then to completion, lands
        // on the identical crash image and op count.
        let mk = || {
            let s = sys(PersistencyMode::BbbMemorySide);
            let a = pbase(&s);
            let ops: Vec<Op> = (0..64u64)
                .map(|i| Op::store_u64(a + (i % 16) * 64, i))
                .collect();
            (s, ops)
        };
        struct Fixed {
            per_core: Vec<Vec<Op>>,
        }
        impl Workload for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn next_batch(&mut self, core: usize, _arch: &mut ByteStore) -> Option<Vec<Op>> {
                let ops = std::mem::take(&mut self.per_core[core]);
                if ops.is_empty() {
                    None
                } else {
                    Some(ops)
                }
            }
        }

        let (mut whole, ops) = mk();
        let mut w1 = Fixed {
            per_core: vec![ops.clone(), ops.clone()],
        };
        whole.run(&mut w1, u64::MAX);

        let (mut stepped, ops) = mk();
        let mut w2 = Fixed {
            per_core: vec![ops.clone(), ops],
        };
        let mut cursor = RunCursor::new(2);
        let mut at = 50;
        loop {
            let s = stepped.run_until(&mut w2, &mut cursor, StopAt::Cycle(at));
            if s.completed {
                break;
            }
            at += 50;
        }
        assert!(cursor.finished());
        // Match `run`'s trailing pump before comparing.
        for c in 0..2 {
            let t = stepped.cores[c].ready_at;
            stepped.pump_sb(c, t);
        }
        assert_eq!(stepped.cycle(), whole.cycle());
        assert_eq!(cursor.ops(), 128);
        assert_eq!(
            stepped.crash_now().read_u64(pbase(&whole)),
            whole.crash_now().read_u64(pbase(&whole))
        );
    }

    #[test]
    fn event_heap_stays_bounded_on_long_incremental_runs() {
        // Scheduler-heap hygiene: stale events are invalidated lazily on
        // pop with no per-event cleanup. An audit of run_inner shows every
        // push is matched by a pop on all paths (step, yield, stop, stream
        // end), so organic runs cannot leak — but a long run advanced in
        // thousands of tiny increments is exactly where an imbalance
        // would compound, so this regression test pins the O(cores)
        // bound the compaction pass enforces either way.
        let mut cfg = SimConfig::small_for_tests();
        cfg.cores = 1;
        let mut s = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        let a = s.address_map().persistent_base();
        struct Stream {
            addr: u64,
            left: u64,
        }
        impl Workload for Stream {
            fn name(&self) -> &str {
                "stream"
            }
            fn next_batch(&mut self, _core: usize, _arch: &mut ByteStore) -> Option<Vec<Op>> {
                if self.left == 0 {
                    return None;
                }
                self.left -= 1;
                Some(vec![Op::store_u64(
                    self.addr + (self.left % 64) * 64,
                    self.left,
                )])
            }
        }
        let mut w = Stream {
            addr: a,
            left: 5000,
        };
        let mut cursor = RunCursor::new(1);
        // One in-flight workload event: the compaction threshold 2n + 8.
        let bound = 10;
        let mut at = 0;
        loop {
            at += 200;
            let summary = s.run_until(&mut w, &mut cursor, StopAt::Cycle(at));
            assert!(
                cursor.queued_events() <= bound,
                "event heap grew to {} entries",
                cursor.queued_events()
            );
            if summary.completed {
                break;
            }
        }
        assert_eq!(cursor.ops(), 5000);
    }

    #[test]
    fn forged_duplicate_events_are_compacted_away() {
        // Force the pathological heap state the lazy invalidation could
        // in principle accumulate: hundreds of stale duplicates for one
        // core, and no entry at all for the other. The compaction pass
        // must rebuild the heap from the per-core clocks — restoring the
        // one-event-per-active-core invariant — and the run must still
        // complete with every op accounted for.
        let mut s = sys(PersistencyMode::Eadr);
        let a = pbase(&s);
        struct Fixed {
            per_core: Vec<Vec<Op>>,
        }
        impl Workload for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn next_batch(&mut self, core: usize, _arch: &mut ByteStore) -> Option<Vec<Op>> {
                let ops = std::mem::take(&mut self.per_core[core]);
                if ops.is_empty() {
                    None
                } else {
                    Some(ops)
                }
            }
        }
        let ops: Vec<Op> = (0..32u64).map(|i| Op::store_u64(a + i * 64, i)).collect();
        let mut w = Fixed {
            per_core: vec![ops.clone(), ops],
        };
        let mut cursor = RunCursor::new(2);
        for i in 0..500u64 {
            cursor.events.push(i, 0);
        }
        let summary = s.run_until(&mut w, &mut cursor, StopAt::End);
        assert!(summary.completed);
        assert_eq!(cursor.ops(), 64, "both cores ran despite the forged heap");
        assert!(cursor.queued_events() <= 2 * 2 + 8);
        s.check_invariants();
    }

    #[test]
    fn cloned_system_crashes_independently() {
        let mut s = sys(PersistencyMode::BbbMemorySide);
        let a = pbase(&s);
        s.run_single_core(0, vec![Op::store_u64(a, 0x111)]).unwrap();
        let mut fork = s.clone();
        let img = fork.crash_now();
        assert_eq!(img.read_u64(a), 0x111);
        // The original keeps running as if the fork never existed —
        // including writes that land on pages the fork's COW snapshot
        // still shares.
        s.run_single_core(0, vec![Op::store_u64(a + 8, 0x222)])
            .unwrap();
        let img2 = s.crash_now();
        assert_eq!(img2.read_u64(a), 0x111);
        assert_eq!(img2.read_u64(a + 8), 0x222);
        // And the fork's image is frozen: the original's later store must
        // not bleed through the shared pages.
        assert_eq!(img.read_u64(a + 8), 0);
    }

    /// Cross-core same-line SB conflicts at a crash must resolve in
    /// coherence order τ = (commit cycle, core, seq), not core index
    /// (DESIGN.md §9.4, resolved ledger item 1): core 1 stores first,
    /// core 0 stores the same word 1000 cycles later, and the later store
    /// must win in the crash image even though core 0 drains "first" by
    /// index.
    #[test]
    fn crash_drain_resolves_sb_conflicts_by_commit_order() {
        for mode in [
            PersistencyMode::Eadr,
            PersistencyMode::BbbMemorySide,
            PersistencyMode::BbbProcessorSide,
        ] {
            let mut s = sys(mode);
            let a = pbase(&s);
            s.step_op(1, &Op::store_u64(a, 0x0B01D)); // committed early
            s.step_op(0, &Op::Compute { cycles: 1000 });
            s.step_op(0, &Op::store_u64(a, 0xA11CE)); // committed late
            let img = s.crash_image(true);
            let mut fork = s.clone();
            let destructive = fork.crash_now();
            assert_eq!(img, destructive, "{mode}: overlay vs destructive");
            assert_eq!(
                img.read_u64(a),
                0xA11CE,
                "{mode}: the later-committed store must win the conflict"
            );
        }
    }

    /// The non-destructive `crash_image` must be byte-identical to forking
    /// the system and crashing the fork — for every mode, in both battery
    /// states, both mid-flight (store buffers and persist buffers
    /// occupied) and after the buffers drain (dirty caches under eADR,
    /// resident bbPB entries under BBB).
    #[test]
    fn crash_image_matches_destructive_crash_across_modes() {
        for mode in PersistencyMode::ALL {
            let mut s = sys(mode);
            let a = pbase(&s);
            let mut ops = Vec::new();
            for i in 0..24u64 {
                ops.push(Op::store_u64(a + i * 40, 0x1000 + i));
                if mode.requires_flushes() && i % 3 == 0 {
                    ops.push(Op::Clwb { addr: a + i * 40 });
                    ops.push(Op::Fence);
                }
                if mode.requires_epoch_barriers() && i % 5 == 0 {
                    ops.push(Op::Fence);
                }
            }
            s.run_single_core(0, ops).unwrap();

            // Mid-flight: store buffers may still hold entries.
            for battery_ok in [true, false] {
                let image = s.crash_image(battery_ok);
                let mut fork = s.clone();
                let destructive = if battery_ok {
                    fork.crash_now()
                } else {
                    fork.crash_now_battery_dropped()
                };
                assert_eq!(
                    image, destructive,
                    "{mode}: mid-flight, battery_ok={battery_ok}"
                );
            }

            // Post-drain: persist domain holds the interesting state.
            s.drain_all_store_buffers();
            for battery_ok in [true, false] {
                let image = s.crash_image(battery_ok);
                let mut fork = s.clone();
                let destructive = if battery_ok {
                    fork.crash_now()
                } else {
                    fork.crash_now_battery_dropped()
                };
                assert_eq!(
                    image, destructive,
                    "{mode}: post-drain, battery_ok={battery_ok}"
                );
            }

            // crash_image is genuinely non-destructive: the live system
            // still produces the same destructive image afterwards.
            let again = s.crash_image(true);
            let destructive = s.crash_now();
            assert_eq!(again, destructive, "{mode}: live system undisturbed");
        }
    }

    #[test]
    fn battery_dropped_crash_loses_buffered_stores() {
        for mode in [
            PersistencyMode::BbbMemorySide,
            PersistencyMode::BbbProcessorSide,
            PersistencyMode::Eadr,
        ] {
            let mut s = sys(mode);
            let a = pbase(&s);
            s.run_single_core(0, vec![Op::store_u64(a, 0xFEED)])
                .unwrap();
            let mut fork = s.clone();
            assert_eq!(
                fork.crash_now().read_u64(a),
                0xFEED,
                "{mode}: battery drains"
            );
            let img = s.crash_now_battery_dropped();
            assert_eq!(
                img.read_u64(a),
                0,
                "{mode}: without the battery the store dies"
            );
        }
    }

    #[test]
    fn crash_mid_wpq_backpressure_keeps_every_accepted_write() {
        // Satellite: crash while the WPQ sits at occupancy == capacity.
        // A tiny queue plus a store stream wide enough to outrun the media
        // guarantees backpressure; every accepted write must still be in
        // the crash image because the queue is inside the ADR domain.
        let mut cfg = SimConfig::small_for_tests();
        cfg.mem.wpq_entries = 2;
        cfg.mem.nvmm_channels = 1;
        let mut s = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        let a = s.address_map().persistent_base();
        let ops: Vec<Op> = (0..64u64)
            .map(|i| Op::store_u64(a + i * 64, i + 1))
            .collect();
        s.run_single_core(0, ops).unwrap();
        s.drain_all_store_buffers();
        let probe = s.probe_events();
        assert!(
            probe.wpq_backpressure > 0,
            "stream must backpressure the WPQ"
        );
        let img = s.crash_now();
        for i in 0..64u64 {
            assert_eq!(img.read_u64(a + i * 64), i + 1, "store {i}");
        }
    }

    #[test]
    fn probe_events_counts_fences() {
        let mut s = sys(PersistencyMode::Pmem);
        let a = pbase(&s);
        s.run_single_core(
            0,
            vec![
                Op::store_u64(a, 1),
                Op::Clwb { addr: a },
                Op::Fence,
                Op::Fence,
            ],
        )
        .unwrap();
        assert_eq!(s.probe_events().fences, 2);
    }

    #[test]
    fn bbpb_inclusion_invariant_holds_under_pressure() {
        // Stream stores over many distinct blocks so LLC evictions force
        // drains; the invariant check would catch stale bbPB entries.
        let mut s = sys(PersistencyMode::BbbMemorySide);
        let a = pbase(&s);
        let ops: Vec<Op> = (0..600u64).map(|i| Op::store_u64(a + i * 64, i)).collect();
        s.run_single_core(0, ops).unwrap();
        s.drain_all_store_buffers();
        s.check_invariants();
        let st = s.stats();
        assert!(
            st.get("cache.suppressed_writebacks") > 0,
            "persistent evictions must skip the redundant writeback"
        );
        // Everything durable at crash despite zero flushes.
        let img = s.crash_now();
        for i in 0..600u64 {
            assert_eq!(img.read_u64(a + i * 64), i, "store {i}");
        }
    }

    /// Two cores interleaving runs of compute ops with stores; batches mix
    /// compute-run lengths so the fold exercises mid-run yields and stops.
    struct ComputeHeavy {
        left: [u32; 2],
        base: u64,
    }

    impl Workload for ComputeHeavy {
        fn name(&self) -> &str {
            "compute-heavy"
        }
        fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
            if self.left[core] == 0 {
                return None;
            }
            self.left[core] -= 1;
            let i = u64::from(self.left[core]);
            let mut ops = Vec::new();
            // Uneven compute runs so cores' clocks cross mid-fold.
            for k in 0..(1 + (i + core as u64) % 5) {
                ops.push(Op::Compute {
                    cycles: (7 + 13 * k + core as u64 * 3) as u32,
                });
            }
            let slot = self.base + (core as u64 * 64 + (i % 8)) * 8;
            let v = arch.read_u64(slot) + 1;
            ops.push(Op::store_u64(slot, v));
            ops.push(Op::Compute { cycles: 5 });
            ops.push(Op::Compute { cycles: 9 });
            Some(ops)
        }
    }

    #[test]
    fn compute_fold_matches_unfolded_reference() {
        // The probed run path disables the batch-retire fold (it must
        // sample between every op), so it is the per-op reference the
        // folded path must match bit-for-bit: same cycles, same stats
        // (including sched.* attribution), same crash image.
        for mode in PersistencyMode::ALL {
            let mut folded = sys(mode);
            let mut reference = sys(mode);
            let base = pbase(&folded) + 0x400;
            let mk = || ComputeHeavy {
                left: [40, 31],
                base,
            };
            let s1 = folded.run(&mut mk(), u64::MAX);
            let mut cursor = RunCursor::new(reference.cores.len());
            let mut sink = Vec::new();
            let s2 = reference.run_probed(&mut mk(), &mut cursor, &mut sink);
            for c in 0..reference.cores.len() {
                let t = reference.cores[c].ready_at;
                reference.pump_sb(c, t);
            }
            assert_eq!(s1.ops, s2.ops, "{mode:?}");
            assert_eq!(s1.cycles, reference.now_max, "{mode:?}");
            assert_eq!(folded.stats(), reference.stats(), "{mode:?}");
            let (ia, ib) = (folded.crash_image(true), reference.crash_image(true));
            assert_eq!(ia.as_store(), ib.as_store(), "{mode:?}");
        }
    }

    #[test]
    fn compute_fold_respects_op_budget_and_cycle_stop() {
        let base_budget = 37u64;
        for stop_kind in 0..2 {
            let mut folded = sys(PersistencyMode::Eadr);
            let mut reference = sys(PersistencyMode::Eadr);
            let base = pbase(&folded) + 0x400;
            let mk = || ComputeHeavy {
                left: [40, 31],
                base,
            };
            let stop = if stop_kind == 0 {
                StopAt::Ops(base_budget)
            } else {
                StopAt::Cycle(500)
            };
            let mut c1 = RunCursor::new(folded.cores.len());
            let s1 = folded.run_until(&mut mk(), &mut c1, stop);
            // Per-op reference: budget-1 ops probed (fold off), then one
            // run_until step — instead, just compare against a probed full
            // walk truncated by the same stop via step-by-step increments.
            let mut c2 = RunCursor::new(reference.cores.len());
            let mut w = mk();
            let mut s2 = reference.run_until(&mut w, &mut c2, StopAt::Ops(1));
            loop {
                let done = match stop {
                    StopAt::Ops(b) => c2.ops() >= b,
                    StopAt::Cycle(at) => reference.now_max >= at,
                    StopAt::End => unreachable!(),
                };
                if done || c2.finished() {
                    break;
                }
                let next = c2.ops() + 1;
                s2 = reference.run_until(&mut w, &mut c2, StopAt::Ops(next));
            }
            assert_eq!(s1.ops, s2.ops, "stop {stop:?}");
            assert_eq!(folded.now_max, reference.now_max, "stop {stop:?}");
            assert_eq!(folded.stats(), reference.stats(), "stop {stop:?}");
        }
    }

    /// A stream yielding the same committed sequence as `ComputeHeavy`.
    struct ComputeHeavyStream {
        inner: ComputeHeavy,
        bufs: Vec<VecDeque<Op>>,
    }

    impl OpStream for ComputeHeavyStream {
        fn name(&self) -> &str {
            "compute-heavy-stream"
        }
        fn next_op(&mut self, core: usize, arch: &mut ByteStore) -> Option<Op> {
            if self.bufs[core].is_empty() {
                let batch = self.inner.next_batch(core, arch)?;
                self.bufs[core].extend(batch);
            }
            self.bufs[core].pop_front()
        }
    }

    #[test]
    fn stream_run_matches_batch_run() {
        for mode in [PersistencyMode::BbbMemorySide, PersistencyMode::Pmem] {
            let mut batch_sys = sys(mode);
            let mut stream_sys = sys(mode);
            let base = pbase(&batch_sys) + 0x400;
            let mut w = ComputeHeavy {
                left: [25, 18],
                base,
            };
            let mut s = ComputeHeavyStream {
                inner: ComputeHeavy {
                    left: [25, 18],
                    base,
                },
                bufs: vec![VecDeque::new(); 2],
            };
            let r1 = batch_sys.run(&mut w, u64::MAX);
            let r2 = stream_sys.run_stream(&mut s, u64::MAX);
            assert_eq!(r1, r2, "{mode:?}");
            assert_eq!(batch_sys.stats(), stream_sys.stats(), "{mode:?}");
            let (ia, ib) = (batch_sys.crash_image(true), stream_sys.crash_image(true));
            assert_eq!(ia.as_store(), ib.as_store(), "{mode:?}");
        }
    }

    #[test]
    fn persist_latency_is_zero_under_battery_and_positive_under_pmem() {
        // Battery-backed SB: PoP == commit, the whole distribution is 0.
        for mode in [
            PersistencyMode::Eadr,
            PersistencyMode::BbbMemorySide,
            PersistencyMode::BbbProcessorSide,
        ] {
            let mut s = sys(mode);
            let a = pbase(&s);
            let ops: Vec<Op> = (0..16u64).map(|i| Op::store_u64(a + i * 64, i)).collect();
            s.run_single_core(0, ops).unwrap();
            let st = s.stats();
            assert_eq!(st.get("persist.latency.samples"), 16, "{mode:?}");
            assert_eq!(st.get("persist.latency.p999"), 0, "{mode:?}");
            assert_eq!(st.get("persist.latency.max"), 0, "{mode:?}");
            assert_eq!(st.get("cores.persisting_store_bytes"), 16 * 8, "{mode:?}");
        }
        // ADR + flushes: the clwb resolves the store at WPQ acceptance,
        // hundreds of cycles after commit.
        let mut s = sys(PersistencyMode::Pmem);
        let a = pbase(&s);
        let mut ops = Vec::new();
        for i in 0..8u64 {
            ops.push(Op::store_u64(a + i * 64, i));
            ops.push(Op::Clwb { addr: a + i * 64 });
            ops.push(Op::Fence);
        }
        s.run_single_core(0, ops).unwrap();
        let st = s.stats();
        assert_eq!(st.get("persist.latency.samples"), 8);
        assert!(st.get("persist.latency.p50") > 0);
        assert_eq!(st.get("persist.latency.unresolved"), 0);
        // BEP: the epoch barrier resolves everything the core committed.
        let mut s = sys(PersistencyMode::Bep);
        let a = pbase(&s);
        let mut ops: Vec<Op> = (0..8u64).map(|i| Op::store_u64(a + i * 64, i)).collect();
        ops.push(Op::Fence);
        s.run_single_core(0, ops).unwrap();
        let st = s.stats();
        assert_eq!(st.get("persist.latency.samples"), 8);
        assert_eq!(st.get("persist.latency.unresolved"), 0);
    }
}

//! Persist-latency observability: store commit → point of persistence.
//!
//! The paper's headline claim is that battery-backed buffers collapse the
//! point of persistence (PoP) onto the point of visibility. This module
//! makes that measurable as a distribution rather than an argument: every
//! persisting store's commit cycle is paired with the cycle its data
//! reaches the active persistence domain, and the difference lands in a
//! mergeable [`LatencyHistogram`] whose p50/p99/p999 the server-scale
//! benchmarks report per mode.
//!
//! Where the PoP is observed depends on the machine:
//!
//! * battery-backed SB (BBB both organizations, eADR): the store is
//!   durable the cycle it commits — latency is exactly 0, the PoV==PoP
//!   identity the paper proves;
//! * the no-battery-SB ablation of those modes: PoP is the SB drain into
//!   the (battery-covered) hierarchy/persist buffer;
//! * ADR + flushes (`pmem`): PoP is the `clwb` that pushes the line into
//!   the WPQ — commits wait in the cache until software flushes them;
//! * BEP: PoP is the epoch barrier that drains the volatile procPB.
//!
//! For the flush/fence modes the tracker keeps a small per-core pending
//! queue of (block, commit cycle) pairs; stores that are never resolved
//! (uninstrumented code, or overflow past the bounded queue) are counted
//! as `unresolved` rather than silently dropped, so a report can tell
//! "fast" from "never persisted".

use std::collections::VecDeque;

use bbb_sim::{BlockAddr, Cycle, LatencyHistogram, Stats};

use crate::mode::PersistencyMode;

/// Bound on tracked-but-unresolved persisting stores per core. Beyond it
/// the oldest entry is dropped into the `unresolved` count — the queue
/// only grows without bound when code never flushes, and then the honest
/// answer is "unresolved", not an ever-larger buffer.
const PENDING_CAP: usize = 8192;

/// Where the active machine's point of persistence is observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PersistPoint {
    /// Battery-backed store buffer: PoP == PoV == store commit.
    Commit,
    /// Battery domain starts past the SB: PoP is the SB drain.
    SbDrain,
    /// ADR + software flushes: PoP is the `clwb`'s persist cycle.
    Clwb,
    /// BEP: PoP is the epoch barrier draining the volatile procPB.
    Fence,
}

impl PersistPoint {
    fn for_machine(mode: PersistencyMode, battery_backed_sb: bool) -> Self {
        match mode {
            PersistencyMode::Pmem => Self::Clwb,
            PersistencyMode::Bep => Self::Fence,
            PersistencyMode::Eadr
            | PersistencyMode::BbbMemorySide
            | PersistencyMode::BbbProcessorSide => {
                if battery_backed_sb {
                    Self::Commit
                } else {
                    Self::SbDrain
                }
            }
        }
    }
}

/// Tracks commit→persistence latency for every persisting store.
#[derive(Debug, Clone)]
pub(crate) struct PersistLatencyTracker {
    point: PersistPoint,
    hist: LatencyHistogram,
    /// Per-core (block, commit cycle) awaiting a resolving clwb/fence.
    pending: Vec<VecDeque<(BlockAddr, Cycle)>>,
    dropped: u64,
}

impl PersistLatencyTracker {
    pub(crate) fn new(mode: PersistencyMode, battery_backed_sb: bool, cores: usize) -> Self {
        Self {
            point: PersistPoint::for_machine(mode, battery_backed_sb),
            hist: LatencyHistogram::new(),
            pending: vec![VecDeque::new(); cores],
            dropped: 0,
        }
    }

    /// A persisting store committed on `core` at `now`.
    pub(crate) fn on_store_commit(&mut self, core: usize, block: BlockAddr, now: Cycle) {
        match self.point {
            PersistPoint::Commit => self.hist.record(0),
            PersistPoint::SbDrain => {}
            PersistPoint::Clwb | PersistPoint::Fence => {
                let q = &mut self.pending[core];
                if q.len() >= PENDING_CAP {
                    q.pop_front();
                    self.dropped += 1;
                }
                q.push_back((block, now));
            }
        }
    }

    /// A persistent SB entry committed at `committed` reached the battery
    /// domain at `done`.
    pub(crate) fn on_sb_drain(&mut self, committed: Cycle, done: Cycle) {
        if self.point == PersistPoint::SbDrain {
            self.hist.record(done.saturating_sub(committed));
        }
    }

    /// `core` flushed `block`; its data is durable at `persist`. Resolves
    /// this core's pending stores to the same line (instrumented code
    /// flushes its own stores; a cross-core flush of a shared line is
    /// credited to the eventual own-core flush instead).
    pub(crate) fn on_clwb(&mut self, core: usize, block: BlockAddr, persist: Cycle) {
        if self.point != PersistPoint::Clwb {
            return;
        }
        let hist = &mut self.hist;
        self.pending[core].retain(|&(b, committed)| {
            if b == block {
                hist.record(persist.saturating_sub(committed));
                false
            } else {
                true
            }
        });
    }

    /// `core` executed an epoch barrier; everything it committed before is
    /// durable at `done`.
    pub(crate) fn on_fence(&mut self, core: usize, done: Cycle) {
        if self.point != PersistPoint::Fence {
            return;
        }
        for (_, committed) in self.pending[core].drain(..) {
            self.hist.record(done.saturating_sub(committed));
        }
    }

    /// The merged latency distribution (a mergeable monoid — shard
    /// histograms combine with [`LatencyHistogram::merge`]).
    pub(crate) fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Stores tracked but never observed persisting (pending at the end of
    /// the run, or evicted past the bounded queue).
    pub(crate) fn unresolved(&self) -> u64 {
        self.dropped + self.pending.iter().map(|q| q.len() as u64).sum::<u64>()
    }

    /// Exports `persist.latency.*`. The percentile keys are per-run values
    /// at bucket granularity, not additive counters — merging two runs'
    /// `Stats` sums them into nonsense; merge the histograms instead.
    pub(crate) fn export(&self, stats: &mut Stats) {
        stats.set("persist.latency.samples", self.hist.samples());
        stats.set("persist.latency.p50", self.hist.percentile_permille(500));
        stats.set("persist.latency.p99", self.hist.percentile_permille(990));
        stats.set("persist.latency.p999", self.hist.percentile_permille(999));
        stats.set("persist.latency.max", self.hist.max());
        stats.set("persist.latency.unresolved", self.unresolved());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_modes_observe_zero_latency() {
        for mode in [
            PersistencyMode::Eadr,
            PersistencyMode::BbbMemorySide,
            PersistencyMode::BbbProcessorSide,
        ] {
            let mut t = PersistLatencyTracker::new(mode, true, 2);
            t.on_store_commit(0, BlockAddr::containing(0x1000), 100);
            t.on_store_commit(1, BlockAddr::containing(0x2000), 200);
            assert_eq!(t.histogram().samples(), 2);
            assert_eq!(t.histogram().max(), 0);
            assert_eq!(t.unresolved(), 0);
        }
    }

    #[test]
    fn clwb_resolves_matching_line_only() {
        let mut t = PersistLatencyTracker::new(PersistencyMode::Pmem, true, 1);
        let a = BlockAddr::containing(0x1000);
        let b = BlockAddr::containing(0x2000);
        t.on_store_commit(0, a, 100);
        t.on_store_commit(0, b, 110);
        t.on_clwb(0, a, 600);
        assert_eq!(t.histogram().samples(), 1);
        assert_eq!(t.histogram().max(), 500);
        assert_eq!(t.unresolved(), 1);
        t.on_clwb(0, b, 700);
        assert_eq!(t.histogram().samples(), 2);
        assert_eq!(t.unresolved(), 0);
    }

    #[test]
    fn fence_resolves_everything_on_the_core() {
        let mut t = PersistLatencyTracker::new(PersistencyMode::Bep, true, 2);
        t.on_store_commit(0, BlockAddr::containing(0x1000), 100);
        t.on_store_commit(0, BlockAddr::containing(0x2000), 150);
        t.on_store_commit(1, BlockAddr::containing(0x3000), 120);
        t.on_fence(0, 1000);
        assert_eq!(t.histogram().samples(), 2);
        assert_eq!(t.histogram().max(), 900);
        assert_eq!(t.unresolved(), 1, "core 1 never fenced");
    }

    #[test]
    fn pending_queue_is_bounded() {
        let mut t = PersistLatencyTracker::new(PersistencyMode::Pmem, true, 1);
        for i in 0..(PENDING_CAP as u64 + 10) {
            t.on_store_commit(0, BlockAddr::containing(i * 64), i);
        }
        assert_eq!(t.unresolved(), PENDING_CAP as u64 + 10);
        assert_eq!(t.pending[0].len(), PENDING_CAP);
    }

    #[test]
    fn no_battery_sb_measures_drain_latency() {
        let mut t = PersistLatencyTracker::new(PersistencyMode::BbbMemorySide, false, 1);
        t.on_store_commit(0, BlockAddr::containing(0x1000), 100);
        assert_eq!(t.histogram().samples(), 0, "commit alone records nothing");
        t.on_sb_drain(100, 140);
        assert_eq!(t.histogram().samples(), 1);
        assert_eq!(t.histogram().max(), 40);
    }

    #[test]
    fn export_names_are_stable() {
        let mut t = PersistLatencyTracker::new(PersistencyMode::Eadr, true, 1);
        t.on_store_commit(0, BlockAddr::containing(0), 0);
        let mut s = Stats::new();
        t.export(&mut s);
        assert_eq!(s.get("persist.latency.samples"), 1);
        assert_eq!(s.get("persist.latency.p999"), 0);
        assert_eq!(s.get("persist.latency.unresolved"), 0);
    }
}

//! Pull-based op streaming — the server-scale workload interface.
//!
//! The batch [`Workload`] contract materializes a `Vec<Op>` per
//! high-level operation; that is fine for the paper's microbenchmarks but
//! allocates on every request and invites pre-materializing whole op
//! vectors. [`OpStream`] is the O(live keys) alternative: the system
//! pulls exactly one op at a time and the generator keeps only its live
//! state (key tables, per-core cursors) — memory stays independent of
//! how many ops a run executes, which is what makes million-key ×
//! ten-million-op sweeps feasible.
//!
//! Semantics match the batch path exactly: ops are generated against the
//! architectural memory at the simulation instant the core is ready for
//! them, and stores mutate `arch` only when they *commit* inside the
//! system (not at generation time), preserving honest cross-core
//! visibility. A stream wrapped in [`StreamWorkload`] therefore produces
//! the same committed op sequence as feeding it to
//! [`System::run_stream`](crate::System::run_stream) directly.

use bbb_cpu::Op;
use bbb_mem::ByteStore;

use crate::workload::Workload;

/// A multi-threaded workload that yields one op at a time.
///
/// `Send` is a supertrait for the same reason as on [`Workload`]:
/// experiment points run on worker threads.
pub trait OpStream: Send {
    /// Short name for reports (e.g. `"kv-a"`).
    fn name(&self) -> &str;

    /// Builds initial state directly in architectural memory before the
    /// measured window (mirrored into the media by
    /// [`System::prepare_stream`](crate::System::prepare_stream)).
    /// Default: nothing to set up.
    fn setup(&mut self, arch: &mut ByteStore) {
        let _ = arch;
    }

    /// The next op `core` should commit, generated against the
    /// architectural memory at this simulation instant. `None` ends the
    /// core's stream permanently.
    fn next_op(&mut self, core: usize, arch: &mut ByteStore) -> Option<Op>;
}

impl OpStream for Box<dyn OpStream> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        self.as_mut().setup(arch);
    }

    fn next_op(&mut self, core: usize, arch: &mut ByteStore) -> Option<Op> {
        self.as_mut().next_op(core, arch)
    }
}

/// Adapts an [`OpStream`] to the batch [`Workload`] interface with
/// one-op batches, so stream-native workloads can ride every existing
/// batch driver (crash sweeps, epoch wrappers, recovery checks) with an
/// identical committed op sequence.
#[derive(Debug)]
pub struct StreamWorkload<S>(pub S);

impl<S: OpStream> Workload for StreamWorkload<S> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        self.0.setup(arch);
    }

    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        self.0.next_op(core, arch).map(|op| vec![op])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountStream {
        remaining: Vec<u32>,
        base: u64,
    }

    impl OpStream for CountStream {
        fn name(&self) -> &str {
            "count"
        }

        fn next_op(&mut self, core: usize, _arch: &mut ByteStore) -> Option<Op> {
            if self.remaining[core] == 0 {
                return None;
            }
            self.remaining[core] -= 1;
            Some(Op::store_u64(self.base + core as u64 * 8, 7))
        }
    }

    #[test]
    fn stream_is_object_safe_and_adapts_to_workload() {
        let mut arch = ByteStore::new();
        let mut s: Box<dyn OpStream> = Box::new(CountStream {
            remaining: vec![2, 1],
            base: 0x1000,
        });
        assert_eq!(s.name(), "count");
        assert!(s.next_op(0, &mut arch).is_some());

        let mut w = StreamWorkload(CountStream {
            remaining: vec![1, 0],
            base: 0x1000,
        });
        assert_eq!(w.name(), "count");
        let batch = w.next_batch(0, &mut arch).expect("one op left");
        assert_eq!(batch.len(), 1);
        assert!(w.next_batch(0, &mut arch).is_none());
        assert!(w.next_batch(1, &mut arch).is_none());
    }
}

//! The workload interface.
//!
//! Workloads run *execution-driven at operation granularity*: when a core
//! is ready for work, the system asks for the next high-level operation's
//! op sequence, generated against the functional architectural memory at
//! that simulation instant. Cores thus interleave operations in simulated-
//! time order, and the op payloads carry real bytes into the timing model.

use bbb_cpu::Op;
use bbb_mem::ByteStore;

/// A multi-threaded workload feeding the system simulator.
///
/// Implementations live in `bbb-workloads` (the paper's Table IV set); the
/// trait is defined here so the system can drive any workload without a
/// dependency cycle.
///
/// `Send` is a supertrait: experiment points run on worker threads in the
/// experiment runner, so a workload must be movable across threads. All
/// implementations are plain owned data (no `Rc`/`RefCell`), which this
/// bound now guarantees at compile time.
pub trait Workload: Send {
    /// Short name for reports (e.g. `"rtree"`).
    fn name(&self) -> &str;

    /// Builds the workload's initial state (e.g. the 1M-node structure the
    /// paper pre-populates) directly in architectural memory, before the
    /// measured window. The system mirrors `arch` into the backing media
    /// afterwards. Default: nothing to set up.
    fn setup(&mut self, arch: &mut ByteStore) {
        let _ = arch;
    }

    /// Produces the op sequence of `core`'s next high-level operation,
    /// computed against (and applied to) the architectural memory `arch`.
    /// Returns `None` when the core has no more work.
    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>>;
}

impl Workload for Box<dyn Workload> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        self.as_mut().setup(arch);
    }

    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        self.as_mut().next_batch(core, arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial workload: each core stores an incrementing counter to its
    /// own slot `n` times.
    struct CounterWorkload {
        remaining: Vec<u32>,
        base: u64,
    }

    impl Workload for CounterWorkload {
        fn name(&self) -> &str {
            "counter"
        }

        fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
            if self.remaining[core] == 0 {
                return None;
            }
            self.remaining[core] -= 1;
            let slot = self.base + core as u64 * 8;
            let v = arch.read_u64(slot) + 1;
            arch.write_u64(slot, v);
            Some(vec![Op::load_u64(slot), Op::store_u64(slot, v)])
        }
    }

    #[test]
    fn workload_is_object_safe_and_drives_arch_memory() {
        let mut arch = ByteStore::new();
        let mut w: Box<dyn Workload> = Box::new(CounterWorkload {
            remaining: vec![2, 1],
            base: 0x1000,
        });
        assert_eq!(w.name(), "counter");
        assert!(w.next_batch(0, &mut arch).is_some());
        assert!(w.next_batch(0, &mut arch).is_some());
        assert!(w.next_batch(0, &mut arch).is_none());
        assert!(w.next_batch(1, &mut arch).is_some());
        assert_eq!(arch.read_u64(0x1000), 2);
        assert_eq!(arch.read_u64(0x1008), 1);
    }
}

//! Crash drain-cost accounting.
//!
//! When power fails, the battery must drain exactly the active persistence
//! domain to NVMM. [`CrashCost`] records what that drain consists of for
//! the current machine state; `bbb-energy` turns it into joules, seconds,
//! and battery volume (paper Tables VII–IX).

use std::fmt;

use bbb_sim::BLOCK_BYTES;

use crate::mode::PersistencyMode;

/// The flush-on-fail drain set at a particular instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashCost {
    /// Mode the machine was running in.
    pub mode: PersistencyMode,
    /// Resident persist-buffer entries (blocks for memory-side, stores for
    /// processor-side) the battery must drain. Zero for PMEM/eADR.
    pub bbpb_entries: u64,
    /// Battery-backed store-buffer entries to drain (zero when the SB is
    /// not in the persistence domain).
    pub sb_entries: u64,
    /// Actual payload bytes of those store-buffer entries. Each store is
    /// 1–8 bytes (`SbEntry.len`); the old flat 8-byte charge per entry
    /// systematically inflated the Tables VII–IX energy numbers for small
    /// stores.
    pub sb_bytes: u64,
    /// Dirty cache blocks to drain (eADR only).
    pub dirty_cache_blocks: u64,
    /// WPQ entries still queued (every mode: ADR covers the WPQ).
    pub wpq_blocks: u64,
}

impl CrashCost {
    /// Total bytes the battery must move to NVMM: a 64-byte block per
    /// buffered block plus the exact store-buffer payload bytes.
    #[must_use]
    pub fn drain_bytes(&self) -> u64 {
        (self.bbpb_entries + self.dirty_cache_blocks + self.wpq_blocks) * BLOCK_BYTES as u64
            + self.sb_bytes
    }

    /// Blocks drained from structures *above* the memory controller (the
    /// part eADR vs BBB differ on; the WPQ is battery-backed either way).
    #[must_use]
    pub fn above_mc_blocks(&self) -> u64 {
        self.bbpb_entries + self.dirty_cache_blocks
    }
}

impl fmt::Display for CrashCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: drain {} B (bbPB {}, SB {} = {} B, dirty cache {}, WPQ {})",
            self.mode,
            self.drain_bytes(),
            self.bbpb_entries,
            self.sb_entries,
            self.sb_bytes,
            self.dirty_cache_blocks,
            self.wpq_blocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        // Two SB entries of 4 and 8 bytes: charged 12 bytes, not 16.
        let c = CrashCost {
            mode: PersistencyMode::BbbMemorySide,
            bbpb_entries: 3,
            sb_entries: 2,
            sb_bytes: 12,
            dirty_cache_blocks: 0,
            wpq_blocks: 1,
        };
        assert_eq!(c.drain_bytes(), 4 * 64 + 12);
        assert_eq!(c.above_mc_blocks(), 3);
    }

    #[test]
    fn small_stores_are_not_charged_a_full_doubleword() {
        let c = CrashCost {
            mode: PersistencyMode::BbbMemorySide,
            bbpb_entries: 0,
            sb_entries: 4,
            sb_bytes: 4, // four one-byte stores
            dirty_cache_blocks: 0,
            wpq_blocks: 0,
        };
        assert_eq!(c.drain_bytes(), 4);
    }

    #[test]
    fn eadr_counts_cache_blocks() {
        let c = CrashCost {
            mode: PersistencyMode::Eadr,
            bbpb_entries: 0,
            sb_entries: 0,
            sb_bytes: 0,
            dirty_cache_blocks: 100,
            wpq_blocks: 0,
        };
        assert_eq!(c.drain_bytes(), 6400);
        assert_eq!(c.above_mc_blocks(), 100);
    }

    #[test]
    fn display_is_descriptive() {
        let c = CrashCost {
            mode: PersistencyMode::Pmem,
            bbpb_entries: 0,
            sb_entries: 0,
            sb_bytes: 0,
            dirty_cache_blocks: 0,
            wpq_blocks: 2,
        };
        let s = format!("{c}");
        assert!(s.contains("WPQ 2"));
        assert!(s.contains("128 B"));
    }
}

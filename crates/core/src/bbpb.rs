//! The memory-side battery-backed persist buffer (bbPB).
//!
//! One bbPB sits next to each core's L1D (paper Fig. 4). Entries are
//! 64-byte blocks that are *already inside the persistence domain*: a
//! persisting store becomes durable the cycle its block is allocated (or
//! coalesced) here, and the battery guarantees every entry reaches NVMM on
//! power failure. Because entries are persistent the moment they exist,
//! stores to the same block coalesce freely and entries may drain out of
//! order — the properties that let a 32-entry buffer match eADR (paper
//! §III-B, §V).
//!
//! Draining follows the paper's policy (§III-F): lazy, watermark-driven.
//! A drain burst begins only when the buffer fills and empties entries
//! until occupancy falls back to the configured threshold (75% of
//! capacity by default) — so the whole capacity, not just the headroom
//! below the threshold, serves as the coalescing window. The drain victim
//! is the least-recently-written entry (a coalesce refreshes its
//! position): draining a still-hot block would split its dirty episode and
//! cost an extra NVMM write the moment the next store re-allocates it,
//! defeating the coalescing the lazy policy exists to protect.

use std::collections::VecDeque;

use bbb_sim::{
    BbpbConfig, BlockAddr, Counter, Cycle, FxHashMap, MemoryPort, Stats, TraceEvent, TraceLog,
    BLOCK_BYTES,
};

/// Result of offering a persisting store to the bbPB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocOutcome {
    /// Cycle at which the store owns an entry — its persist point. Equals
    /// the offer cycle unless the buffer was full (a *rejection*), in which
    /// case the store stalled until a drain freed an entry.
    pub done: Cycle,
    /// True if the store merged into an existing entry for its block.
    pub coalesced: bool,
    /// True if the buffer was full and the store had to wait.
    pub rejected: bool,
}

#[derive(Debug, Clone)]
struct Resident {
    data: [u8; BLOCK_BYTES],
    /// Write sequence of this entry's live FIFO ticket: the `fifo` element
    /// carrying this number is the entry's real drain position; any earlier
    /// elements naming the same block are stale and skipped on pop.
    seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    frees_at: Cycle,
}

/// One core's memory-side bbPB.
///
/// # Examples
///
/// ```
/// use bbb_core::Bbpb;
/// use bbb_mem::NvmmController;
/// use bbb_sim::{BbpbConfig, BlockAddr, MemTiming};
///
/// let mut nvmm = NvmmController::new(MemTiming::default());
/// let mut pb = Bbpb::new(&BbpbConfig::default());
/// let b = BlockAddr::from_index(1);
/// let out = pb.allocate(0, b, [7; 64], &mut nvmm);
/// assert_eq!(out.done, 0); // persistent instantly: PoV == PoP
/// assert!(pb.contains(b));
/// ```
#[derive(Debug, Clone)]
pub struct Bbpb {
    capacity: usize,
    drain_trigger_level: usize,
    drain_stop_level: usize,
    drain_latency: Cycle,
    resident: FxHashMap<BlockAddr, Resident>,
    /// Drain-order tickets, oldest first. Each resident entry owns exactly
    /// one *live* ticket — the one whose sequence matches its `Resident::seq`
    /// — placed at its last-write position; a coalesce re-tickets the entry
    /// at the back in O(1) and strands the old ticket, which
    /// [`Bbpb::pop_oldest`] discards lazily. The live tickets read in queue
    /// order are therefore exactly the old eager FIFO: front = least
    /// recently written = next drain victim.
    fifo: VecDeque<(BlockAddr, u64)>,
    /// Next write-sequence ticket number.
    next_seq: u64,
    in_flight: Vec<InFlight>,
    allocations: Counter,
    coalesces: Counter,
    rejections: Counter,
    drains: Counter,
    forced_drains: Counter,
    moves_in: Counter,
    moves_out: Counter,
    /// Sum of occupancy sampled at each allocation (avg = sum/samples).
    occupancy_sum: Counter,
    occupancy_samples: Counter,
    /// Which core this buffer sits next to (trace attribution only; set by
    /// `PersistState::new`).
    pub(crate) core_id: usize,
    /// Drain-event recorder for the persist-order checker.
    pub(crate) trace: TraceLog,
    /// Monotone mutation counter: bumped whenever the crash drain set
    /// (`resident`/`fifo`) changes, so an unchanged version proves an
    /// unchanged drain set. In-flight bookkeeping does not bump it.
    version: u64,
}

impl Bbpb {
    /// Creates a bbPB from its configuration.
    #[must_use]
    pub fn new(cfg: &BbpbConfig) -> Self {
        Self {
            capacity: cfg.entries,
            drain_trigger_level: cfg.drain_policy.trigger_level(cfg.entries),
            drain_stop_level: cfg.drain_policy.stop_level(cfg.entries),
            drain_latency: cfg.drain_latency,
            resident: FxHashMap::default(),
            fifo: VecDeque::new(),
            next_seq: 0,
            in_flight: Vec::new(),
            allocations: Counter::new(),
            coalesces: Counter::new(),
            rejections: Counter::new(),
            drains: Counter::new(),
            forced_drains: Counter::new(),
            moves_in: Counter::new(),
            moves_out: Counter::new(),
            occupancy_sum: Counter::new(),
            occupancy_samples: Counter::new(),
            core_id: 0,
            trace: TraceLog::default(),
            version: 0,
        }
    }

    /// Monotone mutation counter over the crash drain set: equal versions
    /// within one buffer's lifetime prove identical resident contents.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Capacity in block entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries occupied at `now` (resident plus drains still in flight).
    #[must_use]
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.advance(now);
        self.resident.len() + self.in_flight.len()
    }

    /// True if `block` has a resident (coalescable) entry.
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.resident.contains_key(&block)
    }

    /// Offers a persisting store's block (with the full, post-store block
    /// value) at `now`. Coalesces, allocates, or — when full — stalls until
    /// a drain frees an entry, then allocates. Afterwards threshold
    /// draining runs.
    pub fn allocate(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        data: [u8; BLOCK_BYTES],
        mem: &mut dyn MemoryPort,
    ) -> AllocOutcome {
        self.advance(now);
        self.occupancy_sum
            .add((self.resident.len() + self.in_flight.len()) as u64);
        self.occupancy_samples.inc();

        let at_back = self.fifo.back().is_some_and(|&(b, _)| b == block);
        let next_seq = self.next_seq;
        if let Some(entry) = self.resident.get_mut(&block) {
            entry.data = data;
            if !at_back {
                entry.seq = next_seq;
            }
            self.version += 1;
            self.coalesces.inc();
            if !at_back {
                self.next_seq += 1;
                self.fifo.push_back((block, next_seq));
                self.compact_if_bloated();
            }
            self.maybe_drain(now, mem);
            return AllocOutcome {
                done: now,
                coalesced: true,
                rejected: false,
            };
        }

        // A full buffer starts its drain burst before the store stalls, so
        // the wait below is for WPQ completions already in flight.
        self.maybe_drain(now, mem);
        let mut t = now;
        let mut rejected = false;
        while self.resident.len() + self.in_flight.len() >= self.capacity {
            rejected = true;
            t = self.wait_for_free(t, mem);
        }
        if rejected {
            self.rejections.inc();
        }
        self.insert_fresh(block, data);
        self.version += 1;
        self.allocations.inc();
        self.maybe_drain(t, mem);
        AllocOutcome {
            done: t,
            coalesced: false,
            rejected,
        }
    }

    /// Installs a fresh resident entry at the most-recently-written end.
    fn insert_fresh(&mut self, block: BlockAddr, data: [u8; BLOCK_BYTES]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.resident.insert(block, Resident { data, seq });
        self.fifo.push_back((block, seq));
        self.compact_if_bloated();
    }

    /// Moves `block` to the most-recently-written end of the drain order by
    /// issuing it a fresh back-of-queue ticket; its previous ticket goes
    /// stale in place instead of being searched out and removed.
    fn retick(&mut self, block: BlockAddr) {
        if self.fifo.back().is_some_and(|&(b, _)| b == block) {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.resident
            .get_mut(&block)
            .expect("retick of non-resident block")
            .seq = seq;
        self.fifo.push_back((block, seq));
        self.compact_if_bloated();
    }

    /// Sweeps stale tickets once they outnumber the live ones: live tickets
    /// never exceed `capacity`, so compacting at twice that keeps each sweep
    /// at least half-effective and the amortized cost per push constant.
    fn compact_if_bloated(&mut self) {
        if self.fifo.len() > 2 * self.capacity.max(8) {
            let resident = &self.resident;
            self.fifo
                .retain(|&(b, s)| resident.get(&b).is_some_and(|r| r.seq == s));
        }
    }

    /// Pops the least-recently-written resident block, discarding any stale
    /// tickets ahead of it. `None` when nothing is resident.
    fn pop_oldest(&mut self) -> Option<BlockAddr> {
        while let Some((b, s)) = self.fifo.pop_front() {
            if self.resident.get(&b).is_some_and(|r| r.seq == s) {
                return Some(b);
            }
        }
        None
    }

    /// Removes `block`'s resident entry for migration to another core's
    /// bbPB (paper Fig. 6(a)/(b): the block moves — without draining —
    /// and the new core becomes responsible for it).
    pub fn take_for_move(&mut self, block: BlockAddr) -> Option<[u8; BLOCK_BYTES]> {
        let entry = self.resident.remove(&block)?;
        self.version += 1;
        self.moves_out.inc();
        Some(entry.data)
    }

    /// Installs a block migrated from another bbPB. If full, the oldest
    /// resident entry is drained to make room (the battery covers the
    /// in-flight packet either way).
    pub fn insert_moved(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        data: [u8; BLOCK_BYTES],
        mem: &mut dyn MemoryPort,
    ) {
        self.advance(now);
        if self.resident.contains_key(&block) {
            self.resident.get_mut(&block).expect("just probed").data = data;
            self.version += 1;
            self.coalesces.inc();
            self.retick(block);
            return;
        }
        while self.resident.len() + self.in_flight.len() >= self.capacity {
            if !self.drain_oldest(now, mem) {
                // Nothing resident to drain: wait out an in-flight drain.
                let t = self.wait_for_free(now, mem);
                self.advance(t);
            }
            self.advance_in_flight_forced(now);
        }
        self.insert_fresh(block, data);
        self.version += 1;
        self.moves_in.inc();
    }

    /// Forced drain of `block` (LLC dirty-inclusion, paper §III-B): if
    /// resident, the entry is written to NVMM immediately. Returns true if
    /// the block was here.
    pub fn force_drain(&mut self, now: Cycle, block: BlockAddr, mem: &mut dyn MemoryPort) -> bool {
        let Some(entry) = self.resident.remove(&block) else {
            return false;
        };
        self.version += 1;
        self.trace.push(TraceEvent::PbDrain {
            core: self.core_id,
            block,
            cycle: now,
            forced: true,
        });
        let persist = mem.write_block(now, block, entry.data);
        self.in_flight.push(InFlight {
            frees_at: persist.max(now + self.drain_latency),
        });
        self.drains.inc();
        self.forced_drains.inc();
        self.advance(now);
        true
    }

    /// Watermark draining (paper §III-F): when total occupancy (resident
    /// plus in-flight) reaches the trigger level — the full capacity for
    /// the threshold policy — a burst drains least-recently-written
    /// resident entries until the resident count falls to the stop level.
    /// Drained entries move to the in-flight set, so the burst frees
    /// allocation slots as the WPQ absorbs the writes; a new allocation
    /// arriving mid-burst waits for the first completion rather than
    /// stripping further resident entries.
    pub fn maybe_drain(&mut self, now: Cycle, mem: &mut dyn MemoryPort) {
        self.advance(now);
        if self.resident.len() + self.in_flight.len() < self.drain_trigger_level {
            return;
        }
        while self.resident.len() > self.drain_stop_level {
            if !self.drain_oldest(now, mem) {
                break;
            }
            self.advance(now);
        }
    }

    /// The resident entries (block, data) in FCFS order — the crash drain
    /// set the battery must cover.
    #[must_use]
    pub fn drain_set(&self) -> Vec<(BlockAddr, [u8; BLOCK_BYTES])> {
        self.fifo
            .iter()
            .filter_map(|&(b, s)| {
                let r = self.resident.get(&b)?;
                (r.seq == s).then_some((b, r.data))
            })
            .collect()
    }

    /// Drops every entry without writing anything — a crash with the
    /// battery disconnected, where the "persist" buffer turns out to be
    /// plain volatile SRAM. Returns the entries lost.
    pub fn crash_discard(&mut self) -> u64 {
        let lost = self.resident.len() as u64;
        if lost > 0 {
            self.version += 1;
        }
        self.resident.clear();
        self.fifo.clear();
        self.in_flight.clear();
        lost
    }

    /// Coherence/inclusion-forced drains so far (cheap event probe).
    #[must_use]
    pub fn forced_drain_count(&self) -> u64 {
        self.forced_drains.get()
    }

    /// Drains everything now (flush-on-fail at a crash). Returns the number
    /// of blocks written.
    pub fn crash_drain(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> u64 {
        let mut n = 0;
        while let Some(b) = self.pop_oldest() {
            let entry = self.resident.remove(&b).expect("live ticket is resident");
            mem.write_block(now, b, entry.data);
            n += 1;
        }
        if n > 0 {
            self.version += 1;
        }
        self.fifo.clear();
        self.in_flight.clear();
        n
    }

    /// Exports counters under the `bbpb.` prefix.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set("bbpb.allocations", self.allocations.get());
        s.set("bbpb.coalesces", self.coalesces.get());
        s.set("bbpb.rejections", self.rejections.get());
        s.set("bbpb.drains", self.drains.get());
        s.set("bbpb.forced_drains", self.forced_drains.get());
        s.set("bbpb.moves_in", self.moves_in.get());
        s.set("bbpb.moves_out", self.moves_out.get());
        s.set("bbpb.occupancy_sum", self.occupancy_sum.get());
        s.set("bbpb.occupancy_samples", self.occupancy_samples.get());
        s
    }

    fn advance(&mut self, now: Cycle) {
        self.in_flight.retain(|f| f.frees_at > now);
    }

    /// Used only on the move-in path where waiting is not possible: treat
    /// lingering in-flight drains as freed (documented optimism; the
    /// battery covers in-flight data regardless).
    fn advance_in_flight_forced(&mut self, now: Cycle) {
        if self.resident.len() + self.in_flight.len() >= self.capacity {
            self.in_flight.retain(|f| f.frees_at > now + 1);
        }
    }

    /// Issues a drain of the oldest resident entry. Returns false when
    /// nothing is resident.
    fn drain_oldest(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> bool {
        let Some(block) = self.pop_oldest() else {
            return false;
        };
        self.version += 1;
        let entry = self
            .resident
            .remove(&block)
            .expect("live ticket is resident");
        self.trace.push(TraceEvent::PbDrain {
            core: self.core_id,
            block,
            cycle: now,
            forced: false,
        });
        let persist = mem.write_block(now, block, entry.data);
        self.in_flight.push(InFlight {
            frees_at: persist.max(now + self.drain_latency),
        });
        self.drains.inc();
        true
    }

    /// Stalls until at least one entry frees, draining if necessary.
    /// Returns the cycle at which an entry is free.
    fn wait_for_free(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> Cycle {
        if self.in_flight.is_empty() && !self.drain_oldest(now, mem) {
            // Nothing resident and nothing in flight: capacity must be
            // free; nothing to wait for.
            return now;
        }
        let t = self
            .in_flight
            .iter()
            .map(|f| f.frees_at)
            .min()
            .map_or(now, |f| f.max(now));
        self.advance(t);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_mem::NvmmController;
    use bbb_sim::{DrainPolicy, MemTiming};

    fn nvmm() -> NvmmController {
        NvmmController::new(MemTiming::default())
    }

    fn pb(entries: usize, pct: u8) -> Bbpb {
        Bbpb::new(&BbpbConfig {
            entries,
            drain_policy: DrainPolicy::Threshold { threshold_pct: pct },
            drain_latency: 0,
        })
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn allocation_is_instantaneous_with_space() {
        let mut n = nvmm();
        let mut p = pb(4, 75);
        let out = p.allocate(10, b(1), [1; 64], &mut n);
        assert_eq!(out.done, 10);
        assert!(!out.coalesced && !out.rejected);
        assert_eq!(p.occupancy(10), 1);
    }

    #[test]
    fn coalescing_updates_data_without_new_entry() {
        let mut n = nvmm();
        let mut p = pb(4, 100);
        p.allocate(0, b(1), [1; 64], &mut n);
        let out = p.allocate(5, b(1), [2; 64], &mut n);
        assert!(out.coalesced);
        assert_eq!(p.occupancy(5), 1);
        assert_eq!(p.drain_set()[0].1, [2; 64]);
        assert_eq!(p.stats().get("bbpb.coalesces"), 1);
    }

    #[test]
    fn watermark_burst_triggers_at_capacity_and_stops_at_level() {
        let mut n = nvmm();
        // 4 entries, 75% stop level: the burst triggers when occupancy
        // reaches capacity and drains residents down to 3, keeping the
        // whole buffer available as the coalescing window until then.
        let mut p = pb(4, 75);
        p.allocate(0, b(1), [1; 64], &mut n);
        p.allocate(0, b(2), [2; 64], &mut n);
        p.allocate(0, b(3), [3; 64], &mut n);
        assert_eq!(p.stats().get("bbpb.drains"), 0, "below trigger");
        p.allocate(0, b(4), [4; 64], &mut n);
        // Reached capacity -> burst drained down to the stop level.
        assert!(p.stats().get("bbpb.drains") >= 1);
        // Least recently written drained first.
        assert!(!p.contains(b(1)));
        assert!(p.contains(b(4)));
        assert_eq!(n.endurance().writes_to(b(1)), 1);
    }

    #[test]
    fn coalescing_refreshes_drain_order() {
        let mut n = nvmm();
        let mut p = pb(4, 75);
        p.allocate(0, b(1), [1; 64], &mut n);
        p.allocate(0, b(2), [2; 64], &mut n);
        p.allocate(0, b(3), [3; 64], &mut n);
        // Re-writing the oldest entry makes b2 the drain victim.
        let out = p.allocate(0, b(1), [9; 64], &mut n);
        assert!(out.coalesced);
        p.allocate(0, b(4), [4; 64], &mut n);
        assert!(p.contains(b(1)), "recently re-written entry survived");
        assert!(!p.contains(b(2)), "least recently written drained");
    }

    #[test]
    fn full_buffer_rejects_and_waits() {
        let mut n = nvmm();
        // 100% threshold: no proactive drains, so the buffer can fill.
        let mut p = pb(2, 100);
        p.allocate(0, b(1), [1; 64], &mut n);
        p.allocate(0, b(2), [2; 64], &mut n);
        // Threshold 100% of 2 = 2 -> allocation of b2 triggered a drain;
        // use distinct blocks until truly full.
        let s_before = p.stats().get("bbpb.rejections");
        let out = p.allocate(1, b(3), [3; 64], &mut n);
        // Either a drain already freed room (no rejection) or we waited.
        assert!(out.done >= 1);
        assert!(p.contains(b(3)));
        let _ = s_before;
    }

    #[test]
    fn rejection_happens_when_wpq_is_slow() {
        // A tiny WPQ plus single channel makes frees slow enough to observe
        // rejection waits.
        let timing = MemTiming {
            wpq_entries: 1,
            nvmm_channels: 1,
            ..MemTiming::default()
        };
        let mut n = NvmmController::new(timing);
        // Occupy the single WPQ slot so the stall-path drain backpressures
        // behind its 1000-cycle media write.
        n.write_block(0, b(9), [9; 64]);
        // Threshold 100%: stop level == capacity, so nothing drains
        // proactively — entries leave only when an allocation needs a slot.
        let mut p = pb(2, 100);
        p.allocate(0, b(1), [1; 64], &mut n);
        p.allocate(0, b(2), [2; 64], &mut n);
        assert_eq!(p.occupancy(0), 2);
        assert_eq!(p.stats().get("bbpb.drains"), 0, "fully lazy");
        // The buffer is full: this allocation stalls while the oldest
        // entry drains through the slow WPQ.
        let out = p.allocate(0, b(5), [5; 64], &mut n);
        assert!(out.rejected);
        assert!(out.done >= 1000, "waited for the drain to free a slot");
        assert!(p.contains(b(5)));
        assert!(!p.contains(b(1)));
        assert_eq!(p.stats().get("bbpb.rejections"), 1);
    }

    #[test]
    fn move_out_and_in_preserves_data() {
        let mut n = nvmm();
        let mut src = pb(4, 100);
        let mut dst = pb(4, 100);
        src.allocate(0, b(7), [0xAB; 64], &mut n);
        let data = src.take_for_move(b(7)).expect("resident");
        assert!(!src.contains(b(7)));
        dst.insert_moved(0, b(7), data, &mut n);
        assert!(dst.contains(b(7)));
        assert_eq!(dst.drain_set()[0].1, [0xAB; 64]);
        assert_eq!(src.stats().get("bbpb.moves_out"), 1);
        assert_eq!(dst.stats().get("bbpb.moves_in"), 1);
        // The move itself caused no NVMM write.
        assert_eq!(n.endurance().total_writes(), 0);
    }

    #[test]
    fn force_drain_writes_block_once() {
        let mut n = nvmm();
        let mut p = pb(4, 100);
        p.allocate(0, b(9), [0x77; 64], &mut n);
        assert!(p.force_drain(5, b(9), &mut n));
        assert!(!p.contains(b(9)));
        assert_eq!(n.endurance().writes_to(b(9)), 1);
        assert_eq!(n.crash_image().read_block(b(9)), [0x77; 64]);
        assert!(!p.force_drain(6, b(9), &mut n), "already gone");
        assert_eq!(p.stats().get("bbpb.forced_drains"), 1);
    }

    #[test]
    fn crash_drain_flushes_everything() {
        let mut n = nvmm();
        let mut p = pb(8, 100);
        for i in 0..5 {
            p.allocate(0, b(i), [i as u8; 64], &mut n);
        }
        let drained = p.crash_drain(100, &mut n);
        assert_eq!(drained, 5);
        assert_eq!(p.occupancy(100), 0);
        for i in 0..5 {
            assert_eq!(n.crash_image().read_block(b(i)), [i as u8; 64]);
        }
    }

    #[test]
    fn crash_drain_of_completely_full_buffer() {
        // Satellite coverage: crash at occupancy == capacity. Filling goes
        // through the migration path because threshold draining would
        // otherwise strip entries as they land.
        let mut n = nvmm();
        let mut p = pb(4, 100);
        for i in 0..4 {
            p.insert_moved(0, b(i), [i as u8 + 1; 64], &mut n);
        }
        assert_eq!(p.occupancy(0), p.capacity(), "buffer truly full");
        assert_eq!(n.endurance().total_writes(), 0, "nothing drained yet");
        let drained = p.crash_drain(50, &mut n);
        assert_eq!(drained, 4);
        assert_eq!(p.occupancy(50), 0);
        for i in 0..4 {
            assert_eq!(n.crash_image().read_block(b(i)), [i as u8 + 1; 64]);
        }
    }

    #[test]
    fn crash_discard_loses_everything_and_writes_nothing() {
        let mut n = nvmm();
        let mut p = pb(4, 100);
        p.allocate(0, b(1), [0xAA; 64], &mut n);
        p.allocate(0, b(2), [0xBB; 64], &mut n);
        let lost = p.crash_discard();
        assert_eq!(lost, 2);
        assert_eq!(p.occupancy(0), 0);
        assert_eq!(n.endurance().total_writes(), 0);
        assert_eq!(n.crash_image().read_block(b(1)), [0; 64]);
    }

    #[test]
    fn fcfs_order_in_drain_set() {
        let mut n = nvmm();
        let mut p = pb(8, 100);
        p.allocate(0, b(3), [3; 64], &mut n);
        p.allocate(1, b(1), [1; 64], &mut n);
        p.allocate(2, b(2), [2; 64], &mut n);
        let order: Vec<u64> = p.drain_set().iter().map(|(blk, _)| blk.index()).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn eager_policy_drains_immediately() {
        let mut n = nvmm();
        let mut p = Bbpb::new(&BbpbConfig {
            entries: 8,
            drain_policy: DrainPolicy::Eager,
            drain_latency: 0,
        });
        p.allocate(0, b(1), [1; 64], &mut n);
        assert_eq!(p.stats().get("bbpb.drains"), 1);
        assert_eq!(n.endurance().total_writes(), 1);
    }
}

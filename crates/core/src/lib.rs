//! **Battery-Backed Buffers (BBB)** — the paper's contribution.
//!
//! This crate implements the persistence machinery of *BBB: Simplifying
//! Persistent Programming using Battery-Backed Buffers* (HPCA 2021) on top
//! of the `bbb-cache`/`bbb-cpu`/`bbb-mem` substrates:
//!
//! * [`Bbpb`] — the memory-side battery-backed persist buffer: one per
//!   core, next to the L1D. A persisting store is allocated (or coalesced
//!   into) an entry in the same cycle it writes the L1D, making the store
//!   visible and durable simultaneously — strict persistency with no
//!   flushes or fences.
//! * [`ProcSidePb`] — the processor-side alternative the paper evaluates
//!   and rejects: ordered per-store entries, little coalescing, ~2.8× more
//!   NVMM writes.
//! * [`PersistencyMode`] — the four machines compared throughout the
//!   evaluation: ADR + software flushes (`Pmem`), `Eadr`, and the two BBB
//!   organizations.
//! * [`System`] — the full machine: cores, store buffers, caches, bbPBs,
//!   and the hybrid DRAM/NVMM memory, with crash injection
//!   ([`System::crash_now`]) that drains exactly the active persistence
//!   domain and returns the post-crash NVMM image.
//!
//! # Examples
//!
//! ```
//! use bbb_core::{PersistencyMode, System};
//! use bbb_cpu::Op;
//! use bbb_sim::SimConfig;
//!
//! let mut sys = System::new(SimConfig::small_for_tests(), PersistencyMode::BbbMemorySide)?;
//! let a = sys.address_map().persistent_base();
//! sys.run_single_core(0, vec![Op::store_u64(a, 7), Op::store_u64(a + 8, 9)])?;
//! let image = sys.crash_now();
//! assert_eq!(image.read_u64(a), 7);
//! assert_eq!(image.read_u64(a + 8), 9);
//! # Ok::<(), bbb_core::SystemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbpb;
pub mod crash;
mod latency;
pub mod litmus;
pub mod memories;
pub mod mode;
pub mod persist;
pub mod procside;
pub mod stream;
pub mod system;
pub mod workload;

// Re-exported so downstream crates can implement [`Workload`] (whose
// methods take `Op` batches and the architectural `ByteStore`) without
// depending on the component crates directly.
pub use bbb_cpu::Op;
pub use bbb_mem::{ByteStore, NvmImage, PAGE_BYTES};
pub use bbpb::{AllocOutcome, Bbpb};
pub use crash::CrashCost;
pub use litmus::ScheduledOps;
pub use memories::Memories;
pub use mode::PersistencyMode;
pub use persist::PersistState;
pub use procside::{ProcSidePb, StoreEntry};
pub use stream::{OpStream, StreamWorkload};
pub use system::{EventProbe, RunCursor, RunSummary, StopAt, System, SystemError};
pub use workload::Workload;

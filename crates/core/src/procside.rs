//! The processor-side persist buffer organization (paper §III-B).
//!
//! The design the paper evaluates and rejects: entries are individual
//! stores in program order (not blocks), because the buffer sits *outside*
//! the persistence domain boundary semantics that would allow reordering.
//! Consequences modeled here, matching the paper:
//!
//! * **Ordering**: entries drain strictly FCFS.
//! * **Coalescing**: permitted only between *back-to-back* stores to the
//!   same block ("when two stores are subsequent and involve the same
//!   block").
//! * **Write amplification**: nearly every persisting store eventually
//!   causes its own NVMM write — the source of the ~2.8× NVMM-write
//!   overhead reported in §V-C.
//!
//! Drained stores are applied to the NVMM media read-modify-write at block
//! granularity, each counting as one media write.

use std::collections::VecDeque;

use bbb_sim::{BbpbConfig, BlockAddr, Counter, Cycle, MemoryPort, Stats, TraceEvent, TraceLog};

use crate::bbpb::AllocOutcome;

/// One buffered store: payload bytes at an offset within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEntry {
    /// Target block.
    pub block: BlockAddr,
    /// Byte offset within the block.
    pub offset: usize,
    /// Store length in bytes.
    pub len: usize,
    /// Payload (`bytes[..len]`).
    pub bytes: [u8; 8],
    /// Commit cycle of the originating store (of the *last* store after
    /// coalescing) — the τ key cross-core crash drains merge by.
    pub committed: Cycle,
    /// Per-core commit sequence of the originating store (τ tiebreak
    /// within one core and cycle).
    pub seq: u64,
}

/// One core's processor-side persist buffer.
///
/// # Examples
///
/// ```
/// use bbb_core::ProcSidePb;
/// use bbb_mem::NvmmController;
/// use bbb_sim::{BbpbConfig, BlockAddr, MemTiming};
///
/// let mut nvmm = NvmmController::new(MemTiming::default());
/// let mut pb = ProcSidePb::new(&BbpbConfig::default());
/// let out = pb.push(0, BlockAddr::from_index(1), 0, &7u64.to_le_bytes(), 0, 0, &mut nvmm);
/// assert_eq!(out.done, 0);
/// ```
#[derive(Debug, Clone)]
pub struct ProcSidePb {
    capacity: usize,
    drain_trigger_level: usize,
    drain_stop_level: usize,
    drain_latency: Cycle,
    entries: VecDeque<StoreEntry>,
    in_flight: Vec<Cycle>,
    allocations: Counter,
    coalesces: Counter,
    rejections: Counter,
    drains: Counter,
    /// Which core this buffer sits next to (trace attribution only; set by
    /// `PersistState::new`).
    pub(crate) core_id: usize,
    /// Drain-event recorder for the persist-order checker.
    pub(crate) trace: TraceLog,
    /// Monotone mutation counter: bumped whenever `entries` changes, so an
    /// unchanged version proves an unchanged crash drain set.
    version: u64,
}

impl ProcSidePb {
    /// Creates a processor-side buffer from the bbPB configuration (same
    /// entry count and drain policy; entries are stores, not blocks).
    #[must_use]
    pub fn new(cfg: &BbpbConfig) -> Self {
        Self {
            capacity: cfg.entries,
            drain_trigger_level: cfg.drain_policy.trigger_level(cfg.entries),
            drain_stop_level: cfg.drain_policy.stop_level(cfg.entries),
            drain_latency: cfg.drain_latency,
            entries: VecDeque::new(),
            in_flight: Vec::new(),
            allocations: Counter::new(),
            coalesces: Counter::new(),
            rejections: Counter::new(),
            drains: Counter::new(),
            core_id: 0,
            trace: TraceLog::default(),
            version: 0,
        }
    }

    /// Monotone mutation counter over the buffered stores: equal versions
    /// within one buffer's lifetime prove identical contents.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Entries occupied at `now`.
    #[must_use]
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.advance(now);
        self.entries.len() + self.in_flight.len()
    }

    /// Offers a committed persisting store, tagged with its commit cycle
    /// and per-core sequence (the τ key crash drains merge by). Coalesces
    /// only into the youngest entry (program-order-adjacent, same block);
    /// otherwise allocates, stalling if full.
    #[allow(clippy::too_many_arguments)] // the τ tag rides with the store
    pub fn push(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        offset: usize,
        bytes: &[u8],
        committed: Cycle,
        seq: u64,
        mem: &mut dyn MemoryPort,
    ) -> AllocOutcome {
        assert!(bytes.len() <= 8, "store payload exceeds 8 bytes");
        self.advance(now);

        if let Some(last) = self.entries.back_mut() {
            if last.block == block && last.offset == offset && last.len == bytes.len() {
                last.bytes[..bytes.len()].copy_from_slice(bytes);
                // The entry now carries the newer store's value, so it
                // carries the newer store's commit tag too.
                last.committed = committed;
                last.seq = seq;
                self.version += 1;
                self.coalesces.inc();
                self.maybe_drain(now, mem);
                return AllocOutcome {
                    done: now,
                    coalesced: true,
                    rejected: false,
                };
            }
        }

        // A full buffer starts its drain burst before the store stalls.
        self.maybe_drain(now, mem);
        let mut t = now;
        let mut rejected = false;
        while self.entries.len() + self.in_flight.len() >= self.capacity {
            rejected = true;
            t = self.wait_for_free(t, mem);
        }
        if rejected {
            self.rejections.inc();
        }
        let mut payload = [0u8; 8];
        payload[..bytes.len()].copy_from_slice(bytes);
        self.entries.push_back(StoreEntry {
            block,
            offset,
            len: bytes.len(),
            bytes: payload,
            committed,
            seq,
        });
        self.version += 1;
        self.allocations.inc();
        self.maybe_drain(t, mem);
        AllocOutcome {
            done: t,
            coalesced: false,
            rejected,
        }
    }

    /// Watermark draining, strictly FCFS: when the buffer fills, a burst
    /// drains oldest entries until occupancy falls to the stop level (see
    /// [`crate::Bbpb::maybe_drain`] for the trigger/stop semantics).
    pub fn maybe_drain(&mut self, now: Cycle, mem: &mut dyn MemoryPort) {
        self.advance(now);
        if self.entries.len() + self.in_flight.len() < self.drain_trigger_level {
            return;
        }
        while self.entries.len() > self.drain_stop_level {
            if !self.drain_oldest(now, mem) {
                break;
            }
            self.advance(now);
        }
    }

    /// Drains every entry in order at a crash. Returns blocks written.
    pub fn crash_drain(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> u64 {
        let mut n = 0;
        while self.drain_oldest(now, mem) {
            n += 1;
        }
        self.in_flight.clear();
        n
    }

    /// Commit tag `(committed, seq)` of the oldest buffered store — the
    /// key the cross-core crash merge compares before picking which
    /// buffer drains its front next.
    #[must_use]
    pub fn front_tau(&self) -> Option<(Cycle, u64)> {
        self.entries.front().map(|e| (e.committed, e.seq))
    }

    /// Crash-drains the single oldest entry (same media write, trace
    /// event, and counters as [`ProcSidePb::crash_drain`] gives it); the
    /// caller interleaves these across cores in commit order and finishes
    /// with `crash_drain` to clear the in-flight set. Returns false when
    /// nothing is buffered.
    pub fn crash_drain_oldest(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> bool {
        self.drain_oldest(now, mem)
    }

    /// Drops every entry without writing anything (a *volatile* persist
    /// buffer losing power — the BEP baseline). Returns entries lost.
    pub fn crash_discard(&mut self) -> u64 {
        let lost = self.entries.len() as u64;
        if lost > 0 {
            self.version += 1;
        }
        self.entries.clear();
        self.in_flight.clear();
        lost
    }

    /// Drains every entry in order and returns the cycle the last one is
    /// durable — the completion time of an epoch barrier.
    pub fn drain_all_timed(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> Cycle {
        let before = self.drains.get();
        while self.drain_oldest(now, mem) {}
        let _ = before;
        let t = self
            .in_flight
            .iter()
            .copied()
            .max()
            .map_or(now, |f| f.max(now));
        self.advance(t);
        t
    }

    /// Remote invalidation of `block`: program order requires draining
    /// every entry up to and including the last store to that block before
    /// another core may own it. Returns the number of entries drained.
    pub fn drain_through_block(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        mem: &mut dyn MemoryPort,
    ) -> u64 {
        let last_idx = self.entries.iter().rposition(|e| e.block == block);
        let Some(last_idx) = last_idx else { return 0 };
        let mut n = 0;
        for _ in 0..=last_idx {
            if self.drain_oldest(now, mem) {
                n += 1;
            }
        }
        n
    }

    /// Buffered stores oldest-first (crash-cost accounting and tests).
    pub fn iter(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.iter()
    }

    /// Ordered drains issued so far (cheap event probe).
    #[must_use]
    pub fn drain_count(&self) -> u64 {
        self.drains.get()
    }

    /// Exports counters under the `bbpb.` prefix (same keys as the
    /// memory-side buffer so the harness compares them directly).
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set("bbpb.allocations", self.allocations.get());
        s.set("bbpb.coalesces", self.coalesces.get());
        s.set("bbpb.rejections", self.rejections.get());
        s.set("bbpb.drains", self.drains.get());
        s
    }

    fn advance(&mut self, now: Cycle) {
        self.in_flight.retain(|&f| f > now);
    }

    fn drain_oldest(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> bool {
        let Some(e) = self.entries.pop_front() else {
            return false;
        };
        self.version += 1;
        self.trace.push(TraceEvent::PbDrain {
            core: self.core_id,
            block: e.block,
            cycle: now,
            forced: false,
        });
        // Read-modify-write of the target block at the controller.
        let persist = mem.rmw_block(now, e.block, e.offset, &e.bytes[..e.len]);
        self.in_flight.push(persist.max(now + self.drain_latency));
        self.drains.inc();
        true
    }

    fn wait_for_free(&mut self, now: Cycle, mem: &mut dyn MemoryPort) -> Cycle {
        if self.in_flight.is_empty() && !self.drain_oldest(now, mem) {
            return now;
        }
        let t = self
            .in_flight
            .iter()
            .copied()
            .min()
            .map_or(now, |f| f.max(now));
        self.advance(t);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_mem::NvmmController;
    use bbb_sim::{DrainPolicy, MemTiming};

    fn nvmm() -> NvmmController {
        NvmmController::new(MemTiming::default())
    }

    fn pb(entries: usize, pct: u8) -> ProcSidePb {
        ProcSidePb::new(&BbpbConfig {
            entries,
            drain_policy: DrainPolicy::Threshold { threshold_pct: pct },
            drain_latency: 0,
        })
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn per_store_entries_do_not_coalesce_across_blocks() {
        let mut n = nvmm();
        let mut p = pb(8, 100);
        p.push(0, b(1), 0, &[1u8; 8], 0, 0, &mut n);
        p.push(0, b(2), 0, &[2u8; 8], 0, 0, &mut n);
        p.push(0, b(1), 8, &[3u8; 8], 0, 0, &mut n);
        // Three separate entries: the third store is not adjacent to the
        // first even though it shares the block.
        assert_eq!(p.occupancy(0), 3);
        assert_eq!(p.stats().get("bbpb.coalesces"), 0);
    }

    #[test]
    fn adjacent_same_slot_stores_coalesce() {
        let mut n = nvmm();
        let mut p = pb(8, 100);
        p.push(0, b(1), 0, &[1u8; 8], 0, 0, &mut n);
        let out = p.push(1, b(1), 0, &[9u8; 8], 0, 0, &mut n);
        assert!(out.coalesced);
        assert_eq!(p.occupancy(1), 1);
    }

    #[test]
    fn drains_write_every_store() {
        let mut n = nvmm();
        let mut p = pb(8, 100);
        // Five stores into the SAME block at different offsets: the
        // memory-side buffer would write this block once; processor-side
        // writes it five times.
        for i in 0..5u64 {
            p.push(0, b(1), (i * 8) as usize, &i.to_le_bytes(), 0, 0, &mut n);
        }
        p.crash_drain(10, &mut n);
        assert_eq!(n.endurance().writes_to(b(1)), 5);
        // Final media contents reflect all stores in order.
        let img = n.crash_image();
        for i in 0..5u64 {
            assert_eq!(img.read_u64(b(1).base() + i * 8), i);
        }
    }

    #[test]
    fn fifo_drain_order() {
        let mut n = nvmm();
        let mut p = pb(8, 100);
        p.push(0, b(1), 0, &1u64.to_le_bytes(), 0, 0, &mut n);
        p.push(0, b(2), 0, &2u64.to_le_bytes(), 0, 0, &mut n);
        p.push(0, b(1), 0, &3u64.to_le_bytes(), 0, 0, &mut n);
        p.crash_drain(0, &mut n);
        // Last write to block 1 was value 3 (program order preserved).
        assert_eq!(n.crash_image().read_u64(b(1).base()), 3);
    }

    #[test]
    fn drain_through_block_respects_order() {
        let mut n = nvmm();
        let mut p = pb(8, 100);
        p.push(0, b(1), 0, &1u64.to_le_bytes(), 0, 0, &mut n);
        p.push(0, b(2), 0, &2u64.to_le_bytes(), 0, 0, &mut n);
        p.push(0, b(3), 0, &3u64.to_le_bytes(), 0, 0, &mut n);
        let drained = p.drain_through_block(5, b(2), &mut n);
        assert_eq!(drained, 2, "entries for blocks 1 and 2 drained in order");
        assert_eq!(p.occupancy(5), 1);
        assert_eq!(p.drain_through_block(5, b(9), &mut n), 0);
    }

    #[test]
    fn watermark_draining_kicks_in_at_capacity() {
        let mut n = nvmm();
        let mut p = pb(4, 75); // trigger at 4 occupied, stop at 3
        p.push(0, b(1), 0, &[1u8; 8], 0, 0, &mut n);
        p.push(0, b(2), 0, &[2u8; 8], 0, 0, &mut n);
        p.push(0, b(3), 0, &[3u8; 8], 0, 0, &mut n);
        assert_eq!(p.stats().get("bbpb.drains"), 0, "below trigger");
        p.push(0, b(4), 0, &[4u8; 8], 0, 0, &mut n);
        assert!(p.stats().get("bbpb.drains") >= 1);
    }

    #[test]
    #[should_panic(expected = "exceeds 8 bytes")]
    fn oversized_store_panics() {
        let mut n = nvmm();
        let mut p = pb(4, 75);
        p.push(0, b(1), 0, &[0u8; 9], 0, 0, &mut n);
    }
}

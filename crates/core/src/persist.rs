//! The persistence domain's view of the coherence protocol.
//!
//! [`PersistState`] owns every core's persist buffer and implements
//! [`CoherenceHooks`], realizing the paper's Table II:
//!
//! | event                    | memory-side bbPB action                    |
//! |--------------------------|--------------------------------------------|
//! | remote invalidation      | move entry to requester's bbPB (no drain)  |
//! | remote intervention M→S  | entry stays; memory writeback skipped      |
//! | dirty LLC eviction       | forced drain (inclusion), then writeback suppressed for persistent blocks |
//!
//! The processor-side organization instead drains through the invalidated
//! block in FIFO order (its entries cannot migrate without breaking store
//! order), and never suppresses writebacks.

use bbb_cache::{CoherenceHooks, WritebackDecision};
use bbb_sim::{
    BlockAddr, Counter, Cycle, FxHashMap, MemoryPort, SimConfig, Stats, TraceEvent, TraceLog,
    BLOCK_BYTES,
};

use crate::bbpb::{AllocOutcome, Bbpb};
use crate::mode::PersistencyMode;
use crate::procside::ProcSidePb;

/// Per-core persist buffers plus the mode-dependent coherence behavior.
#[derive(Debug, Clone)]
pub struct PersistState {
    mode: PersistencyMode,
    bbpbs: Vec<Bbpb>,
    procpbs: Vec<ProcSidePb>,
    suppress_writebacks: bool,
    /// Last known holder per block — the O(1) fast path for
    /// [`PersistState::holder_of`]. Entries go stale when a buffer drains
    /// on its own (threshold drains, migrations made through `bbpb_mut`),
    /// so a hit is always validated against the buffer before use.
    holder_index: FxHashMap<BlockAddr, usize>,
    entry_moves: Counter,
    downgrades_kept: Counter,
    /// Recorder for coherence-driven persistence events (entry moves,
    /// cache evictions); per-buffer drains live in each buffer's own log.
    trace: TraceLog,
}

impl PersistState {
    /// Builds the persistence state for a machine configuration and mode.
    /// Buffers are instantiated only for the BBB modes.
    #[must_use]
    pub fn new(cfg: &SimConfig, mode: PersistencyMode) -> Self {
        let (bbpbs, procpbs) = match mode {
            PersistencyMode::BbbMemorySide => (
                (0..cfg.cores)
                    .map(|c| {
                        let mut pb = Bbpb::new(&cfg.bbpb);
                        pb.core_id = c;
                        pb
                    })
                    .collect(),
                Vec::new(),
            ),
            // BEP's volatile persist buffers share the processor-side
            // implementation: ordered per-store entries. The difference is
            // crash behavior (dropped, not drained) and the epoch-barrier
            // drain, both handled by the system.
            PersistencyMode::BbbProcessorSide | PersistencyMode::Bep => (
                Vec::new(),
                (0..cfg.cores)
                    .map(|c| {
                        let mut pb = ProcSidePb::new(&cfg.bbpb);
                        pb.core_id = c;
                        pb
                    })
                    .collect(),
            ),
            PersistencyMode::Pmem | PersistencyMode::Eadr => (Vec::new(), Vec::new()),
        };
        Self {
            mode,
            bbpbs,
            procpbs,
            suppress_writebacks: cfg.suppress_persistent_writebacks,
            holder_index: FxHashMap::default(),
            entry_moves: Counter::new(),
            downgrades_kept: Counter::new(),
            trace: TraceLog::default(),
        }
    }

    /// Enables or disables event recording in this state and every persist
    /// buffer it owns.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
        for pb in &mut self.bbpbs {
            pb.trace.set_enabled(on);
        }
        for pb in &mut self.procpbs {
            pb.trace.set_enabled(on);
        }
    }

    /// Drains the recorded event logs: this state's own, then each core's
    /// buffer log in core order (the stable-merge tie order).
    pub fn take_trace_logs(&mut self) -> Vec<Vec<TraceEvent>> {
        let mut logs = vec![self.trace.take()];
        for pb in &mut self.bbpbs {
            logs.push(pb.trace.take());
        }
        for pb in &mut self.procpbs {
            logs.push(pb.trace.take());
        }
        logs
    }

    /// Allocates a persisting store's block into `core`'s bbPB, keeping
    /// the holder index in sync. The system's store-drain path goes
    /// through here rather than `bbpb_mut().allocate(..)` directly.
    ///
    /// If another core's bbPB still holds the block — possible once the
    /// previous writer's L1 copy is gone, so no coherence message
    /// announces the new write to the old holder — the entry migrates
    /// here without draining (paper Fig. 6(a)), preserving invariant 4
    /// and the coalescing the drain would forfeit.
    ///
    /// # Panics
    ///
    /// Panics as [`PersistState::bbpb`] does.
    pub fn allocate_block(
        &mut self,
        core: usize,
        now: Cycle,
        block: BlockAddr,
        data: [u8; BLOCK_BYTES],
        mem: &mut dyn MemoryPort,
    ) -> AllocOutcome {
        if let Some(holder) = self.holder_of(block) {
            if holder != core {
                // Late entry migration: `data` is the full post-store block
                // payload, so the stale entry's bytes are superseded.
                let _ = self.bbpbs[holder].take_for_move(block);
                self.entry_moves.inc();
                self.trace.push(TraceEvent::PbMove {
                    from: holder,
                    to: core,
                    block,
                    cycle: now,
                });
                self.bbpbs[core].insert_moved(now, block, data, mem);
                self.holder_index.insert(block, core);
                return AllocOutcome {
                    done: now,
                    coalesced: true,
                    rejected: false,
                };
            }
        }
        let out = self.bbpbs[core].allocate(now, block, data, mem);
        self.holder_index.insert(block, core);
        out
    }

    /// The active persistency mode.
    #[must_use]
    pub fn mode(&self) -> PersistencyMode {
        self.mode
    }

    /// One core's memory-side bbPB.
    ///
    /// # Panics
    ///
    /// Panics if the mode is not [`PersistencyMode::BbbMemorySide`] or
    /// `core` is out of range.
    #[must_use]
    pub fn bbpb(&self, core: usize) -> &Bbpb {
        &self.bbpbs[core]
    }

    /// Mutable access to one core's memory-side bbPB.
    ///
    /// # Panics
    ///
    /// Panics as [`PersistState::bbpb`] does.
    pub fn bbpb_mut(&mut self, core: usize) -> &mut Bbpb {
        &mut self.bbpbs[core]
    }

    /// One core's processor-side buffer.
    ///
    /// # Panics
    ///
    /// Panics if the mode is not [`PersistencyMode::BbbProcessorSide`] or
    /// `core` is out of range.
    #[must_use]
    pub fn procpb(&self, core: usize) -> &ProcSidePb {
        &self.procpbs[core]
    }

    /// Mutable access to one core's processor-side buffer.
    ///
    /// # Panics
    ///
    /// Panics as [`PersistState::procpb`] does.
    pub fn procpb_mut(&mut self, core: usize) -> &mut ProcSidePb {
        &mut self.procpbs[core]
    }

    /// The core whose bbPB currently holds `block`, if any. Invariant 4
    /// (paper §III-D) requires at most one.
    ///
    /// Release builds answer from the block→core index in O(1) — this is
    /// on the hot path of every LLC eviction — falling back to a scan when
    /// the indexed buffer no longer holds the block. Debug builds always
    /// scan every buffer so invariant-4 violations are caught no matter
    /// how the buffers were mutated.
    #[must_use]
    pub fn holder_of(&self, block: BlockAddr) -> Option<usize> {
        #[cfg(debug_assertions)]
        {
            self.holder_of_scan(block)
        }
        #[cfg(not(debug_assertions))]
        {
            self.holder_of_indexed(block)
        }
    }

    /// The release-build answer: the block→core index in O(1), validated
    /// against the indexed buffer, with a scan fallback for stale entries.
    /// Always compiled so debug builds can audit it against the scan.
    fn holder_of_indexed(&self, block: BlockAddr) -> Option<usize> {
        if let Some(&c) = self.holder_index.get(&block) {
            if self.bbpbs.get(c).is_some_and(|pb| pb.contains(block)) {
                return Some(c);
            }
        }
        self.bbpbs.iter().position(|pb| pb.contains(block))
    }

    /// The ground truth: an exhaustive scan of every buffer, asserting
    /// invariant 4 (at most one holder) along the way.
    fn holder_of_scan(&self, block: BlockAddr) -> Option<usize> {
        let mut holder = None;
        for (c, pb) in self.bbpbs.iter().enumerate() {
            if pb.contains(block) {
                assert!(
                    holder.is_none(),
                    "invariant 4 violated: {block} in multiple bbPBs"
                );
                holder = Some(c);
            }
        }
        holder
    }

    /// Audits the holder index against the exhaustive scan: for every
    /// block resident in any bbPB and for every indexed block, the O(1)
    /// release-build path must return the same holder the scan finds.
    ///
    /// # Panics
    ///
    /// Panics on the first disagreement (or on an invariant-4 violation
    /// found by the scan). Called from `System::check_invariants`, which
    /// the debug audit runs periodically.
    pub fn check_holder_index(&self) {
        let check = |block: BlockAddr| {
            let indexed = self.holder_of_indexed(block);
            let scanned = self.holder_of_scan(block);
            assert_eq!(
                indexed, scanned,
                "holder index diverged from scan for {block}"
            );
        };
        for pb in &self.bbpbs {
            for (block, _) in pb.drain_set() {
                check(block);
            }
        }
        // Sorted so a divergence always reports the lowest block — the
        // hash map's iteration order must never leak into a panic message
        // (or any other output).
        let mut indexed: Vec<BlockAddr> = self.holder_index.keys().copied().collect();
        indexed.sort_unstable();
        for block in indexed {
            check(block);
        }
    }

    /// Coherence/inclusion-forced drains across memory-side buffers, plus
    /// every ordered drain of the processor-side buffers — the drain
    /// events a crash-point planner places boundary points around.
    #[must_use]
    pub fn forced_drains(&self) -> u64 {
        let mem: u64 = self.bbpbs.iter().map(Bbpb::forced_drain_count).sum();
        let proc: u64 = self.procpbs.iter().map(ProcSidePb::drain_count).sum();
        mem + proc
    }

    /// Sum of every owned persist buffer's monotone mutation counter.
    /// Buffers only exist for the buffered modes, so this covers whichever
    /// organization is active; both counters are monotone, so an unchanged
    /// sum proves every buffer individually unchanged.
    #[must_use]
    pub fn buffers_version(&self) -> u64 {
        let mem: u64 = self.bbpbs.iter().map(Bbpb::version).sum();
        let proc: u64 = self.procpbs.iter().map(ProcSidePb::version).sum();
        mem + proc
    }

    /// Resident entries across all bbPBs (crash-cost accounting).
    #[must_use]
    pub fn total_resident_entries(&self) -> u64 {
        let mem: u64 = self.bbpbs.iter().map(|p| p.drain_set().len() as u64).sum();
        let proc: u64 = self.procpbs.iter().map(|p| p.iter().count() as u64).sum();
        mem + proc
    }

    /// Aggregated buffer counters plus the persist-state's own, all under
    /// the `bbpb.` prefix.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        for pb in &self.bbpbs {
            s.merge(&pb.stats());
        }
        for pb in &self.procpbs {
            s.merge(&pb.stats());
        }
        s.set("bbpb.entry_moves", self.entry_moves.get());
        s.set("bbpb.downgrades_kept", self.downgrades_kept.get());
        s
    }
}

impl CoherenceHooks for PersistState {
    fn on_remote_invalidate(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        victim: usize,
        requester: usize,
        mem: &mut dyn MemoryPort,
    ) {
        match self.mode {
            PersistencyMode::BbbMemorySide => {
                if let Some(data) = self.bbpbs[victim].take_for_move(block) {
                    self.entry_moves.inc();
                    self.trace.push(TraceEvent::PbMove {
                        from: victim,
                        to: requester,
                        block,
                        cycle: now,
                    });
                    self.bbpbs[requester].insert_moved(now, block, data, mem);
                    self.holder_index.insert(block, requester);
                    debug_assert_eq!(self.holder_of(block), Some(requester));
                }
            }
            PersistencyMode::BbbProcessorSide | PersistencyMode::Bep => {
                // Ordered entries cannot migrate: drain through the block
                // so the new owner starts from durable state.
                self.procpbs[victim].drain_through_block(now, block, mem);
            }
            PersistencyMode::Pmem | PersistencyMode::Eadr => {}
        }
    }

    fn on_remote_downgrade(&mut self, _now: Cycle, block: BlockAddr, owner: usize) {
        if self.mode == PersistencyMode::BbbMemorySide && self.bbpbs[owner].contains(block) {
            // Fig. 6(c): the entry stays put; the owner remains responsible
            // for draining it. Nothing moves, nothing drains.
            self.downgrades_kept.inc();
        }
    }

    fn on_llc_dirty_evict(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        _data: &[u8; BLOCK_BYTES],
        persistent: bool,
        mem: &mut dyn MemoryPort,
    ) -> WritebackDecision {
        let decision = match self.mode {
            PersistencyMode::BbbMemorySide => {
                // Dirty-inclusion: drain the bbPB entry (if one exists)
                // before the LLC line disappears, so an LLC miss never has
                // to search bbPBs.
                if let Some(holder) = self.holder_of(block) {
                    self.bbpbs[holder].force_drain(now, block, mem);
                    self.holder_index.remove(&block);
                }
                if persistent && self.suppress_writebacks {
                    // The bbPB has or had the line: memory already holds
                    // the latest value; skip the redundant writeback
                    // (endurance optimization, paper §III-B).
                    WritebackDecision::Suppress
                } else {
                    WritebackDecision::WriteBack
                }
            }
            PersistencyMode::BbbProcessorSide
            | PersistencyMode::Bep
            | PersistencyMode::Pmem
            | PersistencyMode::Eadr => WritebackDecision::WriteBack,
        };
        self.trace.push(TraceEvent::LlcEvict {
            block,
            cycle: now,
            dirty: true,
            suppressed: decision == WritebackDecision::Suppress,
        });
        decision
    }

    fn on_llc_clean_evict(&mut self, now: Cycle, block: BlockAddr, mem: &mut dyn MemoryPort) {
        self.trace.push(TraceEvent::LlcEvict {
            block,
            cycle: now,
            dirty: false,
            suppressed: false,
        });
        if self.mode == PersistencyMode::BbbMemorySide {
            if let Some(holder) = self.holder_of(block) {
                self.bbpbs[holder].force_drain(now, block, mem);
                self.holder_index.remove(&block);
            }
        }
    }

    fn on_l1_evict(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        core: usize,
        _mem: &mut dyn MemoryPort,
    ) {
        self.trace.push(TraceEvent::L1Evict {
            core,
            block,
            cycle: now,
        });
        // Table II lists no memory-side bbPB action for an L1→L2 writeback:
        // it is an on-chip event, invisible at the memory side. The entry
        // stays put; if another core writes the block while no L1 copy
        // exists (so no invalidation reaches us), `allocate_block` migrates
        // the entry at allocation time instead (Fig. 6(a)).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_mem::NvmmController;
    use bbb_sim::MemTiming;

    fn state(mode: PersistencyMode) -> PersistState {
        PersistState::new(&SimConfig::small_for_tests(), mode)
    }

    fn nvmm() -> NvmmController {
        NvmmController::new(MemTiming::default())
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn buffers_exist_only_for_bbb_modes() {
        assert_eq!(state(PersistencyMode::Pmem).bbpbs.len(), 0);
        assert_eq!(state(PersistencyMode::Eadr).bbpbs.len(), 0);
        assert_eq!(state(PersistencyMode::BbbMemorySide).bbpbs.len(), 2);
        assert_eq!(state(PersistencyMode::BbbProcessorSide).procpbs.len(), 2);
    }

    #[test]
    fn remote_invalidate_moves_entry_between_bbpbs() {
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.bbpb_mut(0).allocate(0, b(5), [0xAA; 64], &mut n);
        assert_eq!(s.holder_of(b(5)), Some(0));
        s.on_remote_invalidate(10, b(5), 0, 1, &mut n);
        assert_eq!(s.holder_of(b(5)), Some(1));
        assert_eq!(s.stats().get("bbpb.entry_moves"), 1);
        // The move itself wrote nothing to NVMM (paper Fig. 6(a)).
        assert_eq!(n.endurance().total_writes(), 0);
    }

    #[test]
    fn remote_invalidate_without_entry_is_noop() {
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.on_remote_invalidate(10, b(5), 0, 1, &mut n);
        assert_eq!(s.holder_of(b(5)), None);
        assert_eq!(s.stats().get("bbpb.entry_moves"), 0);
    }

    #[test]
    fn downgrade_keeps_entry_in_place() {
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.bbpb_mut(0).allocate(0, b(7), [1; 64], &mut n);
        s.on_remote_downgrade(10, b(7), 0);
        assert_eq!(s.holder_of(b(7)), Some(0), "entry stayed put");
        assert_eq!(s.stats().get("bbpb.downgrades_kept"), 1);
        assert_eq!(n.endurance().total_writes(), 0);
    }

    #[test]
    fn dirty_evict_forces_drain_and_suppresses_persistent_writeback() {
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.bbpb_mut(1).allocate(0, b(9), [0x42; 64], &mut n);
        let d = s.on_llc_dirty_evict(5, b(9), &[0x42; 64], true, &mut n);
        assert_eq!(d, WritebackDecision::Suppress);
        assert_eq!(s.holder_of(b(9)), None, "forced drain removed the entry");
        assert_eq!(n.endurance().writes_to(b(9)), 1, "drained exactly once");
    }

    #[test]
    fn dirty_evict_of_nonpersistent_block_writes_back() {
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        let d = s.on_llc_dirty_evict(5, b(3), &[0; 64], false, &mut n);
        assert_eq!(d, WritebackDecision::WriteBack);
    }

    #[test]
    fn persistent_evict_suppressed_even_after_drain() {
        // "has or had": the entry already drained, memory is current, so
        // the writeback is still redundant.
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        let d = s.on_llc_dirty_evict(5, b(9), &[0; 64], true, &mut n);
        assert_eq!(d, WritebackDecision::Suppress);
    }

    #[test]
    fn eadr_and_pmem_always_write_back() {
        for mode in [PersistencyMode::Eadr, PersistencyMode::Pmem] {
            let mut s = state(mode);
            let mut n = nvmm();
            let d = s.on_llc_dirty_evict(0, b(1), &[0; 64], true, &mut n);
            assert_eq!(d, WritebackDecision::WriteBack, "{mode}");
        }
    }

    #[test]
    fn procside_invalidation_drains_in_order() {
        let mut s = state(PersistencyMode::BbbProcessorSide);
        let mut n = nvmm();
        s.procpb_mut(0)
            .push(0, b(1), 0, &1u64.to_le_bytes(), 0, 0, &mut n);
        s.procpb_mut(0)
            .push(0, b(2), 0, &2u64.to_le_bytes(), 0, 1, &mut n);
        s.on_remote_invalidate(5, b(2), 0, 1, &mut n);
        // Both entries drained (FIFO through block 2).
        assert_eq!(n.endurance().total_writes(), 2);
        assert_eq!(s.total_resident_entries(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "invariant 4 violated")]
    fn holder_of_catches_duplicate_holders_in_debug() {
        // Two bbPBs holding the same block is exactly the invariant-4
        // violation the debug-build exhaustive scan must still catch now
        // that release builds answer from the index.
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.bbpb_mut(0).allocate(0, b(5), [1; 64], &mut n);
        s.bbpb_mut(1).allocate(0, b(5), [2; 64], &mut n);
        let _ = s.holder_of(b(5));
    }

    #[test]
    fn holder_index_tracks_allocations_moves_and_drains() {
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.allocate_block(0, 0, b(5), [1; 64], &mut n);
        assert_eq!(s.holder_of(b(5)), Some(0));
        s.on_remote_invalidate(5, b(5), 0, 1, &mut n);
        assert_eq!(s.holder_of(b(5)), Some(1));
        s.on_llc_dirty_evict(10, b(5), &[1; 64], true, &mut n);
        assert_eq!(s.holder_of(b(5)), None);
        // A stale index entry (the buffer drained behind the index's back)
        // must not resurrect the block.
        s.allocate_block(1, 20, b(6), [2; 64], &mut n);
        s.bbpb_mut(1).force_drain(21, b(6), &mut n);
        assert_eq!(s.holder_of(b(6)), None);
    }

    #[test]
    fn allocate_migrates_entry_held_by_another_core() {
        // A new writer whose L1 miss raised no coherence message to the
        // old holder (its copy was silently evicted) still finds the
        // block in the other core's bbPB: the entry migrates without a
        // drain, and the new payload supersedes the stale bytes.
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.allocate_block(1, 0, b(5), [1; 64], &mut n);
        let out = s.allocate_block(0, 10, b(5), [2; 64], &mut n);
        assert!(out.coalesced, "migration counts as a coalesce, not a miss");
        assert_eq!(s.holder_of(b(5)), Some(0));
        assert_eq!(s.stats().get("bbpb.entry_moves"), 1);
        assert_eq!(s.stats().get("bbpb.drains"), 0);
        assert_eq!(n.endurance().total_writes(), 0, "no NVMM traffic");
    }

    #[test]
    fn holder_index_and_scan_agree_after_coalesce_and_forced_drain() {
        // Satellite fix coverage: the O(1) index path (`holder_of_indexed`)
        // must match the exhaustive scan after the two operations that
        // historically let it go stale — a coalescing re-allocation on a
        // different core's path, and a forced drain behind the index's back.
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.allocate_block(0, 0, b(11), [1; 64], &mut n);
        s.allocate_block(0, 1, b(11), [2; 64], &mut n); // coalesce
        s.check_holder_index();
        assert_eq!(s.holder_of_indexed(b(11)), s.holder_of_scan(b(11)));
        // Migrate, then force-drain via the buffer directly so the index
        // still maps the block to core 1.
        s.on_remote_invalidate(5, b(11), 0, 1, &mut n);
        s.check_holder_index();
        s.bbpb_mut(1).force_drain(10, b(11), &mut n);
        assert_eq!(
            s.holder_index.get(&b(11)),
            Some(&1),
            "index entry is stale by construction"
        );
        s.check_holder_index();
        assert_eq!(s.holder_of_indexed(b(11)), None, "validated fast path");
        assert_eq!(s.holder_of_scan(b(11)), None);
    }

    #[test]
    fn tracing_cascades_to_buffers_and_records_moves() {
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.set_tracing(true);
        s.allocate_block(0, 0, b(3), [1; 64], &mut n);
        s.on_remote_invalidate(5, b(3), 0, 1, &mut n);
        s.on_llc_dirty_evict(9, b(3), &[1; 64], true, &mut n);
        let logs = s.take_trace_logs();
        let all: Vec<TraceEvent> = logs.into_iter().flatten().collect();
        assert!(
            all.iter()
                .any(|e| matches!(e, TraceEvent::PbMove { from: 0, to: 1, .. })),
            "move recorded: {all:?}"
        );
        assert!(
            all.iter().any(|e| matches!(
                e,
                TraceEvent::PbDrain {
                    core: 1,
                    forced: true,
                    ..
                }
            )),
            "forced drain recorded in core 1's buffer log: {all:?}"
        );
        assert!(
            all.iter().any(|e| matches!(
                e,
                TraceEvent::LlcEvict {
                    dirty: true,
                    suppressed: true,
                    ..
                }
            )),
            "eviction recorded: {all:?}"
        );
    }

    #[test]
    fn clean_evict_enforces_inclusion() {
        let mut s = state(PersistencyMode::BbbMemorySide);
        let mut n = nvmm();
        s.bbpb_mut(0).allocate(0, b(4), [7; 64], &mut n);
        s.on_llc_clean_evict(5, b(4), &mut n);
        assert_eq!(s.holder_of(b(4)), None);
        assert_eq!(n.endurance().writes_to(b(4)), 1);
    }
}

//! Persistency modes: the machines the paper compares (Table I).

use std::fmt;

/// Which persistency support the simulated machine provides.
///
/// # Examples
///
/// ```
/// use bbb_core::PersistencyMode;
/// assert!(PersistencyMode::Pmem.requires_flushes());
/// assert!(!PersistencyMode::BbbMemorySide.requires_flushes());
/// assert!(PersistencyMode::BbbMemorySide.has_bbpb());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistencyMode {
    /// The ADR baseline programmed in the Intel PMEM style: the persistence
    /// domain is the WPQ only, and software must insert `clwb` + `sfence`
    /// to order persists (paper Fig. 3).
    Pmem,
    /// Enhanced ADR: the entire cache hierarchy (plus store buffers and
    /// WPQ) is battery backed. No flushes needed; the performance and
    /// NVMM-write *optimum* the paper normalizes against — at the price of
    /// a battery two to three orders of magnitude larger than BBB's.
    Eadr,
    /// BBB with the memory-side bbPB organization (the paper's design):
    /// block-granular entries inside the persistence domain, free
    /// coalescing and reordering, LLC dirty-inclusion.
    BbbMemorySide,
    /// BBB with the processor-side organization: ordered per-store entries,
    /// coalescing only between back-to-back stores to the same block.
    BbbProcessorSide,
    /// Buffered Epoch Persistency with *volatile* persist buffers (the
    /// DPO/HOPS lineage the paper's §VI contrasts BBB against): stores
    /// buffer per core and drain lazily, epoch barriers stall until the
    /// buffer empties, and a crash loses whatever is still buffered —
    /// durability is guaranteed only at epoch boundaries.
    Bep,
}

impl PersistencyMode {
    /// All modes, in the order the paper's tables list them (plus the
    /// epoch-persistency baseline from related work).
    pub const ALL: [PersistencyMode; 5] = [
        PersistencyMode::Pmem,
        PersistencyMode::Eadr,
        PersistencyMode::BbbMemorySide,
        PersistencyMode::BbbProcessorSide,
        PersistencyMode::Bep,
    ];

    /// True when correct persist ordering requires software `clwb`/`sfence`
    /// (Table I "Persist Inst." row).
    #[must_use]
    pub const fn requires_flushes(self) -> bool {
        matches!(self, PersistencyMode::Pmem)
    }

    /// True when the programmer must delimit epochs with persist barriers
    /// (the programmability cost BEP retains and BBB removes).
    #[must_use]
    pub const fn requires_epoch_barriers(self) -> bool {
        matches!(self, PersistencyMode::Bep)
    }

    /// True for either BBB organization.
    #[must_use]
    pub const fn has_bbpb(self) -> bool {
        matches!(
            self,
            PersistencyMode::BbbMemorySide | PersistencyMode::BbbProcessorSide
        )
    }

    /// True when the mode buffers persisting stores in a per-core persist
    /// buffer at all (battery-backed or volatile).
    #[must_use]
    pub const fn has_persist_buffer(self) -> bool {
        self.has_bbpb() || matches!(self, PersistencyMode::Bep)
    }

    /// True when the entire cache hierarchy is inside the persistence
    /// domain.
    #[must_use]
    pub const fn caches_persistent(self) -> bool {
        matches!(self, PersistencyMode::Eadr)
    }

    /// Where the point of persistency sits (Table I "PoP location" row).
    #[must_use]
    pub const fn pop_location(self) -> &'static str {
        match self {
            PersistencyMode::Pmem | PersistencyMode::Bep => "WPQ/memory",
            PersistencyMode::Eadr => "L1D",
            PersistencyMode::BbbMemorySide | PersistencyMode::BbbProcessorSide => "bbPB/L1D",
        }
    }

    /// Relative battery requirement (Table I "Battery Needed" row).
    #[must_use]
    pub const fn battery(self) -> &'static str {
        match self {
            PersistencyMode::Pmem | PersistencyMode::Bep => "none (WPQ capacitor only)",
            PersistencyMode::Eadr => "large (whole hierarchy)",
            PersistencyMode::BbbMemorySide | PersistencyMode::BbbProcessorSide => {
                "small (bbPB only)"
            }
        }
    }
}

impl fmt::Display for PersistencyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PersistencyMode::Pmem => "PMEM (ADR + clwb/sfence)",
            PersistencyMode::Eadr => "eADR",
            PersistencyMode::BbbMemorySide => "BBB (memory-side)",
            PersistencyMode::BbbProcessorSide => "BBB (processor-side)",
            PersistencyMode::Bep => "BEP (volatile persist buffers + epoch barriers)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_requirements_match_table1() {
        assert!(PersistencyMode::Pmem.requires_flushes());
        for m in [
            PersistencyMode::Eadr,
            PersistencyMode::BbbMemorySide,
            PersistencyMode::BbbProcessorSide,
        ] {
            assert!(!m.requires_flushes(), "{m} must not need flushes");
        }
    }

    #[test]
    fn bbpb_presence() {
        assert!(PersistencyMode::BbbMemorySide.has_bbpb());
        assert!(PersistencyMode::BbbProcessorSide.has_bbpb());
        assert!(!PersistencyMode::Pmem.has_bbpb());
        assert!(!PersistencyMode::Eadr.has_bbpb());
    }

    #[test]
    fn eadr_is_the_only_persistent_cache_mode() {
        assert!(PersistencyMode::Eadr.caches_persistent());
        assert_eq!(
            PersistencyMode::ALL
                .iter()
                .filter(|m| m.caches_persistent())
                .count(),
            1
        );
    }

    #[test]
    fn bep_programmability_profile() {
        let bep = PersistencyMode::Bep;
        assert!(!bep.requires_flushes());
        assert!(bep.requires_epoch_barriers());
        assert!(!bep.has_bbpb());
        assert!(bep.has_persist_buffer());
        assert_eq!(bep.pop_location(), "WPQ/memory");
        // Only BEP requires epoch barriers.
        assert_eq!(
            PersistencyMode::ALL
                .iter()
                .filter(|m| m.requires_epoch_barriers())
                .count(),
            1
        );
    }

    #[test]
    fn descriptive_strings_are_nonempty() {
        for m in PersistencyMode::ALL {
            assert!(!m.pop_location().is_empty());
            assert!(!m.battery().is_empty());
            assert!(!format!("{m}").is_empty());
        }
    }
}

//! Litmus-to-workload bridge: drives an explicit global op schedule
//! through the standard [`Workload`] interface.
//!
//! Litmus programs fix a *global* order of ops across cores (the
//! candidate execution under test). The event-driven run loop serves
//! whichever core's clock is earliest, so the bridge enforces the order
//! itself: each core's ops wait in a queue, and a core whose turn has
//! not come receives short [`Op::Compute`] stalls until the scheduled
//! predecessor op has been issued. This lets the crash-point sweep
//! machinery ([`crate::System::run_until`], `run_probed_stores`) replay
//! a litmus schedule cycle-accurately, crashing *inside* ops rather
//! than only at op boundaries.

use std::collections::VecDeque;

use bbb_cpu::Op;
use bbb_mem::ByteStore;

use crate::workload::Workload;

/// Stall granted to a core waiting for its scheduled turn. Short enough
/// that the waiting core re-polls well inside any op's latency.
const GATE_STALL: u32 = 8;

/// A [`Workload`] that replays a fixed `(core, op)` sequence in exactly
/// that global issue order.
pub struct ScheduledOps {
    /// Per-core op queues, in program order.
    queues: Vec<VecDeque<Op>>,
    /// Remaining global schedule, as core ids.
    order: VecDeque<usize>,
}

impl ScheduledOps {
    /// Builds the bridge for `cores` cores from a schedule of per-core
    /// ops.
    ///
    /// # Panics
    ///
    /// Panics if an op names a core `>= cores`.
    #[must_use]
    pub fn new(ops: &[(usize, Op)], cores: usize) -> Self {
        let mut queues = vec![VecDeque::new(); cores];
        let mut order = VecDeque::with_capacity(ops.len());
        for (core, op) in ops {
            assert!(*core < cores, "op scheduled on core {core} of {cores}");
            queues[*core].push_back(*op);
            order.push_back(*core);
        }
        Self { queues, order }
    }
}

impl Workload for ScheduledOps {
    fn name(&self) -> &str {
        "litmus"
    }

    fn next_batch(&mut self, core: usize, _arch: &mut ByteStore) -> Option<Vec<Op>> {
        if self.queues[core].is_empty() {
            return None;
        }
        if self.order.front() == Some(&core) {
            self.order.pop_front();
            Some(vec![self.queues[core].pop_front().expect("queued op")])
        } else {
            // Not this core's turn: spin until the scheduled predecessor
            // has been issued.
            Some(vec![Op::Compute { cycles: GATE_STALL }])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PersistencyMode, RunCursor, StopAt, System};
    use bbb_sim::{AddressMap, SimConfig};

    #[test]
    fn schedule_order_is_the_commit_order() {
        let cfg = SimConfig::small_for_tests();
        let base = AddressMap::new(&cfg).persistent_base();
        // Alternating cores: c1's store to x must land between c0's two.
        let ops = vec![
            (0, Op::store_u64(base, 1)),
            (1, Op::store_u64(base, 2)),
            (0, Op::store_u64(base, 3)),
            (1, Op::store_u64(base + 0x40, 9)),
        ];
        let mut w = ScheduledOps::new(&ops, cfg.cores);
        let mut sys = System::new(cfg, PersistencyMode::Eadr).expect("config");
        let mut cursor = RunCursor::new(2);
        sys.run_until(&mut w, &mut cursor, StopAt::End);
        let img = sys.crash_image(true);
        assert_eq!(img.read_u64(base), 3, "c0's second store wins");
        assert_eq!(img.read_u64(base + 0x40), 9);
    }

    #[test]
    fn bridge_terminates_with_idle_tail_cores() {
        let cfg = SimConfig::small_for_tests();
        let base = AddressMap::new(&cfg).persistent_base();
        // Core 1 finishes long before core 0's delay tail.
        let ops = vec![
            (1, Op::store_u64(base, 5)),
            (0, Op::Compute { cycles: 5000 }),
            (0, Op::store_u64(base + 0x40, 6)),
        ];
        let mut w = ScheduledOps::new(&ops, cfg.cores);
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).expect("config");
        let mut cursor = RunCursor::new(2);
        sys.run_until(&mut w, &mut cursor, StopAt::End);
        let img = sys.crash_image(true);
        assert_eq!(img.read_u64(base), 5);
        assert_eq!(img.read_u64(base + 0x40), 6);
    }
}

//! The hybrid DRAM + NVMM main memory behind one [`MemoryPort`].
//!
//! Routes block reads and writes to the right controller by physical
//! region (paper Fig. 4: flat address space split between DRAM and NVMM,
//! each with its own controller).

use bbb_cache::MemoryPort;
use bbb_mem::{DramController, NvmImage, NvmmController};
use bbb_sim::{AddressMap, BlockAddr, Cycle, SimConfig, Stats, BLOCK_BYTES};

/// Both memory controllers plus the address map that routes between them.
#[derive(Debug, Clone)]
pub struct Memories {
    dram: DramController,
    nvmm: NvmmController,
    map: AddressMap,
}

impl Memories {
    /// Builds the memory system for a machine configuration.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> Self {
        Self {
            dram: DramController::new(cfg.mem.clone()),
            nvmm: NvmmController::new(cfg.mem.clone()),
            map: AddressMap::new(cfg),
        }
    }

    /// The machine's address map.
    #[must_use]
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Direct access to the NVMM controller (bbPB drains, crash imaging).
    #[must_use]
    pub fn nvmm(&self) -> &NvmmController {
        &self.nvmm
    }

    /// Mutable access to the NVMM controller.
    pub fn nvmm_mut(&mut self) -> &mut NvmmController {
        &mut self.nvmm
    }

    /// Pre-loads media contents (warm start) without simulated time.
    pub fn load(&mut self, block: BlockAddr, data: &[u8; BLOCK_BYTES]) {
        if self.map.is_nvmm(block.base()) {
            self.nvmm.load(block, data);
        } else {
            self.dram.load(block, data);
        }
    }

    /// The post-crash NVMM image (media + battery-backed WPQ).
    #[must_use]
    pub fn crash_image(&self) -> NvmImage {
        self.nvmm.crash_image()
    }

    /// Merged statistics from both controllers.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = self.dram.stats();
        s.merge(&self.nvmm.stats());
        s
    }
}

impl MemoryPort for Memories {
    fn read_block(&mut self, now: Cycle, block: BlockAddr) -> (Cycle, [u8; BLOCK_BYTES]) {
        if self.map.is_nvmm(block.base()) {
            self.nvmm.read(now, block)
        } else {
            self.dram.read(now, block)
        }
    }

    fn write_block(&mut self, now: Cycle, block: BlockAddr, data: [u8; BLOCK_BYTES]) -> Cycle {
        if self.map.is_nvmm(block.base()) {
            self.nvmm.write(now, block, data).persist
        } else {
            self.dram.write(now, block, data)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mems() -> Memories {
        Memories::new(&SimConfig::small_for_tests())
    }

    #[test]
    fn routes_by_region() {
        let mut m = mems();
        let dram_block = BlockAddr::from_index(0);
        let nvmm_block = BlockAddr::containing(m.map().persistent_base());

        m.write_block(0, dram_block, [1; 64]);
        m.write_block(0, nvmm_block, [2; 64]);
        assert_eq!(m.stats().get("dram.writes"), 1);
        assert_eq!(m.stats().get("nvmm.writes"), 1);

        let (_, d) = m.read_block(0, dram_block);
        assert_eq!(d, [1; 64]);
        let (_, n) = m.read_block(0, nvmm_block);
        assert_eq!(n, [2; 64]);
    }

    #[test]
    fn nvmm_write_persist_is_wpq_accept() {
        let mut m = mems();
        let b = BlockAddr::containing(m.map().persistent_base());
        let persist = m.write_block(42, b, [9; 64]);
        assert_eq!(persist, 42, "WPQ accepts immediately when empty");
    }

    #[test]
    fn load_routes_and_skips_counters() {
        let mut m = mems();
        let nv = BlockAddr::containing(m.map().persistent_base());
        m.load(nv, &[7; 64]);
        m.load(BlockAddr::from_index(1), &[8; 64]);
        assert_eq!(m.stats().get("nvmm.writes"), 0);
        assert_eq!(m.stats().get("dram.writes"), 0);
        assert_eq!(m.crash_image().read_block(nv), [7; 64]);
    }
}

//! Proves the streaming claim: op generation is O(live keys) memory,
//! *not* O(ops). A counting global allocator measures live heap bytes
//! while a million-key KV stream emits ten million ops — the generation
//! phase must not allocate in proportion to the op count.
//!
//! (An integration test so the counting allocator — which needs `unsafe
//! impl GlobalAlloc` — stays outside the `#![forbid(unsafe_code)]` lib.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bbb_core::OpStream;
use bbb_mem::ByteStore;
use bbb_workloads::{KvLayout, KvMix, KvSpec, KvWorkload};

struct CountingAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_add(new_size as u64, Ordering::Relaxed);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

#[test]
fn million_key_stream_allocates_o_keys_not_o_ops() {
    const KEYS: u64 = 1_000_000;
    const CORES: usize = 8;
    const TOTAL_OPS: u64 = 10_000_000;

    // Mix A over a million Zipfian keys; modest insert headroom (inserts
    // degrade to updates once it is spent, without allocating).
    let layout = KvLayout::new(0x1000, KEYS, 4, 4096);
    let spec = KvSpec {
        keys: KEYS,
        tenants: 4,
        zipf_s: 0.99,
        mix: KvMix::A,
        per_core_requests: u64::MAX / 16, // never runs dry in this test
        seed: 0xB0B,
        instrument: false,
        epochs: false,
    };

    let mut arch = ByteStore::new();
    let baseline = live_bytes();
    let mut kv = KvWorkload::new(layout, spec, CORES);
    kv.setup(&mut arch);
    let after_setup = live_bytes();

    // Setup footprint is O(keys): the backing slots (64 B/key in `arch`)
    // plus the sampler's alias table (12 B/rank) and per-core state.
    let setup_cost = after_setup - baseline;
    assert!(
        setup_cost < 200 * KEYS,
        "setup allocated {setup_cost} bytes for {KEYS} keys"
    );

    // Stream ten million ops. Live allocation must stay flat: the only
    // permitted growth is `arch` pages first touched by inserts, bounded
    // by the insert headroom — nothing proportional to TOTAL_OPS.
    let mut pulled = 0u64;
    'outer: loop {
        for core in 0..CORES {
            if kv.next_op(core, &mut arch).is_none() {
                panic!("stream ran dry");
            }
            pulled += 1;
            if pulled == TOTAL_OPS {
                break 'outer;
            }
        }
    }
    let growth = live_bytes().saturating_sub(after_setup);
    assert!(
        growth < 8 * 1024 * 1024,
        "streaming {TOTAL_OPS} ops grew live allocation by {growth} bytes"
    );
    assert!(growth < TOTAL_OPS / 100, "growth scales with op count");
}

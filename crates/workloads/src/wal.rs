//! Durable write-ahead log at server scale (extension).
//!
//! Each core owns one log shard per tenant; an append writes a 64-byte
//! record (three payload words, then a self-identifying header word
//! published last within the line), and a *group commit* publishes the
//! shard's head counter once every [`WalSpec::group`] appends — the
//! classic WAL amortization that batters flush-based persistency far
//! less than it does BBB, because under BBB every record store is already
//! durable at commit and the head publish is just one more store.
//!
//! When a ring fills, the shard *truncates*: the tail counter jumps
//! forward by half the ring before the overwriting append — a recovery
//! consumer is promised only records in `[tail, head)`. Program order
//! (tail store → overwriting record stores → later head store) makes the
//! promise crash-safe under any suffix-loss persistency discipline.
//!
//! Tenant choice per append is Zipfian (hot logs), arrivals are bursty,
//! and state is O(shards) — the workload is stream-native like
//! [`KvWorkload`](crate::kv::KvWorkload).

use bbb_core::OpStream;
use bbb_cpu::Op;
use bbb_mem::{ByteStore, NvmImage};
use bbb_sim::{Addr, SplitMix64, ZipfSampler};

use crate::kv::{mix64, OpBuf, BURST_MAX, GAP_BASE, GAP_SPREAD, MAX_REQUEST_OPS};

/// High-bits tag folded into record header words (`"WALB"`-ish).
pub const WAL_TAG: u64 = 0x5741_4C42_0000_0000;

/// Bytes per record slot and per shard header block.
pub const REC_BYTES: u64 = 64;

/// Payload words per record (at +8, +16, +24 within the record line).
pub const REC_PAYLOAD_WORDS: u64 = 3;

/// Log-shard geometry shared by the workload and the recovery checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalLayout {
    /// First shard-header address (block-aligned).
    pub base: Addr,
    /// Cores (each owns `tenants` shards).
    pub cores: usize,
    /// Log shards per core.
    pub tenants: usize,
    /// Record slots per shard ring (power of two).
    pub ring_records: u64,
}

impl WalLayout {
    /// Lays out `cores × tenants` shards starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics unless `ring_records` is a power of two ≥ 4 and the shard
    /// counts are nonzero.
    #[must_use]
    pub fn new(base: Addr, cores: usize, tenants: usize, ring_records: u64) -> Self {
        assert!(cores > 0 && tenants > 0, "empty shard grid");
        assert!(
            ring_records.is_power_of_two() && ring_records >= 4,
            "ring must be a power of two >= 4"
        );
        Self {
            base: base.next_multiple_of(REC_BYTES),
            cores,
            tenants,
            ring_records,
        }
    }

    /// Shards in total.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.cores * self.tenants
    }

    /// Bytes per shard: header block + ring.
    #[must_use]
    pub fn shard_bytes(&self) -> u64 {
        (1 + self.ring_records) * REC_BYTES
    }

    /// Total bytes of log storage.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.shards() as u64 * self.shard_bytes()
    }

    /// Shard id of `(core, tenant)`.
    #[must_use]
    pub fn shard(&self, core: usize, tenant: usize) -> usize {
        core * self.tenants + tenant
    }

    /// Address of a shard's header block (head at +0, tail at +8).
    #[must_use]
    pub fn header_addr(&self, shard: usize) -> Addr {
        self.base + shard as u64 * self.shard_bytes()
    }

    /// Address of the record slot `seq` occupies in `shard`'s ring.
    #[must_use]
    pub fn record_addr(&self, shard: usize, seq: u64) -> Addr {
        self.header_addr(shard) + REC_BYTES + (seq & (self.ring_records - 1)) * REC_BYTES
    }

    /// Expected header word of record `seq` in `shard` (published last
    /// within the record line).
    #[must_use]
    pub fn record_header(&self, shard: usize, seq: u64) -> u64 {
        WAL_TAG ^ mix64((shard as u64).rotate_left(40) ^ seq)
    }

    /// Expected payload word `i` of record `seq` in `shard`.
    #[must_use]
    pub fn record_payload(&self, shard: usize, seq: u64, i: u64) -> u64 {
        mix64(((shard as u64) << 44) ^ (seq << 4) ^ (i + 1))
    }
}

/// Construction parameters for [`WalWorkload`].
#[derive(Debug, Clone, Copy)]
pub struct WalSpec {
    /// Log shards per core.
    pub tenants: usize,
    /// Record slots per ring (power of two; must exceed `2 × group`).
    pub ring_records: u64,
    /// Appends between head publishes (group commit size).
    pub group: u64,
    /// Appends each core performs before its stream ends.
    pub per_core_appends: u64,
    /// Zipf exponent over tenants (hot logs).
    pub zipf_s: f64,
    /// Master seed.
    pub seed: u64,
    /// Emit `clwb`+`sfence` after each persisting store (PMEM baseline).
    pub instrument: bool,
    /// Emit an epoch fence after each append (BEP discipline).
    pub epochs: bool,
}

/// The streaming WAL workload. See module docs.
#[derive(Debug)]
pub struct WalWorkload {
    layout: WalLayout,
    spec: WalSpec,
    zipf: ZipfSampler,
    // Per-core streaming state.
    rngs: Vec<SplitMix64>,
    remaining: Vec<u64>,
    burst_left: Vec<u64>,
    finished: Vec<bool>,
    bufs: Vec<OpBuf>,
    // Per-shard state (a shard is written only by its owning core).
    seq: Vec<u64>,
    tail: Vec<u64>,
    pending: Vec<u64>,
}

impl WalWorkload {
    /// Builds the workload for `layout.cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if the ring cannot hold two truncation windows of `group`
    /// appends, or if a final group-commit flush could overflow the op
    /// buffer.
    #[must_use]
    pub fn new(layout: WalLayout, spec: WalSpec) -> Self {
        assert_eq!(layout.tenants, spec.tenants, "layout/spec tenant mismatch");
        assert!(spec.group >= 1, "group commit of zero appends");
        assert!(
            layout.ring_records / 2 > spec.group,
            "ring too small for group commit + truncation"
        );
        // The end-of-stream flush publishes every tenant's head in one
        // request: tenants stores, ×3 when instrumented, + epoch fence.
        assert!(
            spec.tenants * 3 < MAX_REQUEST_OPS,
            "too many tenants for the final flush request"
        );
        let mut master = SplitMix64::new(spec.seed);
        let rngs = (0..layout.cores).map(|_| master.split()).collect();
        Self {
            zipf: ZipfSampler::new(spec.tenants as u64, spec.zipf_s),
            rngs,
            remaining: vec![spec.per_core_appends; layout.cores],
            burst_left: vec![0; layout.cores],
            finished: vec![false; layout.cores],
            bufs: vec![OpBuf::new(); layout.cores],
            seq: vec![0; layout.shards()],
            tail: vec![0; layout.shards()],
            pending: vec![0; layout.shards()],
            layout,
            spec,
        }
    }

    /// The shard geometry (for recovery checks and reports).
    #[must_use]
    pub fn layout(&self) -> WalLayout {
        self.layout
    }

    fn push_store(&mut self, core: usize, addr: Addr, value: u64) {
        self.bufs[core].push(Op::store_u64(addr, value));
        if self.spec.instrument {
            self.bufs[core].push(Op::Clwb { addr });
            self.bufs[core].push(Op::Fence);
        }
    }

    /// Expands one append (tenant chosen Zipfian) into the core's buffer.
    fn generate_append(&mut self, core: usize) {
        if self.burst_left[core] == 0 {
            self.burst_left[core] = 1 + self.rngs[core].next_below(BURST_MAX);
            let gap = GAP_BASE + self.rngs[core].next_below(GAP_SPREAD) as u32;
            self.bufs[core].push(Op::Compute { cycles: gap });
        }
        self.burst_left[core] -= 1;

        let tenant = self.zipf.sample(&mut self.rngs[core]) as usize;
        let shard = self.layout.shard(core, tenant);
        let seq = self.seq[shard];
        let header = self.layout.header_addr(shard);

        // Truncate before the ring wraps onto an in-window record. The
        // tail store precedes the overwriting record stores in program
        // order, so `[tail, head)` never spans a clobbered slot.
        if seq - self.tail[shard] == self.layout.ring_records {
            let new_tail = seq - self.layout.ring_records / 2;
            self.tail[shard] = new_tail;
            self.push_store(core, header + 8, new_tail);
        }

        // Record body first, self-identifying header word last.
        let rec = self.layout.record_addr(shard, seq);
        for i in 0..REC_PAYLOAD_WORDS {
            self.push_store(
                core,
                rec + 8 + i * 8,
                self.layout.record_payload(shard, seq, i),
            );
        }
        self.push_store(core, rec, self.layout.record_header(shard, seq));
        self.seq[shard] = seq + 1;
        self.pending[shard] += 1;

        // Group commit: publish the head every `group` appends.
        if self.pending[shard] >= self.spec.group {
            self.pending[shard] = 0;
            self.push_store(core, header, seq + 1);
        }
        if self.spec.epochs {
            self.bufs[core].push(Op::Fence);
        }
    }

    /// End-of-stream flush: publish any unpublished heads for this core.
    fn generate_final_flush(&mut self, core: usize) {
        for tenant in 0..self.layout.tenants {
            let shard = self.layout.shard(core, tenant);
            if self.pending[shard] > 0 {
                self.pending[shard] = 0;
                let header = self.layout.header_addr(shard);
                let head = self.seq[shard];
                self.push_store(core, header, head);
            }
        }
        if self.spec.epochs && !self.bufs[core].is_empty() {
            self.bufs[core].push(Op::Fence);
        }
    }
}

impl OpStream for WalWorkload {
    fn name(&self) -> &str {
        "wal"
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        // Zeroed heads/tails are the real initial state; touching them in
        // the architectural store just makes that explicit.
        for shard in 0..self.layout.shards() {
            let header = self.layout.header_addr(shard);
            arch.write_u64(header, 0);
            arch.write_u64(header + 8, 0);
        }
    }

    fn next_op(&mut self, core: usize, _arch: &mut ByteStore) -> Option<Op> {
        if self.bufs[core].is_empty() {
            if self.remaining[core] > 0 {
                self.remaining[core] -= 1;
                self.generate_append(core);
            } else if !self.finished[core] {
                self.finished[core] = true;
                self.generate_final_flush(core);
            }
        }
        self.bufs[core].pop()
    }
}

/// Verifies a post-crash image against the WAL contract: for every
/// shard, `tail ≤ head`, the window fits the ring, and every record in
/// `[tail, head)` is intact (header and payload words exact). Returns
/// the total number of recovered records across shards.
///
/// # Errors
///
/// Returns a description of the first violated shard — expected for
/// uninstrumented PMEM images, never for battery-backed modes.
pub fn check_wal_recovery(image: &NvmImage, layout: &WalLayout) -> Result<u64, String> {
    let mut recovered = 0u64;
    for shard in 0..layout.shards() {
        let header = layout.header_addr(shard);
        let head = image.read_u64(header);
        let tail = image.read_u64(header + 8);
        if tail > head {
            return Err(format!("shard {shard}: tail {tail} ahead of head {head}"));
        }
        if head - tail > layout.ring_records {
            return Err(format!(
                "shard {shard}: window {tail}..{head} exceeds ring {}",
                layout.ring_records
            ));
        }
        for seq in tail..head {
            let rec = layout.record_addr(shard, seq);
            let got = image.read_u64(rec);
            if got != layout.record_header(shard, seq) {
                return Err(format!(
                    "shard {shard}: record {seq} header {got:#x} corrupt at {rec:#x}"
                ));
            }
            for i in 0..REC_PAYLOAD_WORDS {
                let got = image.read_u64(rec + 8 + i * 8);
                if got != layout.record_payload(shard, seq, i) {
                    return Err(format!(
                        "shard {shard}: record {seq} payload word {i} corrupt"
                    ));
                }
            }
            recovered += 1;
        }
    }
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_core::{PersistencyMode, System};
    use bbb_sim::{AddressMap, SimConfig};

    fn small_setup(cfg: &SimConfig) -> (WalLayout, WalSpec) {
        let map = AddressMap::new(cfg);
        let layout = WalLayout::new(map.persistent_base(), cfg.cores, 4, 32);
        let spec = WalSpec {
            tenants: 4,
            ring_records: 32,
            group: 8,
            per_core_appends: 200,
            zipf_s: 0.99,
            seed: 0xB0B,
            instrument: false,
            epochs: false,
        };
        (layout, spec)
    }

    #[test]
    fn layout_shards_do_not_overlap() {
        let layout = WalLayout::new(0x1000, 2, 3, 8);
        let mut ends = Vec::new();
        for s in 0..layout.shards() {
            let lo = layout.header_addr(s);
            let hi = layout.record_addr(s, layout.ring_records - 1) + REC_BYTES;
            ends.push((lo, hi));
            assert_eq!(hi - lo, layout.shard_bytes());
        }
        for w in ends.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn appends_truncate_and_recover_under_bbb() {
        let cfg = SimConfig::small_for_tests();
        let (layout, spec) = small_setup(&cfg);
        let mut wal = WalWorkload::new(layout, spec);
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare_stream(&mut wal);
        let summary = sys.run_stream(&mut wal, u64::MAX);
        assert!(summary.completed);
        // 200 appends over rings of 32 must have truncated at least once.
        assert!(wal.tail.iter().any(|&t| t > 0), "no shard truncated");
        sys.drain_all_store_buffers();
        let img = sys.crash_now();
        let n = check_wal_recovery(&img, &layout).expect("consistent");
        // After the final flush every shard exposes its full window.
        let expect: u64 = (0..layout.shards()).map(|s| wal.seq[s] - wal.tail[s]).sum();
        assert_eq!(n, expect);
        assert!(n > 0);
    }

    #[test]
    fn group_commit_bounds_unpublished_window_mid_run() {
        let cfg = SimConfig::small_for_tests();
        let (layout, spec) = small_setup(&cfg);
        let mut wal = WalWorkload::new(layout, spec);
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare_stream(&mut wal);
        // Stop mid-run: published heads may lag seq by at most `group`
        // (plus whatever sits uncommitted in store buffers).
        sys.run_stream(&mut wal, 300);
        let img = sys.crash_now();
        let n = check_wal_recovery(&img, &layout).expect("mid-run image consistent");
        let published: u64 = (0..layout.shards())
            .map(|s| img.read_u64(layout.header_addr(s)))
            .sum();
        assert_eq!(
            n,
            published
                - (0..layout.shards())
                    .map(|s| img.read_u64(layout.header_addr(s) + 8))
                    .sum::<u64>()
        );
    }

    #[test]
    fn fixed_seed_is_reproducible() {
        let cfg = SimConfig::small_for_tests();
        let (layout, spec) = small_setup(&cfg);
        let run = || {
            let mut wal = WalWorkload::new(layout, spec);
            let mut sys = System::new(cfg.clone(), PersistencyMode::BbbProcessorSide).unwrap();
            sys.prepare_stream(&mut wal);
            sys.run_stream(&mut wal, u64::MAX);
            sys.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn instrumented_run_recovers_under_pmem() {
        let cfg = SimConfig::small_for_tests();
        let (layout, mut spec) = small_setup(&cfg);
        spec.instrument = true;
        spec.per_core_appends = 60;
        let mut wal = WalWorkload::new(layout, spec);
        let mut sys = System::new(cfg, PersistencyMode::Pmem).unwrap();
        sys.prepare_stream(&mut wal);
        sys.run_stream(&mut wal, u64::MAX);
        sys.drain_all_store_buffers();
        let img = sys.crash_now();
        check_wal_recovery(&img, &layout).expect("instrumented pmem log consistent");
    }
}

//! Persistent-memory workloads from the BBB paper (Table IV).
//!
//! Each workload maintains a recoverable data structure in the simulated
//! persistent heap and drives the system simulator with back-to-back
//! persisting stores — the paper designed them to exert *maximum pressure*
//! on the bbPB, so they do little computation between persists.
//!
//! | workload     | structure                          | paper row |
//! |--------------|------------------------------------|-----------|
//! | `rtree`      | spatial R-tree, random inserts     | rtree     |
//! | `ctree`      | crit-bit tree, random inserts      | ctree     |
//! | `hashmap`    | chained hashmap, random inserts    | hashmap   |
//! | `mutate[NC/C]` | random element mutation in array | mutate    |
//! | `swap[NC/C]` | random element swaps in array      | swap      |
//!
//! `NC`/`C` = non-conflicting (per-thread array regions) vs conflicting
//! (threads share the whole array).
//!
//! Every structure follows strict-persistency crash discipline: the store
//! that publishes an operation (head pointer, parent link, bucket head) is
//! the *last* store of the operation, so under BBB — where persist order
//! equals program order with no flushes — any crash leaves a consistent
//! prefix state. Per-structure checkers validate exactly that against a
//! post-crash [`bbb_mem::NvmImage`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrays;
pub mod btree;
pub mod builder;
pub mod ctree;
pub mod hashmap;
pub mod kv;
pub mod linkedlist;
pub mod locks;
pub mod palloc;
pub mod pstore_log;
pub mod rtree;
pub mod suite;
pub mod wal;

pub use arrays::{ArrayOpKind, ArrayWorkload, Sharing};
pub use btree::BtreeWorkload;
pub use builder::OpBuilder;
pub use ctree::CtreeWorkload;
pub use hashmap::HashmapWorkload;
pub use kv::{check_kv_recovery, KvLayout, KvMix, KvSpec, KvWorkload};
pub use linkedlist::LinkedList;
pub use locks::InsertLock;
pub use palloc::Palloc;
pub use pstore_log::{check_pstore_recovery, PstoreLogWorkload, SimBacking};
pub use rtree::RtreeWorkload;
pub use suite::{
    make_stream, make_workload, verify_recovery, verify_recovery_report, RecoveryReport,
    WorkloadKind, WorkloadParams,
};
pub use wal::{check_wal_recovery, WalLayout, WalSpec, WalWorkload};

// The experiment runner executes workloads on worker threads; every
// workload (and the boxed form `make_workload` returns) must stay `Send`.
// No `Rc`/`RefCell` exist in this crate today — these assertions make that
// a compile-time guarantee rather than a convention.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ArrayWorkload>();
    assert_send::<BtreeWorkload>();
    assert_send::<CtreeWorkload>();
    assert_send::<HashmapWorkload>();
    assert_send::<PstoreLogWorkload>();
    assert_send::<RtreeWorkload>();
    assert_send::<suite::EpochWorkload<ArrayWorkload>>();
    assert_send::<Box<dyn bbb_core::Workload>>();
    assert_send::<KvWorkload>();
    assert_send::<WalWorkload>();
    assert_send::<Box<dyn bbb_core::OpStream>>();
};

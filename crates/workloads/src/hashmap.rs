//! The `hashmap` workload: a persistent chained hash table.
//!
//! Matches the paper's Table IV `hashmap` row: a 1M-node table,
//! pre-populated at setup, with random insertions during the measured
//! window (6.0% persisting stores — the lowest of the suite, because the
//! bucket-array loads dominate). Each insert prepends a node to its
//! bucket's chain, exactly the linked-list pattern of the paper's Fig. 2:
//! node stores first, bucket-head publish store last.
//!
//! Layout: bucket array of `u64` head pointers at a reserved base; nodes
//! are 24 bytes `{ key, value, next }`.

use bbb_core::Workload;
use bbb_cpu::Op;
use bbb_mem::{ByteStore, NvmImage};
use bbb_sim::{Addr, AddressMap, SplitMix64};

use crate::builder::OpBuilder;
use crate::palloc::Palloc;

/// A persistent chained hashmap driven as a multi-core workload.
#[derive(Debug)]
pub struct HashmapWorkload {
    buckets_addr: Addr,
    n_buckets: u64,
    map: AddressMap,
    palloc: Palloc,
    rngs: Vec<SplitMix64>,
    remaining: Vec<u64>,
    initial: u64,
    instrument: bool,
    inserted: u64,
}

impl HashmapWorkload {
    /// Node size in bytes.
    pub const NODE_BYTES: u64 = 24;

    /// Creates the workload. The bucket array occupies
    /// `n_buckets * 8` bytes at `buckets_addr` (reserved space).
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets` is not a power of two.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        map: AddressMap,
        buckets_addr: Addr,
        n_buckets: u64,
        palloc: Palloc,
        cores: usize,
        initial: u64,
        per_core_ops: u64,
        seed: u64,
        instrument: bool,
    ) -> Self {
        assert!(n_buckets.is_power_of_two(), "bucket count must be 2^k");
        let mut master = SplitMix64::new(seed);
        Self {
            buckets_addr,
            n_buckets,
            map,
            palloc,
            rngs: (0..cores).map(|_| master.split()).collect(),
            remaining: vec![per_core_ops; cores],
            initial,
            instrument,
            inserted: 0,
        }
    }

    /// Keys inserted (setup + measured).
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    fn bucket_slot(&self, key: u64) -> Addr {
        // Fibonacci hashing: cheap, well-spread.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.n_buckets.trailing_zeros());
        self.buckets_addr + h * 8
    }

    fn insert_functional(&mut self, arch: &mut ByteStore, core: usize, key: u64) -> bool {
        let Some(node) = self.palloc.alloc(core, Self::NODE_BYTES) else {
            return false;
        };
        let slot = self.bucket_slot(key);
        let head = arch.read_u64(slot);
        arch.write_u64(node, key);
        arch.write_u64(node + 8, key.wrapping_mul(7)); // value
        arch.write_u64(node + 16, head);
        arch.write_u64(slot, node);
        self.inserted += 1;
        true
    }

    fn insert_ops(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        let key = self.rngs[core].next_u64() | 1; // nonzero keys
        let node = self.palloc.alloc(core, Self::NODE_BYTES)?;
        let slot = self.bucket_slot(key);
        let mut b = OpBuilder::new(&self.map, self.instrument);
        let head = b.load_u64(arch, slot);
        // Insert-if-absent: walk the chain checking for the key, like the
        // WHISPER hashmap the paper uses (this is also why hashmap has the
        // suite's lowest persisting-store fraction, 6.0% in Table IV).
        let mut p = head;
        let mut walked = 0;
        while p != 0 && walked < 64 {
            let k = b.load_u64(arch, p);
            if k == key {
                return Some(b.finish()); // already present (rare)
            }
            p = b.load_u64(arch, p + 16);
            walked += 1;
        }
        b.store_u64(node, key);
        b.store_u64(node + 8, key.wrapping_mul(7));
        b.store_u64(node + 16, head);
        // Publish.
        b.store_u64(slot, node);
        self.inserted += 1;
        Some(b.finish())
    }
}

impl Workload for HashmapWorkload {
    fn name(&self) -> &str {
        "hashmap"
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        // Zero the bucket array explicitly so the pages exist in media.
        for i in 0..self.n_buckets {
            arch.write_u64(self.buckets_addr + i * 8, 0);
        }
        let cores = self.rngs.len();
        let mut rng = SplitMix64::new(0x4A5_115EED);
        for i in 0..self.initial {
            let key = rng.next_u64() | 1;
            let core = (i % cores as u64) as usize;
            if !self.insert_functional(arch, core, key) {
                break;
            }
        }
    }

    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        if core >= self.remaining.len() || self.remaining[core] == 0 {
            return None;
        }
        self.remaining[core] -= 1;
        self.insert_ops(core, arch)
    }
}

/// Walks every chain in a post-crash image, validating pointers. Returns
/// the number of reachable nodes.
///
/// # Errors
///
/// Returns a description of the first corrupt chain found — expected for
/// uninstrumented PMEM runs, never for BBB/eADR.
pub fn check_hashmap_recovery(
    image: &NvmImage,
    map: &AddressMap,
    buckets_addr: Addr,
    n_buckets: u64,
) -> Result<u64, String> {
    let mut image = image.reader();
    let mut nodes = 0u64;
    for i in 0..n_buckets {
        let mut p = image.read_u64(buckets_addr + i * 8);
        let mut depth = 0u64;
        while p != 0 {
            if !map.is_persistent(p) || !p.is_multiple_of(8) {
                return Err(format!("bucket {i}: malformed pointer {p:#x}"));
            }
            let key = image.read_u64(p);
            if key == 0 {
                return Err(format!("bucket {i}: pointer to uninitialized node {p:#x}"));
            }
            let value = image.read_u64(p + 8);
            if value != key.wrapping_mul(7) {
                return Err(format!("bucket {i}: torn node at {p:#x}"));
            }
            nodes += 1;
            depth += 1;
            if depth > 1_000_000 {
                return Err(format!("bucket {i}: cycle suspected"));
            }
            p = image.read_u64(p + 16);
        }
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_core::{PersistencyMode, System};
    use bbb_sim::SimConfig;

    const BUCKETS: u64 = 64;

    fn build(mode: PersistencyMode, initial: u64, per_core: u64) -> (System, HashmapWorkload) {
        let sys = System::new(SimConfig::small_for_tests(), mode).unwrap();
        let map = sys.address_map().clone();
        let base = map.persistent_base();
        let palloc = Palloc::new(&map, 2, BUCKETS * 8);
        let w = HashmapWorkload::new(map, base, BUCKETS, palloc, 2, initial, per_core, 99, false);
        (sys, w)
    }

    #[test]
    fn setup_populates_all_requested_nodes() {
        let (mut sys, mut w) = build(PersistencyMode::Eadr, 200, 0);
        sys.prepare(&mut w);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let n = check_hashmap_recovery(&img, &map, map.persistent_base(), BUCKETS).unwrap();
        assert_eq!(n, 200);
        assert_eq!(w.inserted(), 200);
    }

    #[test]
    fn bbb_inserts_recover_at_any_crash_point() {
        let (mut sys, mut w) = build(PersistencyMode::BbbMemorySide, 50, 200);
        sys.prepare(&mut w);
        sys.run(&mut w, 333); // cut mid-insert
        sys.check_invariants();
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let n = check_hashmap_recovery(&img, &map, map.persistent_base(), BUCKETS)
            .expect("BBB image always consistent");
        assert!(n >= 50, "at least the setup survives: {n}");
    }

    #[test]
    fn eadr_full_run_matches_functional_count() {
        let (mut sys, mut w) = build(PersistencyMode::Eadr, 30, 20);
        sys.prepare(&mut w);
        let summary = sys.run(&mut w, u64::MAX);
        assert!(summary.completed);
        sys.drain_all_store_buffers();
        let map = sys.address_map().clone();
        let inserted = w.inserted();
        let img = sys.crash_now();
        let n = check_hashmap_recovery(&img, &map, map.persistent_base(), BUCKETS).unwrap();
        assert_eq!(n, inserted);
        assert_eq!(n, 30 + 2 * 20);
    }

    #[test]
    fn pmem_without_flushes_loses_tail_inserts() {
        let (mut sys, mut w) = build(PersistencyMode::Pmem, 0, 50);
        sys.prepare(&mut w);
        sys.run(&mut w, u64::MAX);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        // A torn chain (Err) is the other valid demonstration.
        if let Ok(n) = check_hashmap_recovery(&img, &map, map.persistent_base(), BUCKETS) {
            assert!(n < 100, "cached inserts must be missing: {n}");
        }
    }

    #[test]
    fn checker_detects_torn_node() {
        let (mut sys, w) = build(PersistencyMode::BbbMemorySide, 0, 0);
        let map = sys.address_map().clone();
        let node = map.persistent_base() + 0x4000;
        sys.preload_u64(w.buckets_addr, node);
        sys.preload_u64(node, 5); // key without matching value
        sys.preload_u64(node + 8, 999);
        let img = sys.crash_now();
        let err = check_hashmap_recovery(&img, &map, map.persistent_base(), BUCKETS).unwrap_err();
        assert!(err.contains("torn node"), "{err}");
    }
}

//! Building op sequences with persistency-mode-aware instrumentation.
//!
//! [`OpBuilder`] is the bridge between a data structure's functional code
//! and the simulator: loads read *committed* architectural memory to plan
//! the operation, and stores append [`Op`]s whose effects the simulator
//! applies to architectural memory when they commit (in
//! `System::step_op`) — never at generation time. That ordering is
//! load-bearing for crash realism: if generation wrote memory eagerly, a
//! second core could chain to a node whose publishing store has not yet
//! committed, producing crash images (publish visible before contents)
//! that no real coherence protocol allows. When *instrumentation* is on —
//! the PMEM baseline — each persisting store is followed by `clwb` +
//! `sfence`, exactly the transformation the paper's Fig. 2 → Fig. 3 shows
//! a programmer must perform by hand. Under BBB/eADR instrumentation stays
//! off and the very same structure code is crash consistent.

use bbb_cpu::Op;
use bbb_mem::ByteStore;
use bbb_sim::{Addr, AddressMap};

/// Collects the op sequence of one high-level operation.
///
/// # Examples
///
/// ```
/// use bbb_mem::ByteStore;
/// use bbb_sim::{AddressMap, SimConfig};
/// use bbb_workloads::OpBuilder;
///
/// let map = AddressMap::new(&SimConfig::default());
/// let mut arch = ByteStore::new();
/// let a = map.persistent_base();
///
/// // Uninstrumented (BBB/eADR): one store, no flushes.
/// let mut b = OpBuilder::new(&map, false);
/// b.store_u64(a, 7);
/// assert_eq!(b.finish().len(), 1);
///
/// // Instrumented (PMEM): store + clwb + sfence.
/// let mut b = OpBuilder::new(&map, true);
/// b.store_u64(a, 7);
/// assert_eq!(b.finish().len(), 3);
/// # let _ = arch;
/// ```
#[derive(Debug)]
pub struct OpBuilder<'a> {
    map: &'a AddressMap,
    instrument: bool,
    ops: Vec<Op>,
}

impl<'a> OpBuilder<'a> {
    /// Creates a builder. `instrument` inserts `clwb`+`sfence` after every
    /// persisting store (strict persistency in software, the PMEM way).
    #[must_use]
    pub fn new(map: &'a AddressMap, instrument: bool) -> Self {
        Self {
            map,
            instrument,
            ops: Vec::new(),
        }
    }

    /// Reads a `u64` from architectural memory and emits the load op.
    pub fn load_u64(&mut self, arch: &ByteStore, addr: Addr) -> u64 {
        self.ops.push(Op::load_u64(addr));
        arch.read_u64(addr)
    }

    /// Emits the store op (plus flush/fence when instrumenting and the
    /// target is persistent). Architectural memory is deliberately NOT
    /// written here — the simulator applies the store when it commits, so
    /// other cores' generators can never observe it early.
    pub fn store_u64(&mut self, addr: Addr, value: u64) {
        self.ops.push(Op::store_u64(addr, value));
        if self.instrument && self.map.is_persistent(addr) {
            self.ops.push(Op::Clwb { addr });
            self.ops.push(Op::Fence);
        }
    }

    /// Emits `cycles` of non-memory work.
    pub fn compute(&mut self, cycles: u32) {
        self.ops.push(Op::Compute { cycles });
    }

    /// Emits an explicit flush + fence for `addr` (epoch-style manual
    /// persistency control, independent of instrumentation).
    pub fn persist_barrier(&mut self, addr: Addr) {
        self.ops.push(Op::Clwb { addr });
        self.ops.push(Op::Fence);
    }

    /// Number of ops collected so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no op has been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finishes the operation, returning its op sequence.
    #[must_use]
    pub fn finish(self) -> Vec<Op> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_sim::SimConfig;

    fn map() -> AddressMap {
        AddressMap::new(&SimConfig::small_for_tests())
    }

    #[test]
    fn load_reads_arch_and_emits_op() {
        let m = map();
        let mut arch = ByteStore::new();
        arch.write_u64(m.persistent_base(), 0x42);
        let mut b = OpBuilder::new(&m, false);
        let v = b.load_u64(&arch, m.persistent_base());
        assert_eq!(v, 0x42);
        let ops = b.finish();
        assert_eq!(ops.len(), 1);
        assert!(ops[0].is_load());
    }

    #[test]
    fn instrumentation_only_touches_persistent_stores() {
        let m = map();
        let mut b = OpBuilder::new(&m, true);
        b.store_u64(0x100, 1); // DRAM address
        b.store_u64(m.persistent_base(), 2); // persistent
        let ops = b.finish();
        // DRAM store alone; persistent store + clwb + fence.
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[1], Op::Store { .. }));
        assert!(matches!(ops[2], Op::Clwb { .. }));
        assert!(matches!(ops[3], Op::Fence));
    }

    #[test]
    fn stores_do_not_touch_arch_memory_at_generation_time() {
        // Committed-state discipline: the simulator writes architectural
        // memory when the store commits, so generation must not.
        let m = map();
        let arch = ByteStore::new();
        let mut b = OpBuilder::new(&m, false);
        b.store_u64(m.persistent_base() + 8, 99);
        assert_eq!(arch.read_u64(m.persistent_base() + 8), 0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn compute_and_barrier_helpers() {
        let m = map();
        let mut b = OpBuilder::new(&m, false);
        assert!(b.is_empty());
        b.compute(10);
        b.persist_barrier(m.persistent_base());
        assert_eq!(b.len(), 3);
        let ops = b.finish();
        assert!(matches!(ops[0], Op::Compute { cycles: 10 }));
        assert!(matches!(ops[1], Op::Clwb { .. }));
        assert!(matches!(ops[2], Op::Fence));
    }
}

//! The `ctree` workload: a persistent crit-bit (binary radix) tree.
//!
//! Matches the paper's Table IV `ctree` row: a 1M-node tree, pre-populated
//! at setup, with random key insertions during the measured window
//! (18.9% persisting stores in the paper). A crit-bit tree stores keys in
//! leaves; each internal node tests one bit position. An insert allocates
//! one leaf (plus, after the first, one internal node) and *publishes* the
//! subtree with a single pointer store — the crash-consistency commit
//! point, so strict persistency (BBB) keeps the tree valid at any crash.
//!
//! Layout: root pointer at a reserved slot. Internal node (24 B):
//! `{ tag=1 | bit << 8, left, right }`. Leaf (16 B): `{ tag=0 | key << 8,
//! value }`. Keys are 48-bit so the tag byte never collides.

use bbb_core::Workload;
use bbb_cpu::Op;
use bbb_mem::{ByteStore, ImageReader, NvmImage};
use bbb_sim::{Addr, AddressMap, SplitMix64};

use crate::builder::OpBuilder;
use crate::palloc::Palloc;

const TAG_LEAF: u64 = 0;
const TAG_INTERNAL: u64 = 1;

/// Key space: 48-bit keys, bit 47 tested first.
const KEY_BITS: u32 = 48;

/// A persistent crit-bit tree driven as a multi-core workload.
#[derive(Debug)]
pub struct CtreeWorkload {
    root_addr: Addr,
    map: AddressMap,
    palloc: Palloc,
    rngs: Vec<SplitMix64>,
    remaining: Vec<u64>,
    initial: u64,
    instrument: bool,
    inserted: u64,
}

impl CtreeWorkload {
    /// Creates the workload.
    ///
    /// * `root_addr` — reserved root-pointer slot.
    /// * `initial` — nodes inserted functionally at setup (the paper's 1M).
    /// * `per_core_ops` — measured insertions per core.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        map: AddressMap,
        root_addr: Addr,
        palloc: Palloc,
        cores: usize,
        initial: u64,
        per_core_ops: u64,
        seed: u64,
        instrument: bool,
    ) -> Self {
        let mut master = SplitMix64::new(seed);
        Self {
            root_addr,
            map,
            palloc,
            rngs: (0..cores).map(|_| master.split()).collect(),
            remaining: vec![per_core_ops; cores],
            initial,
            instrument,
            inserted: 0,
        }
    }

    /// Total keys inserted (setup + measured).
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    fn random_key(rng: &mut SplitMix64) -> u64 {
        rng.next_below(1 << KEY_BITS)
    }

    /// Functional-only insert used during setup (no ops emitted).
    fn insert_functional(&mut self, arch: &mut ByteStore, core: usize, key: u64) -> bool {
        let Some((leaf, internal)) = self.alloc_nodes(arch, core, key) else {
            return false;
        };
        let Some(plan) = plan_insert(arch, &self.map, self.root_addr, key) else {
            return true; // duplicate key: nothing to do
        };
        match plan {
            InsertPlan::EmptyTree => arch.write_u64(self.root_addr, leaf),
            InsertPlan::Splice {
                parent_slot,
                old_child,
                bit,
                key_side_right,
            } => {
                let internal = internal.expect("non-empty tree needs an internal node");
                arch.write_u64(internal, TAG_INTERNAL | (u64::from(bit) << 8));
                let (l, r) = if key_side_right {
                    (old_child, leaf)
                } else {
                    (leaf, old_child)
                };
                arch.write_u64(internal + 8, l);
                arch.write_u64(internal + 16, r);
                arch.write_u64(parent_slot, internal);
            }
        }
        self.inserted += 1;
        true
    }

    fn alloc_nodes(
        &mut self,
        arch: &mut ByteStore,
        core: usize,
        key: u64,
    ) -> Option<(Addr, Option<Addr>)> {
        let leaf = self.palloc.alloc(core, 16)?;
        arch.write_u64(leaf, TAG_LEAF | (key << 8));
        arch.write_u64(leaf + 8, key.wrapping_mul(3)); // value
        let internal = if arch.read_u64(self.root_addr) != 0 {
            Some(self.palloc.alloc(core, 24)?)
        } else {
            None
        };
        Some((leaf, internal))
    }

    /// One measured insert as an op sequence. The leaf and internal node
    /// are written first; the final store splices the parent pointer.
    fn insert_ops(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        let key = Self::random_key(&mut self.rngs[core]);
        let leaf = self.palloc.alloc(core, 16)?;
        let mut b = OpBuilder::new(&self.map, self.instrument);

        b.store_u64(leaf, TAG_LEAF | (key << 8));
        b.store_u64(leaf + 8, key.wrapping_mul(3));

        let Some(plan) = plan_insert_with_builder(&mut b, arch, self.root_addr, key) else {
            // Duplicate key: the traversal loads still count as work, but
            // nothing was inserted (the pre-written leaf is orphaned, just
            // like a real allocator losing a node to a lost race).
            return Some(b.finish());
        };
        match plan {
            InsertPlan::EmptyTree => {
                b.store_u64(self.root_addr, leaf);
            }
            InsertPlan::Splice {
                parent_slot,
                old_child,
                bit,
                key_side_right,
            } => {
                let internal = self.palloc.alloc(core, 24)?;
                b.store_u64(internal, TAG_INTERNAL | (u64::from(bit) << 8));
                let (l, r) = if key_side_right {
                    (old_child, leaf)
                } else {
                    (leaf, old_child)
                };
                b.store_u64(internal + 8, l);
                b.store_u64(internal + 16, r);
                // Publish: the single pointer store that commits the insert.
                b.store_u64(parent_slot, internal);
            }
        }
        self.inserted += 1;
        Some(b.finish())
    }
}

/// Where an insert splices into the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InsertPlan {
    EmptyTree,
    Splice {
        /// Address of the pointer slot to overwrite (root or child slot).
        parent_slot: Addr,
        /// The subtree currently hanging off that slot.
        old_child: Addr,
        /// The differing bit the new internal node tests.
        bit: u32,
        /// True when the new key goes right (bit set).
        key_side_right: bool,
    },
}

fn leaf_key(tagged: u64) -> u64 {
    tagged >> 8
}

fn node_bit(tagged: u64) -> u32 {
    (tagged >> 8) as u32
}

fn is_leaf(tagged: u64) -> bool {
    tagged & 0xFF == TAG_LEAF
}

/// Plans an insert by reading through `read`, generic over functional
/// setup reads and op-emitting measured reads.
fn plan_insert_generic(
    mut read: impl FnMut(Addr) -> u64,
    root_addr: Addr,
    key: u64,
) -> Option<InsertPlan> {
    let root = read(root_addr);
    if root == 0 {
        return Some(InsertPlan::EmptyTree);
    }
    // Walk to the best-matching leaf.
    let mut p = root;
    loop {
        let tag = read(p);
        if is_leaf(tag) {
            let existing = leaf_key(tag);
            if existing == key {
                return None; // duplicate
            }
            let diff = existing ^ key;
            let bit = 63 - diff.leading_zeros(); // highest differing bit
            let key_side_right = key & (1 << bit) != 0;
            // Second walk: descend until a node tests a bit below `bit`
            // (or a leaf), tracking the pointer slot to splice.
            let mut slot = root_addr;
            let mut child = read(root_addr);
            loop {
                let t = read(child);
                if is_leaf(t) || node_bit(t) < bit {
                    return Some(InsertPlan::Splice {
                        parent_slot: slot,
                        old_child: child,
                        bit,
                        key_side_right,
                    });
                }
                let b = node_bit(t);
                slot = if key & (1 << b) != 0 {
                    child + 16
                } else {
                    child + 8
                };
                child = read(slot);
            }
        }
        let b = node_bit(tag);
        p = if key & (1 << b) != 0 {
            read(p + 16)
        } else {
            read(p + 8)
        };
    }
}

fn plan_insert(
    arch: &ByteStore,
    _map: &AddressMap,
    root_addr: Addr,
    key: u64,
) -> Option<InsertPlan> {
    plan_insert_generic(|a| arch.read_u64(a), root_addr, key)
}

fn plan_insert_with_builder(
    b: &mut OpBuilder<'_>,
    arch: &ByteStore,
    root_addr: Addr,
    key: u64,
) -> Option<InsertPlan> {
    plan_insert_generic(|a| b.load_u64(arch, a), root_addr, key)
}

impl Workload for CtreeWorkload {
    fn name(&self) -> &str {
        "ctree"
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        arch.write_u64(self.root_addr, 0);
        let cores = self.rngs.len();
        let mut rng = SplitMix64::new(0xC7EE_5EED);
        for i in 0..self.initial {
            let key = Self::random_key(&mut rng);
            let core = (i % cores as u64) as usize;
            if !self.insert_functional(arch, core, key) {
                break; // allocator exhausted: tree is as big as it gets
            }
        }
    }

    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        if core >= self.remaining.len() || self.remaining[core] == 0 {
            return None;
        }
        self.remaining[core] -= 1;
        self.insert_ops(core, arch)
    }
}

/// Validates a post-crash ctree image: every pointer reachable from the
/// root must lead to a well-formed internal node or tagged leaf, with bit
/// indices strictly decreasing along every path.
///
/// # Errors
///
/// Returns a description of the first malformed node found.
pub fn check_ctree_recovery(
    image: &NvmImage,
    map: &AddressMap,
    root_addr: Addr,
) -> Result<u64, String> {
    fn walk(
        image: &mut ImageReader<'_>,
        map: &AddressMap,
        p: Addr,
        max_bit: u32,
        leaves: &mut u64,
        depth: u32,
    ) -> Result<(), String> {
        if depth > 200 {
            return Err("path too deep: cycle suspected".to_owned());
        }
        if !map.is_persistent(p) || !p.is_multiple_of(8) {
            return Err(format!("malformed pointer {p:#x}"));
        }
        let tag = image.read_u64(p);
        if is_leaf(tag) {
            if tag == 0 {
                return Err(format!("pointer {p:#x} to uninitialized node"));
            }
            *leaves += 1;
            return Ok(());
        }
        if tag & 0xFF != TAG_INTERNAL {
            return Err(format!("bad tag {tag:#x} at {p:#x}"));
        }
        let bit = node_bit(tag);
        if bit >= max_bit {
            return Err(format!("bit order violated at {p:#x}"));
        }
        let left = image.read_u64(p + 8);
        walk(image, map, left, bit, leaves, depth + 1)?;
        let right = image.read_u64(p + 16);
        walk(image, map, right, bit, leaves, depth + 1)
    }

    let mut reader = image.reader();
    let root = reader.read_u64(root_addr);
    if root == 0 {
        return Ok(0);
    }
    let mut leaves = 0;
    walk(&mut reader, map, root, KEY_BITS + 1, &mut leaves, 0)?;
    Ok(leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_core::{PersistencyMode, System};
    use bbb_sim::SimConfig;

    fn build(mode: PersistencyMode, initial: u64, per_core: u64) -> (System, CtreeWorkload) {
        let sys = System::new(SimConfig::small_for_tests(), mode).unwrap();
        let map = sys.address_map().clone();
        let root = map.persistent_base();
        let palloc = Palloc::new(&map, 2, 4096);
        let w = CtreeWorkload::new(map, root, palloc, 2, initial, per_core, 42, false);
        (sys, w)
    }

    #[test]
    fn setup_builds_a_valid_tree() {
        let (mut sys, mut w) = build(PersistencyMode::Eadr, 100, 0);
        sys.prepare(&mut w);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let leaves = check_ctree_recovery(&img, &map, map.persistent_base()).expect("valid");
        assert!(leaves >= 95, "most of 100 random keys inserted: {leaves}");
    }

    #[test]
    fn measured_inserts_run_and_recover_under_bbb() {
        let (mut sys, mut w) = build(PersistencyMode::BbbMemorySide, 50, 25);
        sys.prepare(&mut w);
        let summary = sys.run(&mut w, u64::MAX);
        assert!(summary.completed);
        sys.check_invariants();
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let leaves = check_ctree_recovery(&img, &map, map.persistent_base()).expect("valid");
        assert!(leaves >= 90, "tree grew: {leaves}");
    }

    #[test]
    fn crash_mid_run_is_consistent_under_bbb() {
        let (mut sys, mut w) = build(PersistencyMode::BbbMemorySide, 30, 100);
        sys.prepare(&mut w);
        // Cut the run mid-insert (op granularity) and crash.
        sys.run(&mut w, 157);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        check_ctree_recovery(&img, &map, map.persistent_base())
            .expect("BBB: any crash point is consistent");
    }

    #[test]
    fn functional_and_simulated_trees_agree() {
        // Single-core workload: with one writer, generation order equals
        // application order, so the image count is exact. (Cross-core
        // conflicting splices can diverge by a node or two — the
        // documented op-granularity approximation.)
        let sys0 = System::new(SimConfig::small_for_tests(), PersistencyMode::Eadr).unwrap();
        let map0 = sys0.address_map().clone();
        let root0 = map0.persistent_base();
        let palloc0 = Palloc::new(&map0, 1, 4096);
        let mut w = CtreeWorkload::new(map0, root0, palloc0, 1, 20, 20, 42, false);
        let mut sys = sys0;
        sys.prepare(&mut w);
        sys.run(&mut w, u64::MAX);
        sys.drain_all_store_buffers();
        let map = sys.address_map().clone();
        let inserted = w.inserted();
        let img = sys.crash_now();
        let leaves = check_ctree_recovery(&img, &map, map.persistent_base()).expect("valid");
        assert_eq!(leaves, inserted, "eADR image matches functional count");
    }

    #[test]
    fn duplicate_keys_do_not_grow_the_tree() {
        let mut arch = ByteStore::new();
        let map = AddressMap::new(&SimConfig::small_for_tests());
        let root = map.persistent_base();
        let palloc = Palloc::new(&map, 1, 4096);
        let mut w = CtreeWorkload::new(map, root, palloc, 1, 0, 0, 1, false);
        arch.write_u64(root, 0);
        assert!(w.insert_functional(&mut arch, 0, 7));
        let count_before = w.inserted();
        assert!(w.insert_functional(&mut arch, 0, 7)); // duplicate
        assert_eq!(w.inserted(), count_before);
    }
}

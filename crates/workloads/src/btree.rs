//! A persistent B+-tree workload (the `btree` the paper's §IV-B text
//! mentions alongside rtree and hashmap).
//!
//! Crash discipline follows the unsorted-node technique of persistent
//! B-tree designs (wB+Trees, FAST&FAIR): node entries are *appended*
//! rather than shifted, and the count field publishes the append, so a
//! single 8-byte store commits each insert. Searches scan nodes linearly
//! (fanout is 8, so a scan is cheaper than keeping entries sorted would
//! be crash-safe). Splits write the new right sibling completely before a
//! single parent append publishes it.
//!
//! Layout (256 B nodes): header `{count | leaf_flag << 32}`, then 8
//! entries of `{key, payload}` — payload is a value in leaves and a child
//! pointer in internal nodes. Internal entry *k* routes keys `>= key`;
//! every internal node keeps a leftmost entry with key 0.

use bbb_core::Workload;
use bbb_cpu::Op;
use bbb_mem::{ByteStore, ImageReader, NvmImage};
use bbb_sim::{Addr, AddressMap, SplitMix64};

use crate::builder::OpBuilder;
use crate::locks::InsertLock;
use crate::palloc::Palloc;

/// Entries per node.
pub const FANOUT: usize = 8;
const NODE_BYTES: u64 = 256;
const LEAF_FLAG: u64 = 1 << 32;

fn hdr_count(h: u64) -> usize {
    (h & 0xFFFF_FFFF) as usize
}

fn hdr_is_leaf(h: u64) -> bool {
    h & LEAF_FLAG != 0
}

fn entry_addr(node: Addr, i: usize) -> Addr {
    node + 8 + i as u64 * 16
}

/// A persistent B+-tree driven as a multi-core workload.
#[derive(Debug)]
pub struct BtreeWorkload {
    root_slot: Addr,
    map: AddressMap,
    palloc: Palloc,
    rngs: Vec<SplitMix64>,
    remaining: Vec<u64>,
    initial: u64,
    instrument: bool,
    inserted: u64,
    lock: InsertLock,
}

impl BtreeWorkload {
    /// Creates the workload; `root_slot` is a reserved root-pointer slot.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        map: AddressMap,
        root_slot: Addr,
        palloc: Palloc,
        cores: usize,
        initial: u64,
        per_core_ops: u64,
        seed: u64,
        instrument: bool,
    ) -> Self {
        let mut master = SplitMix64::new(seed);
        Self {
            root_slot,
            map,
            palloc,
            rngs: (0..cores).map(|_| master.split()).collect(),
            remaining: vec![per_core_ops; cores],
            initial,
            instrument,
            inserted: 0,
            lock: InsertLock::new(),
        }
    }

    /// Keys inserted (setup + measured).
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    fn random_key(rng: &mut SplitMix64) -> u64 {
        rng.next_u64() | 1 // nonzero: 0 is the internal leftmost sentinel
    }

    /// One insert; `b = None` runs functionally (setup), otherwise emits
    /// ops. Returns false when the allocator is exhausted.
    fn insert(
        &mut self,
        arch: &mut ByteStore,
        core: usize,
        key: u64,
        mut b: Option<&mut OpBuilder<'_>>,
    ) -> bool {
        macro_rules! rd {
            ($addr:expr) => {
                match b.as_deref_mut() {
                    Some(bb) => bb.load_u64(arch, $addr),
                    None => arch.read_u64($addr),
                }
            };
        }
        macro_rules! wr {
            ($addr:expr, $v:expr) => {
                match b.as_deref_mut() {
                    Some(bb) => bb.store_u64($addr, $v),
                    None => arch.write_u64($addr, $v),
                }
            };
        }

        let root = rd!(self.root_slot);
        if root == 0 {
            let Some(node) = self.palloc.alloc(core, NODE_BYTES) else {
                return false;
            };
            wr!(entry_addr(node, 0), key);
            wr!(entry_addr(node, 0) + 8, key.wrapping_mul(5));
            wr!(node, LEAF_FLAG | 1);
            wr!(self.root_slot, node); // publish
            self.inserted += 1;
            return true;
        }

        // Descend: at each internal node pick the entry with the largest
        // separator key <= key (entries are unsorted; linear scan).
        let mut path: Vec<(Addr, usize)> = Vec::with_capacity(8);
        let mut p = root;
        loop {
            let h = rd!(p);
            if hdr_is_leaf(h) {
                break;
            }
            let count = hdr_count(h);
            debug_assert!(count > 0);
            let mut best = 0usize;
            let mut best_key = 0u64;
            for i in 0..count {
                let k = rd!(entry_addr(p, i));
                if k <= key && k >= best_key {
                    best_key = k;
                    best = i;
                }
            }
            path.push((p, best));
            p = rd!(entry_addr(p, best) + 8);
        }

        // Append into the leaf if it has room: a single count store
        // publishes the insert.
        let h = rd!(p);
        let count = hdr_count(h);
        if count < FANOUT {
            wr!(entry_addr(p, count), key);
            wr!(entry_addr(p, count) + 8, key.wrapping_mul(5));
            wr!(p, h + 1); // publish
            self.inserted += 1;
            return true;
        }

        // Leaf full: split around the median, then propagate.
        let mut entries: Vec<(u64, u64)> = (0..count)
            .map(|i| (rd!(entry_addr(p, i)), rd!(entry_addr(p, i) + 8)))
            .collect();
        entries.push((key, key.wrapping_mul(5)));
        entries.sort_unstable_by_key(|&(k, _)| k);
        let mid = entries.len() / 2;
        let right_entries = entries.split_off(mid);
        let sep = right_entries[0].0;

        let Some(mut right) = self.palloc.alloc(core, NODE_BYTES) else {
            return false;
        };
        for (i, (k, v)) in right_entries.iter().enumerate() {
            wr!(entry_addr(right, i), *k);
            wr!(entry_addr(right, i) + 8, *v);
        }
        wr!(right, LEAF_FLAG | right_entries.len() as u64);
        for (i, (k, v)) in entries.iter().enumerate() {
            wr!(entry_addr(p, i), *k);
            wr!(entry_addr(p, i) + 8, *v);
        }
        wr!(p, LEAF_FLAG | entries.len() as u64);

        // Propagate (sep, right) up the saved path.
        let mut sep = sep;
        let mut split_left = p;
        loop {
            let Some((parent, _)) = path.pop() else {
                // Root split: new root with sentinel-left + sep-right.
                let Some(newroot) = self.palloc.alloc(core, NODE_BYTES) else {
                    return false;
                };
                wr!(entry_addr(newroot, 0), 0); // sentinel routes keys < sep
                wr!(entry_addr(newroot, 0) + 8, split_left);
                wr!(entry_addr(newroot, 1), sep);
                wr!(entry_addr(newroot, 1) + 8, right);
                wr!(newroot, 2);
                wr!(self.root_slot, newroot); // publish
                break;
            };
            let ph = rd!(parent);
            let pcount = hdr_count(ph);
            if pcount < FANOUT {
                wr!(entry_addr(parent, pcount), sep);
                wr!(entry_addr(parent, pcount) + 8, right);
                wr!(parent, ph + 1); // publish
                break;
            }
            // Parent full: split it the same way.
            let mut pentries: Vec<(u64, u64)> = (0..pcount)
                .map(|i| (rd!(entry_addr(parent, i)), rd!(entry_addr(parent, i) + 8)))
                .collect();
            pentries.push((sep, right));
            pentries.sort_unstable_by_key(|&(k, _)| k);
            let mid = pentries.len() / 2;
            let pright_entries = pentries.split_off(mid);
            let psep = pright_entries[0].0;
            let Some(pright) = self.palloc.alloc(core, NODE_BYTES) else {
                return false;
            };
            for (i, (k, v)) in pright_entries.iter().enumerate() {
                wr!(entry_addr(pright, i), *k);
                wr!(entry_addr(pright, i) + 8, *v);
            }
            wr!(pright, pright_entries.len() as u64);
            for (i, (k, v)) in pentries.iter().enumerate() {
                wr!(entry_addr(parent, i), *k);
                wr!(entry_addr(parent, i) + 8, *v);
            }
            wr!(parent, pentries.len() as u64);
            sep = psep;
            split_left = parent;
            right = pright;
        }
        self.inserted += 1;
        true
    }
}

impl Workload for BtreeWorkload {
    fn name(&self) -> &str {
        "btree"
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        arch.write_u64(self.root_slot, 0);
        let cores = self.rngs.len();
        let mut rng = SplitMix64::new(0xB7EE_0001);
        for i in 0..self.initial {
            let key = Self::random_key(&mut rng);
            let core = (i % cores as u64) as usize;
            if !self.insert(arch, core, key, None) {
                break;
            }
        }
    }

    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        self.lock.release_if_held(core);
        if core >= self.remaining.len() || self.remaining[core] == 0 {
            return None;
        }
        if !self.lock.try_acquire(core) {
            // Unsorted in-place appends race (two cores would claim the
            // same slot), so inserts are lock-based: spin until the
            // holder's batch commits.
            return Some(InsertLock::spin_batch());
        }
        self.remaining[core] -= 1;
        let key = Self::random_key(&mut self.rngs[core]);
        let map = self.map.clone();
        let mut b = OpBuilder::new(&map, self.instrument);
        if !self.insert(arch, core, key, Some(&mut b)) {
            self.lock.release();
            return None;
        }
        Some(b.finish())
    }
}

/// Validates a post-crash B+-tree image: header tags and counts
/// well-formed, child pointers aligned and in-heap, leaf values matching
/// their keys' encoding. Returns reachable leaf entries.
///
/// # Errors
///
/// Returns a description of the first malformed node found.
pub fn check_btree_recovery(
    image: &NvmImage,
    map: &AddressMap,
    root_slot: Addr,
) -> Result<u64, String> {
    fn walk(
        image: &mut ImageReader<'_>,
        map: &AddressMap,
        node: Addr,
        depth: u32,
        keys: &mut u64,
    ) -> Result<(), String> {
        if depth > 64 {
            return Err("tree too deep: cycle suspected".into());
        }
        if !map.is_persistent(node) || !node.is_multiple_of(8) {
            return Err(format!("malformed node pointer {node:#x}"));
        }
        let h = image.read_u64(node);
        let count = hdr_count(h);
        if count == 0 || count > FANOUT {
            return Err(format!("bad count {count} at {node:#x}"));
        }
        for i in 0..count {
            let k = image.read_u64(entry_addr(node, i));
            let payload = image.read_u64(entry_addr(node, i) + 8);
            if hdr_is_leaf(h) {
                if payload != k.wrapping_mul(5) {
                    return Err(format!("torn leaf entry at {node:#x} slot {i}"));
                }
                *keys += 1;
            } else {
                walk(image, map, payload, depth + 1, keys)?;
            }
        }
        Ok(())
    }

    let mut reader = image.reader();
    let root = reader.read_u64(root_slot);
    if root == 0 {
        return Ok(0);
    }
    let mut keys = 0;
    walk(&mut reader, map, root, 0, &mut keys)?;
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_core::{PersistencyMode, System};
    use bbb_sim::SimConfig;

    fn build(mode: PersistencyMode, initial: u64, per_core: u64) -> (System, BtreeWorkload) {
        let sys = System::new(SimConfig::small_for_tests(), mode).unwrap();
        let map = sys.address_map().clone();
        let root = map.persistent_base();
        let palloc = Palloc::new(&map, 2, 4096);
        let w = BtreeWorkload::new(map, root, palloc, 2, initial, per_core, 11, false);
        (sys, w)
    }

    #[test]
    fn setup_builds_valid_tree_with_splits() {
        let (mut sys, mut w) = build(PersistencyMode::Eadr, 300, 0);
        sys.prepare(&mut w);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let n = check_btree_recovery(&img, &map, map.persistent_base()).expect("valid");
        assert_eq!(n, 300, "every setup key reachable");
        assert_eq!(w.inserted(), 300);
    }

    #[test]
    fn search_path_finds_inserted_keys() {
        // Indirect check via the recovery count across several sizes that
        // force 2- and 3-level trees.
        for initial in [5u64, 50, 500] {
            let (mut sys, mut w) = build(PersistencyMode::Eadr, initial, 0);
            sys.prepare(&mut w);
            let map = sys.address_map().clone();
            let img = sys.crash_now();
            let n = check_btree_recovery(&img, &map, map.persistent_base()).unwrap();
            assert_eq!(n, initial);
        }
    }

    #[test]
    fn bbb_run_is_crash_consistent_mid_insert() {
        let (mut sys, mut w) = build(PersistencyMode::BbbMemorySide, 100, 200);
        sys.prepare(&mut w);
        sys.run(&mut w, 731); // cut mid-insert
        sys.check_invariants();
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let n = check_btree_recovery(&img, &map, map.persistent_base())
            .expect("BBB image consistent at any cycle");
        assert!(n >= 100, "setup survives: {n}");
    }

    #[test]
    fn eadr_full_run_matches_functional_count() {
        // Single-core workload keeps the comparison exact.
        let sys0 = System::new(SimConfig::small_for_tests(), PersistencyMode::Eadr).unwrap();
        let map0 = sys0.address_map().clone();
        let root0 = map0.persistent_base();
        let palloc0 = Palloc::new(&map0, 1, 4096);
        let mut w = BtreeWorkload::new(map0, root0, palloc0, 1, 40, 40, 5, false);
        let mut sys = sys0;
        sys.prepare(&mut w);
        sys.run(&mut w, u64::MAX);
        sys.drain_all_store_buffers();
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let n = check_btree_recovery(&img, &map, map.persistent_base()).unwrap();
        assert_eq!(n, w.inserted());
    }

    #[test]
    fn checker_rejects_torn_leaf() {
        let (mut sys, _) = build(PersistencyMode::BbbMemorySide, 0, 0);
        let map = sys.address_map().clone();
        let root_slot = map.persistent_base();
        let node = root_slot + 0x1000;
        sys.preload_u64(root_slot, node);
        sys.preload_u64(node, LEAF_FLAG | 1);
        sys.preload_u64(entry_addr(node, 0), 9);
        sys.preload_u64(entry_addr(node, 0) + 8, 1); // != 9*5
        let img = sys.crash_now();
        let err = check_btree_recovery(&img, &map, root_slot).unwrap_err();
        assert!(err.contains("torn leaf"), "{err}");
    }
}

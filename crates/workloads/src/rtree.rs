//! The `rtree` workload: a persistent spatial R-tree.
//!
//! Matches the paper's Table IV `rtree` row: a 1M-node tree, pre-populated
//! at setup, with random rectangle insertions during the measured window
//! (15.5% persisting stores in the paper). Inserts descend by
//! least-enlargement, append into a leaf, and split full nodes by
//! partitioning entries around the midpoint of the node's bounding box.
//!
//! Crash discipline: a fresh node is fully written before the single
//! pointer/count store that publishes it, so strict persistency keeps the
//! tree structurally valid at every crash point. (Bounding boxes on the
//! ancestor path are updated after the publish; a crash between publish
//! and box-tighten leaves boxes conservative-but-valid, which the checker
//! accepts — the classic relaxed-invariant trick real persistent R-trees
//! use.)
//!
//! Node layout (8 entries/node, 8 + 8*24 = 200 B, rounded to 256 B):
//! `{ header: count | (leaf_flag << 32), entries[8]: { min: 2×u16 packed,
//! max: 2×u16 packed (one u64), child_or_value: u64, pad: u64 } }`.
//! Coordinates are u16 grid points packed into one u64 per entry.

use bbb_core::Workload;
use bbb_cpu::Op;
use bbb_mem::{ByteStore, ImageReader, NvmImage};
use bbb_sim::{Addr, AddressMap, SplitMix64};

use crate::builder::OpBuilder;
use crate::locks::InsertLock;
use crate::palloc::Palloc;

/// Entries per R-tree node.
pub const FANOUT: usize = 8;
const NODE_BYTES: u64 = 256;
const ENTRY_BYTES: u64 = 24;

/// A packed axis-aligned rectangle on a u16 grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Min x/y, max x/y.
    pub x0: u16,
    /// Min y.
    pub y0: u16,
    /// Max x (inclusive).
    pub x1: u16,
    /// Max y (inclusive).
    pub y1: u16,
}

impl Rect {
    /// Packs into one u64 (x0 | y0<<16 | x1<<32 | y1<<48).
    #[must_use]
    pub fn pack(self) -> u64 {
        u64::from(self.x0)
            | (u64::from(self.y0) << 16)
            | (u64::from(self.x1) << 32)
            | (u64::from(self.y1) << 48)
    }

    /// Unpacks from [`Rect::pack`]'s encoding.
    #[must_use]
    pub fn unpack(v: u64) -> Self {
        Self {
            x0: v as u16,
            y0: (v >> 16) as u16,
            x1: (v >> 32) as u16,
            y1: (v >> 48) as u16,
        }
    }

    /// True when the rectangle is well-formed (min ≤ max).
    #[must_use]
    pub fn valid(self) -> bool {
        self.x0 <= self.x1 && self.y0 <= self.y1
    }

    /// The smallest rectangle containing both.
    #[must_use]
    pub fn union(self, o: Rect) -> Rect {
        Rect {
            x0: self.x0.min(o.x0),
            y0: self.y0.min(o.y0),
            x1: self.x1.max(o.x1),
            y1: self.y1.max(o.y1),
        }
    }

    /// True when `o` fits entirely inside `self`.
    #[must_use]
    pub fn contains(self, o: Rect) -> bool {
        self.x0 <= o.x0 && self.y0 <= o.y0 && self.x1 >= o.x1 && self.y1 >= o.y1
    }

    fn area(self) -> u64 {
        (u64::from(self.x1) - u64::from(self.x0) + 1)
            * (u64::from(self.y1) - u64::from(self.y0) + 1)
    }

    fn enlargement(self, o: Rect) -> u64 {
        self.union(o).area() - self.area()
    }

    fn center(self) -> (u32, u32) {
        (
            (u32::from(self.x0) + u32::from(self.x1)) / 2,
            (u32::from(self.y0) + u32::from(self.y1)) / 2,
        )
    }
}

const LEAF_FLAG: u64 = 1 << 32;

fn hdr_count(h: u64) -> usize {
    (h & 0xFFFF_FFFF) as usize
}

fn hdr_is_leaf(h: u64) -> bool {
    h & LEAF_FLAG != 0
}

fn entry_addr(node: Addr, i: usize) -> Addr {
    node + 8 + i as u64 * ENTRY_BYTES
}

/// A persistent R-tree driven as a multi-core workload.
#[derive(Debug)]
pub struct RtreeWorkload {
    root_slot: Addr,
    map: AddressMap,
    palloc: Palloc,
    rngs: Vec<SplitMix64>,
    remaining: Vec<u64>,
    initial: u64,
    instrument: bool,
    inserted: u64,
    lock: InsertLock,
}

impl RtreeWorkload {
    /// Creates the workload; `root_slot` is a reserved root-pointer slot.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        map: AddressMap,
        root_slot: Addr,
        palloc: Palloc,
        cores: usize,
        initial: u64,
        per_core_ops: u64,
        seed: u64,
        instrument: bool,
    ) -> Self {
        let mut master = SplitMix64::new(seed);
        Self {
            root_slot,
            map,
            palloc,
            rngs: (0..cores).map(|_| master.split()).collect(),
            remaining: vec![per_core_ops; cores],
            initial,
            instrument,
            inserted: 0,
            lock: InsertLock::new(),
        }
    }

    /// Rectangles inserted (setup + measured).
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    fn random_rect(rng: &mut SplitMix64) -> Rect {
        let x0 = rng.next_below(60_000) as u16;
        let y0 = rng.next_below(60_000) as u16;
        let w = rng.next_below(256) as u16;
        let h = rng.next_below(256) as u16;
        Rect {
            x0,
            y0,
            x1: x0 + w,
            y1: y0 + h,
        }
    }

    /// One insert, generic over functional (`b = None`) and op-emitting
    /// execution. Splits propagate recursively up the saved path, so the
    /// tree stays balanced (depth O(log_FANOUT n)). A fresh sibling is
    /// fully written before the parent store that publishes it; the
    /// in-place shrink of the split node is tolerated by the checker
    /// because every transiently visible entry is still a valid old entry
    /// (the relaxed invariant real persistent R-trees rely on).
    ///
    /// Returns false when the allocator is exhausted.
    fn insert(
        &mut self,
        arch: &mut ByteStore,
        core: usize,
        rect: Rect,
        mut b: Option<&mut OpBuilder<'_>>,
    ) -> bool {
        // Memory access helpers working through the builder when present.
        macro_rules! rd {
            ($addr:expr) => {
                match b.as_deref_mut() {
                    Some(bb) => bb.load_u64(arch, $addr),
                    None => arch.read_u64($addr),
                }
            };
        }
        macro_rules! wr {
            ($addr:expr, $v:expr) => {
                match b.as_deref_mut() {
                    Some(bb) => bb.store_u64($addr, $v),
                    None => arch.write_u64($addr, $v),
                }
            };
        }
        /// Partitions `entries` (boxes + payloads) for a node split:
        /// center against the bounding-box midpoint along the wider axis,
        /// with a forced half/half cut when degenerate.
        type Entries = Vec<(Rect, u64)>;
        fn partition(mut entries: Entries) -> (Entries, Entries) {
            let bbox = entries[1..]
                .iter()
                .fold(entries[0].0, |a, (r, _)| a.union(*r));
            let (cx, cy) = bbox.center();
            let wide_x = u32::from(bbox.x1 - bbox.x0) >= u32::from(bbox.y1 - bbox.y0);
            let (mut keep, mut moved): (Vec<_>, Vec<_>) = entries.drain(..).partition(|(r, _)| {
                let (ex, ey) = r.center();
                if wide_x {
                    ex <= cx
                } else {
                    ey <= cy
                }
            });
            if keep.is_empty() || moved.is_empty() {
                let mut all = std::mem::take(&mut keep);
                all.append(&mut moved);
                moved = all.split_off(all.len() / 2);
                keep = all;
            }
            (keep, moved)
        }
        fn bbox_of(entries: &[(Rect, u64)]) -> Rect {
            entries[1..]
                .iter()
                .fold(entries[0].0, |a, (r, _)| a.union(*r))
        }

        let root = rd!(self.root_slot);
        if root == 0 {
            let Some(node) = self.palloc.alloc(core, NODE_BYTES) else {
                return false;
            };
            wr!(entry_addr(node, 0), rect.pack());
            wr!(entry_addr(node, 0) + 8, self.inserted + 1); // value
            wr!(node, LEAF_FLAG | 1); // header: leaf, count 1
            wr!(self.root_slot, node); // publish
            self.inserted += 1;
            return true;
        }

        // Descend to a leaf by least enlargement, saving (node, entry idx).
        let mut path: Vec<(Addr, usize)> = Vec::with_capacity(8);
        let mut p = root;
        loop {
            let h = rd!(p);
            if hdr_is_leaf(h) {
                break;
            }
            let count = hdr_count(h);
            debug_assert!(count > 0, "internal node cannot be empty");
            let mut best = 0usize;
            let mut best_cost = u64::MAX;
            for i in 0..count {
                let r = Rect::unpack(rd!(entry_addr(p, i)));
                let cost = r.enlargement(rect);
                if cost < best_cost {
                    best_cost = cost;
                    best = i;
                }
            }
            // Tighten the chosen entry's box on the way down (post-publish
            // box maintenance; conservative at a crash).
            let cur = Rect::unpack(rd!(entry_addr(p, best)));
            if !cur.contains(rect) {
                wr!(entry_addr(p, best), cur.union(rect).pack());
            }
            path.push((p, best));
            p = rd!(entry_addr(p, best) + 8);
        }

        // Fast path: leaf has room.
        let h = rd!(p);
        let count = hdr_count(h);
        if count < FANOUT {
            wr!(entry_addr(p, count), rect.pack());
            wr!(entry_addr(p, count) + 8, self.inserted + 1);
            wr!(p, h + 1); // publish via count bump
            self.inserted += 1;
            return true;
        }

        // Leaf full: split, then propagate the new sibling up the path.
        let mut entries: Vec<(Rect, u64)> = (0..count)
            .map(|i| {
                (
                    Rect::unpack(rd!(entry_addr(p, i))),
                    rd!(entry_addr(p, i) + 8),
                )
            })
            .collect();
        entries.push((rect, self.inserted + 1));
        let (keep, moved) = partition(entries);
        let Some(mut sibling) = self.palloc.alloc(core, NODE_BYTES) else {
            return false;
        };
        for (i, (r, v)) in moved.iter().enumerate() {
            wr!(entry_addr(sibling, i), r.pack());
            wr!(entry_addr(sibling, i) + 8, *v);
        }
        wr!(sibling, LEAF_FLAG | moved.len() as u64);
        for (i, (r, v)) in keep.iter().enumerate() {
            wr!(entry_addr(p, i), r.pack());
            wr!(entry_addr(p, i) + 8, *v);
        }
        wr!(p, LEAF_FLAG | keep.len() as u64);
        let mut split_node = p;
        let mut keep_box = bbox_of(&keep);
        let mut moved_box = bbox_of(&moved);

        // Walk back up, inserting the sibling; split parents as needed.
        loop {
            let Some((parent, idx)) = path.pop() else {
                // The split node was the root: grow a new root.
                let Some(newroot) = self.palloc.alloc(core, NODE_BYTES) else {
                    return false;
                };
                wr!(entry_addr(newroot, 0), keep_box.pack());
                wr!(entry_addr(newroot, 0) + 8, split_node);
                wr!(entry_addr(newroot, 1), moved_box.pack());
                wr!(entry_addr(newroot, 1) + 8, sibling);
                wr!(newroot, 2); // internal, count 2
                wr!(self.root_slot, newroot); // publish
                break;
            };
            // The split child kept the `keep` half: tighten its box.
            wr!(entry_addr(parent, idx), keep_box.pack());
            let ph = rd!(parent);
            let pcount = hdr_count(ph);
            if pcount < FANOUT {
                wr!(entry_addr(parent, pcount), moved_box.pack());
                wr!(entry_addr(parent, pcount) + 8, sibling);
                wr!(parent, ph + 1); // publish
                break;
            }
            // Parent full too: split it and continue upward.
            let mut pentries: Vec<(Rect, u64)> = (0..pcount)
                .map(|i| {
                    (
                        Rect::unpack(rd!(entry_addr(parent, i))),
                        rd!(entry_addr(parent, i) + 8),
                    )
                })
                .collect();
            pentries.push((moved_box, sibling));
            let (pkeep, pmoved) = partition(pentries);
            let Some(new_internal) = self.palloc.alloc(core, NODE_BYTES) else {
                return false;
            };
            for (i, (r, v)) in pmoved.iter().enumerate() {
                wr!(entry_addr(new_internal, i), r.pack());
                wr!(entry_addr(new_internal, i) + 8, *v);
            }
            wr!(new_internal, pmoved.len() as u64); // internal
            for (i, (r, v)) in pkeep.iter().enumerate() {
                wr!(entry_addr(parent, i), r.pack());
                wr!(entry_addr(parent, i) + 8, *v);
            }
            wr!(parent, pkeep.len() as u64);
            split_node = parent;
            sibling = new_internal;
            keep_box = bbox_of(&pkeep);
            moved_box = bbox_of(&pmoved);
        }
        self.inserted += 1;
        true
    }
}

impl Workload for RtreeWorkload {
    fn name(&self) -> &str {
        "rtree"
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        arch.write_u64(self.root_slot, 0);
        let cores = self.rngs.len();
        let mut rng = SplitMix64::new(0x47EE_0001);
        for i in 0..self.initial {
            let rect = Self::random_rect(&mut rng);
            let core = (i % cores as u64) as usize;
            if !self.insert(arch, core, rect, None) {
                break;
            }
        }
    }

    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        self.lock.release_if_held(core);
        if core >= self.remaining.len() || self.remaining[core] == 0 {
            return None;
        }
        if !self.lock.try_acquire(core) {
            // In-place appends and box tightening race across cores, so
            // inserts are lock-based: spin until the holder's batch
            // commits.
            return Some(InsertLock::spin_batch());
        }
        self.remaining[core] -= 1;
        let rect = Self::random_rect(&mut self.rngs[core]);
        let map = self.map.clone();
        let mut b = OpBuilder::new(&map, self.instrument);
        if !self.insert(arch, core, rect, Some(&mut b)) {
            self.lock.release();
            return None; // allocator exhausted: treat as end of stream
        }
        Some(b.finish())
    }
}

/// Validates a post-crash R-tree image: headers well-formed, counts within
/// fanout, child pointers aligned and in-heap, rectangles valid. Returns
/// the number of reachable leaf entries.
///
/// # Errors
///
/// Returns a description of the first malformed node found.
pub fn check_rtree_recovery(
    image: &NvmImage,
    map: &AddressMap,
    root_slot: Addr,
) -> Result<u64, String> {
    fn walk(
        image: &mut ImageReader<'_>,
        map: &AddressMap,
        node: Addr,
        depth: u32,
        leaves: &mut u64,
    ) -> Result<(), String> {
        if depth > 64 {
            return Err("tree too deep: cycle suspected".into());
        }
        if !map.is_persistent(node) || !node.is_multiple_of(8) {
            return Err(format!("malformed node pointer {node:#x}"));
        }
        let h = image.read_u64(node);
        let count = hdr_count(h);
        if count == 0 || count > FANOUT {
            return Err(format!("bad count {count} at {node:#x}"));
        }
        for i in 0..count {
            let r = Rect::unpack(image.read_u64(entry_addr(node, i)));
            if !r.valid() {
                return Err(format!("invalid rect at {node:#x} entry {i}"));
            }
            if hdr_is_leaf(h) {
                let v = image.read_u64(entry_addr(node, i) + 8);
                if v == 0 {
                    return Err(format!("zero value at leaf {node:#x} entry {i}"));
                }
                *leaves += 1;
            } else {
                let child = image.read_u64(entry_addr(node, i) + 8);
                walk(image, map, child, depth + 1, leaves)?;
            }
        }
        Ok(())
    }

    let mut reader = image.reader();
    let root = reader.read_u64(root_slot);
    if root == 0 {
        return Ok(0);
    }
    let mut leaves = 0;
    walk(&mut reader, map, root, 0, &mut leaves)?;
    Ok(leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_core::{PersistencyMode, System};
    use bbb_sim::SimConfig;

    fn build(mode: PersistencyMode, initial: u64, per_core: u64) -> (System, RtreeWorkload) {
        let sys = System::new(SimConfig::small_for_tests(), mode).unwrap();
        let map = sys.address_map().clone();
        let root = map.persistent_base();
        let palloc = Palloc::new(&map, 2, 4096);
        let w = RtreeWorkload::new(map, root, palloc, 2, initial, per_core, 7, false);
        (sys, w)
    }

    #[test]
    fn rect_pack_round_trip() {
        let r = Rect {
            x0: 1,
            y0: 2,
            x1: 300,
            y1: 40_000,
        };
        assert_eq!(Rect::unpack(r.pack()), r);
        assert!(r.valid());
        assert!(!Rect {
            x0: 5,
            y0: 0,
            x1: 4,
            y1: 0
        }
        .valid());
    }

    #[test]
    fn rect_union_and_enlargement() {
        let a = Rect {
            x0: 0,
            y0: 0,
            x1: 9,
            y1: 9,
        };
        let b = Rect {
            x0: 5,
            y0: 5,
            x1: 14,
            y1: 14,
        };
        let u = a.union(b);
        assert_eq!((u.x0, u.y0, u.x1, u.y1), (0, 0, 14, 14));
        assert!(u.contains(a) && u.contains(b));
        assert_eq!(a.enlargement(a), 0);
        assert!(a.enlargement(b) > 0);
    }

    #[test]
    fn setup_builds_valid_tree_with_splits() {
        let (mut sys, mut w) = build(PersistencyMode::Eadr, 200, 0);
        sys.prepare(&mut w);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let n = check_rtree_recovery(&img, &map, map.persistent_base()).expect("valid");
        assert_eq!(n, 200, "every functional insert reachable");
        assert_eq!(w.inserted(), 200);
    }

    #[test]
    fn bbb_run_is_crash_consistent() {
        let (mut sys, mut w) = build(PersistencyMode::BbbMemorySide, 64, 100);
        sys.prepare(&mut w);
        sys.run(&mut w, 900); // cut mid-insert
        sys.check_invariants();
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let n = check_rtree_recovery(&img, &map, map.persistent_base())
            .expect("BBB image consistent at any cycle");
        assert!(n >= 64, "setup data plus some inserts: {n}");
    }

    #[test]
    fn eadr_full_run_matches_functional_count() {
        // Single-core workload: one writer keeps generation order equal to
        // application order, so the image count is exact (cross-core
        // conflicting box updates can diverge slightly — the documented
        // op-granularity approximation).
        let sys0 = System::new(SimConfig::small_for_tests(), PersistencyMode::Eadr).unwrap();
        let map0 = sys0.address_map().clone();
        let root0 = map0.persistent_base();
        let palloc0 = Palloc::new(&map0, 1, 4096);
        let mut w = RtreeWorkload::new(map0, root0, palloc0, 1, 50, 60, 7, false);
        let mut sys = sys0;
        sys.prepare(&mut w);
        let summary = sys.run(&mut w, u64::MAX);
        assert!(summary.completed);
        sys.drain_all_store_buffers();
        let map = sys.address_map().clone();
        let inserted = w.inserted();
        let img = sys.crash_now();
        let n = check_rtree_recovery(&img, &map, map.persistent_base()).unwrap();
        assert_eq!(n, inserted);
    }
}

//! The persistent linked list from the paper's motivation (Fig. 2/3).
//!
//! `AppendNode` creates a node, points it at the current head, and then
//! updates the head pointer. If the head update persists before the node
//! itself, a crash loses the whole list — the exact hazard the paper opens
//! with. Under BBB the unmodified Fig. 2 code (no flushes) is crash
//! consistent; under the PMEM baseline it needs the Fig. 3 instrumentation
//! (clwb + sfence after the node init and after the head update).
//!
//! Memory layout: `head` pointer at a fixed root address; each node is
//! 16 bytes `{ value: u64, next: u64 }`. Node values are tagged with a
//! magic pattern so the recovery checker can tell an initialized node from
//! zero-fill garbage.

use bbb_cpu::Op;
use bbb_mem::{ByteStore, NvmImage};
use bbb_sim::{Addr, AddressMap};

use crate::builder::OpBuilder;
use crate::palloc::Palloc;

/// High bits tagging every legitimate node value.
pub const VALUE_MAGIC: u64 = 0xB1B0_0000_0000_0000;

/// Result of walking a post-crash list image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListRecovery {
    /// Nodes reachable from the head.
    pub reachable_nodes: u64,
}

/// What went wrong when a post-crash list image is inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListCorruption {
    /// The head (or a `next` pointer) references a node whose value lacks
    /// the magic tag — the Fig. 2 hazard: pointer persisted, node didn't.
    DanglingPointer {
        /// The corrupt node's address.
        node: Addr,
    },
    /// A cycle or an out-of-heap pointer was encountered.
    MalformedPointer {
        /// The offending pointer value.
        pointer: Addr,
    },
}

impl std::fmt::Display for ListCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListCorruption::DanglingPointer { node } => {
                write!(f, "dangling pointer to uninitialized node {node:#x}")
            }
            ListCorruption::MalformedPointer { pointer } => {
                write!(f, "malformed pointer {pointer:#x}")
            }
        }
    }
}

impl std::error::Error for ListCorruption {}

/// A persistent singly-linked list driven through the simulator.
#[derive(Debug)]
pub struct LinkedList {
    head_addr: Addr,
    appended: u64,
}

impl LinkedList {
    /// Node payload size in bytes.
    pub const NODE_BYTES: u64 = 16;

    /// Creates a list whose head pointer lives at `head_addr` (must be a
    /// reserved root slot in the persistent heap).
    #[must_use]
    pub fn new(head_addr: Addr) -> Self {
        Self {
            head_addr,
            appended: 0,
        }
    }

    /// The head-pointer root address.
    #[must_use]
    pub fn head_addr(&self) -> Addr {
        self.head_addr
    }

    /// Nodes appended so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.appended
    }

    /// True when nothing has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.appended == 0
    }

    /// Builds the op sequence of one `AppendNode` (paper Fig. 2: no
    /// flushes; pass `instrument = true` for the Fig. 3 version).
    ///
    /// Returns `None` if the allocator is exhausted.
    pub fn append_ops(
        &mut self,
        map: &AddressMap,
        arch: &mut ByteStore,
        palloc: &mut Palloc,
        core: usize,
        instrument: bool,
    ) -> Option<Vec<Op>> {
        let node = palloc.alloc(core, Self::NODE_BYTES)?;
        let mut b = OpBuilder::new(map, instrument);
        // new_node->value = ...
        b.store_u64(node, VALUE_MAGIC | self.appended);
        // new_node->next = head
        let head = b.load_u64(arch, self.head_addr);
        b.store_u64(node + 8, head);
        // head = new_node  (the publish: last store of the operation)
        b.store_u64(self.head_addr, node);
        self.appended += 1;
        Some(b.finish())
    }

    /// Re-opens a list from a post-crash image: validates it, counts the
    /// surviving nodes, and returns a handle (plus the highest node
    /// address, the allocator's recovery floor) ready to continue
    /// appending.
    ///
    /// # Errors
    ///
    /// Propagates any corruption [`LinkedList::check_recovery`] finds.
    pub fn recover(
        image: &NvmImage,
        map: &AddressMap,
        head_addr: Addr,
    ) -> Result<(Self, Addr), ListCorruption> {
        let probe = Self {
            head_addr,
            appended: u64::MAX, // no upper bound while counting
        };
        let r = probe.check_recovery(image, map)?;
        // Find the high-water mark for allocator resumption.
        let mut image = image.reader();
        let mut hw = head_addr + 8;
        let mut p = image.read_u64(head_addr);
        while p != 0 {
            hw = hw.max(p + Self::NODE_BYTES);
            p = image.read_u64(p + 8);
        }
        Ok((
            Self {
                head_addr,
                appended: r.reachable_nodes,
            },
            hw,
        ))
    }

    /// Walks the list in a post-crash image, validating every pointer.
    ///
    /// # Errors
    ///
    /// Returns the corruption found, if any — which is the expected outcome
    /// for the uninstrumented PMEM run and must never happen under
    /// BBB/eADR.
    pub fn check_recovery(
        &self,
        image: &NvmImage,
        map: &AddressMap,
    ) -> Result<ListRecovery, ListCorruption> {
        let mut image = image.reader();
        let mut seen = 0u64;
        let mut p = image.read_u64(self.head_addr);
        while p != 0 {
            if !map.is_persistent(p) || !p.is_multiple_of(8) {
                return Err(ListCorruption::MalformedPointer { pointer: p });
            }
            if seen > self.appended || seen > 100_000_000 {
                return Err(ListCorruption::MalformedPointer { pointer: p });
            }
            let value = image.read_u64(p);
            if value & 0xFFFF_0000_0000_0000 != VALUE_MAGIC {
                return Err(ListCorruption::DanglingPointer { node: p });
            }
            seen += 1;
            p = image.read_u64(p + 8);
        }
        Ok(ListRecovery {
            reachable_nodes: seen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_core::{PersistencyMode, System};
    use bbb_sim::SimConfig;

    fn setup(mode: PersistencyMode) -> (System, LinkedList, Palloc) {
        let sys = System::new(SimConfig::small_for_tests(), mode).unwrap();
        let map = sys.address_map().clone();
        let list = LinkedList::new(map.persistent_base());
        let palloc = Palloc::new(&map, 2, 4096);
        (sys, list, palloc)
    }

    fn run_appends(
        sys: &mut System,
        list: &mut LinkedList,
        palloc: &mut Palloc,
        n: u64,
        instrument: bool,
    ) {
        let map = sys.address_map().clone();
        for _ in 0..n {
            let ops = list
                .append_ops(&map, sys.arch_mem_mut(), palloc, 0, instrument)
                .expect("allocator space");
            sys.run_single_core(0, ops).unwrap();
        }
    }

    #[test]
    fn bbb_list_recovers_fully_without_flushes() {
        let (mut sys, mut list, mut palloc) = setup(PersistencyMode::BbbMemorySide);
        run_appends(&mut sys, &mut list, &mut palloc, 20, false);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let r = list.check_recovery(&img, &map).expect("consistent");
        assert_eq!(r.reachable_nodes, 20, "every committed append durable");
    }

    #[test]
    fn eadr_list_recovers_fully_without_flushes() {
        let (mut sys, mut list, mut palloc) = setup(PersistencyMode::Eadr);
        run_appends(&mut sys, &mut list, &mut palloc, 20, false);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        let r = list.check_recovery(&img, &map).expect("consistent");
        assert_eq!(r.reachable_nodes, 20);
    }

    #[test]
    fn pmem_instrumented_list_is_consistent() {
        let (mut sys, mut list, mut palloc) = setup(PersistencyMode::Pmem);
        run_appends(&mut sys, &mut list, &mut palloc, 10, true);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        // Every instrumented append fully persisted before the next began,
        // so the full list must be there.
        let r = list.check_recovery(&img, &map).expect("consistent");
        assert_eq!(r.reachable_nodes, 10);
    }

    #[test]
    fn pmem_uninstrumented_list_loses_data() {
        let (mut sys, mut list, mut palloc) = setup(PersistencyMode::Pmem);
        run_appends(&mut sys, &mut list, &mut palloc, 20, false);
        let map = sys.address_map().clone();
        let img = sys.crash_now();
        // Without flushes the whole list (or a prefix) sits in volatile
        // caches; the image must NOT contain all 20 nodes.
        // Corruption (Err) is also an acceptable demonstration.
        if let Ok(r) = list.check_recovery(&img, &map) {
            assert!(
                r.reachable_nodes < 20,
                "volatile caches cannot have persisted everything"
            );
        }
    }

    #[test]
    fn checker_detects_dangling_head() {
        let (mut sys, list, _) = setup(PersistencyMode::BbbMemorySide);
        let map = sys.address_map().clone();
        // Forge a head pointing at uninitialized space.
        let bogus = map.persistent_base() + 0x2000;
        sys.preload_u64(list.head_addr(), bogus);
        let img = sys.crash_now();
        assert_eq!(
            list.check_recovery(&img, &map),
            Err(ListCorruption::DanglingPointer { node: bogus })
        );
    }

    #[test]
    fn checker_detects_malformed_pointer() {
        let (mut sys, list, _) = setup(PersistencyMode::BbbMemorySide);
        let map = sys.address_map().clone();
        sys.preload_u64(list.head_addr(), 0x3); // unaligned garbage
        let img = sys.crash_now();
        assert!(matches!(
            list.check_recovery(&img, &map),
            Err(ListCorruption::MalformedPointer { .. })
        ));
    }
}

//! YCSB-style key-value service at server scale (extension).
//!
//! A fixed-slot KV store over millions of keys, driven the way a loaded
//! server sees traffic rather than the paper's uniform microbenchmark
//! loops:
//!
//! * **Zipfian key choice** — an O(1) alias-table sampler
//!   ([`bbb_sim::ZipfSampler`], s = 0.99 by default) concentrates traffic
//!   on a hot set, which is precisely where persistency modes separate:
//!   hot lines coalesce in a bbPB but are flushed over and over by
//!   software strict persistency.
//! * **Read/update/insert mixes** — YCSB-style A/B/C request mixes
//!   ([`KvMix`]).
//! * **Open-loop bursty arrivals** — requests come in bursts separated by
//!   think-time [`Op::Compute`] gaps, so store buffers and persist
//!   buffers see the bursty pressure of real frontends instead of a
//!   smooth closed loop.
//! * **Multi-tenant interleaving** — the keyspace is partitioned into
//!   tenants and every core round-robins across them, so cores share hot
//!   lines and bbPB entries migrate.
//!
//! The workload is stream-native ([`OpStream`]): per-core state is a
//! PRNG, a handful of cursors, and one bounded op buffer — memory is
//! O(live keys) for the table plus O(cores), independent of how many ops
//! a run executes. [`StreamWorkload`](bbb_core::StreamWorkload) adapts it
//! to the batch interface where needed.
//!
//! # Slot layout and crash discipline
//!
//! Each key owns one 64-byte slot (its own cache line):
//!
//! ```text
//! +0  tag      KV_TAG ^ global_key_index   (written once; publish-last on insert)
//! +8  version  monotonically increasing    (update publish word)
//! +16 payload  payload_of(key, version)    (written before version)
//! ```
//!
//! Updates write payload then version; inserts write payload, version,
//! then the tag. Under strict persistency a crash can lose only a suffix,
//! so a recovered slot always shows `payload_of(key, v)` for a version
//! `v` within a small window of the recovered version word (concurrent
//! hot-key updates by different cores can interleave between the two
//! stores — see [`RACE_WINDOW`]).

use bbb_core::OpStream;
use bbb_cpu::Op;
use bbb_mem::{ByteStore, NvmImage};
use bbb_sim::{Addr, SplitMix64, ZipfSampler};

/// High-bits tag marking a live KV slot (`"KVBB"` in ASCII-ish hex).
pub const KV_TAG: u64 = 0x4B56_4242_0000_0000;

/// Slot stride: one cache line per key.
pub const SLOT_BYTES: u64 = 64;

/// How far the payload's version may run ahead of (or behind) the
/// version word in a consistent image. Concurrent updates of the same
/// hot key from different cores interleave their payload/version store
/// pairs; each core writes a pair computed from the same read, so the
/// divergence is bounded by the core count. 8 cores is the paper's
/// machine; 2× that is a comfortable margin and still leaves a ~2⁻⁵⁹
/// chance of accepting random corruption.
pub const RACE_WINDOW: u64 = 16;

/// Maximum ops a single request expands to. The KV worst case is an
/// instrumented insert inside a fresh burst with an epoch fence (1 gap +
/// 3×(store,clwb,fence) + 1 = 11); the WAL worst case is an instrumented
/// append that also truncates and group-commits (1 gap + 6 stores × 3 +
/// 1 = 20).
pub(crate) const MAX_REQUEST_OPS: usize = 24;

/// Burst sizes are 1..=BURST_MAX requests (open-loop arrivals).
pub(crate) const BURST_MAX: u64 = 8;
/// Think-time gap between bursts: BASE + uniform(SPREAD) cycles.
pub(crate) const GAP_BASE: u32 = 120;
pub(crate) const GAP_SPREAD: u64 = 400;

/// SplitMix64 finalizer: the deterministic value hash behind tags and
/// payloads (self-identifying values, like the array workloads' TAG|i).
#[must_use]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fixed-capacity per-core op buffer: one request's expansion, no heap
/// allocation in steady state (the streaming path's whole point).
#[derive(Debug, Clone)]
pub(crate) struct OpBuf {
    ops: [Op; MAX_REQUEST_OPS],
    head: usize,
    len: usize,
}

impl OpBuf {
    pub(crate) fn new() -> Self {
        Self {
            ops: [Op::Fence; MAX_REQUEST_OPS],
            head: 0,
            len: 0,
        }
    }

    pub(crate) fn push(&mut self, op: Op) {
        assert!(self.len < MAX_REQUEST_OPS, "request exceeds op buffer");
        self.ops[(self.head + self.len) % MAX_REQUEST_OPS] = op;
        self.len += 1;
    }

    pub(crate) fn pop(&mut self) -> Option<Op> {
        if self.len == 0 {
            return None;
        }
        let op = self.ops[self.head];
        self.head = (self.head + 1) % MAX_REQUEST_OPS;
        self.len -= 1;
        Some(op)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// YCSB-style request mixes (read% / update% / insert%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvMix {
    /// Write-heavy: 50% read, 40% update, 10% insert.
    A,
    /// Read-mostly: 95% read, 4% update, 1% insert.
    B,
    /// Read-only: 100% read.
    C,
}

impl KvMix {
    /// `(read%, update%)` — insert% is the remainder.
    #[must_use]
    pub const fn percentages(self) -> (u64, u64) {
        match self {
            KvMix::A => (50, 40),
            KvMix::B => (95, 4),
            KvMix::C => (100, 0),
        }
    }

    /// Mix letter for names/reports.
    #[must_use]
    pub const fn letter(self) -> &'static str {
        match self {
            KvMix::A => "a",
            KvMix::B => "b",
            KvMix::C => "c",
        }
    }
}

/// Keyspace geometry shared by the workload and the recovery checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvLayout {
    /// First slot address (block-aligned).
    pub base: Addr,
    /// Tenant count (keyspace partitions).
    pub tenants: usize,
    /// Slot capacity per tenant (power of two; includes insert headroom).
    pub cap_per_tenant: u64,
    /// Keys per tenant populated at setup.
    pub initial_per_tenant: u64,
}

impl KvLayout {
    /// Lays out `keys` initial keys across `tenants` partitions starting
    /// at `base`, with headroom for up to `max_inserts` inserted keys.
    ///
    /// # Panics
    ///
    /// Panics if `keys` or `tenants` is zero.
    #[must_use]
    pub fn new(base: Addr, keys: u64, tenants: usize, max_inserts: u64) -> Self {
        assert!(keys > 0 && tenants > 0, "empty keyspace");
        let initial_per_tenant = (keys / tenants as u64).max(1);
        let headroom = max_inserts / tenants as u64 + 1;
        let cap_per_tenant = (initial_per_tenant + headroom).next_power_of_two();
        Self {
            base: base.next_multiple_of(SLOT_BYTES),
            tenants,
            cap_per_tenant,
            initial_per_tenant,
        }
    }

    /// Total bytes of slot storage.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.tenants as u64 * self.cap_per_tenant * SLOT_BYTES
    }

    /// Global key index of `(tenant, idx)` — the identity baked into tags
    /// and payloads.
    #[must_use]
    pub fn global_key(&self, tenant: usize, idx: u64) -> u64 {
        tenant as u64 * self.cap_per_tenant + idx
    }

    /// Slot address of `(tenant, idx)`. Logical indices are scattered
    /// across the tenant's region by an odd-multiplier bijection so the
    /// Zipfian hot set is spread over the address space instead of
    /// packed at the region start.
    #[must_use]
    pub fn slot_addr(&self, tenant: usize, idx: u64) -> Addr {
        let scattered = idx.wrapping_mul(0x9E37_79B9_7F4A_7C15) & (self.cap_per_tenant - 1);
        self.base + (tenant as u64 * self.cap_per_tenant + scattered) * SLOT_BYTES
    }

    /// Expected tag word of a live slot.
    #[must_use]
    pub fn tag_of(&self, tenant: usize, idx: u64) -> u64 {
        KV_TAG ^ self.global_key(tenant, idx)
    }

    /// Payload word for `(tenant, idx)` at `version`.
    #[must_use]
    pub fn payload_of(&self, tenant: usize, idx: u64, version: u64) -> u64 {
        mix64(self.global_key(tenant, idx) ^ version.rotate_left(17))
    }
}

/// Construction parameters for [`KvWorkload`].
#[derive(Debug, Clone, Copy)]
pub struct KvSpec {
    /// Initial keys across all tenants (≥ 1M for the server-scale runs).
    pub keys: u64,
    /// Keyspace partitions interleaved across cores.
    pub tenants: usize,
    /// Zipf exponent (0.99 = YCSB default; 0 = uniform).
    pub zipf_s: f64,
    /// Request mix.
    pub mix: KvMix,
    /// Requests each core serves before its stream ends.
    pub per_core_requests: u64,
    /// Master seed.
    pub seed: u64,
    /// Emit `clwb`+`sfence` after each persisting store (PMEM baseline).
    pub instrument: bool,
    /// Emit an epoch fence after each request (BEP discipline).
    pub epochs: bool,
}

/// The streaming KV workload. See module docs.
#[derive(Debug)]
pub struct KvWorkload {
    name: String,
    layout: KvLayout,
    spec: KvSpec,
    zipf: ZipfSampler,
    /// Live key count per tenant (inserts append; generation-time state).
    live: Vec<u64>,
    // Per-core streaming state.
    rngs: Vec<SplitMix64>,
    remaining: Vec<u64>,
    burst_left: Vec<u64>,
    req_seq: Vec<u64>,
    bufs: Vec<OpBuf>,
}

impl KvWorkload {
    /// Builds the workload for a `cores`-core machine with slots at
    /// `layout`.
    ///
    /// # Panics
    ///
    /// Panics if the layout's tenant partitions are empty.
    #[must_use]
    pub fn new(layout: KvLayout, spec: KvSpec, cores: usize) -> Self {
        assert!(layout.initial_per_tenant > 0, "empty tenant partition");
        let mut master = SplitMix64::new(spec.seed);
        let rngs = (0..cores).map(|_| master.split()).collect();
        Self {
            name: format!("kv-{}", spec.mix.letter()),
            zipf: ZipfSampler::new(layout.initial_per_tenant, spec.zipf_s),
            live: vec![layout.initial_per_tenant; layout.tenants],
            rngs,
            remaining: vec![spec.per_core_requests; cores],
            burst_left: vec![0; cores],
            req_seq: (0..cores as u64).collect(),
            bufs: vec![OpBuf::new(); cores],
            layout,
            spec,
        }
    }

    /// The keyspace geometry (for recovery checks and reports).
    #[must_use]
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    fn push_store(&mut self, core: usize, addr: Addr, value: u64) {
        self.bufs[core].push(Op::store_u64(addr, value));
        if self.spec.instrument {
            self.bufs[core].push(Op::Clwb { addr });
            self.bufs[core].push(Op::Fence);
        }
    }

    /// Expands one request into the core's op buffer.
    fn generate_request(&mut self, core: usize, arch: &mut ByteStore) {
        // Open-loop arrivals: a think-time gap starts each burst.
        if self.burst_left[core] == 0 {
            self.burst_left[core] = 1 + self.rngs[core].next_below(BURST_MAX);
            let gap = GAP_BASE + self.rngs[core].next_below(GAP_SPREAD) as u32;
            self.bufs[core].push(Op::Compute { cycles: gap });
        }
        self.burst_left[core] -= 1;

        // Multi-tenant interleaving: successive requests rotate tenants,
        // offset by core so tenants are shared across cores.
        let tenant = (self.req_seq[core] % self.layout.tenants as u64) as usize;
        self.req_seq[core] += self.layout.tenants as u64 - 1; // coprime walk
        let (read_pct, update_pct) = self.spec.mix.percentages();
        let roll = self.rngs[core].next_below(100);
        let rank = self.zipf.sample(&mut self.rngs[core]);

        if roll < read_pct {
            // Read: version + payload loads.
            let slot = self.layout.slot_addr(tenant, rank);
            self.bufs[core].push(Op::load_u64(slot + 8));
            self.bufs[core].push(Op::load_u64(slot + 16));
        } else if roll < read_pct + update_pct || self.live[tenant] >= self.layout.cap_per_tenant {
            // Update (inserts degrade to updates once headroom is spent):
            // read the committed version, publish payload then version.
            let slot = self.layout.slot_addr(tenant, rank);
            let v = arch.read_u64(slot + 8) + 1;
            self.bufs[core].push(Op::load_u64(slot + 8));
            self.push_store(core, slot + 16, self.layout.payload_of(tenant, rank, v));
            self.push_store(core, slot + 8, v);
        } else {
            // Insert: claim the next logical index (generation-time state,
            // so concurrent cores never claim the same slot), publish the
            // tag last — a torn insert leaves tag 0 and is simply absent.
            let idx = self.live[tenant];
            self.live[tenant] += 1;
            let slot = self.layout.slot_addr(tenant, idx);
            self.push_store(core, slot + 16, self.layout.payload_of(tenant, idx, 1));
            self.push_store(core, slot + 8, 1);
            self.push_store(core, slot, self.layout.tag_of(tenant, idx));
        }
        if self.spec.epochs {
            self.bufs[core].push(Op::Fence);
        }
    }
}

impl OpStream for KvWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        for tenant in 0..self.layout.tenants {
            for idx in 0..self.layout.initial_per_tenant {
                let slot = self.layout.slot_addr(tenant, idx);
                arch.write_u64(slot, self.layout.tag_of(tenant, idx));
                arch.write_u64(slot + 8, 1);
                arch.write_u64(slot + 16, self.layout.payload_of(tenant, idx, 1));
            }
        }
    }

    fn next_op(&mut self, core: usize, arch: &mut ByteStore) -> Option<Op> {
        if self.bufs[core].is_empty() {
            if self.remaining[core] == 0 {
                return None;
            }
            self.remaining[core] -= 1;
            self.generate_request(core, arch);
        }
        self.bufs[core].pop()
    }
}

/// Verifies a post-crash image against the KV slot invariants. Every
/// initially-populated slot, and every inserted slot whose tag was
/// published, must hold `payload_of(key, v)` for a `v` within
/// [`RACE_WINDOW`] of the recovered version word. Returns the number of
/// live slots verified.
///
/// # Errors
///
/// Returns a description of the first inconsistent slot — expected for
/// uninstrumented PMEM images, never for battery-backed modes.
pub fn check_kv_recovery(image: &NvmImage, layout: &KvLayout) -> Result<u64, String> {
    let mut recovered = 0u64;
    for tenant in 0..layout.tenants {
        for idx in 0..layout.cap_per_tenant {
            let slot = layout.slot_addr(tenant, idx);
            let tag = image.read_u64(slot);
            if tag == 0 {
                // Never populated (insert headroom, or a torn insert whose
                // publish-last tag did not land).
                if idx < layout.initial_per_tenant {
                    return Err(format!(
                        "tenant {tenant} key {idx}: initial slot lost its tag"
                    ));
                }
                continue;
            }
            if tag != layout.tag_of(tenant, idx) {
                return Err(format!(
                    "tenant {tenant} key {idx}: bad tag {tag:#x} at {slot:#x}"
                ));
            }
            let version = image.read_u64(slot + 8);
            let payload = image.read_u64(slot + 16);
            if version == 0 {
                return Err(format!(
                    "tenant {tenant} key {idx}: tagged slot at version 0"
                ));
            }
            let lo = version.saturating_sub(RACE_WINDOW);
            let hi = version + RACE_WINDOW;
            let consistent = (lo..=hi).any(|v| layout.payload_of(tenant, idx, v) == payload);
            if !consistent {
                return Err(format!(
                    "tenant {tenant} key {idx}: payload {payload:#x} matches no version near {version}"
                ));
            }
            recovered += 1;
        }
    }
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_core::{PersistencyMode, StreamWorkload, System};
    use bbb_sim::{AddressMap, SimConfig};

    fn small_layout(cfg: &SimConfig) -> KvLayout {
        let map = AddressMap::new(cfg);
        KvLayout::new(map.persistent_base(), 256, 4, 128)
    }

    fn spec(mix: KvMix) -> KvSpec {
        KvSpec {
            keys: 256,
            tenants: 4,
            zipf_s: 0.99,
            mix,
            per_core_requests: 64,
            seed: 0xB0B,
            instrument: false,
            epochs: false,
        }
    }

    #[test]
    fn layout_fits_and_scatters_bijectively() {
        let layout = KvLayout::new(0x1000, 1000, 4, 100);
        assert!(layout.cap_per_tenant.is_power_of_two());
        assert!(layout.cap_per_tenant >= layout.initial_per_tenant);
        // The odd-multiplier scatter is a bijection on 0..cap.
        let mut seen = std::collections::HashSet::new();
        for idx in 0..layout.cap_per_tenant {
            assert!(seen.insert(layout.slot_addr(0, idx)));
        }
    }

    #[test]
    fn runs_and_recovers_under_bbb() {
        for mix in [KvMix::A, KvMix::B, KvMix::C] {
            let cfg = SimConfig::small_for_tests();
            let layout = small_layout(&cfg);
            let mut kv = KvWorkload::new(layout, spec(mix), cfg.cores);
            let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
            sys.prepare_stream(&mut kv);
            let summary = sys.run_stream(&mut kv, u64::MAX);
            assert!(summary.completed, "{mix:?}");
            assert!(summary.ops > 0);
            let img = sys.crash_now();
            let n = check_kv_recovery(&img, &layout).unwrap_or_else(|e| panic!("{mix:?}: {e}"));
            assert!(n >= 256, "{mix:?}: only {n} slots recovered");
        }
    }

    #[test]
    fn mix_c_is_read_only() {
        let cfg = SimConfig::small_for_tests();
        let layout = small_layout(&cfg);
        let mut kv = KvWorkload::new(layout, spec(KvMix::C), cfg.cores);
        let mut sys = System::new(cfg, PersistencyMode::Eadr).unwrap();
        sys.prepare_stream(&mut kv);
        sys.run_stream(&mut kv, u64::MAX);
        assert_eq!(sys.stats().get("cores.stores"), 0);
    }

    #[test]
    fn fixed_seed_stream_is_reproducible() {
        let cfg = SimConfig::small_for_tests();
        let layout = small_layout(&cfg);
        let run = || {
            let mut kv = KvWorkload::new(layout, spec(KvMix::A), cfg.cores);
            let mut sys = System::new(cfg.clone(), PersistencyMode::BbbMemorySide).unwrap();
            sys.prepare_stream(&mut kv);
            sys.run_stream(&mut kv, u64::MAX);
            sys.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stream_matches_batch_adapter() {
        let cfg = SimConfig::small_for_tests();
        let layout = small_layout(&cfg);
        let mut stream_sys = System::new(cfg.clone(), PersistencyMode::BbbMemorySide).unwrap();
        let mut kv = KvWorkload::new(layout, spec(KvMix::A), cfg.cores);
        stream_sys.prepare_stream(&mut kv);
        stream_sys.run_stream(&mut kv, u64::MAX);

        let mut batch_sys = System::new(cfg.clone(), PersistencyMode::BbbMemorySide).unwrap();
        let mut wrapped = StreamWorkload(KvWorkload::new(layout, spec(KvMix::A), cfg.cores));
        batch_sys.prepare(&mut wrapped);
        batch_sys.run(&mut wrapped, u64::MAX);

        assert_eq!(stream_sys.stats(), batch_sys.stats());
    }

    #[test]
    fn inserts_grow_live_set_and_recover() {
        let cfg = SimConfig::small_for_tests();
        let layout = small_layout(&cfg);
        let mut kv = KvWorkload::new(layout, spec(KvMix::A), cfg.cores);
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare_stream(&mut kv);
        sys.run_stream(&mut kv, u64::MAX);
        let inserted: u64 =
            kv.live.iter().sum::<u64>() - layout.initial_per_tenant * layout.tenants as u64;
        assert!(inserted > 0, "mix A must insert");
        sys.drain_all_store_buffers();
        let img = sys.crash_now();
        let n = check_kv_recovery(&img, &layout).expect("consistent");
        assert_eq!(
            n,
            layout.initial_per_tenant * layout.tenants as u64 + inserted,
            "every published insert recovers after a full drain"
        );
    }
}

//! The pstore log-append workload: `bbb-pstore`'s SPSC ring run on the
//! simulated machine, so crashfuzz can crash-sweep every store boundary
//! of the ring protocol itself.
//!
//! Core 0 is the producer (grant → fill → commit, one committed grant per
//! measured op), core 1 the consumer (grant_read → release, trimming the
//! window whenever it grows past half the ring so the ring wraps many
//! times per run); on a single-core machine one core alternates the two
//! roles. All protocol state lives in the simulated persistent heap,
//! reached through [`SimBacking`] — an engine that turns every
//! [`PBacking`] access into simulator ops: reads load *committed*
//! architectural memory, writes emit stores the simulator applies at
//! commit, and the shim's barriers become `clwb`/`sfence` ops. Under
//! BBB/eADR the shim is [`Discipline::BufferBacked`] and the op stream
//! provably contains no flush and no fence (the `bbb-check` trace audit
//! asserts exactly that); under instrumented PMEM it is
//! [`Discipline::FlushFence`]; under BEP the suite's epoch wrapper
//! appends the per-batch epoch fence.
//!
//! Recovery ([`check_pstore_recovery`]) runs the crate's real
//! [`recover`] over the crash image and then checks every surviving
//! payload byte against the seed-derived expected contents: the reader
//! must observe a *prefix of committed grants* — never torn, reordered,
//! or stale-lap bytes. The recovered count is the committed-sequence
//! watermark, which grows monotonically with appends — exactly what the
//! sweep's strict battery-dropped oracle needs.

use bbb_core::Workload;
use bbb_cpu::Op;
use bbb_mem::{ByteStore, NvmImage};
use bbb_pstore::{
    recover, Discipline, GrantError, PBacking, RingReader, RingWriter, COMMIT_SEQ_OFF,
    COMMIT_WATERMARK_OFF, MAGIC_OFF, MAX_PAYLOAD_BYTES, PSTORE_MAGIC, READ_MARK_OFF, READ_PUB_OFF,
};
use bbb_sim::{Addr, SplitMix64};

/// Ring data capacity used on the simulator: small enough that a smoke
/// run laps the ring several times (wraparound pads, space reclaim and
/// the release protocol all get exercised), large enough for dozens of
/// live records.
pub const SIM_RING_CAPACITY: u64 = 1024;

/// Compute cycles a poll batch burns while the ring is full (producer)
/// or quiet (consumer).
const POLL_CYCLES: u32 = 24;

/// A [`PBacking`] engine over the simulated machine: reads consult
/// committed architectural memory and emit load ops; writes emit store
/// ops (applied by the simulator at commit, never at generation time);
/// `persist` emits one `clwb` per block plus an `sfence`.
#[derive(Debug)]
pub struct SimBacking<'a> {
    arch: &'a ByteStore,
    base: Addr,
    ops: Vec<Op>,
}

impl<'a> SimBacking<'a> {
    /// An engine addressing the ring at `base` (64-byte aligned) in
    /// `arch`.
    #[must_use]
    pub fn new(arch: &'a ByteStore, base: Addr) -> Self {
        debug_assert_eq!(base % 64, 0, "ring base must be block aligned");
        Self {
            arch,
            base,
            ops: Vec::new(),
        }
    }

    /// The op sequence this engine's accesses generated.
    #[must_use]
    pub fn finish(self) -> Vec<Op> {
        self.ops
    }
}

impl PBacking for SimBacking<'_> {
    fn read_u64(&mut self, off: u64) -> Result<u64, String> {
        self.ops.push(Op::load_u64(self.base + off));
        Ok(self.arch.read_u64(self.base + off))
    }

    fn write_u64(&mut self, off: u64, value: u64) -> Result<(), String> {
        self.ops.push(Op::store_u64(self.base + off, value));
        Ok(())
    }

    fn persist(&mut self, blocks: &[u64]) -> Result<(), String> {
        for &b in blocks {
            self.ops.push(Op::Clwb {
                addr: self.base + b * 64,
            });
        }
        self.ops.push(Op::Fence);
        Ok(())
    }
}

/// Payload length for sequence `seq` under `seed`: 8..=32 bytes, a
/// deterministic function both the producer and the checker compute.
#[must_use]
pub fn payload_len(seed: u64, seq: u64) -> u64 {
    let mut r = SplitMix64::new(seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let len = 8 * (1 + r.next_below(4));
    debug_assert!(len <= MAX_PAYLOAD_BYTES);
    len
}

/// The expected payload bytes of sequence `seq` under `seed`.
#[must_use]
pub fn expected_payload(seed: u64, seq: u64) -> Vec<u8> {
    let len = payload_len(seed, seq);
    let mut r = SplitMix64::new(seed ^ seq.rotate_left(31));
    let mut out = Vec::with_capacity(len as usize);
    while (out.len() as u64) < len {
        out.extend_from_slice(&r.next_u64().to_le_bytes());
    }
    out
}

/// The SPSC ring protocol as a simulator workload.
#[derive(Debug)]
pub struct PstoreLogWorkload {
    base: Addr,
    capacity: u64,
    seed: u64,
    cores: usize,
    writer: RingWriter,
    reader: RingReader,
    appends_remaining: u64,
}

impl PstoreLogWorkload {
    /// A workload appending `appends` records under `seed` at ring base
    /// `base`, instrumented per `discipline`.
    #[must_use]
    pub fn new(base: Addr, cores: usize, appends: u64, seed: u64, discipline: Discipline) -> Self {
        // The writer/reader protocol objects carry only volatile mirrors
        // (watermark, next seq, read mark); formatting a scratch backing
        // positions them exactly as a fresh ring leaves them. The
        // persistent header itself is written by `setup`.
        let mut scratch =
            bbb_pstore::MemBacking::new(bbb_pstore::backing_len(SIM_RING_CAPACITY) as usize);
        let writer = RingWriter::create(&mut scratch, SIM_RING_CAPACITY, discipline)
            .expect("fresh scratch ring");
        let reader = RingReader::attach(&mut scratch, discipline).expect("fresh scratch ring");
        Self {
            base,
            capacity: SIM_RING_CAPACITY,
            seed,
            cores,
            writer,
            reader,
            appends_remaining: appends,
        }
    }

    fn producer_batch(&mut self, arch: &ByteStore) -> Option<Vec<Op>> {
        if self.appends_remaining == 0 {
            return None;
        }
        let mut b = SimBacking::new(arch, self.base);
        self.try_append(&mut b);
        Some(b.finish())
    }

    /// Appends one record if space is published, else leaves a poll op
    /// sequence in `b`. The grant's `read_pub` load is the poll load.
    fn try_append(&mut self, b: &mut SimBacking<'_>) {
        let seq = self.writer.next_seq();
        let len = payload_len(self.seed, seq);
        match self.writer.grant_write(b, len) {
            Ok(mut grant) => {
                grant
                    .payload
                    .copy_from_slice(&expected_payload(self.seed, seq));
                self.writer
                    .commit(b, &grant)
                    .expect("sim backing never fails");
                self.appends_remaining -= 1;
            }
            Err(GrantError::WouldBlock) => b.ops.push(Op::Compute {
                cycles: POLL_CYCLES,
            }),
            Err(e) => panic!("pstore grant: {e}"),
        }
    }

    /// Trims the window down to a quarter of the ring, releasing whole
    /// records. Returns false when nothing needed trimming.
    fn try_trim(&mut self, b: &mut SimBacking<'_>, live: u64) -> bool {
        if live <= self.capacity / 2 {
            return false;
        }
        let records = self.reader.grant_read(b).expect("committed window parses");
        let mut bytes = 0;
        for r in &records {
            if live - bytes <= self.capacity / 4 {
                break;
            }
            bytes += r.span;
        }
        self.reader
            .release_mark(b, bytes)
            .expect("sim backing never fails");
        true
    }

    fn consumer_batch(&mut self, arch: &ByteStore) -> Option<Vec<Op>> {
        let mut b = SimBacking::new(arch, self.base);
        if self.reader.marked_unpublished() {
            self.reader
                .release_publish(&mut b)
                .expect("sim backing never fails");
            return Some(b.finish());
        }
        let committed_off = b
            .read_u64(COMMIT_WATERMARK_OFF)
            .expect("sim backing never fails");
        let live = committed_off - self.reader.read_off();
        if self.try_trim(&mut b, live) {
            return Some(b.finish());
        }
        if self.appends_remaining > 0 {
            // Producer still generating: stay alive and poll.
            b.ops.push(Op::Compute {
                cycles: POLL_CYCLES,
            });
            return Some(b.finish());
        }
        None
    }

    fn single_core_batch(&mut self, arch: &ByteStore) -> Option<Vec<Op>> {
        let mut b = SimBacking::new(arch, self.base);
        if self.reader.marked_unpublished() {
            self.reader
                .release_publish(&mut b)
                .expect("sim backing never fails");
            return Some(b.finish());
        }
        let committed_off = b
            .read_u64(COMMIT_WATERMARK_OFF)
            .expect("sim backing never fails");
        let live = committed_off - self.reader.read_off();
        if self.try_trim(&mut b, live) {
            return Some(b.finish());
        }
        if self.appends_remaining == 0 {
            return None;
        }
        self.try_append(&mut b);
        Some(b.finish())
    }
}

impl Workload for PstoreLogWorkload {
    fn name(&self) -> &str {
        "pstore"
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        // Format the persistent header (the state `RingWriter::create`
        // leaves); `System::prepare` syncs it into NVMM media.
        arch.write_u64(self.base + MAGIC_OFF, PSTORE_MAGIC);
        arch.write_u64(self.base + MAGIC_OFF + 8, self.capacity);
        for off in [
            COMMIT_WATERMARK_OFF,
            COMMIT_SEQ_OFF,
            READ_MARK_OFF,
            READ_PUB_OFF,
        ] {
            arch.write_u64(self.base + off, 0);
        }
    }

    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        if self.cores == 1 {
            return match core {
                0 => self.single_core_batch(arch),
                _ => None,
            };
        }
        match core {
            0 => self.producer_batch(arch),
            1 => self.consumer_batch(arch),
            _ => None,
        }
    }
}

/// Verifies a post-crash image of the pstore ring: structural recovery
/// via the crate's [`recover`], then payload-content verification of
/// every surviving record against the seed-derived expected bytes.
/// Returns the committed-sequence watermark (monotone in appends).
///
/// # Errors
///
/// The first structural or content inconsistency.
pub fn check_pstore_recovery(image: &NvmImage, base: Addr, seed: u64) -> Result<u64, String> {
    struct ImgBacking<'a> {
        image: bbb_mem::ImageReader<'a>,
        base: Addr,
    }
    impl PBacking for ImgBacking<'_> {
        fn read_u64(&mut self, off: u64) -> Result<u64, String> {
            Ok(self.image.read_u64(self.base + off))
        }
        fn write_u64(&mut self, _off: u64, _v: u64) -> Result<(), String> {
            Err("crash image is read-only".into())
        }
        fn persist(&mut self, _blocks: &[u64]) -> Result<(), String> {
            Err("crash image is read-only".into())
        }
    }
    let mut backing = ImgBacking {
        image: image.reader(),
        base,
    };
    let snap = recover(&mut backing)?;
    for r in &snap.records {
        let expected = expected_payload(seed, r.seq);
        if r.payload != expected {
            return Err(format!(
                "record seq {} holds foreign payload ({} bytes)",
                r.seq,
                r.payload.len()
            ));
        }
    }
    Ok(snap.committed_seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{make_workload, verify_recovery, WorkloadKind, WorkloadParams};
    use bbb_core::{PersistencyMode, System};
    use bbb_sim::SimConfig;

    #[test]
    fn payload_functions_are_deterministic_and_sized() {
        for seq in 1..50 {
            let a = expected_payload(7, seq);
            let b = expected_payload(7, seq);
            assert_eq!(a, b);
            assert_eq!(a.len() as u64, payload_len(7, seq));
            assert!(a.len() >= 8 && a.len() <= 32);
            assert_eq!(a.len() % 8, 0);
        }
        assert_ne!(expected_payload(7, 1), expected_payload(7, 2));
        assert_ne!(expected_payload(7, 1), expected_payload(8, 1));
    }

    #[test]
    fn two_core_run_commits_and_recovers_every_append() {
        let cfg = SimConfig::small_for_tests();
        let params = WorkloadParams::smoke();
        let mut w = make_workload(WorkloadKind::PstoreLog, &cfg, params);
        let mut sys = System::new(cfg.clone(), PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare(w.as_mut());
        let summary = sys.run(w.as_mut(), u64::MAX);
        assert!(summary.completed, "producer and consumer both finish");
        let img = sys.crash_now();
        let n = verify_recovery(WorkloadKind::PstoreLog, &img, &cfg, params).unwrap();
        assert_eq!(
            n, params.per_core_ops,
            "every committed append survives a battery-backed crash"
        );
        sys.check_invariants();
    }

    #[test]
    fn single_core_run_laps_the_ring() {
        let mut cfg = SimConfig::small_for_tests();
        cfg.cores = 1;
        let params = WorkloadParams::smoke();
        let mut w = make_workload(WorkloadKind::PstoreLog, &cfg, params);
        let mut sys = System::new(cfg.clone(), PersistencyMode::Eadr).unwrap();
        sys.prepare(w.as_mut());
        let summary = sys.run(w.as_mut(), u64::MAX);
        assert!(summary.completed);
        let img = sys.crash_now();
        let n = verify_recovery(WorkloadKind::PstoreLog, &img, &cfg, params).unwrap();
        assert_eq!(n, params.per_core_ops);
        // 64 appends of ≥24-byte spans through a 1 KiB ring: wrapped.
        assert!(
            params.per_core_ops * 24 > SIM_RING_CAPACITY,
            "smoke scale must lap the ring"
        );
    }

    #[test]
    fn bbb_op_stream_has_no_flush_and_no_fence() {
        let cfg = SimConfig::small_for_tests();
        let params = WorkloadParams::smoke();
        let mut w = make_workload(WorkloadKind::PstoreLog, &cfg, params);
        let mut arch = ByteStore::new();
        w.setup(&mut arch);
        let mut total = 0usize;
        for _ in 0..2000 {
            let mut progressed = false;
            for core in 0..cfg.cores {
                if let Some(batch) = w.next_batch(core, &mut arch) {
                    progressed = true;
                    for op in &batch {
                        assert!(
                            !matches!(op, Op::Clwb { .. } | Op::Fence),
                            "BBB commit path must be plain loads/stores"
                        );
                        // Apply stores so the protocol advances (the
                        // simulator normally does this at commit).
                        if let Op::Store { addr, size, bytes } = op {
                            arch.write(*addr, &bytes[..*size as usize]);
                        }
                    }
                    total += batch.len();
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(total > 500, "protocol ran");
    }

    #[test]
    fn instrumented_stream_flushes_and_fences() {
        let cfg = SimConfig::small_for_tests();
        let mut params = WorkloadParams::smoke();
        params.instrument = true;
        let mut w = make_workload(WorkloadKind::PstoreLog, &cfg, params);
        let mut arch = ByteStore::new();
        w.setup(&mut arch);
        let batch = w.next_batch(0, &mut arch).expect("first append");
        assert!(
            batch.iter().any(|op| matches!(op, Op::Clwb { .. })),
            "strict PMEM commit must flush"
        );
        assert_eq!(
            batch.iter().filter(|op| matches!(op, Op::Fence)).count(),
            2,
            "data barrier and publish barrier"
        );
    }
}

//! The Table IV workload suite: one factory for every evaluated workload.
//!
//! The benchmark harness and the examples construct workloads through
//! [`make_workload`] so that every experiment uses identical layouts,
//! seeds, and scaling knobs.

use bbb_core::{OpStream, StreamWorkload, Workload};
use bbb_cpu::Op;
use bbb_mem::{ByteStore, NvmImage};
use bbb_sim::{AddressMap, SimConfig};

use crate::arrays::{ArrayOpKind, ArrayWorkload, Sharing};
use crate::btree::BtreeWorkload;
use crate::ctree::CtreeWorkload;
use crate::hashmap::HashmapWorkload;
use crate::kv::{check_kv_recovery, KvLayout, KvMix, KvSpec, KvWorkload};
use crate::palloc::Palloc;
use crate::pstore_log::{check_pstore_recovery, PstoreLogWorkload, SIM_RING_CAPACITY};
use crate::rtree::RtreeWorkload;
use crate::wal::{check_wal_recovery, WalLayout, WalSpec, WalWorkload};

/// Reserved root area at the start of the persistent heap (roots, bucket
/// arrays): 2 MiB on paper-sized heaps, scaled down for small test heaps.
fn root_reserve(cfg: &SimConfig) -> u64 {
    (cfg.persistent_heap_bytes / 8).clamp(4096, 1 << 21)
}

/// Ring base of the pstore workload: past the root reserve, block-aligned
/// (the protocol's one-word-per-block header depends on it). Construction
/// and recovery must agree on this address.
fn pstore_ring_base(cfg: &SimConfig) -> u64 {
    let map = AddressMap::new(cfg);
    (map.persistent_base() + root_reserve(cfg)).next_multiple_of(64)
}

/// Keyspace partitions / log shards per core for the server workloads.
const SERVER_TENANTS: usize = 4;

/// YCSB's default Zipf exponent, used by every server workload.
const SERVER_ZIPF_S: f64 = 0.99;

/// KV slot-table geometry for `(cfg, params)` — construction and recovery
/// must agree on it, exactly like `pstore_ring_base`.
fn kv_geometry(cfg: &SimConfig, params: WorkloadParams) -> KvLayout {
    let map = AddressMap::new(cfg);
    let base = map.persistent_base() + root_reserve(cfg);
    // Headroom for the worst case where every request inserts.
    let max_inserts = params.per_core_ops * cfg.cores as u64;
    let layout = KvLayout::new(base, params.initial, SERVER_TENANTS, max_inserts);
    assert!(
        layout.base + layout.bytes() <= map.persistent_base() + cfg.persistent_heap_bytes,
        "KV slot table does not fit the persistent heap"
    );
    layout
}

/// WAL shard geometry for `(cfg, params)`. `params.initial` is the total
/// record-slot budget across all shards, rounded per shard to a power of
/// two ring.
fn wal_geometry(cfg: &SimConfig, params: WorkloadParams) -> WalLayout {
    let map = AddressMap::new(cfg);
    let base = map.persistent_base() + root_reserve(cfg);
    let shards = (cfg.cores * SERVER_TENANTS) as u64;
    let ring = (params.initial / shards)
        .next_power_of_two()
        .clamp(32, 1 << 14);
    let layout = WalLayout::new(base, cfg.cores, SERVER_TENANTS, ring);
    assert!(
        layout.base + layout.bytes() <= map.persistent_base() + cfg.persistent_heap_bytes,
        "WAL shards do not fit the persistent heap"
    );
    layout
}

/// Builds a server-scale streaming workload, or `None` for the batch
/// kinds. The streaming path (`System::run_stream`) pulls one op at a
/// time: memory stays O(live keys), independent of the op budget.
///
/// `epochs` emits a persist barrier per request — the BEP discipline;
/// batch kinds get the same via [`with_epoch_barriers`].
///
/// # Panics
///
/// Panics if the persistent heap is too small for `params.initial`.
#[must_use]
pub fn make_stream(
    kind: WorkloadKind,
    cfg: &SimConfig,
    params: WorkloadParams,
    epochs: bool,
) -> Option<Box<dyn OpStream>> {
    let mix = match kind {
        WorkloadKind::KvA => KvMix::A,
        WorkloadKind::KvB => KvMix::B,
        WorkloadKind::KvC => KvMix::C,
        WorkloadKind::Wal => {
            let layout = wal_geometry(cfg, params);
            return Some(Box::new(WalWorkload::new(
                layout,
                WalSpec {
                    tenants: SERVER_TENANTS,
                    ring_records: layout.ring_records,
                    group: 8,
                    per_core_appends: params.per_core_ops,
                    zipf_s: SERVER_ZIPF_S,
                    seed: params.seed,
                    instrument: params.instrument,
                    epochs,
                },
            )));
        }
        _ => return None,
    };
    let layout = kv_geometry(cfg, params);
    Some(Box::new(KvWorkload::new(
        layout,
        KvSpec {
            keys: params.initial,
            tenants: SERVER_TENANTS,
            zipf_s: SERVER_ZIPF_S,
            mix,
            per_core_requests: params.per_core_ops,
            seed: params.seed,
            instrument: params.instrument,
            epochs,
        },
        cfg.cores,
    )))
}

/// The workloads of the paper's Table IV.
///
/// Ordered by declaration so sweep drivers can sort grid points
/// canonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadKind {
    /// R-tree random insertions.
    Rtree,
    /// Crit-bit tree random insertions.
    Ctree,
    /// Chained-hashmap random insertions.
    Hashmap,
    /// Array element mutation, per-core regions.
    MutateNC,
    /// Array element mutation, shared array.
    MutateC,
    /// Array element swaps, per-core regions.
    SwapNC,
    /// Array element swaps, shared array.
    SwapC,
    /// B+-tree random insertions (extension: mentioned in the paper's
    /// §IV-B text; not a Table IV row, so not in [`WorkloadKind::ALL`]).
    Btree,
    /// `bbb-pstore` SPSC ring log-append (extension: the grant/commit/
    /// release protocol of `crates/pstore` run on the simulated machine so
    /// crashfuzz can sweep its store boundaries; not a Table IV row, and —
    /// like [`WorkloadKind::Btree`] — kept out of the default sweeps so
    /// committed artifacts stay stable).
    PstoreLog,
    /// Server-scale Zipfian KV service, YCSB mix A — 50% read / 40%
    /// update / 10% insert (extension; see [`crate::kv`]). Stream-native;
    /// in [`WorkloadKind::SERVER`], not in the paper sweeps.
    KvA,
    /// Server-scale Zipfian KV service, YCSB mix B — 95% read / 4%
    /// update / 1% insert (extension).
    KvB,
    /// Server-scale Zipfian KV service, YCSB mix C — read-only
    /// (extension).
    KvC,
    /// Server-scale durable write-ahead log: Zipfian-sharded appends with
    /// group commit and ring truncation (extension; see [`crate::wal`]).
    Wal,
}

impl WorkloadKind {
    /// All seven workloads in the paper's reporting order.
    pub const ALL: [WorkloadKind; 7] = [
        WorkloadKind::Rtree,
        WorkloadKind::Ctree,
        WorkloadKind::Hashmap,
        WorkloadKind::MutateNC,
        WorkloadKind::MutateC,
        WorkloadKind::SwapNC,
        WorkloadKind::SwapC,
    ];

    /// The paper's seven workloads plus the extensions this repository
    /// adds.
    pub const EXTENDED: [WorkloadKind; 8] = [
        WorkloadKind::Rtree,
        WorkloadKind::Ctree,
        WorkloadKind::Hashmap,
        WorkloadKind::MutateNC,
        WorkloadKind::MutateC,
        WorkloadKind::SwapNC,
        WorkloadKind::SwapC,
        WorkloadKind::Btree,
    ];

    /// The server-scale streaming workloads (this repository's extension
    /// beyond Table IV). Kept separate from [`WorkloadKind::ALL`] and
    /// [`WorkloadKind::EXTENDED`] so the committed paper artifacts stay
    /// stable; the `kv`/`wal` benches sweep exactly these.
    pub const SERVER: [WorkloadKind; 4] = [
        WorkloadKind::KvA,
        WorkloadKind::KvB,
        WorkloadKind::KvC,
        WorkloadKind::Wal,
    ];

    /// Display name matching the paper's tables.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            WorkloadKind::Rtree => "rtree",
            WorkloadKind::Ctree => "ctree",
            WorkloadKind::Hashmap => "hashmap",
            WorkloadKind::MutateNC => "mutateNC",
            WorkloadKind::MutateC => "mutateC",
            WorkloadKind::SwapNC => "swapNC",
            WorkloadKind::SwapC => "swapC",
            WorkloadKind::Btree => "btree",
            WorkloadKind::PstoreLog => "pstore",
            WorkloadKind::KvA => "kv-a",
            WorkloadKind::KvB => "kv-b",
            WorkloadKind::KvC => "kv-c",
            WorkloadKind::Wal => "wal",
        }
    }

    /// Paper Table IV description.
    #[must_use]
    pub const fn description(self) -> &'static str {
        match self {
            WorkloadKind::Rtree => "1 million-node rtree insertion",
            WorkloadKind::Ctree => "1 million-node ctree insertion",
            WorkloadKind::Hashmap => "1 million-node hashmap insertion",
            WorkloadKind::MutateNC | WorkloadKind::MutateC => "modify in 1 million-element array",
            WorkloadKind::SwapNC | WorkloadKind::SwapC => "swap in 1 million-element array",
            WorkloadKind::Btree => "1 million-node btree insertion (extension)",
            WorkloadKind::PstoreLog => "bbb-pstore ring log append (extension)",
            WorkloadKind::KvA => "zipfian KV, 50r/40u/10i mix (extension)",
            WorkloadKind::KvB => "zipfian KV, 95r/4u/1i mix (extension)",
            WorkloadKind::KvC => "zipfian KV, read-only (extension)",
            WorkloadKind::Wal => "sharded WAL append + group commit (extension)",
        }
    }

    /// The paper's reported persisting-store fraction (Table IV), as a
    /// reference point for the harness output.
    #[must_use]
    pub const fn paper_pstore_pct(self) -> f64 {
        match self {
            WorkloadKind::Rtree => 15.5,
            WorkloadKind::Ctree => 18.9,
            WorkloadKind::Hashmap => 6.0,
            WorkloadKind::MutateNC | WorkloadKind::MutateC => 23.8,
            WorkloadKind::SwapNC | WorkloadKind::SwapC => 23.8,
            // Not reported by the paper; ctree's figure is the closest.
            WorkloadKind::Btree => 18.9,
            // Not reported by the paper: a log append is almost entirely
            // persisting stores, like the array workloads.
            WorkloadKind::PstoreLog => 23.8,
            // Not paper rows: derived from the mixes themselves (updates
            // store two words, inserts three; reads store nothing), as
            // reference points only.
            WorkloadKind::KvA => 18.0,
            WorkloadKind::KvB => 3.0,
            WorkloadKind::KvC => 0.1,
            WorkloadKind::Wal => 23.8,
        }
    }
}

/// Scaling knobs for a workload instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Structure size built at setup (the paper's 1M nodes/elements).
    pub initial: u64,
    /// Measured operations per core.
    pub per_core_ops: u64,
    /// Master seed.
    pub seed: u64,
    /// Insert `clwb`+`sfence` after persisting stores (the PMEM baseline's
    /// software strict persistency).
    pub instrument: bool,
}

impl WorkloadParams {
    /// A quick-running configuration for tests and smoke runs.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            initial: 256,
            per_core_ops: 64,
            seed: 0xB0B,
            instrument: false,
        }
    }
}

/// Builds a workload instance laid out for the machine in `cfg`.
///
/// # Panics
///
/// Panics if the persistent heap is too small for the requested `initial`
/// size (choose a larger `SimConfig::persistent_heap_bytes`).
#[must_use]
pub fn make_workload(
    kind: WorkloadKind,
    cfg: &SimConfig,
    params: WorkloadParams,
) -> Box<dyn Workload> {
    let map = AddressMap::new(cfg);
    let base = map.persistent_base();
    let cores = cfg.cores;
    let reserve = root_reserve(cfg);
    match kind {
        WorkloadKind::Rtree => {
            let palloc = Palloc::new(&map, cores, reserve);
            Box::new(RtreeWorkload::new(
                map,
                base,
                palloc,
                cores,
                params.initial,
                params.per_core_ops,
                params.seed,
                params.instrument,
            ))
        }
        WorkloadKind::Btree => {
            let palloc = Palloc::new(&map, cores, reserve);
            Box::new(BtreeWorkload::new(
                map,
                base,
                palloc,
                cores,
                params.initial,
                params.per_core_ops,
                params.seed,
                params.instrument,
            ))
        }
        WorkloadKind::Ctree => {
            let palloc = Palloc::new(&map, cores, reserve);
            Box::new(CtreeWorkload::new(
                map,
                base,
                palloc,
                cores,
                params.initial,
                params.per_core_ops,
                params.seed,
                params.instrument,
            ))
        }
        WorkloadKind::Hashmap => {
            // Buckets sized to about half the node count, power of two.
            let buckets = (params.initial / 2)
                .next_power_of_two()
                .clamp(64, reserve / 8);
            let palloc = Palloc::new(&map, cores, reserve);
            Box::new(HashmapWorkload::new(
                map,
                base,
                buckets,
                palloc,
                cores,
                params.initial,
                params.per_core_ops,
                params.seed,
                params.instrument,
            ))
        }
        WorkloadKind::MutateNC
        | WorkloadKind::MutateC
        | WorkloadKind::SwapNC
        | WorkloadKind::SwapC => {
            let kind_ = match kind {
                WorkloadKind::MutateNC | WorkloadKind::MutateC => ArrayOpKind::Mutate,
                _ => ArrayOpKind::Swap,
            };
            let sharing = match kind {
                WorkloadKind::MutateNC | WorkloadKind::SwapNC => Sharing::NonConflicting,
                _ => Sharing::Conflicting,
            };
            // Round elements to a multiple of the core count.
            let elements = params.initial.div_ceil(cores as u64) * cores as u64;
            assert!(
                elements * 8 + reserve <= cfg.persistent_heap_bytes,
                "array does not fit the persistent heap"
            );
            Box::new(ArrayWorkload::new(
                map,
                base + reserve,
                elements,
                kind_,
                sharing,
                cores,
                params.per_core_ops,
                params.seed,
                params.instrument,
            ))
        }
        WorkloadKind::PstoreLog => {
            let ring_base = pstore_ring_base(cfg);
            assert!(
                ring_base + bbb_pstore::backing_len(SIM_RING_CAPACITY)
                    <= base + cfg.persistent_heap_bytes,
                "pstore ring does not fit the persistent heap"
            );
            let discipline = if params.instrument {
                bbb_pstore::Discipline::FlushFence
            } else {
                bbb_pstore::Discipline::BufferBacked
            };
            Box::new(PstoreLogWorkload::new(
                ring_base,
                cores,
                params.per_core_ops,
                params.seed,
                discipline,
            ))
        }
        WorkloadKind::KvA | WorkloadKind::KvB | WorkloadKind::KvC | WorkloadKind::Wal => {
            // Stream-native kinds ride the batch interface through the
            // one-op adapter (identical committed op sequence).
            let stream = make_stream(kind, cfg, params, false).expect("server kind");
            Box::new(StreamWorkload(stream))
        }
    }
}

/// Verifies a post-crash image against the structural invariants of the
/// workload `kind` was built with (same `cfg`/`params` layout). Returns
/// the number of recovered elements.
///
/// # Errors
///
/// Returns a description of the first inconsistency — expected for
/// uninstrumented PMEM runs, never for BBB/eADR (nor for BEP with
/// per-operation epochs).
pub fn verify_recovery(
    kind: WorkloadKind,
    image: &NvmImage,
    cfg: &SimConfig,
    params: WorkloadParams,
) -> Result<u64, String> {
    let map = AddressMap::new(cfg);
    let base = map.persistent_base();
    let reserve = root_reserve(cfg);
    match kind {
        WorkloadKind::Rtree => crate::rtree::check_rtree_recovery(image, &map, base),
        WorkloadKind::Ctree => crate::ctree::check_ctree_recovery(image, &map, base),
        WorkloadKind::Btree => crate::btree::check_btree_recovery(image, &map, base),
        WorkloadKind::Hashmap => {
            let buckets = (params.initial / 2)
                .next_power_of_two()
                .clamp(64, reserve / 8);
            crate::hashmap::check_hashmap_recovery(image, &map, base, buckets)
        }
        WorkloadKind::MutateNC
        | WorkloadKind::MutateC
        | WorkloadKind::SwapNC
        | WorkloadKind::SwapC => {
            let elements = params.initial.div_ceil(cfg.cores as u64) * cfg.cores as u64;
            crate::arrays::check_array_recovery(image, base + reserve, elements)
        }
        WorkloadKind::PstoreLog => check_pstore_recovery(image, pstore_ring_base(cfg), params.seed),
        WorkloadKind::KvA | WorkloadKind::KvB | WorkloadKind::KvC => {
            check_kv_recovery(image, &kv_geometry(cfg, params))
        }
        WorkloadKind::Wal => check_wal_recovery(image, &wal_geometry(cfg, params)),
    }
}

/// A structured recovery-verification outcome: which workload was checked,
/// how much of the structure survived, and — on failure — what exactly was
/// inconsistent. Crash-sweep harnesses report and shrink against this
/// instead of a bare pass/fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Workload whose structure was verified.
    pub workload: WorkloadKind,
    /// Elements recovered (0 when the structure was corrupt).
    pub recovered: u64,
    /// First inconsistency found, if any.
    pub failure: Option<String>,
}

impl RecoveryReport {
    /// True when the structure verified clean.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.failure {
            None => write!(
                f,
                "{}: ok ({} recovered)",
                self.workload.name(),
                self.recovered
            ),
            Some(msg) => write!(f, "{}: FAILED — {msg}", self.workload.name()),
        }
    }
}

/// [`verify_recovery`] with a failure-describing report instead of a bare
/// `Result`: the sweep harness keeps the failing detail alongside the
/// crash point it belongs to.
#[must_use]
pub fn verify_recovery_report(
    kind: WorkloadKind,
    image: &NvmImage,
    cfg: &SimConfig,
    params: WorkloadParams,
) -> RecoveryReport {
    match verify_recovery(kind, image, cfg, params) {
        Ok(recovered) => RecoveryReport {
            workload: kind,
            recovered,
            failure: None,
        },
        Err(msg) => RecoveryReport {
            workload: kind,
            recovered: 0,
            failure: Some(msg),
        },
    }
}

/// Wraps a workload so every high-level operation ends with a persist
/// barrier — the epoch discipline Buffered Epoch Persistency requires the
/// programmer to add (one epoch per structure operation, the natural
/// failure-atomic granularity).
#[derive(Debug)]
pub struct EpochWorkload<W> {
    inner: W,
}

impl<W: Workload> EpochWorkload<W> {
    /// Wraps `inner`, delimiting each operation as one epoch.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }
}

impl<W: Workload> Workload for EpochWorkload<W> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        self.inner.setup(arch);
    }

    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        let mut batch = self.inner.next_batch(core, arch)?;
        batch.push(Op::Fence); // epoch boundary
        Some(batch)
    }
}

/// Boxed-workload variant of [`EpochWorkload`] for factory output.
#[must_use]
pub fn with_epoch_barriers(inner: Box<dyn Workload>) -> Box<dyn Workload> {
    Box::new(EpochWorkload::new(inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_core::{PersistencyMode, System};

    #[test]
    fn every_workload_constructs_and_runs() {
        for kind in WorkloadKind::EXTENDED {
            let cfg = SimConfig::small_for_tests();
            let mut w = make_workload(kind, &cfg, WorkloadParams::smoke());
            assert_eq!(w.name(), kind.name());
            let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
            sys.prepare(w.as_mut());
            let summary = sys.run(w.as_mut(), 500);
            assert!(summary.ops > 0, "{}: no ops ran", kind.name());
            sys.check_invariants();
        }
    }

    #[test]
    fn descriptions_and_pstores_cover_all() {
        for kind in WorkloadKind::EXTENDED {
            assert!(!kind.description().is_empty());
            assert!(kind.paper_pstore_pct() > 0.0);
        }
    }

    #[test]
    fn verify_recovery_dispatches_for_every_kind() {
        for kind in WorkloadKind::EXTENDED {
            let cfg = SimConfig::small_for_tests();
            let params = WorkloadParams::smoke();
            let mut w = make_workload(kind, &cfg, params);
            let mut sys = System::new(cfg.clone(), PersistencyMode::BbbMemorySide).unwrap();
            sys.prepare(w.as_mut());
            sys.run(w.as_mut(), 300);
            let img = sys.crash_now();
            let n = verify_recovery(kind, &img, &cfg, params)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert!(n > 0, "{}: nothing recovered", kind.name());
        }
    }

    #[test]
    fn server_kinds_construct_run_and_recover() {
        for kind in WorkloadKind::SERVER {
            let cfg = SimConfig::small_for_tests();
            let params = WorkloadParams::smoke();
            assert!(!kind.description().is_empty());
            assert!(kind.paper_pstore_pct() > 0.0);

            // Streaming path.
            let mut stream = make_stream(kind, &cfg, params, false).expect("server kind");
            assert_eq!(stream.name(), kind.name());
            let mut sys = System::new(cfg.clone(), PersistencyMode::BbbMemorySide).unwrap();
            sys.prepare_stream(stream.as_mut());
            let summary = sys.run_stream(stream.as_mut(), u64::MAX);
            assert!(summary.ops > 0, "{}: no ops ran", kind.name());
            sys.drain_all_store_buffers();
            let stream_stats = sys.stats();
            let img = sys.crash_now();
            let n = verify_recovery(kind, &img, &cfg, params)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert!(n > 0, "{}: nothing recovered", kind.name());

            // Batch adapter path produces the identical machine history.
            let mut w = make_workload(kind, &cfg, params);
            assert_eq!(w.name(), kind.name());
            let mut batch_sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
            batch_sys.prepare(w.as_mut());
            batch_sys.run(w.as_mut(), u64::MAX);
            batch_sys.drain_all_store_buffers();
            assert_eq!(stream_stats, batch_sys.stats(), "{}", kind.name());
        }
    }

    #[test]
    fn batch_kinds_have_no_stream() {
        for kind in WorkloadKind::EXTENDED {
            let cfg = SimConfig::small_for_tests();
            assert!(make_stream(kind, &cfg, WorkloadParams::smoke(), false).is_none());
        }
    }

    #[test]
    fn persisting_store_fraction_is_high_by_design() {
        // The paper's workloads are built to stress the bbPB: persisting
        // stores are a large share of all stores.
        let cfg = SimConfig::small_for_tests();
        let mut w = make_workload(WorkloadKind::SwapNC, &cfg, WorkloadParams::smoke());
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), u64::MAX);
        let st = sys.stats();
        assert_eq!(
            st.get("cores.persisting_stores"),
            st.get("cores.stores"),
            "array workloads only store to the persistent heap"
        );
    }
}

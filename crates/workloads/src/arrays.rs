//! The `mutate` and `swap` array workloads (paper Table IV).
//!
//! A 1M-element `u64` array in the persistent heap; each operation either
//! mutates one random element in place or swaps two random elements
//! (23.8% persisting stores in the paper — the heaviest persist pressure
//! of the suite, back-to-back with almost no computation).
//!
//! The `NC`/`C` suffix selects sharing (paper §IV-B): **non-conflicting**
//! gives each thread its own array region, **conflicting** lets every
//! thread touch the whole array, so blocks — and under BBB their bbPB
//! entries — migrate between cores.
//!
//! Crash discipline for `swap`: the two elements are written as
//! `a' = b, b' = a` with a per-element sequence tag; under strict
//! persistency a crash can only lose a *suffix* of committed stores, which
//! the checker validates by confirming the multiset of values survived or
//! the interrupted pair is detectable. To keep that checkable we use
//! self-identifying values: element `i` initially holds `TAG | i`.

use bbb_core::Workload;
use bbb_cpu::Op;
use bbb_mem::{ByteStore, NvmImage};
use bbb_sim::{Addr, AddressMap, SplitMix64};

use crate::builder::OpBuilder;

/// High-bit tag marking legitimate array values.
pub const ARRAY_TAG: u64 = 0xA44A_0000_0000_0000;

/// Element update flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayOpKind {
    /// `arr[i] = f(arr[i])` on one random element.
    Mutate,
    /// Swap two random elements.
    Swap,
}

/// Thread sharing pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// Each core updates only its own array slice.
    NonConflicting,
    /// All cores update the whole array.
    Conflicting,
}

/// The array mutate/swap workload.
#[derive(Debug)]
pub struct ArrayWorkload {
    base: Addr,
    elements: u64,
    kind: ArrayOpKind,
    sharing: Sharing,
    map: AddressMap,
    rngs: Vec<SplitMix64>,
    remaining: Vec<u64>,
    instrument: bool,
    ops_done: u64,
}

impl ArrayWorkload {
    /// Creates the workload over `elements` `u64`s at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is not divisible by the core count (regions
    /// must be equal) or is zero.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        map: AddressMap,
        base: Addr,
        elements: u64,
        kind: ArrayOpKind,
        sharing: Sharing,
        cores: usize,
        per_core_ops: u64,
        seed: u64,
        instrument: bool,
    ) -> Self {
        assert!(elements > 0, "empty array");
        assert_eq!(
            elements % cores as u64,
            0,
            "elements must divide evenly across cores"
        );
        let mut master = SplitMix64::new(seed);
        Self {
            base,
            elements,
            kind,
            sharing,
            map,
            rngs: (0..cores).map(|_| master.split()).collect(),
            remaining: vec![per_core_ops; cores],
            instrument,
            ops_done: 0,
        }
    }

    /// Operations performed so far.
    #[must_use]
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn slot(&self, index: u64) -> Addr {
        self.base + index * 8
    }

    /// Picks a random index within `core`'s allowed range.
    fn pick(&mut self, core: usize) -> u64 {
        let cores = self.rngs.len() as u64;
        match self.sharing {
            Sharing::Conflicting => self.rngs[core].next_below(self.elements),
            Sharing::NonConflicting => {
                let span = self.elements / cores;
                core as u64 * span + self.rngs[core].next_below(span)
            }
        }
    }
}

impl Workload for ArrayWorkload {
    fn name(&self) -> &str {
        match (self.kind, self.sharing) {
            (ArrayOpKind::Mutate, Sharing::NonConflicting) => "mutateNC",
            (ArrayOpKind::Mutate, Sharing::Conflicting) => "mutateC",
            (ArrayOpKind::Swap, Sharing::NonConflicting) => "swapNC",
            (ArrayOpKind::Swap, Sharing::Conflicting) => "swapC",
        }
    }

    fn setup(&mut self, arch: &mut ByteStore) {
        for i in 0..self.elements {
            arch.write_u64(self.slot(i), ARRAY_TAG | i);
        }
    }

    fn next_batch(&mut self, core: usize, arch: &mut ByteStore) -> Option<Vec<Op>> {
        if core >= self.remaining.len() || self.remaining[core] == 0 {
            return None;
        }
        self.remaining[core] -= 1;
        self.ops_done += 1;
        let map = self.map.clone();
        let mut b = OpBuilder::new(&map, self.instrument);
        match self.kind {
            ArrayOpKind::Mutate => {
                let i = self.pick(core);
                let a = self.slot(i);
                let v = b.load_u64(arch, a);
                // Mutate the low payload bits, preserving the tag.
                let nv = (v & 0xFFFF_0000_0000_0000) | ((v + 1) & 0xFFFF_FFFF_FFFF);
                b.store_u64(a, nv);
            }
            ArrayOpKind::Swap => {
                let i = self.pick(core);
                let j = self.pick(core);
                let (ai, aj) = (self.slot(i), self.slot(j));
                let vi = b.load_u64(arch, ai);
                let vj = b.load_u64(arch, aj);
                b.store_u64(ai, vj);
                b.store_u64(aj, vi);
            }
        }
        Some(b.finish())
    }
}

/// Validates a post-crash array image: every element carries the tag (no
/// torn/garbage values). Returns how many elements still hold their
/// *original* value (untouched or swapped back).
///
/// # Errors
///
/// Returns the index of the first untagged element.
pub fn check_array_recovery(image: &NvmImage, base: Addr, elements: u64) -> Result<u64, String> {
    let mut image = image.reader();
    let mut originals = 0;
    for i in 0..elements {
        let v = image.read_u64(base + i * 8);
        if v & 0xFFFF_0000_0000_0000 != ARRAY_TAG {
            return Err(format!("element {i} holds untagged value {v:#x}"));
        }
        if v == ARRAY_TAG | i {
            originals += 1;
        }
    }
    Ok(originals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_core::{PersistencyMode, System};
    use bbb_sim::SimConfig;

    const N: u64 = 64;

    fn build(
        mode: PersistencyMode,
        kind: ArrayOpKind,
        sharing: Sharing,
        per_core: u64,
    ) -> (System, ArrayWorkload) {
        let sys = System::new(SimConfig::small_for_tests(), mode).unwrap();
        let map = sys.address_map().clone();
        let base = map.persistent_base();
        let w = ArrayWorkload::new(map, base, N, kind, sharing, 2, per_core, 5, false);
        (sys, w)
    }

    #[test]
    fn names_follow_paper_convention() {
        for (kind, sharing, name) in [
            (ArrayOpKind::Mutate, Sharing::NonConflicting, "mutateNC"),
            (ArrayOpKind::Mutate, Sharing::Conflicting, "mutateC"),
            (ArrayOpKind::Swap, Sharing::NonConflicting, "swapNC"),
            (ArrayOpKind::Swap, Sharing::Conflicting, "swapC"),
        ] {
            let (_, w) = build(PersistencyMode::Eadr, kind, sharing, 0);
            assert_eq!(w.name(), name);
        }
    }

    #[test]
    fn nonconflicting_cores_stay_in_their_regions() {
        let (_, mut w) = build(
            PersistencyMode::Eadr,
            ArrayOpKind::Mutate,
            Sharing::NonConflicting,
            0,
        );
        for _ in 0..100 {
            assert!(w.pick(0) < N / 2);
            assert!(w.pick(1) >= N / 2);
        }
    }

    #[test]
    fn swaps_preserve_value_multiset_under_bbb() {
        let (mut sys, mut w) = build(
            PersistencyMode::BbbMemorySide,
            ArrayOpKind::Swap,
            Sharing::NonConflicting,
            30,
        );
        sys.prepare(&mut w);
        let summary = sys.run(&mut w, u64::MAX);
        assert!(summary.completed);
        sys.drain_all_store_buffers();
        sys.check_invariants();
        let base = sys.address_map().persistent_base();
        let img = sys.crash_now();
        check_array_recovery(&img, base, N).expect("all values tagged");
        // Complete (uninterrupted) swaps preserve the multiset exactly.
        let mut values: Vec<u64> = (0..N).map(|i| img.read_u64(base + i * 8)).collect();
        values.sort_unstable();
        let expected: Vec<u64> = (0..N).map(|i| ARRAY_TAG | i).collect();
        assert_eq!(values, expected);
    }

    #[test]
    fn mutations_are_durable_under_bbb() {
        let (mut sys, mut w) = build(
            PersistencyMode::BbbMemorySide,
            ArrayOpKind::Mutate,
            Sharing::Conflicting,
            20,
        );
        sys.prepare(&mut w);
        sys.run(&mut w, u64::MAX);
        sys.drain_all_store_buffers();
        let base = sys.address_map().persistent_base();
        let img = sys.crash_now();
        let originals = check_array_recovery(&img, base, N).expect("tagged");
        assert!(originals < N, "40 mutations must have changed something");
    }

    #[test]
    fn crash_mid_run_never_tears_under_bbb() {
        let (mut sys, mut w) = build(
            PersistencyMode::BbbMemorySide,
            ArrayOpKind::Swap,
            Sharing::Conflicting,
            100,
        );
        sys.prepare(&mut w);
        sys.run(&mut w, 137); // arbitrary mid-op cut
        let base = sys.address_map().persistent_base();
        let img = sys.crash_now();
        check_array_recovery(&img, base, N).expect("no garbage values ever");
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_partition_panics() {
        let map = AddressMap::new(&SimConfig::small_for_tests());
        let base = map.persistent_base();
        let _ = ArrayWorkload::new(
            map,
            base,
            63,
            ArrayOpKind::Mutate,
            Sharing::NonConflicting,
            2,
            0,
            0,
            false,
        );
    }
}

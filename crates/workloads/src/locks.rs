//! A workload-level spin lock for structures whose inserts mutate shared
//! nodes *in place* (rtree and btree append entries and publish them with
//! a count bump).
//!
//! Two cores appending into the same node would claim the same slot — a
//! data race real code guards with a lock (or per-slot CAS, which the op
//! stream cannot express). The lock lives in the workload, not in
//! simulated memory: acquisition happens at batch-generation time, and
//! release happens when the holder next asks for a batch — by then every
//! op of the locked batch has *committed*, which is exactly when its
//! stores became architecturally visible to other cores' generators.
//! While the lock is held, other cores emit short spin batches (the
//! cycles a real spinlock would burn) without consuming their op budget.
//!
//! Note this coordination is mode-independent plain concurrency control;
//! it neither adds nor removes any flush/fence, so the persistency-mode
//! comparison stays fair.

use bbb_cpu::Op;

/// Cycles one spin iteration burns while the lock is contended.
pub const SPIN_CYCLES: u32 = 24;

/// The single insert lock of one shared structure.
#[derive(Debug, Clone, Default)]
pub struct InsertLock {
    holder: Option<usize>,
}

impl InsertLock {
    /// An unheld lock.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Releases the lock if `core` holds it. Call first thing in
    /// `next_batch`: a core asking for a new batch has committed its
    /// previous one.
    pub fn release_if_held(&mut self, core: usize) {
        if self.holder == Some(core) {
            self.holder = None;
        }
    }

    /// Tries to take the lock for `core`; false when another core holds
    /// it (the caller should emit [`InsertLock::spin_batch`]).
    pub fn try_acquire(&mut self, core: usize) -> bool {
        if self.holder.is_none() {
            self.holder = Some(core);
            true
        } else {
            false
        }
    }

    /// Force-releases the lock (error paths that abandon the batch).
    pub fn release(&mut self) {
        self.holder = None;
    }

    /// The batch a contended core executes instead of an insert.
    #[must_use]
    pub fn spin_batch() -> Vec<Op> {
        vec![Op::Compute {
            cycles: SPIN_CYCLES,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_exclusive_until_released() {
        let mut l = InsertLock::new();
        assert!(l.try_acquire(0));
        assert!(!l.try_acquire(1));
        l.release_if_held(1); // non-holder release is a no-op
        assert!(!l.try_acquire(1));
        l.release_if_held(0);
        assert!(l.try_acquire(1));
        l.release();
        assert!(l.try_acquire(0));
    }

    #[test]
    fn spin_batch_is_pure_compute() {
        let b = InsertLock::spin_batch();
        assert_eq!(b.len(), 1);
        assert!(matches!(
            b[0],
            Op::Compute {
                cycles: SPIN_CYCLES
            }
        ));
    }
}

//! The persistent-heap allocator.
//!
//! The paper assumes persistent data is heap-allocated with a persistent
//! allocator ("palloc", §III-A), so persisting stores are identified purely
//! by the pages they touch. [`Palloc`] is a deterministic bump allocator
//! over the persistent address range, with per-core sub-arenas so parallel
//! workloads allocate without coordination (and without simulated-time
//! side effects — allocation metadata is not part of the modeled traffic,
//! matching how the paper's workloads pre-size their pools).

use bbb_sim::{Addr, AddressMap};

/// A bump allocator over the persistent heap, split into equal per-core
/// arenas.
///
/// # Examples
///
/// ```
/// use bbb_sim::{AddressMap, SimConfig};
/// use bbb_workloads::Palloc;
///
/// let map = AddressMap::new(&SimConfig::default());
/// let mut palloc = Palloc::new(&map, 2, 4096);
/// let a = palloc.alloc(0, 64).unwrap();
/// let b = palloc.alloc(0, 64).unwrap();
/// assert_ne!(a, b);
/// assert!(map.is_persistent(a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Palloc {
    arenas: Vec<Arena>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Arena {
    next: Addr,
    end: Addr,
}

impl Palloc {
    /// Carves the persistent heap (minus `reserved` leading bytes for
    /// roots) into one arena per core.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or the reserved area exceeds the heap.
    #[must_use]
    pub fn new(map: &AddressMap, cores: usize, reserved: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        let base = map.persistent_base().saturating_add(reserved);
        let end = map.persistent_end();
        assert!(base < end, "reserved area exceeds persistent heap");
        let per_core = (end - base) / cores as u64;
        let arenas = (0..cores as u64)
            .map(|c| Arena {
                next: base + c * per_core,
                end: base + (c + 1) * per_core,
            })
            .collect();
        Self { arenas }
    }

    /// Allocates `size` bytes in `core`'s arena, 8-byte aligned and never
    /// straddling a cache block when `size <= 64`.
    ///
    /// Returns `None` when the arena is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or `size == 0`.
    pub fn alloc(&mut self, core: usize, size: u64) -> Option<Addr> {
        assert!(size > 0, "zero-sized allocation");
        let arena = &mut self.arenas[core];
        let mut addr = (arena.next + 7) & !7;
        if size <= 64 {
            // Keep small objects inside one cache block, like a real
            // slab-style persistent allocator would.
            let block_off = addr % 64;
            if block_off + size > 64 {
                addr = (addr + 63) & !63;
            }
        }
        if addr + size > arena.end {
            return None;
        }
        arena.next = addr + size;
        Some(addr)
    }

    /// Re-creates an allocator after a crash: arenas are laid out as in
    /// [`Palloc::new`], but every arena whose range intersects
    /// `[floor_lo, floor_hi)` starts allocating above `floor_hi` (the
    /// recovered structure's high-water mark), so old nodes are never
    /// reused. A real persistent allocator would recover its own metadata;
    /// scanning the structure for its high-water mark is the classic
    /// log-free alternative.
    #[must_use]
    pub fn resuming(map: &AddressMap, cores: usize, reserved: u64, high_water: Addr) -> Self {
        let mut p = Self::new(map, cores, reserved);
        for arena in &mut p.arenas {
            if arena.next <= high_water && high_water < arena.end {
                arena.next = (high_water + 7) & !7;
            } else if arena.end <= high_water {
                // Entire arena below the mark: exhausted.
                arena.next = arena.end;
            }
        }
        p
    }

    /// Bytes still available in `core`'s arena.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn remaining(&self, core: usize) -> u64 {
        let a = &self.arenas[core];
        a.end.saturating_sub(a.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_sim::SimConfig;

    fn palloc(cores: usize) -> (Palloc, AddressMap) {
        let map = AddressMap::new(&SimConfig::small_for_tests());
        (Palloc::new(&map, cores, 1024), map)
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let (mut p, map) = palloc(1);
        let mut prev_end = 0;
        for _ in 0..100 {
            let a = p.alloc(0, 24).unwrap();
            assert_eq!(a % 8, 0);
            assert!(a >= prev_end, "no overlap");
            assert!(map.is_persistent(a));
            prev_end = a + 24;
        }
    }

    #[test]
    fn small_objects_stay_in_one_block() {
        let (mut p, _) = palloc(1);
        for _ in 0..200 {
            let a = p.alloc(0, 24).unwrap();
            assert_eq!(a / 64, (a + 23) / 64, "no block straddle");
        }
    }

    #[test]
    fn arenas_are_disjoint_across_cores() {
        let (mut p, _) = palloc(2);
        let a = p.alloc(0, 64).unwrap();
        let b = p.alloc(1, 64).unwrap();
        assert!(b >= a + p.remaining(0), "core 1 arena starts past core 0's");
    }

    #[test]
    fn exhaustion_returns_none() {
        let map = AddressMap::new(&SimConfig::small_for_tests());
        let mut p = Palloc::new(&map, 2, 0);
        let arena_size = p.remaining(0);
        assert!(p.alloc(0, arena_size + 64).is_none());
        // But a fitting allocation still works.
        assert!(p.alloc(0, 64).is_some());
    }

    #[test]
    fn reserved_area_is_untouched() {
        let map = AddressMap::new(&SimConfig::small_for_tests());
        let mut p = Palloc::new(&map, 1, 4096);
        let a = p.alloc(0, 8).unwrap();
        assert!(a >= map.persistent_base() + 4096);
    }

    #[test]
    #[should_panic(expected = "reserved area exceeds")]
    fn oversized_reservation_panics() {
        let map = AddressMap::new(&SimConfig::small_for_tests());
        let _ = Palloc::new(&map, 1, u64::MAX);
    }
}

//! Experiment-runner subsystem for the BBB evaluation suite.
//!
//! The paper's tables and figures are sweeps over *independent* simulation
//! points (workload × persistency mode × machine configuration). This crate
//! separates **what** an experiment sweeps from **how** it executes:
//!
//! * [`ExperimentSpec`] — one declarative point: workload, mode, machine
//!   configuration, sizing, and a display label,
//! * [`Runner`] — executes a `Vec<ExperimentSpec>` across a `std::thread`
//!   worker pool (`BBB_THREADS` entries, default = available parallelism),
//!   memoizes duplicate points (e.g. the eADR baselines that several
//!   figures share), and returns results **in spec order**, so output is
//!   byte-identical to a serial run,
//! * [`Report`] — the shared ASCII/JSON output layer: every bench binary
//!   renders through it, and `--json` additionally writes a
//!   machine-readable `BENCH_<name>.json` file for the perf trajectory.
//!
//! Determinism is load-bearing: a simulation point is a pure function of
//! its spec (the workload PRNG is seeded from the spec), so parallel
//! execution, memoization, and re-runs all produce bit-identical
//! [`Stats`](bbb_sim::Stats).
//!
//! # Scale control
//!
//! The paper simulates 250M instructions over 1M-node structures — hours
//! of wall-clock per point in any cycle-level simulator. Set the
//! `BBB_SCALE` environment variable to choose fidelity:
//!
//! * `smoke` — seconds per figure (CI default),
//! * `default` — a few minutes for the full set; large enough for the
//!   paper's shapes (knees at 16–64 bbPB entries, BBB-32 within a few
//!   percent of eADR),
//! * `paper` — 1M-node structures, long runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod report;
pub mod runner;
pub mod spec;

pub use json::Json;
pub use report::{json_requested, Report};
pub use runner::{execute_spec, unique_points, RunResult, Runner};
pub use spec::{ExperimentSpec, PAPER_SEED};

use bbb_sim::SimConfig;

/// Experiment sizing, selected via the `BBB_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Structure size built at setup.
    pub initial: u64,
    /// Measured operations per core.
    pub per_core_ops: u64,
}

impl Scale {
    /// CI sizing: seconds for the full figure set.
    pub const SMOKE: Scale = Scale {
        initial: 20_000,
        per_core_ops: 300,
    };
    /// Checked-in artifact sizing: minutes for the full set, large enough
    /// for the paper's shapes.
    pub const DEFAULT: Scale = Scale {
        initial: 400_000,
        per_core_ops: 2_000,
    };
    /// Paper sizing: 1M-node structures, long runs.
    pub const PAPER: Scale = Scale {
        initial: 1_000_000,
        per_core_ops: 8_000,
    };

    /// Reads `BBB_SCALE` (`smoke`, `default`, `paper`); unknown values get
    /// the default.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("BBB_SCALE").as_deref() {
            Ok("smoke") => Scale::SMOKE,
            Ok("paper") => Scale::PAPER,
            _ => Scale::DEFAULT,
        }
    }

    /// The preset name this sizing corresponds to (`smoke`, `default`,
    /// `paper`), or `custom` for hand-built sizings. Recorded in every
    /// report's metadata so the parity gate can tell which registry bands
    /// apply to an artifact.
    #[must_use]
    pub fn name(self) -> &'static str {
        if self == Scale::SMOKE {
            "smoke"
        } else if self == Scale::DEFAULT {
            "default"
        } else if self == Scale::PAPER {
            "paper"
        } else {
            "custom"
        }
    }
}

/// The paper's simulated machine (Table III), with a persistent heap large
/// enough for the selected scale.
#[must_use]
pub fn paper_config(scale: Scale) -> SimConfig {
    let mut cfg = SimConfig::default();
    // Heap: generous headroom over the structure footprint.
    let need = (scale.initial + 8 * scale.per_core_ops) * 512;
    cfg.persistent_heap_bytes = need.next_power_of_two().max(64 * 1024 * 1024);
    cfg
}

/// Ratio of `value` to `base`, clamping a zero base to 1 — the shared
/// normalization every "X normalized to eADR" table uses. The clamp keeps
/// degenerate smoke-scale points (a baseline that wrote nothing) from
/// producing infinities instead of a visibly wrong-but-finite ratio.
#[must_use]
pub fn norm(value: u64, base: u64) -> f64 {
    value as f64 / base.max(1) as f64
}

/// One normalized column of a figure table: accumulates per-workload
/// ratios, renders each as the standard `x.xxx` cell, and produces the
/// geomean footer cell — the pattern previously copy-pasted across the
/// fig7 / procside / spectrum binaries.
#[derive(Debug, Default, Clone)]
pub struct NormSeries {
    ratios: Vec<f64>,
}

impl NormSeries {
    /// An empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `norm(value, base)` and returns the rendered cell.
    pub fn push(&mut self, value: u64, base: u64) -> String {
        self.push_ratio(norm(value, base))
    }

    /// Records an already-computed ratio and returns the rendered cell.
    pub fn push_ratio(&mut self, ratio: f64) -> String {
        self.ratios.push(ratio);
        format!("{ratio:.3}")
    }

    /// The ratios recorded so far.
    #[must_use]
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// The geomean footer cell over everything recorded.
    #[must_use]
    pub fn geomean_cell(&self) -> String {
        format!("{:.3}", geomean(&self.ratios))
    }
}

/// Geometric mean of a slice of ratios.
///
/// # Panics
///
/// Panics if `xs` is empty or any element is non-positive.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_identity() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }

    #[test]
    fn scale_names_round_trip_presets() {
        assert_eq!(Scale::SMOKE.name(), "smoke");
        assert_eq!(Scale::DEFAULT.name(), "default");
        assert_eq!(Scale::PAPER.name(), "paper");
        let custom = Scale {
            initial: 7,
            per_core_ops: 3,
        };
        assert_eq!(custom.name(), "custom");
    }

    #[test]
    fn norm_clamps_zero_base() {
        assert!((norm(5, 0) - 5.0).abs() < 1e-12);
        assert!((norm(3, 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn norm_series_renders_cells_and_geomean() {
        let mut s = NormSeries::new();
        assert_eq!(s.push(1, 1), "1.000");
        assert_eq!(s.push_ratio(4.0), "4.000");
        assert_eq!(s.ratios(), &[1.0, 4.0]);
        assert_eq!(s.geomean_cell(), "2.000");
    }

    #[test]
    fn paper_config_heap_scales() {
        let small = paper_config(Scale {
            initial: 100,
            per_core_ops: 10,
        });
        let large = paper_config(Scale {
            initial: 1_000_000,
            per_core_ops: 8_000,
        });
        assert!(small.persistent_heap_bytes >= 64 * 1024 * 1024);
        assert!(large.persistent_heap_bytes > small.persistent_heap_bytes);
        assert!(large.persistent_heap_bytes.is_power_of_two());
    }
}

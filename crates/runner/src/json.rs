//! A minimal JSON document builder.
//!
//! The workspace builds offline with no registry access, so instead of
//! `serde_json` we carry the ~hundred lines of JSON we actually need:
//! building a document from owned values and serializing it with correct
//! string escaping. Output is deterministic (object keys keep insertion
//! order) so `BENCH_*.json` files diff cleanly across runs.

use std::fmt;

/// An owned JSON value.
///
/// # Examples
///
/// ```
/// use bbb_runner::Json;
/// let doc = Json::obj([
///     ("name", Json::from("fig7")),
///     ("points", Json::from(21u64)),
///     ("ratios", Json::arr([1.0, 0.5].map(Json::from))),
/// ]);
/// assert_eq!(
///     doc.to_string(),
///     r#"{"name":"fig7","points":21,"ratios":[1,0.5]}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters).
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from(1.5).to_string(), "1.5");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn nested_structures() {
        let doc = Json::obj([
            ("a", Json::arr([Json::from(1u64), Json::Null])),
            ("b", Json::obj([("c", Json::from("x"))])),
        ]);
        assert_eq!(doc.to_string(), r#"{"a":[1,null],"b":{"c":"x"}}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::arr([]).to_string(), "[]");
        assert_eq!(Json::obj::<String, _>([]).to_string(), "{}");
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let doc = Json::obj([("z", Json::Null), ("a", Json::Null)]);
        assert_eq!(doc.to_string(), r#"{"z":null,"a":null}"#);
    }
}

//! A minimal JSON document builder.
//!
//! The workspace builds offline with no registry access, so instead of
//! `serde_json` we carry the ~hundred lines of JSON we actually need:
//! building a document from owned values and serializing it with correct
//! string escaping. Output is deterministic (object keys keep insertion
//! order) so `BENCH_*.json` files diff cleanly across runs.

use std::fmt;

/// An owned JSON value.
///
/// # Examples
///
/// ```
/// use bbb_runner::Json;
/// let doc = Json::obj([
///     ("name", Json::from("fig7")),
///     ("points", Json::from(21u64)),
///     ("ratios", Json::arr([1.0, 0.5].map(Json::from))),
/// ]);
/// assert_eq!(
///     doc.to_string(),
///     r#"{"name":"fig7","points":21,"ratios":[1,0.5]}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters).
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Parses a JSON document.
    ///
    /// Accepts everything the [`Display`](fmt::Display) serializer emits
    /// (and standard JSON beyond it: `\/`, `\b`, `\f`, surrogate-pair
    /// escapes, exponent-form numbers). Integer literals without sign,
    /// fraction, or exponent that fit in `u64` become [`Json::UInt`];
    /// everything else numeric becomes [`Json::Num`]. Serializing a parsed
    /// value reproduces the input byte-for-byte for serializer-produced
    /// documents.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the byte offset and what went wrong.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after document"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` for other variants or a missing
    /// key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` for other variants.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents; `None` for other variants.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value of a `UInt` or `Num`; `None` for other variants.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(n) => Some(n as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The integer value of a `UInt`; `None` for other variants.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            _ => None,
        }
    }
}

/// A parse failure: what was expected and the byte offset where the input
/// stopped making sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            // The unescaped stretch is valid UTF-8 because the input is.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input str"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    self.expect(b'u')?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let integral_end = self.pos;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if self.pos == integral_end && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            message: format!("invalid number '{text}'"),
            offset: start,
        })
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from(1.5).to_string(), "1.5");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn nested_structures() {
        let doc = Json::obj([
            ("a", Json::arr([Json::from(1u64), Json::Null])),
            ("b", Json::obj([("c", Json::from("x"))])),
        ]);
        assert_eq!(doc.to_string(), r#"{"a":[1,null],"b":{"c":"x"}}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::arr([]).to_string(), "[]");
        assert_eq!(Json::obj::<String, _>([]).to_string(), "{}");
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let doc = Json::obj([("z", Json::Null), ("a", Json::Null)]);
        assert_eq!(doc.to_string(), r#"{"z":null,"a":null}"#);
    }

    /// Serialize → parse → serialize must be the identity on serializer
    /// output (the property the parity gate's reader relies on).
    fn assert_round_trips(doc: &Json) {
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"));
        assert_eq!(parsed.to_string(), text, "round trip of {text:?}");
    }

    #[test]
    fn round_trip_scalars() {
        for doc in [
            Json::Null,
            Json::from(true),
            Json::from(false),
            Json::from(0u64),
            Json::from(u64::MAX),
            Json::from(42u64),
            Json::Num(1.5),
            Json::Num(-0.25),
            Json::Num(2.155_759_648),
            Json::Num(29_049.156_782_435_515),
            Json::Num(1e300),
            Json::Num(-1e-300),
            Json::from("plain"),
            Json::from(""),
        ] {
            assert_round_trips(&doc);
        }
    }

    #[test]
    fn round_trip_every_escape_class() {
        // Each class the serializer emits: quote, backslash, the named
        // control escapes, and the \u00xx fallback for other controls.
        let mut s = String::from("q\"b\\n\nr\rt\t");
        for c in 0u32..0x20 {
            s.push(char::from_u32(c).unwrap());
        }
        s.push_str("héllo ünïcode 🚀");
        assert_round_trips(&Json::from(s.as_str()));
        let parsed = Json::parse(&Json::from(s.as_str()).to_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    #[test]
    fn round_trip_nested_document() {
        let doc = Json::obj([
            ("name", Json::from("fig7")),
            (
                "meta",
                Json::obj([
                    ("scale", Json::from("default")),
                    ("initial", Json::from(400_000u64)),
                    ("wall_seconds", Json::Num(2.155_759_648)),
                ]),
            ),
            (
                "tables",
                Json::arr([Json::obj([
                    ("title", Json::from("Fig. 7(a)")),
                    ("header", Json::arr([Json::from("Workload")])),
                    (
                        "rows",
                        Json::arr([Json::arr([Json::from("rtree"), Json::from("1.000")])]),
                    ),
                ])]),
            ),
            ("notes", Json::arr([])),
            ("empty_obj", Json::obj::<String, _>([])),
            ("nothing", Json::Null),
        ]);
        assert_round_trips(&doc);
    }

    #[test]
    fn parse_accepts_standard_json_beyond_serializer_output() {
        // Whitespace, \/ \b \f escapes, surrogate pairs, exponents.
        let doc =
            Json::parse(" { \"a\\/b\" : [ 1 , -2.5e1 , \"\\ud83d\\ude00\\b\\f\" ] } \n").unwrap();
        let items = doc.get("a/b").unwrap().as_arr().unwrap();
        assert_eq!(items[0], Json::UInt(1));
        assert_eq!(items[1], Json::Num(-25.0));
        assert_eq!(items[2].as_str(), Some("\u{1F600}\u{8}\u{c}"));
    }

    #[test]
    fn integer_literals_parse_as_uint_and_others_as_num() {
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        // Too big for u64: falls back to f64.
        assert!(matches!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Num(_)
        ));
        assert_eq!(Json::parse("-7").unwrap(), Json::Num(-7.0));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Num(7.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nul",
            "truefalse",
            "1 2",
            "01x",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_escapes_reject_every_torn_pair_shape() {
        // A high surrogate must be immediately followed by a \uXXXX low
        // surrogate; every other continuation is a parse error, including
        // the EOF-adjacent shapes where the decoder runs out of input
        // mid-pair.
        for bad in [
            "\"\\ud800",          // lone high surrogate, then EOF
            "\"\\ud800\"",        // lone high surrogate, then closing quote
            "\"\\ud800x\"",       // followed by a plain character
            "\"\\ud800\\t\"",     // followed by a non-\u escape
            "\"\\ud800\\",        // backslash then EOF
            "\"\\ud800\\u",       // \u then EOF
            "\"\\ud800\\u12\"",   // low half truncated mid-hex
            "\"\\ud800\\ud801\"", // followed by another high surrogate
            "\"\\udc00\"",        // lone low surrogate
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Valid pairs at the astral-plane boundaries still decode.
        let ok = Json::parse("\"\\ud800\\udc00 \\udbff\\udfff\"").unwrap();
        assert_eq!(ok.as_str(), Some("\u{10000} \u{10FFFF}"));
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse(r#"{"meta":{"scale":"smoke","threads":4},"xs":[1,2.5]}"#).unwrap();
        assert_eq!(
            doc.get("meta")
                .and_then(|m| m.get("scale"))
                .and_then(Json::as_str),
            Some("smoke")
        );
        assert_eq!(
            doc.get("meta")
                .and_then(|m| m.get("threads"))
                .and_then(Json::as_u64),
            Some(4)
        );
        let xs = doc.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs[0].as_f64(), Some(1.0));
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::Null.as_f64(), None);
    }
}

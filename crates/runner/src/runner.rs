//! Parallel, memoizing execution of experiment specs.
//!
//! Every spec is an independent [`System`] — there is no shared mutable
//! state between points — so the runner farms unique points out to a
//! `std::thread` worker pool and hands duplicate specs a shared result.
//! Results always come back **in spec order**, which makes table output
//! independent of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bbb_core::{RunSummary, System};
use bbb_sim::Stats;
use bbb_workloads::{make_stream, make_workload, suite::with_epoch_barriers};

use crate::ExperimentSpec;

/// The result of one simulated experiment point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Run summary (cycles, ops).
    pub summary: RunSummary,
    /// Merged component statistics snapshot.
    pub stats: Stats,
}

impl RunResult {
    /// Execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.summary.cycles
    }

    /// Writes to NVMM media (the endurance metric of Fig. 7(b)).
    #[must_use]
    pub fn nvmm_writes(&self) -> u64 {
        self.stats.get("nvmm.writes")
    }

    /// Steady-state NVMM writes: media writes plus blocks still dirty in
    /// the mode's holding structures at window end (their media write
    /// falls just past the measured window; the paper's long 250M-
    /// instruction windows make this end effect invisible, short windows
    /// must add it back for a fair comparison).
    #[must_use]
    pub fn nvmm_writes_steady(&self) -> u64 {
        self.stats.get("nvmm.writes") + self.stats.get("sim.residual_persist_blocks")
    }
}

/// Executes one spec to completion on the calling thread. Pure in the
/// functional sense: the result is fully determined by the spec.
///
/// Server-scale kinds take the streaming path ([`System::run_stream`]):
/// one op is pulled at a time and memory stays O(live keys) regardless of
/// the op budget. Batch kinds are unchanged.
#[must_use]
pub fn execute_spec(spec: &ExperimentSpec) -> RunResult {
    let mut sys = System::new(spec.cfg.clone(), spec.mode).expect("valid config");
    let summary = if let Some(mut stream) =
        make_stream(spec.workload, &spec.cfg, spec.params, spec.epoch_barriers)
    {
        sys.prepare_stream(stream.as_mut());
        sys.run_stream(stream.as_mut(), spec.op_budget)
    } else {
        let mut w = make_workload(spec.workload, &spec.cfg, spec.params);
        if spec.epoch_barriers {
            w = with_epoch_barriers(w);
        }
        sys.prepare(w.as_mut());
        sys.run(w.as_mut(), spec.op_budget)
    };
    if spec.op_budget == u64::MAX {
        // End-of-measurement barrier; budget-capped runs skip it so crash
        // semantics stay observable to exploration drivers.
        sys.drain_all_store_buffers();
    }
    RunResult {
        summary,
        stats: sys.stats(),
    }
}

/// Number of distinct simulation points in `specs` (what the runner will
/// actually execute; the rest are memoized duplicates).
#[must_use]
pub fn unique_points(specs: &[ExperimentSpec]) -> usize {
    plan(specs).0.len()
}

/// Returns `(jobs, assignment)`: `jobs[j]` is the spec index that defines
/// unique point `j`, and `assignment[i]` is the job each spec maps to.
fn plan(specs: &[ExperimentSpec]) -> (Vec<usize>, Vec<usize>) {
    let mut jobs: Vec<usize> = Vec::new();
    let mut assignment: Vec<usize> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let job = jobs
            .iter()
            .position(|&j| specs[j].same_point(spec))
            .unwrap_or_else(|| {
                jobs.push(i);
                jobs.len() - 1
            });
        assignment.push(job);
    }
    (jobs, assignment)
}

/// The experiment executor: a fixed-size `std::thread` worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner sized by the `BBB_THREADS` env var, defaulting to the
    /// machine's available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var("BBB_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Self::with_threads(threads)
    }

    /// A runner with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes one spec on the calling thread.
    #[must_use]
    pub fn run_one(&self, spec: &ExperimentSpec) -> RunResult {
        execute_spec(spec)
    }

    /// Applies `f` to every item on the worker pool, returning results in
    /// item order regardless of thread count. This is the primitive
    /// [`Runner::run`] is built on; other drivers (the crash-sweep
    /// harness, ablations) use it directly to parallelise work that is
    /// not shaped like an [`ExperimentSpec`].
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (`f` panicked on some item).
    #[must_use]
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            for (slot, item) in slots.iter().zip(items) {
                *slot.lock().expect("unpoisoned") = Some(f(item));
            }
        } else {
            let next = AtomicUsize::new(0);
            let f = &f;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= items.len() {
                            break;
                        }
                        let result = f(&items[j]);
                        *slots[j].lock().expect("unpoisoned") = Some(result);
                    });
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned")
                    .expect("every item executed")
            })
            .collect()
    }

    /// Executes every spec, returning results in spec order. Duplicate
    /// points (specs for which [`ExperimentSpec::same_point`] holds) are
    /// executed once and share the result. Execution is deterministic:
    /// the returned vector is identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a spec failed to execute).
    #[must_use]
    pub fn run(&self, specs: &[ExperimentSpec]) -> Vec<RunResult> {
        let (jobs, assignment) = plan(specs);
        let results = self.map(&jobs, |&spec_idx| execute_spec(&specs[spec_idx]));
        assignment.into_iter().map(|j| results[j].clone()).collect()
    }
}

// Results cross thread boundaries on their way back to the caller.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RunResult>();
    assert_send_sync::<Runner>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_config, Scale};
    use bbb_core::PersistencyMode;
    use bbb_sim::SimConfig;
    use bbb_workloads::WorkloadKind;

    fn tiny_scale() -> Scale {
        Scale {
            initial: 200,
            per_core_ops: 20,
        }
    }

    fn tiny_specs() -> Vec<ExperimentSpec> {
        let scale = tiny_scale();
        let cfg = paper_config(scale);
        let mut specs = Vec::new();
        for kind in [WorkloadKind::Hashmap, WorkloadKind::SwapC] {
            specs.push(ExperimentSpec::new(
                kind,
                PersistencyMode::Eadr,
                &cfg,
                scale,
            ));
            specs.push(ExperimentSpec::new(
                kind,
                PersistencyMode::BbbMemorySide,
                &cfg,
                scale,
            ));
        }
        // A duplicate of the first baseline, as fig7/procside-style sweeps
        // produce; and a relabeled duplicate.
        specs.push(specs[0].clone());
        specs.push(specs[1].clone().labeled("again"));
        specs
    }

    #[test]
    fn executes_a_point() {
        let scale = tiny_scale();
        let cfg = paper_config(scale);
        let spec = ExperimentSpec::new(
            WorkloadKind::Hashmap,
            PersistencyMode::BbbMemorySide,
            &cfg,
            scale,
        );
        let r = Runner::with_threads(1).run_one(&spec);
        assert!(r.summary.ops > 0);
        assert!(r.cycles() > 0);
        assert!(r.nvmm_writes() > 0);
        assert!(r.nvmm_writes_steady() >= r.nvmm_writes());
    }

    #[test]
    fn duplicate_points_are_memoized() {
        let specs = tiny_specs();
        assert_eq!(specs.len(), 6);
        assert_eq!(unique_points(&specs), 4, "two duplicates fold away");
        let results = Runner::with_threads(2).run(&specs);
        assert_eq!(results.len(), specs.len());
        assert_eq!(results[4], results[0], "memoized result is shared");
        assert_eq!(results[5], results[1]);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let specs = tiny_specs();
        let serial = Runner::with_threads(1).run(&specs);
        let parallel = Runner::with_threads(4).run(&specs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn results_come_back_in_spec_order() {
        let scale = tiny_scale();
        let cfg = paper_config(scale);
        let slow = ExperimentSpec::new(WorkloadKind::Ctree, PersistencyMode::Pmem, &cfg, scale);
        let fast = ExperimentSpec::new(WorkloadKind::Ctree, PersistencyMode::Eadr, &cfg, scale);
        let results = Runner::with_threads(2).run(&[slow.clone(), fast.clone()]);
        assert_eq!(results[0], execute_spec(&slow));
        assert_eq!(results[1], execute_spec(&fast));
        assert!(
            results[0].cycles() > results[1].cycles(),
            "PMEM flushes must cost cycles"
        );
    }

    #[test]
    fn map_preserves_item_order_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let square = |x: &u64| x * x;
        let serial = Runner::with_threads(1).map(&items, square);
        let parallel = Runner::with_threads(8).map(&items, square);
        assert_eq!(serial, parallel);
        assert_eq!(serial, items.iter().map(square).collect::<Vec<_>>());
        assert!(Runner::with_threads(4)
            .map::<u64, u64, _>(&[], square)
            .is_empty());
    }

    #[test]
    fn empty_spec_list_is_fine() {
        assert!(Runner::from_env().run(&[]).is_empty());
        assert_eq!(unique_points(&[]), 0);
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(Runner::with_threads(0).threads(), 1);
        assert!(Runner::from_env().threads() >= 1);
    }

    #[test]
    fn budget_capped_runs_skip_the_drain_barrier() {
        let mut cfg = SimConfig::small_for_tests();
        cfg.persistent_heap_bytes = 512 * 1024;
        let spec = ExperimentSpec::new(
            WorkloadKind::Hashmap,
            PersistencyMode::BbbMemorySide,
            &cfg,
            Scale {
                initial: 64,
                per_core_ops: 50,
            },
        )
        .with_op_budget(10);
        let r = execute_spec(&spec);
        assert_eq!(r.summary.ops, 10);
        assert!(!r.summary.completed);
    }
}

//! Declarative experiment points.
//!
//! An [`ExperimentSpec`] captures everything that determines a simulation
//! point's result: the workload, the persistency mode, the full machine
//! configuration, the workload sizing, whether epoch barriers are
//! inserted, and the op budget. Two specs that agree on all of those are
//! the *same point* — the [`Runner`](crate::Runner) runs such duplicates
//! once and shares the result. The `label` is display-only and excluded
//! from point identity.

use bbb_core::PersistencyMode;
use bbb_sim::{DrainPolicy, SimConfig};
use bbb_workloads::{WorkloadKind, WorkloadParams};

use crate::Scale;

/// The master seed every paper experiment uses, so results are
/// reproducible across runs, machines, and thread counts.
pub const PAPER_SEED: u64 = 0xBBB_5EED;

/// One declarative simulation point of an experiment sweep.
///
/// Construct with [`ExperimentSpec::new`] and refine with the builder
/// methods:
///
/// ```
/// use bbb_core::PersistencyMode;
/// use bbb_runner::{ExperimentSpec, Scale};
/// use bbb_sim::SimConfig;
/// use bbb_workloads::WorkloadKind;
///
/// let scale = Scale { initial: 100, per_core_ops: 10 };
/// let cfg = SimConfig::small_for_tests();
/// let spec = ExperimentSpec::new(WorkloadKind::Ctree, PersistencyMode::BbbMemorySide, &cfg, scale)
///     .with_entries(1024)
///     .labeled("BBB (1024)");
/// assert_eq!(spec.cfg.bbpb.entries, 1024);
/// assert_eq!(spec.label, "BBB (1024)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentSpec {
    /// Display label for progress and reports (not part of point identity).
    pub label: String,
    /// Which Table IV workload to run.
    pub workload: WorkloadKind,
    /// Which persistency machine to run it on.
    pub mode: PersistencyMode,
    /// The complete simulated-machine configuration.
    pub cfg: SimConfig,
    /// Workload sizing and seeding.
    pub params: WorkloadParams,
    /// Insert an epoch barrier after every high-level operation (set
    /// automatically for modes that require it, e.g. BEP).
    pub epoch_barriers: bool,
    /// Total committed-op budget (`u64::MAX` = run to completion).
    pub op_budget: u64,
}

impl ExperimentSpec {
    /// A run-to-completion point at the given scale, seeded with
    /// [`PAPER_SEED`], instrumented with `clwb`/`sfence` exactly when the
    /// mode requires software flushes, and with epoch barriers exactly
    /// when the mode requires them.
    #[must_use]
    pub fn new(
        workload: WorkloadKind,
        mode: PersistencyMode,
        cfg: &SimConfig,
        scale: Scale,
    ) -> Self {
        Self {
            label: format!("{}/{mode}", workload.name()),
            workload,
            mode,
            cfg: cfg.clone(),
            params: WorkloadParams {
                initial: scale.initial,
                per_core_ops: scale.per_core_ops,
                seed: PAPER_SEED,
                instrument: mode.requires_flushes(),
            },
            epoch_barriers: mode.requires_epoch_barriers(),
            op_budget: u64::MAX,
        }
    }

    /// Replaces the display label.
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Overrides the bbPB entry count.
    #[must_use]
    pub fn with_entries(mut self, entries: usize) -> Self {
        self.cfg.bbpb.entries = entries;
        self
    }

    /// Overrides the bbPB drain policy.
    #[must_use]
    pub fn with_drain_policy(mut self, policy: DrainPolicy) -> Self {
        self.cfg.bbpb.drain_policy = policy;
        self
    }

    /// Overrides the simulated core count (exploration drivers sweep
    /// 8–64).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cfg.cores = cores;
        self
    }

    /// Overrides the memory controller's write-pending-queue depth.
    #[must_use]
    pub fn with_wpq_entries(mut self, entries: usize) -> Self {
        self.cfg.mem.wpq_entries = entries;
        self
    }

    /// Turns the persistent-writeback-suppression endurance optimization
    /// on or off.
    #[must_use]
    pub fn with_writeback_suppression(mut self, on: bool) -> Self {
        self.cfg.suppress_persistent_writebacks = on;
        self
    }

    /// Forces epoch barriers on or off (BEP always runs with them on,
    /// regardless of this override).
    #[must_use]
    pub fn with_epoch_barriers(mut self, on: bool) -> Self {
        self.epoch_barriers = on || self.mode.requires_epoch_barriers();
        self
    }

    /// Replaces the workload sizing/seeding wholesale (exploration
    /// drivers). `instrument` is forced back to the mode's requirement.
    #[must_use]
    pub fn with_params(mut self, params: WorkloadParams) -> Self {
        self.params = WorkloadParams {
            instrument: self.mode.requires_flushes(),
            ..params
        };
        self
    }

    /// Caps the run at `ops` committed operations.
    #[must_use]
    pub fn with_op_budget(mut self, ops: u64) -> Self {
        self.op_budget = ops;
        self
    }

    /// True when `other` denotes the identical simulation point (labels
    /// are display-only and ignored).
    #[must_use]
    pub fn same_point(&self, other: &Self) -> bool {
        self.workload == other.workload
            && self.mode == other.mode
            && self.cfg == other.cfg
            && self.params == other.params
            && self.epoch_barriers == other.epoch_barriers
            && self.op_budget == other.op_budget
    }
}

// The runner moves specs across worker threads; keep that property
// checked at compile time (no Rc/RefCell may creep into the spec graph).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExperimentSpec>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> Scale {
        Scale {
            initial: 64,
            per_core_ops: 8,
        }
    }

    #[test]
    fn new_spec_matches_mode_requirements() {
        let cfg = SimConfig::small_for_tests();
        let pmem = ExperimentSpec::new(WorkloadKind::Ctree, PersistencyMode::Pmem, &cfg, scale());
        assert!(pmem.params.instrument, "PMEM needs clwb/sfence");
        assert!(!pmem.epoch_barriers);

        let bep = ExperimentSpec::new(WorkloadKind::Ctree, PersistencyMode::Bep, &cfg, scale());
        assert!(!bep.params.instrument);
        assert!(bep.epoch_barriers, "BEP needs epoch barriers");

        let bbb = ExperimentSpec::new(
            WorkloadKind::Ctree,
            PersistencyMode::BbbMemorySide,
            &cfg,
            scale(),
        );
        assert!(!bbb.params.instrument);
        assert!(!bbb.epoch_barriers);
        assert_eq!(bbb.params.seed, PAPER_SEED);
        assert_eq!(bbb.op_budget, u64::MAX);
    }

    #[test]
    fn labels_do_not_affect_point_identity() {
        let cfg = SimConfig::small_for_tests();
        let a = ExperimentSpec::new(WorkloadKind::Hashmap, PersistencyMode::Eadr, &cfg, scale());
        let b = a.clone().labeled("baseline");
        assert_ne!(a.label, b.label);
        assert!(a.same_point(&b));
    }

    #[test]
    fn overrides_change_point_identity() {
        let cfg = SimConfig::small_for_tests();
        let a = ExperimentSpec::new(
            WorkloadKind::Hashmap,
            PersistencyMode::BbbMemorySide,
            &cfg,
            scale(),
        );
        assert!(!a.same_point(&a.clone().with_entries(a.cfg.bbpb.entries * 2)));
        assert!(!a.same_point(&a.clone().with_cores(a.cfg.cores + 1)));
        assert!(!a.same_point(&a.clone().with_wpq_entries(a.cfg.mem.wpq_entries * 2)));
        assert!(!a.same_point(&a.clone().with_drain_policy(DrainPolicy::Eager)));
        assert!(!a.same_point(&a.clone().with_writeback_suppression(false)));
        assert!(!a.same_point(&a.clone().with_epoch_barriers(true)));
        assert!(!a.same_point(&a.clone().with_op_budget(10)));
        assert!(a.same_point(&a.clone()));
    }

    #[test]
    fn single_field_changes_never_alias_memo_entries() {
        use bbb_sim::{BbpbConfig, CacheConfig, CoreConfig, MemTiming};

        let cfg = SimConfig::small_for_tests();
        let base = ExperimentSpec::new(
            WorkloadKind::Hashmap,
            PersistencyMode::BbbMemorySide,
            &cfg,
            scale(),
        );

        // Compile-time exhaustiveness guard: destructure every struct the
        // memo key must cover, with no `..` rest pattern. A field added to
        // any of them fails this binding, forcing the variant list below
        // (and `same_point`) to be revisited.
        {
            let SimConfig {
                cores: _,
                core,
                l1d,
                l2: _,
                mem,
                bbpb,
                dram_bytes: _,
                nvmm_bytes: _,
                persistent_heap_bytes: _,
                noc_hop: _,
                battery_backed_sb: _,
                relaxed_sb_drain: _,
                suppress_persistent_writebacks: _,
            } = base.cfg.clone();
            let CoreConfig {
                issue_width: _,
                retire_width: _,
                rob_entries: _,
                lsq_entries: _,
                store_buffer_entries: _,
            } = core;
            let CacheConfig {
                capacity_bytes: _,
                ways: _,
                latency: _,
            } = l1d;
            let MemTiming {
                dram_access: _,
                nvmm_read: _,
                nvmm_write: _,
                wpq_entries: _,
                nvmm_channels: _,
            } = mem;
            let BbpbConfig {
                entries: _,
                drain_policy: _,
                drain_latency: _,
            } = bbpb;
            let WorkloadParams {
                initial: _,
                per_core_ops: _,
                seed: _,
                instrument: _,
            } = base.params;
            let ExperimentSpec {
                label: _,
                workload: _,
                mode: _,
                cfg: _,
                params: _,
                epoch_barriers: _,
                op_budget: _,
            } = base.clone();
        }

        // One variant per public field (`label` excluded by design).
        type FieldMut = (&'static str, fn(&mut ExperimentSpec));
        let muts: Vec<FieldMut> = vec![
            ("workload", |s| s.workload = WorkloadKind::Ctree),
            ("mode", |s| s.mode = PersistencyMode::Eadr),
            ("epoch_barriers", |s| s.epoch_barriers = true),
            ("op_budget", |s| s.op_budget = 17),
            ("params.initial", |s| s.params.initial += 1),
            ("params.per_core_ops", |s| s.params.per_core_ops += 1),
            ("params.seed", |s| s.params.seed += 1),
            ("params.instrument", |s| s.params.instrument = true),
            ("cfg.cores", |s| s.cfg.cores += 1),
            ("cfg.core.issue_width", |s| s.cfg.core.issue_width += 1),
            ("cfg.core.retire_width", |s| s.cfg.core.retire_width += 1),
            ("cfg.core.rob_entries", |s| s.cfg.core.rob_entries += 1),
            ("cfg.core.lsq_entries", |s| s.cfg.core.lsq_entries += 1),
            ("cfg.core.store_buffer_entries", |s| {
                s.cfg.core.store_buffer_entries += 1;
            }),
            ("cfg.l1d.capacity_bytes", |s| {
                s.cfg.l1d.capacity_bytes *= 2;
            }),
            ("cfg.l1d.ways", |s| s.cfg.l1d.ways *= 2),
            ("cfg.l1d.latency", |s| s.cfg.l1d.latency += 1),
            ("cfg.l2.capacity_bytes", |s| s.cfg.l2.capacity_bytes *= 2),
            ("cfg.l2.ways", |s| s.cfg.l2.ways *= 2),
            ("cfg.l2.latency", |s| s.cfg.l2.latency += 1),
            ("cfg.mem.dram_access", |s| s.cfg.mem.dram_access += 1),
            ("cfg.mem.nvmm_read", |s| s.cfg.mem.nvmm_read += 1),
            ("cfg.mem.nvmm_write", |s| s.cfg.mem.nvmm_write += 1),
            ("cfg.mem.wpq_entries", |s| s.cfg.mem.wpq_entries *= 2),
            ("cfg.mem.nvmm_channels", |s| s.cfg.mem.nvmm_channels *= 2),
            ("cfg.bbpb.entries", |s| s.cfg.bbpb.entries *= 2),
            ("cfg.bbpb.drain_policy", |s| {
                s.cfg.bbpb.drain_policy = DrainPolicy::Eager;
            }),
            ("cfg.bbpb.drain_latency", |s| {
                s.cfg.bbpb.drain_latency += 1;
            }),
            ("cfg.dram_bytes", |s| s.cfg.dram_bytes *= 2),
            ("cfg.nvmm_bytes", |s| s.cfg.nvmm_bytes *= 2),
            ("cfg.persistent_heap_bytes", |s| {
                s.cfg.persistent_heap_bytes *= 2;
            }),
            ("cfg.noc_hop", |s| s.cfg.noc_hop += 1),
            ("cfg.battery_backed_sb", |s| {
                s.cfg.battery_backed_sb = !s.cfg.battery_backed_sb;
            }),
            ("cfg.relaxed_sb_drain", |s| {
                s.cfg.relaxed_sb_drain = !s.cfg.relaxed_sb_drain;
            }),
            ("cfg.suppress_persistent_writebacks", |s| {
                s.cfg.suppress_persistent_writebacks = !s.cfg.suppress_persistent_writebacks;
            }),
        ];

        let mut specs = vec![base.clone()];
        for (field, f) in muts {
            let mut v = base.clone();
            f(&mut v);
            assert!(
                !base.same_point(&v),
                "a spec differing only in {field} would alias the base's memo entry"
            );
            specs.push(v);
        }
        // The runner's memo cache must see every variant as its own point…
        assert_eq!(crate::unique_points(&specs), specs.len());
        // …while true duplicates still share one.
        specs.push(base.clone());
        assert_eq!(crate::unique_points(&specs), specs.len() - 1);
    }

    #[test]
    fn bep_keeps_barriers_even_when_disabled() {
        let cfg = SimConfig::small_for_tests();
        let bep = ExperimentSpec::new(WorkloadKind::Ctree, PersistencyMode::Bep, &cfg, scale())
            .with_epoch_barriers(false);
        assert!(bep.epoch_barriers);
    }

    #[test]
    fn with_params_preserves_instrumentation_requirement() {
        let cfg = SimConfig::small_for_tests();
        let spec = ExperimentSpec::new(WorkloadKind::Ctree, PersistencyMode::Pmem, &cfg, scale())
            .with_params(WorkloadParams {
                initial: 10,
                per_core_ops: 5,
                seed: 7,
                instrument: false,
            });
        assert!(spec.params.instrument, "mode requirement wins");
        assert_eq!(spec.params.seed, 7);
    }
}

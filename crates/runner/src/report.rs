//! The shared output layer for every bench binary.
//!
//! A [`Report`] is an ordered sequence of ASCII tables and note lines.
//! Every binary prints through it, and when `--json` is on the command
//! line (or `BBB_JSON=1` is set) the same content is additionally written
//! as machine-readable JSON to `BENCH_<name>.json` — the format the perf
//! trajectory ingests. Table rendering happens once, so the text output
//! is identical whether or not JSON is requested.

use std::fmt::Write as _;
use std::path::PathBuf;

use bbb_sim::Table;

use crate::{Json, Scale};

/// True when the current process was asked for JSON output, via a
/// `--json` argument or `BBB_JSON=1` in the environment.
#[must_use]
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json") || std::env::var("BBB_JSON").is_ok_and(|v| v == "1")
}

#[derive(Debug, Clone)]
enum Item {
    Table(Table),
    Note(String),
}

/// An experiment report: tables interleaved with explanatory notes, plus
/// metadata key/values that only appear in the JSON document.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    meta: Vec<(String, Json)>,
    items: Vec<Item>,
    json: bool,
}

impl Report {
    /// A report named `name` (the JSON file becomes `BENCH_<name>.json`),
    /// with JSON output decided by [`json_requested`].
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self::with_json(name, json_requested())
    }

    /// A report with JSON output explicitly on or off.
    ///
    /// JSON reports always carry `commit` (the git HEAD that produced the
    /// artifact, `unknown` outside a repository) and `command` (the
    /// invocation that regenerates it) in their metadata, so every
    /// committed `BENCH_*.json` is self-describing and the parity gate can
    /// reject artifacts of unknown provenance.
    #[must_use]
    pub fn with_json(name: &str, json: bool) -> Self {
        let mut meta = Vec::new();
        if json {
            meta.push(("commit".to_owned(), Json::from(git_head())));
            meta.push(("command".to_owned(), Json::from(invocation())));
        }
        Self {
            name: name.to_owned(),
            meta,
            items: Vec::new(),
            json,
        }
    }

    /// Attaches a metadata key/value (JSON output only).
    pub fn meta(&mut self, key: &str, value: impl Into<Json>) {
        self.meta.push((key.to_owned(), value.into()));
    }

    /// Records the experiment scale — preset name plus sizing — as
    /// metadata and as the standard trailing note line.
    pub fn meta_scale(&mut self, scale: Scale) {
        self.meta("scale", scale.name());
        self.meta("initial", scale.initial);
        self.meta("per_core_ops", scale.per_core_ops);
    }

    /// Records a non-preset scale name (`analytic` for model-only tables,
    /// a crashfuzz grid name, ...) for binaries whose output does not
    /// depend on `BBB_SCALE`. The parity gate requires every artifact to
    /// declare *some* scale.
    pub fn meta_scale_name(&mut self, name: &str) {
        self.meta("scale", name);
    }

    /// Appends a table.
    pub fn table(&mut self, table: Table) {
        self.items.push(Item::Table(table));
    }

    /// Appends one note line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.items.push(Item::Note(line.into()));
    }

    /// The standard scale footer every simulation-backed binary prints.
    pub fn note_scale(&mut self, scale: Scale) {
        self.note(format!(
            "scale: initial={} per-core-ops={} (set BBB_SCALE=smoke|default|paper)",
            scale.initial, scale.per_core_ops
        ));
    }

    /// Renders the ASCII form: each table followed by a blank line, note
    /// blocks separated from a following table by a blank line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut prev_was_note = false;
        for item in &self.items {
            match item {
                Item::Table(t) => {
                    if prev_was_note {
                        out.push('\n');
                    }
                    let _ = write!(out, "{t}");
                    out.push('\n');
                    prev_was_note = false;
                }
                Item::Note(line) => {
                    out.push_str(line);
                    out.push('\n');
                    prev_was_note = true;
                }
            }
        }
        out
    }

    /// The machine-readable document written to `BENCH_<name>.json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let tables: Vec<Json> = self
            .items
            .iter()
            .filter_map(|item| match item {
                Item::Table(t) => Some(table_to_json(t)),
                Item::Note(_) => None,
            })
            .collect();
        let notes: Vec<Json> = self
            .items
            .iter()
            .filter_map(|item| match item {
                Item::Note(line) => Some(Json::from(line.as_str())),
                Item::Table(_) => None,
            })
            .collect();
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("meta", Json::Obj(self.meta.clone())),
            ("tables", Json::Arr(tables)),
            ("notes", Json::Arr(notes)),
        ])
    }

    /// Where the JSON document goes: `BENCH_<name>.json` in `BBB_JSON_DIR`
    /// (default: the current directory).
    #[must_use]
    pub fn json_path(&self) -> PathBuf {
        let dir = std::env::var("BBB_JSON_DIR").unwrap_or_else(|_| ".".into());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Prints the ASCII report to stdout and, when JSON was requested,
    /// writes `BENCH_<name>.json` (announced on stderr so stdout stays
    /// diffable). A missing `BBB_JSON_DIR` is created.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the JSON file cannot be written.
    pub fn emit(&self) -> std::io::Result<()> {
        print!("{}", self.render_text());
        self.write_json()
    }

    /// Like [`emit`](Self::emit), but prints the ASCII report to stderr.
    /// For reports that carry wall-clock numbers: stdout must stay
    /// byte-identical across `BBB_THREADS` settings (the same convention
    /// that keeps `simulate`'s timing line off stdout), so anything
    /// timing-bearing goes to stderr while the JSON document is written
    /// as usual.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the JSON file cannot be written.
    pub fn emit_to_stderr(&self) -> std::io::Result<()> {
        eprint!("{}", self.render_text());
        self.write_json()
    }

    fn write_json(&self) -> std::io::Result<()> {
        if self.json {
            let path = self.json_path();
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            std::fs::write(&path, format!("{}\n", self.to_json()))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    }
}

/// The short hash of the git HEAD in the current directory, or `unknown`
/// when git is unavailable (e.g. running from an exported tarball).
fn git_head() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The regenerating invocation: binary basename plus arguments.
fn invocation() -> String {
    let mut args = std::env::args();
    let bin = args
        .next()
        .map(|a| {
            PathBuf::from(a)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        })
        .unwrap_or_default();
    std::iter::once(bin)
        .chain(args)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Serializes a table as `{"title", "header", "rows"}` with all cells as
/// strings (exactly what the ASCII form shows).
#[must_use]
pub fn table_to_json(t: &Table) -> Json {
    Json::obj([
        ("title", Json::from(t.title())),
        (
            "header",
            Json::arr(t.header().iter().map(|h| Json::from(h.as_str()))),
        ),
        (
            "rows",
            Json::arr(
                t.rows()
                    .iter()
                    .map(|row| Json::arr(row.iter().map(|cell| Json::from(cell.as_str())))),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("T", &["k", "v"]);
        t.row(&["a", "1"]);
        t
    }

    #[test]
    fn text_layout_interleaves_tables_and_notes() {
        let mut r = Report::with_json("demo", false);
        r.table(sample_table());
        r.note("first note");
        r.table(sample_table());
        r.note("second note");
        let text = r.render_text();
        // Table, blank, note, blank, table, blank, note.
        assert!(text.contains("| a | 1 |\n\nfirst note\n\nT\n"));
        assert!(text.ends_with("second note\n"));
    }

    #[test]
    fn json_document_shape() {
        let mut r = Report::with_json("demo", true);
        r.meta("threads", 4usize);
        r.table(sample_table());
        r.note("a note");
        let doc = r.to_json().to_string();
        assert!(doc.contains(r#""name":"demo""#));
        assert!(doc.contains(r#""threads":4"#));
        assert!(doc.contains(r#""title":"T""#));
        assert!(doc.contains(r#""rows":[["a","1"]]"#));
        assert!(doc.contains(r#""notes":["a note"]"#));
    }

    #[test]
    fn scale_meta_and_note() {
        let scale = Scale {
            initial: 7,
            per_core_ops: 3,
        };
        let mut r = Report::with_json("demo", true);
        r.meta_scale(scale);
        r.note_scale(scale);
        assert!(r.to_json().to_string().contains(r#""initial":7"#));
        assert!(r.render_text().contains("scale: initial=7 per-core-ops=3"));
    }

    #[test]
    fn json_reports_carry_provenance() {
        let mut r = Report::with_json("demo", true);
        r.meta_scale(Scale {
            initial: 20_000,
            per_core_ops: 300,
        });
        let doc = crate::Json::parse(&r.to_json().to_string()).unwrap();
        let meta = doc.get("meta").unwrap();
        assert!(meta.get("commit").unwrap().as_str().is_some());
        assert!(meta.get("command").unwrap().as_str().is_some());
        assert_eq!(meta.get("scale").unwrap().as_str(), Some("smoke"));
    }

    #[test]
    fn text_reports_skip_provenance() {
        let r = Report::with_json("demo", false);
        assert!(r.to_json().to_string().contains(r#""meta":{}"#));
    }

    #[test]
    fn scale_name_meta_for_analytic_reports() {
        let mut r = Report::with_json("demo", true);
        r.meta_scale_name("analytic");
        assert!(r.to_json().to_string().contains(r#""scale":"analytic""#));
    }

    #[test]
    fn json_path_uses_name() {
        let r = Report::with_json("fig7", true);
        assert!(r.json_path().to_string_lossy().ends_with("BENCH_fig7.json"));
    }

    #[test]
    fn emit_writes_json_file() {
        let dir = std::env::temp_dir().join("bbb_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("BBB_JSON_DIR", &dir);
        let mut r = Report::with_json("emit_test", true);
        r.table(sample_table());
        r.emit().unwrap();
        let written = std::fs::read_to_string(dir.join("BENCH_emit_test.json")).unwrap();
        std::env::remove_var("BBB_JSON_DIR");
        assert!(written.starts_with('{') && written.ends_with("}\n"));
        assert!(written.contains(r#""title":"T""#));
    }
}

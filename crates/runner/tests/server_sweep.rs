//! Sharded-vs-serial determinism for the server-scale streaming sweep.
//!
//! The KV/WAL benches farm their mode × mix grid out to the worker pool;
//! these tests pin the contract that a sharded sweep is *bit-identical*
//! to a serial one — same `RunResult`s (cycles, every stats counter,
//! every persist-latency percentile) in the same order at any thread
//! count.

use bbb_core::PersistencyMode;
use bbb_runner::{paper_config, ExperimentSpec, Runner, Scale};
use bbb_workloads::WorkloadKind;

fn server_specs() -> Vec<ExperimentSpec> {
    let scale = Scale {
        initial: 2000,
        per_core_ops: 120,
    };
    let cfg = paper_config(scale);
    let mut specs = Vec::new();
    for kind in WorkloadKind::SERVER {
        for mode in PersistencyMode::ALL {
            specs.push(ExperimentSpec::new(kind, mode, &cfg, scale));
        }
    }
    specs
}

#[test]
fn sharded_kv_sweep_is_bit_identical_to_serial() {
    let specs = server_specs();
    let serial = Runner::with_threads(1).run(&specs);
    let sharded = Runner::with_threads(4).run(&specs);
    assert_eq!(serial, sharded, "thread count leaked into results");
    // Sanity: every point actually ran and the persist-latency export is
    // wired through the streaming path.
    for (spec, r) in specs.iter().zip(&serial) {
        assert!(r.summary.completed, "{}", spec.label);
        assert!(r.summary.ops > 0, "{}", spec.label);
        assert!(
            r.stats.get("persist.latency.samples") > 0 || spec.workload == WorkloadKind::KvC,
            "{}: no persist-latency samples",
            spec.label
        );
    }
}

#[test]
fn battery_backed_modes_observe_zero_persist_latency() {
    let specs = server_specs();
    let results = Runner::with_threads(4).run(&specs);
    for (spec, r) in specs.iter().zip(&results) {
        match spec.mode {
            PersistencyMode::Eadr
            | PersistencyMode::BbbMemorySide
            | PersistencyMode::BbbProcessorSide => {
                assert_eq!(
                    r.stats.get("persist.latency.p999"),
                    0,
                    "{}: battery-backed SB must persist at commit",
                    spec.label
                );
                assert_eq!(r.stats.get("persist.latency.max"), 0, "{}", spec.label);
            }
            PersistencyMode::Pmem | PersistencyMode::Bep => {
                if spec.workload != WorkloadKind::KvC {
                    assert!(
                        r.stats.get("persist.latency.p50") > 0,
                        "{}: flush/epoch persistence cannot be free",
                        spec.label
                    );
                }
            }
        }
    }
}

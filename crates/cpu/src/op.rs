//! The committed-instruction stream.
//!
//! Workloads expand each high-level operation (an insert, a swap, …) into a
//! sequence of [`Op`]s; the system simulator interprets them against the
//! timing model. Stores carry their payload bytes so real data flows
//! through the hierarchy into the crash image.

use bbb_sim::Addr;

/// Maximum bytes a single store op carries (doubleword granularity).
pub const MAX_STORE_BYTES: usize = 8;

/// One committed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A load of `size` bytes at `addr`.
    Load {
        /// Byte address.
        addr: Addr,
        /// Access size in bytes (1–8).
        size: u8,
    },
    /// A store of `size` bytes at `addr` with payload `bytes[..size]`.
    Store {
        /// Byte address.
        addr: Addr,
        /// Access size in bytes (1–8).
        size: u8,
        /// Payload (little-endian for integer helpers).
        bytes: [u8; MAX_STORE_BYTES],
    },
    /// A cache-line writeback (`clwb`/`DC CVAP` class): pushes the line
    /// containing `addr` toward the NVMM WPQ without invalidating it. Only
    /// the strict-persistency software baseline emits these.
    Clwb {
        /// Any byte address within the line to write back.
        addr: Addr,
    },
    /// A persist barrier (`sfence`/`DSB` class): commit stalls until every
    /// older store has drained and every outstanding `Clwb` has reached the
    /// persistence domain.
    Fence,
    /// Non-memory work occupying the core for `cycles` cycles.
    Compute {
        /// Core-cycles of work.
        cycles: u32,
    },
}

impl Op {
    /// A `u64` load (the common case in the pointer-based workloads).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned (a store/load must not span
    /// cache blocks).
    #[must_use]
    pub fn load_u64(addr: Addr) -> Self {
        assert_eq!(addr % 8, 0, "u64 access must be aligned");
        Op::Load { addr, size: 8 }
    }

    /// A `u64` store with a little-endian payload.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    #[must_use]
    pub fn store_u64(addr: Addr, value: u64) -> Self {
        assert_eq!(addr % 8, 0, "u64 access must be aligned");
        Op::Store {
            addr,
            size: 8,
            bytes: value.to_le_bytes(),
        }
    }

    /// A one-byte store.
    #[must_use]
    pub fn store_u8(addr: Addr, value: u8) -> Self {
        let mut bytes = [0u8; MAX_STORE_BYTES];
        bytes[0] = value;
        Op::Store {
            addr,
            size: 1,
            bytes,
        }
    }

    /// True for [`Op::Store`].
    #[must_use]
    pub const fn is_store(&self) -> bool {
        matches!(self, Op::Store { .. })
    }

    /// True for [`Op::Load`].
    #[must_use]
    pub const fn is_load(&self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// The memory address this op touches, if any.
    #[must_use]
    pub const fn addr(&self) -> Option<Addr> {
        match *self {
            Op::Load { addr, .. } | Op::Store { addr, .. } | Op::Clwb { addr } => Some(addr),
            Op::Fence | Op::Compute { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_helpers_encode_little_endian() {
        let op = Op::store_u64(0x100, 0x0102_0304_0506_0708);
        match op {
            Op::Store { addr, size, bytes } => {
                assert_eq!(addr, 0x100);
                assert_eq!(size, 8);
                assert_eq!(bytes, [8, 7, 6, 5, 4, 3, 2, 1]);
            }
            other => panic!("unexpected op {other:?}"),
        }
        assert!(op.is_store());
        assert!(!op.is_load());
        assert_eq!(op.addr(), Some(0x100));
    }

    #[test]
    fn load_helper() {
        let op = Op::load_u64(0x208);
        assert!(op.is_load());
        assert_eq!(op.addr(), Some(0x208));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_u64_store_panics() {
        let _ = Op::store_u64(0x101, 1);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_u64_load_panics() {
        let _ = Op::load_u64(0x3);
    }

    #[test]
    fn byte_store() {
        match Op::store_u8(0x7, 0xAB) {
            Op::Store { addr, size, bytes } => {
                assert_eq!((addr, size, bytes[0]), (0x7, 1, 0xAB));
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn control_ops_have_no_address() {
        assert_eq!(Op::Fence.addr(), None);
        assert_eq!(Op::Compute { cycles: 3 }.addr(), None);
        assert_eq!(Op::Clwb { addr: 0x40 }.addr(), Some(0x40));
    }
}

//! Core model for the BBB reproduction.
//!
//! The paper's machine has 8-wide out-of-order cores (ROB 192, LSQ 32,
//! store buffer 32). We model each core as a committed-instruction stream
//! interpreter with a post-commit [`StoreBuffer`]: loads and compute charge
//! their latencies at the point of commit, stores commit into the store
//! buffer and drain to the L1D in the background, and `clwb`/`sfence`
//! implement the strict-persistency baseline's flush-and-fence semantics.
//!
//! This deliberately trades absolute IPC fidelity for exactness in the
//! quantities the paper evaluates — persist traffic, store-buffer pressure,
//! and persistency stalls — which depend on the *committed store stream*,
//! not on speculative execution. The same core model runs under every
//! persistency mode, so every normalized comparison (BBB vs eADR vs PMEM)
//! sees identical instruction streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core_state;
pub mod op;
pub mod store_buffer;

pub use core_state::CoreState;
pub use op::Op;
pub use store_buffer::{SbEntry, StoreBuffer};

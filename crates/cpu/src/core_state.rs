//! Per-core execution state.
//!
//! [`CoreState`] holds everything the system simulator needs to interpret a
//! core's committed op stream: the store buffer, the cycle the core
//! becomes free, outstanding flush persist-times (for fences), and per-core
//! counters. The interpretation itself — which needs the cache hierarchy
//! and the persistence machinery — lives in `bbb-core`.

use bbb_sim::{Counter, Cycle, Stats};

use crate::store_buffer::StoreBuffer;

/// Execution state of one simulated core.
#[derive(Debug, Clone)]
pub struct CoreState {
    /// Core index.
    pub id: usize,
    /// Post-commit store buffer.
    pub sb: StoreBuffer,
    /// Cycle at which the core can commit its next op.
    pub ready_at: Cycle,
    /// Persist cycles of outstanding `clwb`s a future fence must wait for.
    pub pending_flush_persists: Vec<Cycle>,
    /// Cycle at which the most recently drained store-buffer entry finishes
    /// writing to the L1D (the SB drain engine is busy until then).
    pub sb_drain_busy_until: Cycle,
    /// Instructions committed.
    pub committed: Counter,
    /// Stores committed.
    pub stores: Counter,
    /// Persisting stores committed (target in the persistent heap).
    pub persisting_stores: Counter,
    /// Logical bytes written by persisting stores — the numerator the
    /// NVMM write-amplification report divides the 64 B media writes by.
    pub persisting_store_bytes: Counter,
    /// Cycles lost waiting for a full store buffer.
    pub sb_full_stalls: Counter,
    /// Cycles lost in fences.
    pub fence_stall_cycles: Counter,
    /// Fences committed (epoch barriers under BEP).
    pub fences: Counter,
}

impl CoreState {
    /// Creates the state for core `id` with a store buffer of
    /// `sb_capacity` entries.
    #[must_use]
    pub fn new(id: usize, sb_capacity: usize) -> Self {
        Self {
            id,
            sb: StoreBuffer::new(sb_capacity),
            ready_at: 0,
            pending_flush_persists: Vec::new(),
            sb_drain_busy_until: 0,
            committed: Counter::new(),
            stores: Counter::new(),
            persisting_stores: Counter::new(),
            persisting_store_bytes: Counter::new(),
            sb_full_stalls: Counter::new(),
            fence_stall_cycles: Counter::new(),
            fences: Counter::new(),
        }
    }

    /// Records a flush whose data persists at `persist`.
    pub fn record_flush(&mut self, persist: Cycle) {
        self.pending_flush_persists.push(persist);
    }

    /// The cycle by which every outstanding flush has persisted, and drops
    /// flushes that are already durable at `now`.
    pub fn flushes_done_by(&mut self, now: Cycle) -> Cycle {
        let done = self
            .pending_flush_persists
            .iter()
            .copied()
            .max()
            .unwrap_or(now)
            .max(now);
        self.pending_flush_persists.retain(|&p| p > now);
        done
    }

    /// Exports per-core counters under the `core<N>.` prefix plus
    /// aggregated `cores.` totals.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        let p = format!("core{}.", self.id);
        s.set(&format!("{p}committed"), self.committed.get());
        s.set(&format!("{p}stores"), self.stores.get());
        s.set(
            &format!("{p}persisting_stores"),
            self.persisting_stores.get(),
        );
        s.set(&format!("{p}sb_full_stalls"), self.sb_full_stalls.get());
        s.set(
            &format!("{p}fence_stall_cycles"),
            self.fence_stall_cycles.get(),
        );
        s.set(&format!("{p}fences"), self.fences.get());
        s.set("cores.committed", self.committed.get());
        s.set("cores.stores", self.stores.get());
        s.set("cores.persisting_stores", self.persisting_stores.get());
        s.set(
            "cores.persisting_store_bytes",
            self.persisting_store_bytes.get(),
        );
        s.set("cores.sb_full_stalls", self.sb_full_stalls.get());
        s.set("cores.fence_stall_cycles", self.fence_stall_cycles.get());
        s.set("cores.fences", self.fences.get());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_core_is_idle() {
        let c = CoreState::new(3, 8);
        assert_eq!(c.id, 3);
        assert_eq!(c.ready_at, 0);
        assert!(c.sb.is_empty());
        assert_eq!(c.sb.capacity(), 8);
    }

    #[test]
    fn flush_tracking() {
        let mut c = CoreState::new(0, 4);
        assert_eq!(c.flushes_done_by(100), 100);
        c.record_flush(500);
        c.record_flush(300);
        assert_eq!(c.flushes_done_by(100), 500);
        // Flushes persisted by cycle 600 are gone.
        assert_eq!(c.flushes_done_by(600), 600);
        assert!(c.pending_flush_persists.is_empty());
    }

    #[test]
    fn flush_retention_keeps_future_persists() {
        let mut c = CoreState::new(0, 4);
        c.record_flush(500);
        let done = c.flushes_done_by(200);
        assert_eq!(done, 500);
        assert_eq!(c.pending_flush_persists, vec![500]);
    }

    #[test]
    fn stats_carry_core_prefix_and_totals() {
        let mut c = CoreState::new(2, 4);
        c.stores.add(7);
        let s = c.stats();
        assert_eq!(s.get("core2.stores"), 7);
        assert_eq!(s.get("cores.stores"), 7);
    }
}

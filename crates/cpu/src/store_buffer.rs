//! The post-commit store buffer.
//!
//! Committed stores sit here until written to the L1D. Under TSO the buffer
//! drains strictly in program order; the relaxed-consistency configuration
//! may drain any entry (paper §III-C), which is why BBB battery-backs the
//! store buffer: with the SB inside the persistence domain, PoP moves up to
//! store *commit* and program-order persistency holds even when entries
//! reach the L1D out of order.

use std::collections::VecDeque;

use bbb_sim::{BlockAddr, Cycle};

use crate::op::MAX_STORE_BYTES;

/// One committed store waiting to be written to the L1D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbEntry {
    /// Cache block the store targets.
    pub block: BlockAddr,
    /// Byte offset within the block.
    pub offset: usize,
    /// Store size in bytes (1–8).
    pub len: usize,
    /// Payload (`bytes[..len]` is significant).
    pub bytes: [u8; MAX_STORE_BYTES],
    /// True when the target lies in the persistent heap.
    pub persistent: bool,
    /// Commit cycle (for stats and battery-backed drain ordering).
    pub committed: Cycle,
    /// Per-core store sequence number assigned at commit; correlates the
    /// commit, visibility, and persist-allocation trace events of one
    /// store across component logs.
    pub seq: u64,
}

/// A fixed-capacity FIFO store buffer.
///
/// # Examples
///
/// ```
/// use bbb_cpu::{SbEntry, StoreBuffer};
/// use bbb_sim::BlockAddr;
///
/// let mut sb = StoreBuffer::new(2);
/// let e = SbEntry {
///     block: BlockAddr::from_index(1),
///     offset: 0,
///     len: 8,
///     bytes: [0; 8],
///     persistent: true,
///     committed: 0,
///     seq: 0,
/// };
/// sb.push(e).unwrap();
/// assert_eq!(sb.len(), 1);
/// assert_eq!(sb.pop_front().unwrap().block, e.block);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StoreBuffer {
    entries: VecDeque<SbEntry>,
    capacity: usize,
    /// Monotone mutation counter: bumped whenever `entries` changes. Lets a
    /// crash-image memoizer prove "no buffered store changed between two
    /// probe points" without comparing contents.
    version: u64,
}

impl StoreBuffer {
    /// Creates a buffer of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer needs capacity");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            version: 0,
        }
    }

    /// Monotone mutation counter: unchanged version within one buffer's
    /// lifetime proves unchanged contents (the converse need not hold).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no store is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no more stores can commit until the buffer drains.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Enqueues a committed store.
    ///
    /// # Errors
    ///
    /// Returns the entry back if the buffer is full (the core must stall).
    pub fn push(&mut self, entry: SbEntry) -> Result<(), SbEntry> {
        if self.is_full() {
            return Err(entry);
        }
        self.version += 1;
        self.entries.push_back(entry);
        Ok(())
    }

    /// The oldest entry, if any (TSO drain candidate).
    #[must_use]
    pub fn front(&self) -> Option<&SbEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry.
    pub fn pop_front(&mut self) -> Option<SbEntry> {
        let popped = self.entries.pop_front();
        if popped.is_some() {
            self.version += 1;
        }
        popped
    }

    /// Removes and returns the entry at `index` (relaxed-consistency drain:
    /// any ready entry may go to the L1D out of order).
    pub fn pop_at(&mut self, index: usize) -> Option<SbEntry> {
        let popped = self.entries.remove(index);
        if popped.is_some() {
            self.version += 1;
        }
        popped
    }

    /// Iterates entries oldest-first (crash draining of a battery-backed
    /// SB, and fence checks).
    pub fn iter(&self) -> impl Iterator<Item = &SbEntry> {
        self.entries.iter()
    }

    /// Drains all entries oldest-first (crash flush-on-fail).
    pub fn drain_all(&mut self) -> Vec<SbEntry> {
        if !self.entries.is_empty() {
            self.version += 1;
        }
        self.entries.drain(..).collect()
    }

    /// True if any buffered store targets `block` (fences and flushes must
    /// wait for such entries; loads would forward from them in hardware).
    #[must_use]
    pub fn holds_block(&self, block: BlockAddr) -> bool {
        self.entries.iter().any(|e| e.block == block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64) -> SbEntry {
        SbEntry {
            block: BlockAddr::from_index(i),
            offset: 0,
            len: 8,
            bytes: [i as u8; 8],
            persistent: false,
            committed: i,
            seq: i,
        }
    }

    #[test]
    fn fifo_order() {
        let mut sb = StoreBuffer::new(4);
        for i in 0..3 {
            sb.push(entry(i)).unwrap();
        }
        assert_eq!(sb.len(), 3);
        assert_eq!(sb.front().unwrap().block, BlockAddr::from_index(0));
        assert_eq!(sb.pop_front().unwrap().block, BlockAddr::from_index(0));
        assert_eq!(sb.pop_front().unwrap().block, BlockAddr::from_index(1));
    }

    #[test]
    fn push_fails_when_full() {
        let mut sb = StoreBuffer::new(2);
        sb.push(entry(0)).unwrap();
        sb.push(entry(1)).unwrap();
        assert!(sb.is_full());
        let rejected = sb.push(entry(2)).unwrap_err();
        assert_eq!(rejected.block, BlockAddr::from_index(2));
        sb.pop_front();
        assert!(sb.push(entry(2)).is_ok());
    }

    #[test]
    fn pop_at_supports_relaxed_drain() {
        let mut sb = StoreBuffer::new(4);
        for i in 0..3 {
            sb.push(entry(i)).unwrap();
        }
        let e = sb.pop_at(1).unwrap();
        assert_eq!(e.block, BlockAddr::from_index(1));
        assert_eq!(sb.len(), 2);
        assert!(sb.pop_at(5).is_none());
    }

    #[test]
    fn holds_block_scans_all_entries() {
        let mut sb = StoreBuffer::new(4);
        sb.push(entry(3)).unwrap();
        assert!(sb.holds_block(BlockAddr::from_index(3)));
        assert!(!sb.holds_block(BlockAddr::from_index(9)));
    }

    #[test]
    fn drain_all_empties_in_order() {
        let mut sb = StoreBuffer::new(4);
        for i in 0..4 {
            sb.push(entry(i)).unwrap();
        }
        let drained = sb.drain_all();
        assert_eq!(drained.len(), 4);
        assert!(sb.is_empty());
        // Commit cycles are non-decreasing, never necessarily strictly
        // increasing: back-to-back stores can commit in the same cycle.
        assert!(drained.windows(2).all(|w| w[0].committed <= w[1].committed));
        let order: Vec<u64> = drained.iter().map(|e| e.block.index()).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "program order, not cycle order");
    }

    #[test]
    fn drain_all_preserves_program_order_for_same_cycle_commits() {
        // Two stores committing in the same cycle (a dual-issue commit or
        // zero-latency repeat) must still drain in push order — the
        // battery-backed crash drain applies them program-ordered, and a
        // tie broken any other way could replay an older value on top of a
        // newer one.
        let mut sb = StoreBuffer::new(4);
        for (i, committed) in [(0u64, 5u64), (1, 5), (2, 5), (3, 7)] {
            let mut e = entry(i);
            e.committed = committed;
            sb.push(e).unwrap();
        }
        let drained = sb.drain_all();
        assert!(drained.windows(2).all(|w| w[0].committed <= w[1].committed));
        let order: Vec<u64> = drained.iter().map(|e| e.block.index()).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = StoreBuffer::new(0);
    }
}

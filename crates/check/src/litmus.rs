//! Persistency litmus shapes and the crash-sweep engine that evaluates
//! them.
//!
//! Each [`Shape`] is a tiny Px86-style program plus a *forbidden* crash
//! image predicate (the lost-causality outcome the shape probes for). The
//! engine runs every shape against every [`PersistencyMode`] twice:
//!
//! 1. **Crash sweep** — one fresh machine per prefix of the op sequence,
//!    crashed after the prefix; the forbidden predicate is evaluated on
//!    every image. An observation decides the *allowed/forbidden* verdict
//!    empirically.
//! 2. **Checker pass** — one traced full run through
//!    [`PersistOrderChecker`], which must report zero violations for the
//!    battery modes and at least one witness where the shape deliberately
//!    breaks a software discipline (flush-stripped PMEM, barrier-stripped
//!    BEP).

use bbb_core::{PersistencyMode, System};
use bbb_cpu::Op;
use bbb_mem::NvmImage;
use bbb_sim::{AddressMap, SimConfig};

use crate::checker::{CheckReport, PersistOrderChecker};

/// Byte offsets (from the persistent heap base) of the locations the
/// shapes use. All in distinct cache blocks.
const X: u64 = 0x0000;
const Y: u64 = 0x1000;
const DATA: u64 = 0x2000;
const FLAG: u64 = 0x3000;
const PAD2: u64 = 0x4000;
const PAD3: u64 = 0x5000;
/// Deliberately NOT another 0x1000 stride: the small config's L2 maps
/// 0x1000-strided blocks to one set, and a fifth way-conflicting line
/// would evict DATA's dirty line to media, masking the mp anomaly.
const PAD4: u64 = 0x6040;

/// Whether the forbidden outcome may legally appear in some crash image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The outcome is reachable under this mode's persistency model.
    Allowed,
    /// The mode's guarantee rules the outcome out; observing it is a bug.
    Forbidden,
}

impl Verdict {
    /// Table label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Verdict::Allowed => "allowed",
            Verdict::Forbidden => "forbidden",
        }
    }
}

/// Expected behavior of one (shape, mode) cell.
#[derive(Debug, Clone, Copy)]
pub struct Expect {
    /// Whether the forbidden outcome may appear.
    pub verdict: Verdict,
    /// Whether the checker must produce at least one ordering witness
    /// (true exactly for the deliberately-broken discipline cells).
    pub witness: bool,
}

const fn allowed(witness: bool) -> Expect {
    Expect {
        verdict: Verdict::Allowed,
        witness,
    }
}

const fn forbidden() -> Expect {
    Expect {
        verdict: Verdict::Forbidden,
        witness: false,
    }
}

/// One litmus program: ops in global execution order (per-core local
/// clocks make this a legal interleaving), the forbidden image predicate,
/// and the per-mode expectation.
pub struct Shape {
    /// Short name (table row key).
    pub name: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// Builds the op sequence for a heap based at `base`.
    pub build: fn(u64) -> Vec<(usize, Op)>,
    /// True when the crash image shows the forbidden outcome.
    pub forbidden: fn(&NvmImage, u64) -> bool,
    /// Expected verdict and witness requirement under `mode`.
    pub expect: fn(PersistencyMode) -> Expect,
}

fn ss_build(b: u64) -> Vec<(usize, Op)> {
    vec![(0, Op::store_u64(b + X, 1)), (0, Op::store_u64(b + Y, 1))]
}

fn ss_clwb_build(b: u64) -> Vec<(usize, Op)> {
    vec![
        (0, Op::store_u64(b + X, 1)),
        (0, Op::store_u64(b + Y, 1)),
        (0, Op::Clwb { addr: b + Y }),
        (0, Op::Fence),
    ]
}

fn sfs_build(b: u64) -> Vec<(usize, Op)> {
    vec![
        (0, Op::store_u64(b + X, 1)),
        (0, Op::Clwb { addr: b + X }),
        (0, Op::Fence),
        (0, Op::store_u64(b + Y, 1)),
        (0, Op::Clwb { addr: b + Y }),
        (0, Op::Fence),
    ]
}

fn epoch_build(b: u64) -> Vec<(usize, Op)> {
    vec![
        (0, Op::store_u64(b + X, 1)),
        (0, Op::Fence),
        (0, Op::store_u64(b + Y, 1)),
    ]
}

fn xy_forbidden(img: &NvmImage, b: u64) -> bool {
    img.read_u64(b + Y) == 1 && img.read_u64(b + X) == 0
}

/// Consumer half of the message-passing shapes: read the data, publish a
/// flag, then pad with enough stores to fill a small persist buffer so its
/// capacity drain burst pushes the flag to NVMM.
fn mp_consumer() -> Vec<(usize, Op)> {
    vec![
        (1, Op::Compute { cycles: 3000 }),
        (1, Op::load_u64(0)), // placeholder, patched by caller
        (1, Op::store_u64(0, 0)),
        (1, Op::store_u64(0, 0)),
        (1, Op::store_u64(0, 0)),
        (1, Op::store_u64(0, 0)),
        (1, Op::Compute { cycles: 6000 }),
        (1, Op::Compute { cycles: 2000 }),
        (1, Op::Compute { cycles: 2000 }),
        (1, Op::Compute { cycles: 2000 }),
    ]
}

fn mp_build_with(b: u64, producer: Vec<(usize, Op)>) -> Vec<(usize, Op)> {
    let mut ops = producer;
    let mut consumer = mp_consumer();
    consumer[1].1 = Op::load_u64(b + DATA);
    consumer[2].1 = Op::store_u64(b + FLAG, 1);
    consumer[3].1 = Op::store_u64(b + PAD2, 1);
    consumer[4].1 = Op::store_u64(b + PAD3, 1);
    consumer[5].1 = Op::store_u64(b + PAD4, 1);
    ops.extend(consumer);
    ops
}

fn mp_build(b: u64) -> Vec<(usize, Op)> {
    mp_build_with(
        b,
        vec![
            (0, Op::store_u64(b + DATA, 0xD0_0D)),
            (0, Op::Compute { cycles: 9000 }),
        ],
    )
}

fn mp_barrier_build(b: u64) -> Vec<(usize, Op)> {
    mp_build_with(
        b,
        vec![
            (0, Op::store_u64(b + DATA, 0xD0_0D)),
            (0, Op::Fence),
            (0, Op::Compute { cycles: 9000 }),
        ],
    )
}

fn mp_forbidden(img: &NvmImage, b: u64) -> bool {
    img.read_u64(b + FLAG) == 1 && img.read_u64(b + DATA) == 0
}

/// The canonical shape set: same-core store pairs under the three software
/// disciplines, plus cross-core publish with and without the epoch
/// barrier.
#[must_use]
pub fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            name: "ss",
            desc: "st x; st y (no flushes)",
            build: ss_build,
            forbidden: xy_forbidden,
            expect: |m| match m {
                PersistencyMode::Pmem | PersistencyMode::Bep => allowed(false),
                _ => forbidden(),
            },
        },
        Shape {
            name: "ss+clwb_y",
            desc: "st x; st y; clwb y; sfence (flush-stripped PMEM, paper Fig. 2)",
            build: ss_clwb_build,
            forbidden: xy_forbidden,
            expect: |m| match m {
                // The younger store is flushed, the older is not: strict
                // PMEM must flag the persist-order inversion.
                PersistencyMode::Pmem => allowed(true),
                // BEP allows the intra-epoch reorder without a witness.
                PersistencyMode::Bep => allowed(false),
                _ => forbidden(),
            },
        },
        Shape {
            name: "s+f+s",
            desc: "st x; clwb x; sfence; st y; clwb y; sfence (full discipline)",
            build: sfs_build,
            forbidden: xy_forbidden,
            expect: |_| forbidden(),
        },
        Shape {
            name: "epoch",
            desc: "st x; sfence; st y (epoch barrier, no flushes)",
            build: epoch_build,
            forbidden: xy_forbidden,
            expect: |m| match m {
                PersistencyMode::Pmem => allowed(false),
                _ => forbidden(),
            },
        },
        Shape {
            name: "mp",
            desc: "c0: st data | c1: ld data; st flag; pads (barrier-stripped BEP)",
            build: mp_build,
            forbidden: mp_forbidden,
            expect: |m| match m {
                PersistencyMode::Pmem => allowed(false),
                // The flag reaches NVMM through the volatile buffer's
                // capacity drain while the observed data does not: the
                // checker must produce a cross-core witness.
                PersistencyMode::Bep => allowed(true),
                _ => forbidden(),
            },
        },
        Shape {
            name: "mp+barrier",
            desc: "c0: st data; sfence | c1: ld data; st flag; pads (proper BEP)",
            build: mp_barrier_build,
            forbidden: mp_forbidden,
            expect: |m| match m {
                PersistencyMode::Pmem => allowed(false),
                _ => forbidden(),
            },
        },
    ]
}

/// Outcome of one (shape, mode) cell.
#[derive(Debug)]
pub struct LitmusRow {
    /// Shape name.
    pub shape: &'static str,
    /// Mode under test.
    pub mode: PersistencyMode,
    /// Expected behavior.
    pub expect: Expect,
    /// Crash points swept (op-sequence prefixes).
    pub crash_points: usize,
    /// Crash points whose image showed the forbidden outcome.
    pub observed: usize,
    /// First crash point (prefix length) that showed it, if any.
    pub first_observed: Option<usize>,
    /// Checker report from the traced full run.
    pub report: CheckReport,
}

impl LitmusRow {
    /// True when the observation matches the verdict and the checker
    /// produced exactly the witnesses the cell requires.
    #[must_use]
    pub fn pass(&self) -> bool {
        let verdict_ok = match self.expect.verdict {
            Verdict::Forbidden => self.observed == 0,
            Verdict::Allowed => true,
        };
        let witness_ok = if self.expect.witness {
            self.report.violations() >= 1
        } else {
            self.report.ok()
        };
        verdict_ok && witness_ok
    }

    /// Compact observed-behavior label for the verdict table.
    #[must_use]
    pub fn observed_label(&self) -> String {
        if self.observed > 0 {
            format!("hit @{}", self.first_observed.unwrap_or(0))
        } else {
            "never".to_owned()
        }
    }
}

/// The machine the litmus programs run on: the small two-core
/// configuration, whose four-entry persist buffers make capacity-threshold
/// drains reachable by a handful of stores.
#[must_use]
pub fn litmus_config() -> SimConfig {
    SimConfig::small_for_tests()
}

/// Runs one shape under one mode: the crash sweep plus the traced checker
/// pass.
///
/// # Panics
///
/// Panics if the configuration is rejected by [`System::new`].
#[must_use]
pub fn run_shape(shape: &Shape, mode: PersistencyMode) -> LitmusRow {
    let cfg = litmus_config();
    let base = AddressMap::new(&cfg).persistent_base();
    let ops = (shape.build)(base);

    let mut observed = 0usize;
    let mut first_observed = None;
    for k in 0..=ops.len() {
        let mut sys = System::new(cfg.clone(), mode).expect("litmus config");
        for (core, op) in &ops[..k] {
            sys.step_op(*core, op);
        }
        let img = sys.crash_now();
        if (shape.forbidden)(&img, base) {
            observed += 1;
            first_observed.get_or_insert(k);
        }
    }

    let mut sys = System::new(cfg.clone(), mode).expect("litmus config");
    sys.set_tracing(true);
    for (core, op) in &ops {
        sys.step_op(*core, op);
    }
    sys.crash_now();
    let events = sys.take_events();
    let report = PersistOrderChecker::run(mode, cfg.cores, &events);

    LitmusRow {
        shape: shape.name,
        mode,
        expect: (shape.expect)(mode),
        crash_points: ops.len() + 1,
        observed,
        first_observed,
        report,
    }
}

/// Every shape against every persistency mode, in table order.
#[must_use]
pub fn run_all() -> Vec<LitmusRow> {
    let mut rows = Vec::new();
    for shape in &shapes() {
        for mode in PersistencyMode::ALL {
            rows.push(run_shape(shape, mode));
        }
    }
    rows
}

/// Short mode label for table rows.
#[must_use]
pub const fn mode_label(mode: PersistencyMode) -> &'static str {
    match mode {
        PersistencyMode::Pmem => "pmem",
        PersistencyMode::Eadr => "eadr",
        PersistencyMode::BbbMemorySide => "bbb-mem",
        PersistencyMode::BbbProcessorSide => "bbb-proc",
        PersistencyMode::Bep => "bep",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_meets_its_expectation() {
        for row in run_all() {
            assert!(
                row.pass(),
                "{} under {}: expected {} (witness: {}), observed {} with {} violations",
                row.shape,
                mode_label(row.mode),
                row.expect.verdict.label(),
                row.expect.witness,
                row.observed_label(),
                row.report.violations()
            );
        }
    }

    #[test]
    fn flush_stripped_pmem_yields_a_strict_order_witness() {
        let shapes = shapes();
        let shape = shapes.iter().find(|s| s.name == "ss+clwb_y").unwrap();
        let row = run_shape(shape, PersistencyMode::Pmem);
        assert!(row.report.violations() >= 1);
        assert_eq!(row.report.witnesses[0].rule, "strict-order");
        assert!(
            !row.report.witnesses[0].path.is_empty(),
            "witness has a path"
        );
    }

    #[test]
    fn barrier_stripped_bep_yields_a_cross_core_witness() {
        let shapes = shapes();
        let shape = shapes.iter().find(|s| s.name == "mp").unwrap();
        let row = run_shape(shape, PersistencyMode::Bep);
        assert!(row.report.violations() >= 1, "volatile-buffer hazard found");
        let w = &row.report.witnesses[0];
        assert_eq!(w.rule, "cross-core-hb");
        assert!(
            w.path.len() >= 2,
            "witness carries the happens-before path: {:?}",
            w.path
        );
    }

    #[test]
    fn battery_modes_satisfy_pov_pop_on_every_shape() {
        for shape in &shapes() {
            for mode in [
                PersistencyMode::Eadr,
                PersistencyMode::BbbMemorySide,
                PersistencyMode::BbbProcessorSide,
            ] {
                let row = run_shape(shape, mode);
                assert!(
                    row.report.ok(),
                    "{} under {}: {:?}",
                    shape.name,
                    mode_label(mode),
                    row.report.witnesses
                );
            }
        }
    }
}

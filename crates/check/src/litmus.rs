//! Persistency litmus shapes and the crash-sweep engine that evaluates
//! them.
//!
//! Each [`Shape`] is a tiny Px86-style program in the declarative litmus
//! IR ([`Prog`]) plus a pinned global schedule and a *forbidden* outcome
//! (the lost-causality result the shape probes for). The engine runs
//! every shape against every [`PersistencyMode`] twice:
//!
//! 1. **Crash sweep** — one fresh machine per prefix of the compiled op
//!    sequence, crashed after the prefix; the forbidden outcome is
//!    checked against every image. An observation decides the
//!    *allowed/forbidden* verdict empirically.
//! 2. **Checker pass** — one traced full run through
//!    [`PersistOrderChecker`], which must report zero violations for the
//!    battery modes and at least one witness where the shape deliberately
//!    breaks a software discipline (flush-stripped PMEM, barrier-stripped
//!    BEP).
//!
//! The same [`Prog`] also feeds the axiomatic side ([`crate::model`]):
//! the single-core shapes must reproduce this table's verdicts exactly,
//! and every swept image must be model-allowed. The cross-core `mp`
//! shapes are the one deliberate divergence: their verdicts here are
//! *schedule-pinned* (the producer's store is scheduled first), while
//! the model quantifies over every interleaving and so allows what the
//! pinned schedule forbids — see DESIGN.md's ambiguity ledger.

use bbb_core::{PersistencyMode, System};
use bbb_mem::NvmImage;
use bbb_sim::{AddressMap, SimConfig};

use crate::checker::{CheckReport, PersistOrderChecker};
use crate::model::{Inst, Loc, Prog};

/// Byte offsets (from the persistent heap base) of the locations the
/// shapes use. All in distinct cache blocks.
const X: u64 = 0x0000;
const Y: u64 = 0x1000;
const DATA: u64 = 0x2000;
const FLAG: u64 = 0x3000;
const PAD2: u64 = 0x4000;
const PAD3: u64 = 0x5000;
/// Deliberately NOT another 0x1000 stride: the small config's L2 maps
/// 0x1000-strided blocks to one set, and a fifth way-conflicting line
/// would evict DATA's dirty line to media, masking the mp anomaly.
const PAD4: u64 = 0x6040;

/// Whether the forbidden outcome may legally appear in some crash image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The outcome is reachable under this mode's persistency model.
    Allowed,
    /// The mode's guarantee rules the outcome out; observing it is a bug.
    Forbidden,
}

impl Verdict {
    /// Table label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Verdict::Allowed => "allowed",
            Verdict::Forbidden => "forbidden",
        }
    }
}

/// Expected behavior of one (shape, mode) cell.
#[derive(Debug, Clone, Copy)]
pub struct Expect {
    /// Whether the forbidden outcome may appear.
    pub verdict: Verdict,
    /// Whether the checker must produce at least one ordering witness
    /// (true exactly for the deliberately-broken discipline cells).
    pub witness: bool,
}

const fn allowed(witness: bool) -> Expect {
    Expect {
        verdict: Verdict::Allowed,
        witness,
    }
}

const fn forbidden() -> Expect {
    Expect {
        verdict: Verdict::Forbidden,
        witness: false,
    }
}

/// One litmus cell: a declarative IR program, the pinned global schedule
/// it is swept under (per-core local clocks make any interleaving legal),
/// the loc→offset map, the forbidden outcome, and the per-mode
/// expectation.
pub struct Shape {
    /// Short name (table row key).
    pub name: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// The program, in the shared litmus IR.
    pub prog: Prog,
    /// Global schedule: core ids, each consuming that core's next
    /// instruction. Pinned so the empirical verdicts are reproducible.
    pub schedule: Vec<usize>,
    /// Byte offset of each location from the persistent heap base.
    pub offsets: &'static [u64],
    /// The forbidden outcome, as `(loc, value)` conjuncts over the crash
    /// image (0 = never persisted).
    pub forbidden_outcome: &'static [(Loc, u64)],
    /// Expected verdict and witness requirement under `mode`.
    pub expect: fn(PersistencyMode) -> Expect,
}

impl Shape {
    /// True when `img` shows the forbidden outcome.
    #[must_use]
    pub fn shows_forbidden(&self, img: &NvmImage, base: u64) -> bool {
        self.forbidden_outcome
            .iter()
            .all(|&(loc, val)| img.read_u64(base + self.offsets[loc]) == val)
    }
}

/// `x`/`y` locations of the same-core store-pair shapes.
const XY_OFFSETS: &[u64] = &[X, Y];
/// The younger store persisted, the older lost.
const XY_FORBIDDEN: &[(Loc, u64)] = &[(1, 1), (0, 0)];

/// `data`/`flag`/pad locations of the message-passing shapes.
const MP_OFFSETS: &[u64] = &[DATA, FLAG, PAD2, PAD3, PAD4];
/// The flag persisted but the data it published was lost.
const MP_FORBIDDEN: &[(Loc, u64)] = &[(1, 1), (0, 0)];

/// Consumer core of the message-passing shapes: wait, read the data,
/// publish a flag, then pad with enough stores to fill a small persist
/// buffer so its capacity drain burst pushes the flag to NVMM.
fn mp_consumer() -> Vec<Inst> {
    vec![
        Inst::Delay { cycles: 3000 },
        Inst::Ld { loc: 0 },
        Inst::St { loc: 1, val: 1 },
        Inst::St { loc: 2, val: 1 },
        Inst::St { loc: 3, val: 1 },
        Inst::St { loc: 4, val: 1 },
        Inst::Delay { cycles: 6000 },
        Inst::Delay { cycles: 2000 },
        Inst::Delay { cycles: 2000 },
        Inst::Delay { cycles: 2000 },
    ]
}

/// The producer-first schedule both mp shapes pin: every producer op,
/// then every consumer op (the sim's per-core clocks and the delays
/// provide the actual concurrency).
fn mp_schedule(producer_len: usize) -> Vec<usize> {
    let mut s = vec![0; producer_len];
    s.extend(std::iter::repeat_n(1, mp_consumer().len()));
    s
}

/// A single-core program under the sequential schedule.
fn single(insts: Vec<Inst>) -> (Prog, Vec<usize>) {
    let schedule = vec![0; insts.len()];
    (Prog { cores: vec![insts] }, schedule)
}

/// The canonical shape set: same-core store pairs under the three software
/// disciplines, plus cross-core publish with and without the epoch
/// barrier.
#[must_use]
pub fn shapes() -> Vec<Shape> {
    let (ss, ss_sched) = single(vec![
        Inst::St { loc: 0, val: 1 },
        Inst::St { loc: 1, val: 1 },
    ]);
    let (ss_clwb, ss_clwb_sched) = single(vec![
        Inst::St { loc: 0, val: 1 },
        Inst::St { loc: 1, val: 1 },
        Inst::Fl { loc: 1 },
        Inst::Fence,
    ]);
    let (sfs, sfs_sched) = single(vec![
        Inst::St { loc: 0, val: 1 },
        Inst::Fl { loc: 0 },
        Inst::Fence,
        Inst::St { loc: 1, val: 1 },
        Inst::Fl { loc: 1 },
        Inst::Fence,
    ]);
    let (epoch, epoch_sched) = single(vec![
        Inst::St { loc: 0, val: 1 },
        Inst::Fence,
        Inst::St { loc: 1, val: 1 },
    ]);
    let mp = Prog {
        cores: vec![
            vec![
                Inst::St {
                    loc: 0,
                    val: 0xD0_0D,
                },
                Inst::Delay { cycles: 9000 },
            ],
            mp_consumer(),
        ],
    };
    let mp_barrier = Prog {
        cores: vec![
            vec![
                Inst::St {
                    loc: 0,
                    val: 0xD0_0D,
                },
                Inst::Fence,
                Inst::Delay { cycles: 9000 },
            ],
            mp_consumer(),
        ],
    };
    vec![
        Shape {
            name: "ss",
            desc: "st x; st y (no flushes)",
            prog: ss,
            schedule: ss_sched,
            offsets: XY_OFFSETS,
            forbidden_outcome: XY_FORBIDDEN,
            expect: |m| match m {
                PersistencyMode::Pmem | PersistencyMode::Bep => allowed(false),
                _ => forbidden(),
            },
        },
        Shape {
            name: "ss+clwb_y",
            desc: "st x; st y; clwb y; sfence (flush-stripped PMEM, paper Fig. 2)",
            prog: ss_clwb,
            schedule: ss_clwb_sched,
            offsets: XY_OFFSETS,
            forbidden_outcome: XY_FORBIDDEN,
            expect: |m| match m {
                // The younger store is flushed, the older is not: strict
                // PMEM must flag the persist-order inversion.
                PersistencyMode::Pmem => allowed(true),
                // BEP allows the intra-epoch reorder without a witness.
                PersistencyMode::Bep => allowed(false),
                _ => forbidden(),
            },
        },
        Shape {
            name: "s+f+s",
            desc: "st x; clwb x; sfence; st y; clwb y; sfence (full discipline)",
            prog: sfs,
            schedule: sfs_sched,
            offsets: XY_OFFSETS,
            forbidden_outcome: XY_FORBIDDEN,
            expect: |_| forbidden(),
        },
        Shape {
            name: "epoch",
            desc: "st x; sfence; st y (epoch barrier, no flushes)",
            prog: epoch,
            schedule: epoch_sched,
            offsets: XY_OFFSETS,
            forbidden_outcome: XY_FORBIDDEN,
            expect: |m| match m {
                PersistencyMode::Pmem => allowed(false),
                _ => forbidden(),
            },
        },
        Shape {
            name: "mp",
            desc: "c0: st data | c1: ld data; st flag; pads (barrier-stripped BEP)",
            schedule: mp_schedule(mp.cores[0].len()),
            prog: mp,
            offsets: MP_OFFSETS,
            forbidden_outcome: MP_FORBIDDEN,
            expect: |m| match m {
                PersistencyMode::Pmem => allowed(false),
                // The flag reaches NVMM through the volatile buffer's
                // capacity drain while the observed data does not: the
                // checker must produce a cross-core witness.
                PersistencyMode::Bep => allowed(true),
                _ => forbidden(),
            },
        },
        Shape {
            name: "mp+barrier",
            desc: "c0: st data; sfence | c1: ld data; st flag; pads (proper BEP)",
            schedule: mp_schedule(mp_barrier.cores[0].len()),
            prog: mp_barrier,
            offsets: MP_OFFSETS,
            forbidden_outcome: MP_FORBIDDEN,
            expect: |m| match m {
                PersistencyMode::Pmem => allowed(false),
                _ => forbidden(),
            },
        },
    ]
}

/// Outcome of one (shape, mode) cell.
#[derive(Debug)]
pub struct LitmusRow {
    /// Shape name.
    pub shape: &'static str,
    /// Mode under test.
    pub mode: PersistencyMode,
    /// Expected behavior.
    pub expect: Expect,
    /// Crash points swept (op-sequence prefixes).
    pub crash_points: usize,
    /// Crash points whose image showed the forbidden outcome.
    pub observed: usize,
    /// First crash point (prefix length) that showed it, if any.
    pub first_observed: Option<usize>,
    /// Checker report from the traced full run.
    pub report: CheckReport,
}

impl LitmusRow {
    /// True when the observation matches the verdict and the checker
    /// produced exactly the witnesses the cell requires.
    #[must_use]
    pub fn pass(&self) -> bool {
        let verdict_ok = match self.expect.verdict {
            Verdict::Forbidden => self.observed == 0,
            Verdict::Allowed => true,
        };
        let witness_ok = if self.expect.witness {
            self.report.violations() >= 1
        } else {
            self.report.ok()
        };
        verdict_ok && witness_ok
    }

    /// Compact observed-behavior label for the verdict table.
    #[must_use]
    pub fn observed_label(&self) -> String {
        if self.observed > 0 {
            format!("hit @{}", self.first_observed.unwrap_or(0))
        } else {
            "never".to_owned()
        }
    }
}

/// The machine the litmus programs run on: the small two-core
/// configuration, whose four-entry persist buffers make capacity-threshold
/// drains reachable by a handful of stores.
#[must_use]
pub fn litmus_config() -> SimConfig {
    SimConfig::small_for_tests()
}

/// Runs one shape under one mode: the crash sweep plus the traced checker
/// pass.
///
/// # Panics
///
/// Panics if the configuration is rejected by [`System::new`].
#[must_use]
pub fn run_shape(shape: &Shape, mode: PersistencyMode) -> LitmusRow {
    let cfg = litmus_config();
    let base = AddressMap::new(&cfg).persistent_base();
    let ops = shape.prog.compile(&shape.schedule, shape.offsets, base);

    let mut observed = 0usize;
    let mut first_observed = None;
    for k in 0..=ops.len() {
        let mut sys = System::new(cfg.clone(), mode).expect("litmus config");
        for (core, op) in &ops[..k] {
            sys.step_op(*core, op);
        }
        let img = sys.crash_now();
        if shape.shows_forbidden(&img, base) {
            observed += 1;
            first_observed.get_or_insert(k);
        }
    }

    let mut sys = System::new(cfg.clone(), mode).expect("litmus config");
    sys.set_tracing(true);
    for (core, op) in &ops {
        sys.step_op(*core, op);
    }
    sys.crash_now();
    let events = sys.take_events();
    let report = PersistOrderChecker::run(mode, cfg.cores, &events);

    LitmusRow {
        shape: shape.name,
        mode,
        expect: (shape.expect)(mode),
        crash_points: ops.len() + 1,
        observed,
        first_observed,
        report,
    }
}

/// Every shape against every persistency mode, in table order.
#[must_use]
pub fn run_all() -> Vec<LitmusRow> {
    let mut rows = Vec::new();
    for shape in &shapes() {
        for mode in PersistencyMode::ALL {
            rows.push(run_shape(shape, mode));
        }
    }
    rows
}

/// Short mode label for table rows.
#[must_use]
pub const fn mode_label(mode: PersistencyMode) -> &'static str {
    match mode {
        PersistencyMode::Pmem => "pmem",
        PersistencyMode::Eadr => "eadr",
        PersistencyMode::BbbMemorySide => "bbb-mem",
        PersistencyMode::BbbProcessorSide => "bbb-proc",
        PersistencyMode::Bep => "bep",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_meets_its_expectation() {
        for row in run_all() {
            assert!(
                row.pass(),
                "{} under {}: expected {} (witness: {}), observed {} with {} violations",
                row.shape,
                mode_label(row.mode),
                row.expect.verdict.label(),
                row.expect.witness,
                row.observed_label(),
                row.report.violations()
            );
        }
    }

    #[test]
    fn flush_stripped_pmem_yields_a_strict_order_witness() {
        let shapes = shapes();
        let shape = shapes.iter().find(|s| s.name == "ss+clwb_y").unwrap();
        let row = run_shape(shape, PersistencyMode::Pmem);
        assert!(row.report.violations() >= 1);
        assert_eq!(row.report.witnesses[0].rule, "strict-order");
        assert!(
            !row.report.witnesses[0].path.is_empty(),
            "witness has a path"
        );
    }

    #[test]
    fn barrier_stripped_bep_yields_a_cross_core_witness() {
        let shapes = shapes();
        let shape = shapes.iter().find(|s| s.name == "mp").unwrap();
        let row = run_shape(shape, PersistencyMode::Bep);
        assert!(row.report.violations() >= 1, "volatile-buffer hazard found");
        let w = &row.report.witnesses[0];
        assert_eq!(w.rule, "cross-core-hb");
        assert!(
            w.path.len() >= 2,
            "witness carries the happens-before path: {:?}",
            w.path
        );
    }

    #[test]
    fn single_core_shapes_reproduce_the_model_verdicts() {
        // The four same-core shapes' PR-3 verdict table must fall out of
        // the axiomatic model exactly: single-core τ order is program
        // order in every interleaving, so the empirical schedule loses
        // no generality.
        for shape in shapes().iter().filter(|s| s.prog.num_cores() == 1) {
            for mode in PersistencyMode::ALL {
                let verdicts = crate::model::evaluate(&shape.prog, mode);
                let mut outcome = vec![0u64; shape.prog.num_locs()];
                for &(loc, val) in shape.forbidden_outcome {
                    outcome[loc] = val;
                }
                let model_forbids = verdicts.forbidden.contains_key(&outcome);
                let table_forbids = (shape.expect)(mode).verdict == Verdict::Forbidden;
                assert_eq!(
                    model_forbids,
                    table_forbids,
                    "{} under {}: model and verdict table disagree",
                    shape.name,
                    mode_label(mode)
                );
            }
        }
    }

    #[test]
    fn every_swept_image_is_model_allowed() {
        // Soundness over the legacy shapes, mp included: each image of
        // the pinned-schedule sweep must land in the model's allowed set
        // (the converse does not hold — the model quantifies over every
        // interleaving, the sweep pins one).
        let cfg = litmus_config();
        let base = AddressMap::new(&cfg).persistent_base();
        for shape in &shapes() {
            let ops = shape.prog.compile(&shape.schedule, shape.offsets, base);
            for mode in PersistencyMode::ALL {
                let verdicts = crate::model::evaluate(&shape.prog, mode);
                for k in 0..=ops.len() {
                    let mut sys = System::new(cfg.clone(), mode).expect("litmus config");
                    for (core, op) in &ops[..k] {
                        sys.step_op(*core, op);
                    }
                    let img = sys.crash_now();
                    let outcome: Vec<u64> = (0..shape.prog.num_locs())
                        .map(|l| img.read_u64(base + shape.offsets[l]))
                        .collect();
                    assert!(
                        verdicts.allowed.contains(&outcome),
                        "{} under {} after {k} ops: sim outcome {outcome:?} is model-forbidden",
                        shape.name,
                        mode_label(mode)
                    );
                }
            }
        }
    }

    #[test]
    fn battery_modes_satisfy_pov_pop_on_every_shape() {
        for shape in &shapes() {
            for mode in [
                PersistencyMode::Eadr,
                PersistencyMode::BbbMemorySide,
                PersistencyMode::BbbProcessorSide,
            ] {
                let row = run_shape(shape, mode);
                assert!(
                    row.report.ok(),
                    "{} under {}: {:?}",
                    shape.name,
                    mode_label(mode),
                    row.report.witnesses
                );
            }
        }
    }
}

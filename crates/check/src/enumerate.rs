//! Candidate-execution enumeration and the diy-style litmus generator.
//!
//! Two enumerations live here:
//!
//! * [`interleavings`] — every merge of the per-core program orders of a
//!   [`Prog`]. The simulator mutates architectural and persistence state
//!   in `step_op` call order, so a schedule *is* a TSO-consistent store
//!   order; the model quantifies over all of them.
//! * [`generate`] — a bounded, systematic shape generator in the spirit
//!   of diy/litmus7: every per-core instruction sequence over a small
//!   alphabet (stores, loads, flushes, fences), pruned of dead
//!   instructions, assembled into programs, and deduplicated by
//!   **canonical isomorphism** — two shapes that differ only by core
//!   order, location names, or store values are the same shape
//!   ([`canonicalize`]).

use crate::model::{Inst, Loc, Prog};

/// Hard cap on interleavings per program (enumeration is multinomial).
pub const MAX_INTERLEAVINGS: u128 = 100_000;

/// Most stores a generated program may have (crash-cut enumeration is
/// `2^stores` per execution).
pub const MAX_GEN_STORES: usize = 6;

/// Enumerates every interleaving of per-core sequences with the given
/// lengths, as sequences of core ids.
///
/// # Panics
///
/// Panics if the multinomial count exceeds [`MAX_INTERLEAVINGS`].
#[must_use]
pub fn interleavings(lens: &[usize]) -> Vec<Vec<usize>> {
    let total: usize = lens.iter().sum();
    let mut count: u128 = 1;
    let mut placed = 0usize;
    for &len in lens {
        for k in 1..=len {
            placed += 1;
            count = count * placed as u128 / k as u128;
        }
        assert!(count <= MAX_INTERLEAVINGS, "interleaving space too large");
    }
    let mut out = Vec::with_capacity(count as usize);
    let mut remaining = lens.to_vec();
    let mut cur = Vec::with_capacity(total);
    fn rec(remaining: &mut [usize], cur: &mut Vec<usize>, left: usize, out: &mut Vec<Vec<usize>>) {
        if left == 0 {
            out.push(cur.clone());
            return;
        }
        for core in 0..remaining.len() {
            if remaining[core] == 0 {
                continue;
            }
            remaining[core] -= 1;
            cur.push(core);
            rec(remaining, cur, left - 1, out);
            cur.pop();
            remaining[core] += 1;
        }
    }
    rec(&mut remaining, &mut cur, total, &mut out);
    out
}

/// Generator bounds: how large the enumerated shape space is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenBounds {
    /// Cores per shape (every core runs at least one instruction).
    pub cores: usize,
    /// Locations available to the alphabet.
    pub locs: usize,
    /// Maximum instructions per core.
    pub max_insts: usize,
    /// Cap on canonical shapes kept (an even stride over the sorted
    /// canonical set, so the selection is deterministic and diverse).
    pub max_shapes: usize,
}

impl GenBounds {
    /// The CI smoke suite: two-core shapes up to 3 instructions plus
    /// three-core shapes up to 2 (both over two locations), and deep
    /// single-core shapes — the only band where PMEM's flush→fence axiom
    /// bites universally (a `St;Fl;F;St` chain needs four instructions on
    /// one core).
    #[must_use]
    pub fn smoke_suite() -> Vec<GenBounds> {
        vec![
            GenBounds {
                cores: 2,
                locs: 2,
                max_insts: 3,
                max_shapes: 288,
            },
            GenBounds {
                cores: 3,
                locs: 2,
                max_insts: 2,
                max_shapes: 96,
            },
            GenBounds {
                cores: 1,
                locs: 2,
                max_insts: 5,
                max_shapes: 64,
            },
        ]
    }

    /// The full suite (manual runs): wider location fan-out, more
    /// three-core shapes, and deeper single-core chains.
    #[must_use]
    pub fn full_suite() -> Vec<GenBounds> {
        vec![
            GenBounds {
                cores: 2,
                locs: 3,
                max_insts: 3,
                max_shapes: 768,
            },
            GenBounds {
                cores: 3,
                locs: 2,
                max_insts: 2,
                max_shapes: 256,
            },
            GenBounds {
                cores: 1,
                locs: 3,
                max_insts: 6,
                max_shapes: 128,
            },
        ]
    }
}

/// Per-core instruction alphabet for `locs` locations. Store values are
/// placeholders; [`assign_values`] numbers them canonically.
fn alphabet(locs: usize) -> Vec<Inst> {
    let mut a = Vec::with_capacity(3 * locs + 1);
    for loc in 0..locs {
        a.push(Inst::St { loc, val: 0 });
        a.push(Inst::Ld { loc });
        a.push(Inst::Fl { loc });
    }
    a.push(Inst::Fence);
    a
}

/// Whether `next` is a live extension of the per-core sequence `seq`.
/// Dead instructions — a flush of a line this core never wrote, a fence
/// with no same-core prior store, back-to-back fences or identical
/// flushes, a second load — are pruned here; they cannot change any
/// mode's persist order.
fn extends(seq: &[Inst], next: Inst) -> bool {
    let stored = |loc: Loc| {
        seq.iter()
            .any(|i| matches!(*i, Inst::St { loc: l, .. } if l == loc))
    };
    match next {
        Inst::St { .. } => true,
        Inst::Ld { .. } => !seq.iter().any(|i| matches!(i, Inst::Ld { .. })),
        Inst::Fl { loc } => stored(loc) && seq.last() != Some(&Inst::Fl { loc }),
        Inst::Fence => {
            seq.iter().any(|i| matches!(i, Inst::St { .. })) && seq.last() != Some(&Inst::Fence)
        }
        Inst::Delay { .. } => false,
    }
}

/// All live per-core sequences of length `1..=max_insts`.
fn core_sequences(locs: usize, max_insts: usize) -> Vec<Vec<Inst>> {
    let alpha = alphabet(locs);
    let mut out: Vec<Vec<Inst>> = Vec::new();
    let mut frontier: Vec<Vec<Inst>> = vec![Vec::new()];
    for _ in 0..max_insts {
        let mut next_frontier = Vec::new();
        for seq in &frontier {
            for &inst in &alpha {
                if extends(seq, inst) {
                    let mut s = seq.clone();
                    s.push(inst);
                    next_frontier.push(s);
                }
            }
        }
        out.extend(next_frontier.iter().cloned());
        frontier = next_frontier;
    }
    out
}

/// Re-numbers store values canonically: per location, 1, 2, ... in
/// (core, program-order) scan order.
fn assign_values(prog: &mut Prog) {
    let locs = prog.num_locs();
    let mut next = vec![1u64; locs];
    for core in &mut prog.cores {
        for inst in core {
            if let Inst::St { loc, val } = inst {
                *val = next[*loc];
                next[*loc] += 1;
            }
        }
    }
}

/// Relabels locations by first appearance in (core, program-order) scan
/// order and re-numbers store values.
fn compact(prog: &Prog) -> Prog {
    let mut map: Vec<Option<Loc>> = vec![None; prog.num_locs()];
    let mut next = 0usize;
    let mut remap = |loc: Loc, map: &mut Vec<Option<Loc>>| {
        *map[loc].get_or_insert_with(|| {
            let l = next;
            next += 1;
            l
        })
    };
    let cores = prog
        .cores
        .iter()
        .map(|insts| {
            insts
                .iter()
                .map(|i| match *i {
                    Inst::St { loc, val } => Inst::St {
                        loc: remap(loc, &mut map),
                        val,
                    },
                    Inst::Ld { loc } => Inst::Ld {
                        loc: remap(loc, &mut map),
                    },
                    Inst::Fl { loc } => Inst::Fl {
                        loc: remap(loc, &mut map),
                    },
                    other => other,
                })
                .collect()
        })
        .collect();
    let mut p = Prog { cores };
    assign_values(&mut p);
    p
}

/// All permutations of `0..n` (n ≤ 3 in practice).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for pos in 0..=rest.len() {
            let mut p = rest.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// The canonical representative of a shape's isomorphism class: the
/// least (under the derived [`Prog`] ordering) relabeling over all core
/// permutations, with locations renamed by first appearance and store
/// values re-numbered per location. Two shapes that differ only by core
/// order, location names, or store values canonicalize identically.
#[must_use]
pub fn canonicalize(prog: &Prog) -> Prog {
    permutations(prog.num_cores())
        .into_iter()
        .map(|perm| {
            compact(&Prog {
                cores: perm.iter().map(|&c| prog.cores[c].clone()).collect(),
            })
        })
        .min()
        .expect("at least the identity permutation")
}

/// Raw (pre-dedup) shape enumeration: every combination of live
/// per-core sequences that passes the program-level filters —
///
/// * at least two stores, at most [`MAX_GEN_STORES`];
/// * every load reads a location some *other* core stores
///   (message-passing flavor; a load of a never-stored or
///   only-self-stored location cannot observe anything).
///
/// Cross-core **write conflicts** (one location stored by several cores)
/// are deliberately *included*: the simulator's crash paths resolve them
/// in coherence order τ = (commit cycle, core, seq) — the same order its
/// live drains use — so the axiomatic model's coherence-compatible cuts
/// cover every machine outcome (DESIGN.md §9.4, resolved ledger item 1
/// documents the core-index-order bug this replaced).
#[must_use]
pub fn enumerate_raw(bounds: &GenBounds) -> Vec<Prog> {
    let seqs = core_sequences(bounds.locs, bounds.max_insts);
    let mut out = Vec::new();
    let mut pick = vec![0usize; bounds.cores];
    loop {
        let cores: Vec<Vec<Inst>> = pick.iter().map(|&i| seqs[i].clone()).collect();
        let stores = cores
            .iter()
            .flatten()
            .filter(|i| matches!(i, Inst::St { .. }))
            .count();
        let store_cores = |loc: Loc| {
            cores
                .iter()
                .enumerate()
                .filter(|(_, insts)| {
                    insts
                        .iter()
                        .any(|j| matches!(*j, Inst::St { loc: l, .. } if l == loc))
                })
                .map(|(c, _)| c)
                .collect::<Vec<_>>()
        };
        let loads_ok = cores.iter().enumerate().all(|(c, insts)| {
            insts.iter().all(|i| match *i {
                Inst::Ld { loc } => store_cores(loc).iter().any(|&c2| c2 != c),
                _ => true,
            })
        });
        if (2..=MAX_GEN_STORES).contains(&stores) && loads_ok {
            let mut p = Prog { cores };
            assign_values(&mut p);
            out.push(p);
        }
        // Odometer over the sequence indices.
        let mut carry = true;
        for digit in pick.iter_mut().rev() {
            if carry {
                *digit += 1;
                carry = *digit == seqs.len();
                if carry {
                    *digit = 0;
                }
            }
        }
        if carry {
            break;
        }
    }
    out
}

/// Deduplicates a raw shape list by canonical isomorphism and caps the
/// result with an even stride over the sorted canonical set. The output
/// is independent of the input order.
#[must_use]
pub fn dedup_and_cap(raw: &[Prog], max_shapes: usize) -> Vec<Prog> {
    let set: std::collections::BTreeSet<Prog> = raw.iter().map(canonicalize).collect();
    let all: Vec<Prog> = set.into_iter().collect();
    if all.len() <= max_shapes {
        return all;
    }
    (0..max_shapes)
        .map(|i| all[i * all.len() / max_shapes].clone())
        .collect()
}

/// Generates the canonical shape set for one bounds box.
#[must_use]
pub fn generate(bounds: &GenBounds) -> Vec<Prog> {
    dedup_and_cap(&enumerate_raw(bounds), bounds.max_shapes)
}

/// Generates the union of several bounds boxes (e.g.
/// [`GenBounds::smoke_suite`]), in box order.
#[must_use]
pub fn generate_suite(suite: &[GenBounds]) -> Vec<Prog> {
    suite.iter().flat_map(generate).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbb_sim::SplitMix64;

    fn st(loc: Loc, val: u64) -> Inst {
        Inst::St { loc, val }
    }

    #[test]
    fn interleaving_counts_are_multinomial() {
        assert_eq!(interleavings(&[2, 2]).len(), 6);
        assert_eq!(interleavings(&[1, 1, 1]).len(), 6);
        assert_eq!(interleavings(&[3]).len(), 1);
        let all = interleavings(&[2, 1]);
        assert_eq!(all, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]);
    }

    #[test]
    fn isomorphic_shapes_canonicalize_identically() {
        // Same shape through a core swap + location rename + value
        // renumbering.
        let a = Prog {
            cores: vec![
                vec![st(0, 1), st(1, 1)],
                vec![Inst::Ld { loc: 0 }, st(1, 2)],
            ],
        };
        let b = Prog {
            cores: vec![
                vec![Inst::Ld { loc: 1 }, st(0, 7)],
                vec![st(1, 3), st(0, 9)],
            ],
        };
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn canonicalization_is_idempotent() {
        for p in generate(&GenBounds {
            cores: 2,
            locs: 2,
            max_insts: 2,
            max_shapes: usize::MAX,
        }) {
            assert_eq!(canonicalize(&p), p);
        }
    }

    #[test]
    fn dedup_is_order_independent() {
        let bounds = GenBounds {
            cores: 2,
            locs: 2,
            max_insts: 2,
            max_shapes: 64,
        };
        let mut raw = enumerate_raw(&bounds);
        let reference = dedup_and_cap(&raw, bounds.max_shapes);
        // Fisher-Yates shuffle of the generation order.
        let mut rng = SplitMix64::new(0xD150_4DE5);
        for i in (1..raw.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            raw.swap(i, j);
        }
        assert_eq!(dedup_and_cap(&raw, bounds.max_shapes), reference);
    }

    #[test]
    fn generated_shapes_respect_bounds() {
        let bounds = GenBounds {
            cores: 2,
            locs: 2,
            max_insts: 3,
            max_shapes: 128,
        };
        let shapes = generate(&bounds);
        assert!(shapes.len() <= bounds.max_shapes);
        assert!(shapes.len() >= 64, "space is rich: got {}", shapes.len());
        for p in &shapes {
            assert_eq!(p.num_cores(), bounds.cores);
            assert!(p.num_locs() <= bounds.locs);
            assert!(p
                .cores
                .iter()
                .all(|c| (1..=bounds.max_insts).contains(&c.len())));
            let stores = p.stores().len();
            assert!((2..=MAX_GEN_STORES).contains(&stores));
        }
    }

    #[test]
    fn smoke_suite_is_large_enough_for_the_gate() {
        let shapes = generate_suite(&GenBounds::smoke_suite());
        assert!(shapes.len() >= 200, "suite has {} shapes", shapes.len());
        // All distinct even across bounds boxes.
        let set: std::collections::BTreeSet<_> = shapes.iter().collect();
        assert_eq!(set.len(), shapes.len());
    }
}

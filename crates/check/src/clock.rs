//! Fixed-width vector clocks over core indices.
//!
//! Component `i` counts the stores core `i` has committed in the
//! happens-before past of the clock's owner. A store's clock is snapshotted
//! at commit (after bumping its own component), so the standard test
//! applies: store `a` happens-before event `b` iff
//! `a.vc[a.core] <= b.vc[a.core]`.

/// A vector clock with one component per core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    c: Vec<u64>,
}

impl VectorClock {
    /// The zero clock for `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Self { c: vec![0; cores] }
    }

    /// Component `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        self.c[i]
    }

    /// Number of components (the core count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// True for the zero-core clock (clippy pairs `len` with `is_empty`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// Increments component `i` (one more event by core `i`).
    pub fn bump(&mut self, i: usize) {
        self.c[i] += 1;
    }

    /// Componentwise max with `other`. Returns true when any component
    /// actually rose (the join carried new information).
    pub fn join(&mut self, other: &VectorClock) -> bool {
        let mut changed = false;
        for (a, b) in self.c.iter_mut().zip(&other.c) {
            if *b > *a {
                *a = *b;
                changed = true;
            }
        }
        changed
    }

    /// Componentwise `self <= other` (the happens-before-or-equal order).
    #[must_use]
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.c.iter().zip(&other.c).all(|(a, b)| a <= b)
    }
}

impl std::fmt::Display for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.c.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_componentwise_max_and_reports_change() {
        let mut a = VectorClock::new(3);
        a.bump(0);
        a.bump(0);
        let mut b = VectorClock::new(3);
        b.bump(1);
        assert!(a.join(&b), "b carries a new component");
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert!(!a.join(&b), "second join learns nothing");
    }

    #[test]
    fn leq_orders_causal_histories() {
        let mut a = VectorClock::new(2);
        a.bump(0);
        let mut b = a.clone();
        b.bump(1);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert_eq!(a.to_string(), "[1 0]");
    }
}

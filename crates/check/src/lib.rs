//! `bbb-check` — a trace-based persist-order checker for the simulated
//! machines.
//!
//! The simulator emits a [`bbb_sim::TraceEvent`] stream when tracing is
//! on ([`bbb_core::System::set_tracing`]); this crate replays that stream
//! through a vector-clock analysis ([`PersistOrderChecker`]) that checks
//! the persistency theorem each mode claims:
//!
//! * battery modes (eADR, both BBB organizations): point of persistency
//!   equals point of visibility for every store, and a battery-backed
//!   crash loses nothing that committed;
//! * strict PMEM: persists follow per-core program order;
//! * BEP: persists may reorder within an epoch but never across a
//!   barrier, nor against a cross-core happens-before edge.
//!
//! Violations come with a minimal witness: the two stores involved and
//! the happens-before path that orders them. The [`litmus`] module runs
//! canonical persistency litmus shapes against all five modes and decides
//! allowed/forbidden verdicts empirically by sweeping crash points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod clock;
pub mod litmus;

pub use checker::{CheckReport, PersistOrderChecker, Witness, MAX_WITNESSES};
pub use clock::VectorClock;

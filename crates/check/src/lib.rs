//! `bbb-check` — a trace-based persist-order checker for the simulated
//! machines.
//!
//! The simulator emits a [`bbb_sim::TraceEvent`] stream when tracing is
//! on ([`bbb_core::System::set_tracing`]); this crate replays that stream
//! through a vector-clock analysis ([`PersistOrderChecker`]) that checks
//! the persistency theorem each mode claims:
//!
//! * battery modes (eADR, both BBB organizations): point of persistency
//!   equals point of visibility for every store, and a battery-backed
//!   crash loses nothing that committed;
//! * strict PMEM: persists follow per-core program order;
//! * BEP: persists may reorder within an epoch but never across a
//!   barrier, nor against a cross-core happens-before edge.
//!
//! Violations come with a minimal witness: the two stores involved and
//! the happens-before path that orders them. The [`litmus`] module runs
//! canonical persistency litmus shapes against all five modes and decides
//! allowed/forbidden verdicts empirically by sweeping crash points.
//!
//! On top of the dynamic checker sits an *axiomatic* side: [`model`]
//! declares a litmus IR and evaluates Px86-TSO-style persistency axioms
//! (with per-mode relaxations) over all candidate executions, producing
//! allowed/forbidden verdict sets with a minimal witness per forbidden
//! outcome; [`enumerate`] generates litmus shapes diy-style, deduplicated
//! by canonical isomorphism; and [`conform`] runs the differential — the
//! model's verdicts against crash-swept simulator executions — flagging
//! any sim-shows-forbidden outcome as a soundness bug.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod clock;
pub mod conform;
pub mod enumerate;
pub mod litmus;
pub mod model;

pub use checker::{CheckReport, PersistOrderChecker, Witness, MAX_WITNESSES};
pub use clock::VectorClock;
pub use conform::{run_shape_conform, run_suite, ModeConform, ShapeConform, Violation};
pub use enumerate::{generate, generate_suite, GenBounds};
pub use model::{evaluate, Inst, ModelVerdicts, ModelWitness, Outcome, Prog, StoreRef};

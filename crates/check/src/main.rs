//! `bbb-check` — persist-order checking from the command line.
//!
//! ```text
//! bbb-check litmus  [--json]
//! bbb-check audit   [--json]
//! bbb-check conform [--json] [--full]
//!
//!   litmus   run the persistency litmus shapes against all five modes and
//!            print the allowed/forbidden verdict table
//!   audit    replay traced smoke-grid workloads through the checker:
//!            battery modes must verify PoV = PoP with zero violations;
//!            deliberately-broken disciplines (flush-stripped PMEM,
//!            barrier-stripped BEP) must each yield at least one witness
//!   conform  generate litmus shapes, evaluate the axiomatic model under
//!            every mode, crash-sweep each shape on the simulator, and
//!            fail on any sim-shows-forbidden disagreement
//!   --full   conform only: the larger generator bounds
//!   --json   also write BENCH_<cmd>.json (or set BBB_JSON=1)
//! ```
//!
//! Exit status is non-zero when any expectation fails.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bbb_check::conform::run_suite;
use bbb_check::enumerate::{generate_suite, GenBounds};
use bbb_check::litmus::{mode_label, run_all, run_shape, shapes};
use bbb_check::{CheckReport, PersistOrderChecker};
use bbb_core::{PersistencyMode, System};
use bbb_runner::{json_requested, Report, Runner};
use bbb_sim::{SimConfig, Table};
use bbb_workloads::{make_workload, WorkloadKind, WorkloadParams};

fn usage() -> ! {
    eprintln!("usage: bbb-check <litmus|audit|conform> [--json] [--full]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut full = false;
    for a in &args {
        match a.as_str() {
            "litmus" | "audit" | "conform" if cmd.is_none() => cmd = Some(a.clone()),
            "--json" => {} // consumed by json_requested()
            "--full" => full = true,
            _ => usage(),
        }
    }
    let failed = match cmd.as_deref() {
        Some("litmus") => litmus_cmd(),
        Some("audit") => audit_cmd(),
        Some("conform") => conform_cmd(full),
        _ => usage(),
    };
    std::process::exit(i32::from(failed));
}

fn litmus_cmd() -> bool {
    let rows = run_all();
    let mut report = Report::with_json("litmus", json_requested());
    report.meta_scale_name("litmus");
    report.meta("shapes", shapes().len());
    report.meta("modes", PersistencyMode::ALL.len());
    let mut table = Table::new(
        "Persistency litmus verdicts",
        &[
            "shape", "mode", "expected", "observed", "points", "checker", "status",
        ],
    );
    let mut failed = false;
    for row in &rows {
        let pass = row.pass();
        failed |= !pass;
        table.row_owned(vec![
            row.shape.to_owned(),
            mode_label(row.mode).to_owned(),
            row.expect.verdict.label().to_owned(),
            row.observed_label(),
            row.crash_points.to_string(),
            format!(
                "{} violation(s){}",
                row.report.violations(),
                if row.expect.witness {
                    " (expected)"
                } else {
                    ""
                }
            ),
            if pass { "ok" } else { "FAILED" }.to_owned(),
        ]);
    }
    report.table(table);
    let witnesses: usize = rows
        .iter()
        .filter(|r| r.expect.witness)
        .map(|r| r.report.violations() as usize)
        .sum();
    report.meta("cells", rows.len());
    report.meta("expected_witnesses_found", witnesses);
    report.note(format!(
        "{} cells; forbidden outcomes never observed where guaranteed; \
         {} ordering witness(es) from deliberately-broken disciplines",
        rows.len(),
        witnesses
    ));
    report.emit().expect("report written");

    for row in rows.iter().filter(|r| !r.pass()) {
        eprintln!(
            "\n{} under {}: expected {}, observed {} with {} checker violation(s)",
            row.shape,
            mode_label(row.mode),
            row.expect.verdict.label(),
            row.observed_label(),
            row.report.violations()
        );
        for w in &row.report.witnesses {
            eprintln!("{w}");
        }
    }
    // Print the first witness of each broken-discipline cell so the table
    // is accompanied by concrete happens-before paths.
    for row in rows.iter().filter(|r| r.expect.witness && r.pass()) {
        if let Some(w) = row.report.witnesses.first() {
            println!(
                "\nwitness ({} under {}):\n{w}",
                row.shape,
                mode_label(row.mode)
            );
        }
    }
    failed
}

/// One audit cell: a workload traced end-to-end (run, then battery-backed
/// crash) and replayed through the checker.
struct AuditCell {
    kind: WorkloadKind,
    mode: PersistencyMode,
    cfg: SimConfig,
    instrument: bool,
    /// Expected outcome: `Some(true)` means the checker must be clean,
    /// `Some(false)` means it must find at least one witness, `None` is
    /// informational.
    expect_clean: Option<bool>,
    label: String,
}

fn audit_trace(cell: &AuditCell) -> CheckReport {
    let params = WorkloadParams {
        instrument: cell.instrument,
        ..WorkloadParams::smoke()
    };
    let mut w = make_workload(cell.kind, &cell.cfg, params);
    let mut sys = System::new(cell.cfg.clone(), cell.mode).expect("audit config");
    sys.prepare(w.as_mut());
    sys.set_tracing(true);
    sys.run(w.as_mut(), u64::MAX);
    sys.crash_now();
    let events = sys.take_events();
    PersistOrderChecker::run(cell.mode, cell.cfg.cores, &events)
}

fn audit_cmd() -> bool {
    let battery = [
        PersistencyMode::Eadr,
        PersistencyMode::BbbMemorySide,
        PersistencyMode::BbbProcessorSide,
    ];
    let mut cells = Vec::new();
    // Every smoke-grid workload under every battery mode: the PoV = PoP
    // theorem and crash completeness must hold with zero violations.
    for kind in WorkloadKind::ALL {
        for mode in battery {
            cells.push(AuditCell {
                kind,
                mode,
                cfg: SimConfig::default(),
                instrument: false,
                expect_clean: Some(true),
                label: format!("{}/{}", kind.name(), mode_label(mode)),
            });
        }
    }
    // Flush-stripped PMEM on the small machine: eviction pressure makes
    // LRU order diverge from store order, so strict persistency must be
    // caught violated.
    for kind in [
        WorkloadKind::Rtree,
        WorkloadKind::Ctree,
        WorkloadKind::Hashmap,
    ] {
        cells.push(AuditCell {
            kind,
            mode: PersistencyMode::Pmem,
            cfg: SimConfig::small_for_tests(),
            instrument: false,
            expect_clean: Some(false),
            label: format!("{}/pmem-stripped", kind.name()),
        });
    }
    // The instrumented discipline on the same machine: the software
    // clwb+sfence pairs restore strict order, so the checker must be
    // clean again.
    cells.push(AuditCell {
        kind: WorkloadKind::Rtree,
        mode: PersistencyMode::Pmem,
        cfg: SimConfig::small_for_tests(),
        instrument: true,
        expect_clean: Some(true),
        label: "rtree/pmem-instrumented".to_owned(),
    });
    // Barrier-stripped BEP workloads, informational: cross-core hazards
    // depend on sharing patterns.
    for kind in [WorkloadKind::SwapC, WorkloadKind::MutateC] {
        cells.push(AuditCell {
            kind,
            mode: PersistencyMode::Bep,
            cfg: SimConfig::small_for_tests(),
            instrument: false,
            expect_clean: None,
            label: format!("{}/bep-stripped", kind.name()),
        });
    }

    let reports = Runner::from_env().map(&cells, audit_trace);

    // The guaranteed barrier-stripped BEP witness: the mp litmus shape,
    // whose consumer publishes a flag through the volatile buffer's
    // capacity drain while the producer's observed data stays buffered.
    let shapes = shapes();
    let mp = shapes.iter().find(|s| s.name == "mp").expect("mp shape");
    let bep_row = run_shape(mp, PersistencyMode::Bep);

    let mut report = Report::with_json("check_audit", json_requested());
    report.meta_scale_name("smoke");
    report.meta("cells", cells.len());
    let mut table = Table::new(
        "Persist-order audit",
        &[
            "trace",
            "events",
            "pstores",
            "persisted",
            "pov=pop",
            "violations",
            "status",
        ],
    );
    let mut failed = false;
    for (cell, rep) in cells.iter().zip(&reports) {
        let ok = match cell.expect_clean {
            Some(true) => rep.ok(),
            Some(false) => rep.violations() >= 1,
            None => true,
        };
        failed |= !ok;
        table.row_owned(vec![
            cell.label.clone(),
            rep.events.to_string(),
            rep.persistent_stores.to_string(),
            rep.persisted.to_string(),
            rep.pov_pop_checked.to_string(),
            rep.violations().to_string(),
            if ok { "ok" } else { "FAILED" }.to_owned(),
        ]);
        if !ok {
            eprintln!("\n{}: unexpected outcome", cell.label);
            for w in &rep.witnesses {
                eprintln!("{w}");
            }
            if rep.violations() == 0 {
                eprintln!("  expected at least one ordering witness, found none");
            }
        }
    }
    let bep_ok = bep_row.report.violations() >= 1;
    failed |= !bep_ok;
    table.row_owned(vec![
        "mp/bep-stripped".to_owned(),
        bep_row.report.events.to_string(),
        bep_row.report.persistent_stores.to_string(),
        bep_row.report.persisted.to_string(),
        bep_row.report.pov_pop_checked.to_string(),
        bep_row.report.violations().to_string(),
        if bep_ok { "ok" } else { "FAILED" }.to_owned(),
    ]);
    report.table(table);

    let battery_violations: u64 = cells
        .iter()
        .zip(&reports)
        .filter(|(c, _)| c.expect_clean == Some(true))
        .map(|(_, r)| r.violations())
        .sum();
    let pov_pop: u64 = reports.iter().map(|r| r.pov_pop_checked).sum();
    report.meta("battery_violations", battery_violations);
    report.meta("pov_pop_checked", pov_pop);
    report.note(format!(
        "battery modes: {pov_pop} stores checked PoV = PoP, {battery_violations} violations; \
         broken disciplines produced their witnesses"
    ));
    report.emit().expect("report written");

    if bep_ok {
        if let Some(w) = bep_row.report.witnesses.first() {
            println!("\nbarrier-stripped BEP witness (mp shape):\n{w}");
        }
    }
    failed
}

fn conform_cmd(full: bool) -> bool {
    let suite = if full {
        GenBounds::full_suite()
    } else {
        GenBounds::smoke_suite()
    };
    let progs = generate_suite(&suite);
    let results = run_suite(&progs);

    let mut report = Report::with_json("conform", json_requested());
    report.meta_scale_name(if full { "full" } else { "smoke" });
    report.meta("shapes", progs.len());
    report.meta("modes", PersistencyMode::ALL.len());

    // Aggregate the per-shape cells into one row per mode.
    let mut table = Table::new(
        "Model vs. simulator conformance",
        &[
            "mode",
            "shapes",
            "executions",
            "allowed",
            "forbidden",
            "universal",
            "observed",
            "covered",
            "points",
            "violations",
            "status",
        ],
    );
    let mut total_violations = 0usize;
    let mut unwitnessed = 0usize;
    let mut total_points = 0usize;
    for (mi, mode) in PersistencyMode::ALL.into_iter().enumerate() {
        let cells = results.iter().map(|r| &r.per_mode[mi]);
        let executions: usize = cells.clone().map(|m| m.executions).sum();
        let allowed: usize = cells.clone().map(|m| m.allowed).sum();
        let forbidden: usize = cells.clone().map(|m| m.forbidden).sum();
        let universal: usize = cells.clone().map(|m| m.universal).sum();
        let observed: usize = cells.clone().map(|m| m.observed).sum();
        let covered: usize = cells.clone().map(|m| m.covered).sum();
        let points: usize = cells.clone().map(|m| m.crash_points).sum();
        let violations: usize = cells.clone().map(|m| m.violations.len()).sum();
        total_violations += violations;
        // Every forbidden outcome must carry a witness; `universal`
        // counts the stronger all-executions kind.
        unwitnessed += cells
            .clone()
            .map(|m| m.forbidden - m.witnessed)
            .sum::<usize>();
        total_points += points;
        table.row_owned(vec![
            mode_label(mode).to_owned(),
            results.len().to_string(),
            executions.to_string(),
            allowed.to_string(),
            forbidden.to_string(),
            universal.to_string(),
            observed.to_string(),
            covered.to_string(),
            points.to_string(),
            violations.to_string(),
            if violations == 0 { "ok" } else { "FAILED" }.to_owned(),
        ]);
    }
    report.table(table);

    // Disagreement table: empty on a conforming build, and the artifact
    // CI uploads when the gate trips.
    if total_violations > 0 {
        let mut diff = Table::new(
            "Sim-shows-forbidden disagreements",
            &["shape", "mode", "outcome", "provenance", "witness"],
        );
        for r in &results {
            for m in &r.per_mode {
                for v in &m.violations {
                    diff.row_owned(vec![
                        r.shape.clone(),
                        mode_label(m.mode).to_owned(),
                        v.outcome_str.clone(),
                        v.provenance.clone(),
                        v.witness.clone(),
                    ]);
                }
            }
        }
        report.table(diff);
    }

    report.meta("crash_points", total_points);
    report.meta("violations", total_violations);
    report.meta("forbidden_without_witness", unwitnessed);
    report.note(format!(
        "{} shapes x {} modes, {} crash images: {} sim-shows-forbidden disagreement(s)",
        progs.len(),
        PersistencyMode::ALL.len(),
        total_points,
        total_violations
    ));
    report.emit().expect("report written");

    // A few sample witnesses so forbidden verdicts are concrete.
    let samples = results
        .iter()
        .flat_map(|r| r.per_mode.iter().map(move |m| (r, m)))
        .filter_map(|(r, m)| {
            m.sample_witness
                .as_ref()
                .map(|w| (r.shape.clone(), m.mode, w.clone()))
        })
        .take(3);
    for (shape, mode, w) in samples {
        println!("\nwitness ({shape} under {}): {w}", mode_label(mode));
    }
    for r in &results {
        for m in &r.per_mode {
            for v in &m.violations {
                eprintln!(
                    "\nDISAGREEMENT {} under {}: sim produced {} ({}), model forbids it:\n  {}",
                    r.shape,
                    mode_label(m.mode),
                    v.outcome_str,
                    v.provenance,
                    v.witness
                );
            }
        }
    }
    total_violations > 0 || unwitnessed > 0
}

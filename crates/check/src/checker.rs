//! The online persist-order checker.
//!
//! [`PersistOrderChecker`] consumes the cycle-ordered [`TraceEvent`]
//! stream a traced [`bbb_core::System`] produces and maintains, per
//! store, its commit/visibility/persist cycles plus a vector clock
//! snapshotted at commit. Happens-before is built from program order
//! (per-core clock bumps), coherence order (writers join the block's
//! clock before writing it), and reads-from (readers join the block's
//! clock at load retire).
//!
//! The theorem checked depends on the machine under test:
//!
//! * **BBB (both organizations)** — `PoV = PoP`: every non-rejected
//!   persisting store's bbPB allocation cycle equals its L1D-visibility
//!   cycle (the paper's central claim), and per-core persists never
//!   reorder against program order.
//! * **eADR** — the point of persistency is the point of visibility by
//!   construction; the checker additionally demands crash completeness.
//! * **eADR/BBB after a battery-backed crash** — every committed
//!   persisting store must be durable (crash completeness).
//! * **Strict PMEM** — persists must follow per-core program order at
//!   block granularity; an uninstrumented run violates this as soon as
//!   LRU eviction order diverges from store order.
//! * **BEP** — intra-epoch reorders are allowed; a persist that
//!   overtakes an unpersisted store from an *older epoch* of the same
//!   core, or an unpersisted *happens-before-earlier* store of another
//!   core, is a violation and yields a minimal witness (the two stores
//!   plus the happens-before path connecting them).

use std::collections::HashMap;

use bbb_core::PersistencyMode;
use bbb_sim::{BlockAddr, Cycle, TraceEvent};

use crate::clock::VectorClock;

/// Witness cap: the first few violations are kept verbatim, the rest are
/// only counted (`suppressed`), so a badly broken run stays readable.
pub const MAX_WITNESSES: usize = 8;

/// A store's identity in the stream: (committing core, per-core sequence).
type StoreKey = (usize, u64);

#[derive(Debug, Clone)]
struct StoreRec {
    block: BlockAddr,
    commit: Cycle,
    epoch: u64,
    vc: VectorClock,
    visible: Option<Cycle>,
    persist: Option<Cycle>,
    rejected: bool,
}

impl StoreRec {
    fn describe(&self, key: StoreKey) -> String {
        format!(
            "c{} store s{} -> b{:#x} (commit @{}, epoch {})",
            key.0,
            key.1,
            self.block.index(),
            self.commit,
            self.epoch
        )
    }
}

/// A minimal ordering-violation witness: the rule broken, the two stores
/// involved, and the happens-before path that orders them.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Which theorem the pair violates (`pov-pop`, `strict-order`,
    /// `inter-epoch`, `cross-core-hb`, `crash-durability`,
    /// `battery-drain-order`).
    pub rule: &'static str,
    /// The happens-before-earlier store (rendered).
    pub earlier: String,
    /// The event that jumped ahead of it (rendered).
    pub later: String,
    /// The happens-before path from `earlier` to `later`, one edge per
    /// line.
    pub path: Vec<String>,
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "[{}] {}, overtaking {}",
            self.rule, self.later, self.earlier
        )?;
        for step in &self.path {
            writeln!(f, "    {step}")?;
        }
        Ok(())
    }
}

/// Aggregate result of replaying one trace through the checker.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Mode the trace was produced under (selects the theorem).
    pub mode: PersistencyMode,
    /// Events consumed.
    pub events: u64,
    /// Stores committed (persistent and volatile).
    pub stores: u64,
    /// Persisting stores tracked.
    pub persistent_stores: u64,
    /// Persisting stores that reached durability.
    pub persisted: u64,
    /// Stores whose buffer allocation stalled on a full buffer.
    pub rejected: u64,
    /// Stores for which the `PoV = PoP` equality was checked.
    pub pov_pop_checked: u64,
    /// Committed persisting stores still volatile when the trace ended
    /// (a violation only for battery modes after a battery-backed crash).
    pub unpersisted_at_end: u64,
    /// Ordering/durability violations, capped at [`MAX_WITNESSES`].
    pub witnesses: Vec<Witness>,
    /// Violations beyond the witness cap.
    pub suppressed: u64,
}

impl CheckReport {
    /// Total violations found (kept witnesses plus suppressed overflow).
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.witnesses.len() as u64 + self.suppressed
    }

    /// True when the trace satisfied the mode's theorem everywhere.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations() == 0
    }
}

/// Online vector-clock analysis over one trace. Feed events in stream
/// order with [`PersistOrderChecker::observe`], then call
/// [`PersistOrderChecker::finish`].
#[derive(Debug)]
pub struct PersistOrderChecker {
    mode: PersistencyMode,
    clocks: Vec<VectorClock>,
    epochs: Vec<u64>,
    block_vc: HashMap<BlockAddr, VectorClock>,
    stores: HashMap<StoreKey, StoreRec>,
    /// Unpersisted persisting stores per block, for persist attribution.
    pending_by_block: HashMap<BlockAddr, Vec<StoreKey>>,
    /// Unpersisted persisting stores per core, in commit order.
    pending_by_core: Vec<Vec<StoreKey>>,
    /// Per-core history of clock joins (cycle, block read/written, clock
    /// after the join) — recorded only under BEP, where cross-core
    /// witnesses need the observation edge reconstructed.
    provenance: Vec<Vec<(Cycle, BlockAddr, VectorClock)>>,
    crashed: Option<bool>,
    events: u64,
    store_count: u64,
    persistent_stores: u64,
    persisted: u64,
    rejected: u64,
    pov_pop_checked: u64,
    witnesses: Vec<Witness>,
    suppressed: u64,
}

impl PersistOrderChecker {
    /// A checker for a `cores`-core trace produced under `mode`.
    #[must_use]
    pub fn new(mode: PersistencyMode, cores: usize) -> Self {
        Self {
            mode,
            clocks: (0..cores).map(|_| VectorClock::new(cores)).collect(),
            epochs: vec![0; cores],
            block_vc: HashMap::new(),
            stores: HashMap::new(),
            pending_by_block: HashMap::new(),
            pending_by_core: vec![Vec::new(); cores],
            provenance: vec![Vec::new(); cores],
            crashed: None,
            events: 0,
            store_count: 0,
            persistent_stores: 0,
            persisted: 0,
            rejected: 0,
            pov_pop_checked: 0,
            witnesses: Vec::new(),
            suppressed: 0,
        }
    }

    /// Replays a whole trace and returns the report.
    #[must_use]
    pub fn run(mode: PersistencyMode, cores: usize, trace: &[TraceEvent]) -> CheckReport {
        let mut ck = Self::new(mode, cores);
        for e in trace {
            ck.observe(e);
        }
        ck.finish()
    }

    fn record(&mut self, w: Witness) {
        if self.witnesses.len() < MAX_WITNESSES {
            self.witnesses.push(w);
        } else {
            self.suppressed += 1;
        }
    }

    fn join_core(&mut self, core: usize, block: BlockAddr, cycle: Cycle) {
        if let Some(bvc) = self.block_vc.get(&block) {
            let changed = self.clocks[core].join(bvc);
            if changed && self.mode == PersistencyMode::Bep {
                self.provenance[core].push((cycle, block, self.clocks[core].clone()));
            }
        }
    }

    /// True when the battery keeps the persist buffers (and the point of
    /// persistency sits at the point of visibility).
    fn battery_mode(&self) -> bool {
        self.mode.has_bbpb() || self.mode == PersistencyMode::Eadr
    }

    /// Marks `key` durable at `cycle` and removes it from the pending
    /// indices. Returns the record for subsequent order checks.
    fn mark_persisted(&mut self, key: StoreKey, cycle: Cycle) -> Option<StoreRec> {
        let rec = self.stores.get_mut(&key)?;
        if rec.persist.is_some() {
            return None;
        }
        rec.persist = Some(cycle);
        self.persisted += 1;
        let block = rec.block;
        let snapshot = rec.clone();
        self.pending_by_core[key.0].retain(|k| *k != key);
        if let Some(list) = self.pending_by_block.get_mut(&block) {
            list.retain(|k| *k != key);
        }
        Some(snapshot)
    }

    /// Order theorems applied when `s2` persists while other stores are
    /// still volatile.
    fn check_order_on_persist(&mut self, key: StoreKey, s2: &StoreRec, cycle: Cycle) {
        match self.mode {
            PersistencyMode::Pmem => {
                // Strict persistency: per-core program order at block
                // granularity. The oldest pending store of this core must
                // not predate the one that just persisted.
                if let Some(&front) = self.pending_by_core[key.0].first() {
                    if front.1 < key.1 {
                        let s1 = self.stores[&front].clone();
                        self.record(Witness {
                            rule: "strict-order",
                            earlier: s1.describe(front),
                            later: format!("{} persisted @{cycle}", s2.describe(key)),
                            path: vec![format!(
                                "program order on c{}: s{} precedes s{}, yet s{} is still volatile",
                                key.0, front.1, key.1, front.1
                            )],
                        });
                    }
                }
            }
            PersistencyMode::Bep => {
                // (a) Same core: persists may reorder freely inside an
                // epoch but never across a barrier.
                if let Some(&front) = self.pending_by_core[key.0].first() {
                    let s1 = &self.stores[&front];
                    if s1.epoch < s2.epoch {
                        let s1 = s1.clone();
                        self.record(Witness {
                            rule: "inter-epoch",
                            earlier: s1.describe(front),
                            later: format!("{} persisted @{cycle}", s2.describe(key)),
                            path: vec![format!(
                                "c{}: s{} (epoch {}) -- persist barrier x{} --> s{} (epoch {})",
                                key.0,
                                front.1,
                                s1.epoch,
                                s2.epoch - s1.epoch,
                                key.1,
                                s2.epoch
                            )],
                        });
                    }
                }
                // (b) Cross core: an unpersisted store that happens-before
                // s2 (observed through coherence or a read) must not be
                // overtaken.
                let mut hit: Option<(StoreKey, StoreRec)> = None;
                for (c, pend) in self.pending_by_core.iter().enumerate() {
                    if c == key.0 {
                        continue;
                    }
                    for k in pend {
                        let s1 = &self.stores[k];
                        if s1.vc.get(c) <= s2.vc.get(c) {
                            hit = Some((*k, s1.clone()));
                            break;
                        }
                    }
                    if hit.is_some() {
                        break;
                    }
                }
                if let Some((k1, s1)) = hit {
                    let mut path = vec![format!(
                        "c{} store s{} advances c{}'s history to {}",
                        k1.0, k1.1, k1.0, s1.vc
                    )];
                    // The observation edge: the earliest join on s2's core
                    // that absorbed s1's component.
                    if let Some((cy, blk, vc)) = self.provenance[key.0]
                        .iter()
                        .find(|(_, _, vc)| s1.vc.get(k1.0) <= vc.get(k1.0))
                    {
                        path.push(format!(
                            "c{} observed b{:#x} @{cy} and joined to {vc}",
                            key.0,
                            blk.index()
                        ));
                    }
                    path.push(format!(
                        "c{} store s{} carries {} >= the observed history",
                        key.0, key.1, s2.vc
                    ));
                    self.record(Witness {
                        rule: "cross-core-hb",
                        earlier: s1.describe(k1),
                        later: format!("{} persisted @{cycle}", s2.describe(key)),
                        path,
                    });
                }
            }
            _ => {}
        }
    }

    /// Consumes one event of the cycle-ordered stream.
    pub fn observe(&mut self, e: &TraceEvent) {
        self.events += 1;
        match *e {
            TraceEvent::StoreCommit {
                core,
                block,
                seq,
                persistent,
                cycle,
            } => {
                self.store_count += 1;
                // Coherence edge: writing a block orders this store after
                // every prior write to it.
                self.join_core(core, block, cycle);
                self.clocks[core].bump(core);
                let vc = self.clocks[core].clone();
                self.block_vc
                    .entry(block)
                    .or_insert_with(|| VectorClock::new(vc.len()))
                    .join(&vc);
                if persistent {
                    self.persistent_stores += 1;
                    let key = (core, seq);
                    self.stores.insert(
                        key,
                        StoreRec {
                            block,
                            commit: cycle,
                            epoch: self.epochs[core],
                            vc,
                            visible: None,
                            persist: None,
                            rejected: false,
                        },
                    );
                    self.pending_by_core[core].push(key);
                    self.pending_by_block.entry(block).or_default().push(key);
                }
            }
            TraceEvent::LoadCommit { core, block, cycle } => {
                // Reads-from edge.
                self.join_core(core, block, cycle);
            }
            TraceEvent::EpochBarrier { core, .. } => {
                self.epochs[core] += 1;
            }
            TraceEvent::StoreVisible {
                core, seq, cycle, ..
            } => {
                let key = (core, seq);
                if let Some(rec) = self.stores.get_mut(&key) {
                    rec.visible = Some(cycle);
                }
                // Under eADR the whole hierarchy is in the persistence
                // domain: visibility is persistency.
                if self.mode == PersistencyMode::Eadr && self.stores.contains_key(&key) {
                    self.pov_pop_checked += 1;
                    self.mark_persisted(key, cycle);
                }
            }
            TraceEvent::PersistAlloc {
                core,
                seq,
                cycle,
                rejected,
                battery,
                ..
            } => {
                let key = (core, seq);
                if rejected {
                    self.rejected += 1;
                    if let Some(rec) = self.stores.get_mut(&key) {
                        rec.rejected = true;
                    }
                }
                if !battery {
                    // BEP's buffer is volatile: allocation is not a
                    // persist point.
                    return;
                }
                // The PoV = PoP theorem: a battery-backed allocation
                // happens at the visibility cycle unless the buffer was
                // full.
                let visible = self.stores.get(&key).and_then(|r| r.visible);
                if !rejected {
                    self.pov_pop_checked += 1;
                    if visible != Some(cycle) {
                        let desc = self
                            .stores
                            .get(&key)
                            .map_or_else(|| format!("c{core} s{seq}"), |r| r.describe(key));
                        self.record(Witness {
                            rule: "pov-pop",
                            earlier: format!("{desc} visible @{visible:?}"),
                            later: format!("bbPB allocation @{cycle}"),
                            path: vec![
                                "battery modes persist at the point of visibility".to_owned()
                            ],
                        });
                    }
                }
                // Battery drains follow store-buffer FIFO order: nothing
                // older on this core may still be volatile.
                if let Some(&front) = self.pending_by_core[core].first() {
                    if front.1 < seq {
                        let s1 = self.stores[&front].clone();
                        self.record(Witness {
                            rule: "battery-drain-order",
                            earlier: s1.describe(front),
                            later: format!("c{core} s{seq} allocated @{cycle}"),
                            path: vec![format!(
                                "store-buffer FIFO on c{core}: s{} drains before s{seq}",
                                front.1
                            )],
                        });
                    }
                }
                self.mark_persisted(key, cycle);
            }
            TraceEvent::NvmmWrite { block, cycle, .. } => {
                let after_battery_crash = self.crashed == Some(true);
                let keys: Vec<StoreKey> = self
                    .pending_by_block
                    .get(&block)
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|k| {
                                after_battery_crash
                                    || self.stores[k].visible.is_some_and(|vis| vis <= cycle)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                // Mark the whole batch durable first (stores persisting
                // together in one block write never violate each other),
                // then apply the order theorems against what is left.
                let mut batch = Vec::with_capacity(keys.len());
                for k in keys {
                    if let Some(rec) = self.mark_persisted(k, cycle) {
                        batch.push((k, rec));
                    }
                }
                if !after_battery_crash {
                    for (k, rec) in &batch {
                        self.check_order_on_persist(*k, rec, cycle);
                    }
                }
            }
            TraceEvent::Crash { battery_ok, .. } => {
                self.crashed = Some(battery_ok);
            }
            TraceEvent::PbDrain { .. }
            | TraceEvent::PbMove { .. }
            | TraceEvent::L1Evict { .. }
            | TraceEvent::LlcEvict { .. }
            | TraceEvent::Flush { .. } => {}
        }
    }

    /// Ends the stream: applies the crash-completeness theorem and
    /// returns the report.
    #[must_use]
    pub fn finish(mut self) -> CheckReport {
        let pending: Vec<StoreKey> = self.pending_by_core.iter().flatten().copied().collect();
        let unpersisted = pending.len() as u64;
        // After a crash with the battery intact, every committed
        // persisting store must be durable under eADR and both BBB
        // organizations (Table I's "persistency guarantee" row). PMEM and
        // BEP are expected to lose volatile stores.
        if self.crashed == Some(true) && self.battery_mode() {
            for key in pending {
                let rec = self.stores[&key].clone();
                self.record(Witness {
                    rule: "crash-durability",
                    earlier: rec.describe(key),
                    later: "battery-backed crash drain completed".to_owned(),
                    path: vec![
                        "committed persisting stores are inside the battery persistence domain"
                            .to_owned(),
                    ],
                });
            }
        }
        CheckReport {
            mode: self.mode,
            events: self.events,
            stores: self.store_count,
            persistent_stores: self.persistent_stores,
            persisted: self.persisted,
            rejected: self.rejected,
            pov_pop_checked: self.pov_pop_checked,
            unpersisted_at_end: unpersisted,
            witnesses: self.witnesses,
            suppressed: self.suppressed,
        }
    }
}

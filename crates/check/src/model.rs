//! Axiomatic Px86-TSO persistency model over a declarative litmus IR.
//!
//! A litmus program is a tiny per-core instruction sequence ([`Prog`])
//! over abstract locations. The model answers, *statically*, which
//! post-crash NVMM images ([`Outcome`]s) each [`PersistencyMode`] allows:
//!
//! 1. [`crate::enumerate::interleavings`] enumerates every candidate
//!    execution — all merges of the per-core program orders (the
//!    simulator commits architectural state in `step_op` call order, so
//!    schedule order *is* the TSO store order; see DESIGN.md §9 for why
//!    this is the sound direction).
//! 2. Per execution, the mode's axioms induce a *persist-order* relation
//!    over the stores (edges built by [`evaluate`]):
//!    * **coherence** (all modes): τ-consecutive stores to the same
//!      location persist in order — a single NVMM line never travels
//!      backwards.
//!    * **pov-pop** (eADR, both BBB organizations): *every* pair of
//!      τ-consecutive stores persists in order — the paper's "point of
//!      visibility = point of persistency". Crash images are exactly
//!      τ-prefixes.
//!    * **flush-fence** (strict PMEM): a store that is covered by a
//!      same-core `clwb` to its line followed by an `sfence` persists
//!      before everything ordered after that fence (Px86-TSO's
//!      `fo; sfence ⊆ pf` lifted to crash cuts).
//!    * **epoch-barrier** (BEP): a fence is an epoch boundary — every
//!      same-core store before it persists before anything after it;
//!      within an epoch, persists are free to reorder.
//! 3. A crash may cut the execution anywhere: allowed images are the
//!    downward-closed subsets of the stores under the persist-order
//!    edges, projected to a per-location value vector.
//!
//! Everything not allowed by *some* execution is **forbidden**, and every
//! forbidden outcome carries a [`ModelWitness`]: a persist-order path
//! from a store the outcome proves unpersisted to a store it proves
//! persisted — the minimal axiom violation a simulator run exhibiting
//! that image would commit.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bbb_core::{Op, PersistencyMode};

use crate::enumerate::interleavings;

/// Abstract location index (each maps to its own cache block).
pub type Loc = usize;

/// Hard cap on stores per program (cut enumeration is `2^stores`).
pub const MAX_STORES: usize = 12;

/// One IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Inst {
    /// Store `val` to `loc`.
    St {
        /// Destination location.
        loc: Loc,
        /// Value written (unique per location within a program).
        val: u64,
    },
    /// Load from `loc` (exercises the simulator's read paths; invisible
    /// to the model, which judges crash images only).
    Ld {
        /// Source location.
        loc: Loc,
    },
    /// `clwb` of `loc`'s cache line.
    Fl {
        /// Flushed location.
        loc: Loc,
    },
    /// `sfence` — under BEP this is the epoch barrier.
    Fence,
    /// Pipeline delay (timing only; invisible to the model).
    Delay {
        /// Stall length in cycles.
        cycles: u32,
    },
}

/// A litmus program: one instruction sequence per core.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Prog {
    /// Per-core program-order instruction sequences.
    pub cores: Vec<Vec<Inst>>,
}

/// Identity of one static store: core and program-order index, plus its
/// location and value for convenience. The identity is stable across
/// executions (only the interleaving varies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StoreRef {
    /// Issuing core.
    pub core: usize,
    /// Program-order index within that core.
    pub po: usize,
    /// Stored-to location.
    pub loc: Loc,
    /// Stored value.
    pub val: u64,
}

impl fmt::Display for StoreRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{}:W{}={} (po {})",
            self.core,
            loc_name(self.loc),
            self.val,
            self.po
        )
    }
}

/// A post-crash image projected to the program's locations: `outcome[l]`
/// is the NVMM value of location `l` (0 = never persisted).
pub type Outcome = Vec<u64>;

/// Why an outcome is forbidden: a persist-order path from a store the
/// outcome proves *unpersisted* (`path[0]`) to a store it proves
/// *persisted* (`path.last()`), labeled with the axiom of each edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelWitness {
    /// Persist-order path, oldest first.
    pub path: Vec<StoreRef>,
    /// Axiom labels of the edges along `path` (`path.len() - 1` entries).
    pub axioms: Vec<&'static str>,
    /// True when the path exists in *every* enumerated execution (the
    /// outcome is forbidden regardless of interleaving); false when the
    /// path is from the canonical (first) execution only.
    pub universal: bool,
}

impl fmt::Display for ModelWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} persist path: ",
            if self.universal {
                "universal"
            } else {
                "canonical-execution"
            }
        )?;
        for (i, s) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, " -[{}]-> ", self.axioms[i - 1])?;
            }
            write!(f, "{s}")?;
        }
        write!(f, " ; image persists the newest store but not the oldest")
    }
}

/// The model's verdict set for one (program, mode) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelVerdicts {
    /// Number of locations in the outcome vector.
    pub locs: usize,
    /// Distinct model-relevant executions enumerated (interleavings
    /// deduplicated by their store/flush/fence projection).
    pub executions: usize,
    /// Outcomes reachable as a downward-closed crash cut of some
    /// execution.
    pub allowed: BTreeSet<Outcome>,
    /// Everything else in the outcome universe, each with its minimal
    /// axiom-violation witness.
    pub forbidden: BTreeMap<Outcome, ModelWitness>,
}

impl ModelVerdicts {
    /// Size of the outcome universe (allowed + forbidden).
    #[must_use]
    pub fn universe(&self) -> usize {
        self.allowed.len() + self.forbidden.len()
    }
}

/// Display name of a location (`x`, `y`, `z`, `w`, then `l4`, ...).
#[must_use]
pub fn loc_name(loc: Loc) -> String {
    match loc {
        0 => "x".into(),
        1 => "y".into(),
        2 => "z".into(),
        3 => "w".into(),
        n => format!("l{n}"),
    }
}

impl Prog {
    /// Number of cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of locations (max referenced index + 1).
    #[must_use]
    pub fn num_locs(&self) -> usize {
        self.cores
            .iter()
            .flatten()
            .filter_map(|i| match *i {
                Inst::St { loc, .. } | Inst::Ld { loc } | Inst::Fl { loc } => Some(loc + 1),
                Inst::Fence | Inst::Delay { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// All static stores in (core, program-order) order.
    #[must_use]
    pub fn stores(&self) -> Vec<StoreRef> {
        let mut out = Vec::new();
        for (core, insts) in self.cores.iter().enumerate() {
            for (po, inst) in insts.iter().enumerate() {
                if let Inst::St { loc, val } = *inst {
                    out.push(StoreRef { core, po, loc, val });
                }
            }
        }
        out
    }

    /// Compact litmus notation, e.g. `Wx1;Wy1 || Rx;F`.
    #[must_use]
    pub fn display(&self) -> String {
        let core_str = |insts: &[Inst]| {
            insts
                .iter()
                .map(|i| match *i {
                    Inst::St { loc, val } => format!("W{}{}", loc_name(loc), val),
                    Inst::Ld { loc } => format!("R{}", loc_name(loc)),
                    Inst::Fl { loc } => format!("C{}", loc_name(loc)),
                    Inst::Fence => "F".to_owned(),
                    Inst::Delay { cycles } => format!("D{cycles}"),
                })
                .collect::<Vec<_>>()
                .join(";")
        };
        self.cores
            .iter()
            .map(|c| core_str(c))
            .collect::<Vec<_>>()
            .join(" || ")
    }

    /// Compiles the program under a global schedule (a sequence of core
    /// ids, each consuming that core's next instruction) into simulator
    /// ops. `offsets[loc]` is the byte offset of `loc` from `base`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not consume every core's program
    /// exactly, or if a location has no offset.
    #[must_use]
    pub fn compile(&self, schedule: &[usize], offsets: &[u64], base: u64) -> Vec<(usize, Op)> {
        let mut next = vec![0usize; self.cores.len()];
        let mut ops = Vec::with_capacity(schedule.len());
        for &core in schedule {
            let inst = self.cores[core][next[core]];
            next[core] += 1;
            let op = match inst {
                Inst::St { loc, val } => Op::store_u64(base + offsets[loc], val),
                Inst::Ld { loc } => Op::load_u64(base + offsets[loc]),
                Inst::Fl { loc } => Op::Clwb {
                    addr: base + offsets[loc],
                },
                Inst::Fence => Op::Fence,
                Inst::Delay { cycles } => Op::Compute { cycles },
            };
            ops.push((core, op));
        }
        for (core, n) in next.iter().enumerate() {
            assert_eq!(
                *n,
                self.cores[core].len(),
                "schedule must consume core {core} exactly"
            );
        }
        ops
    }

    /// The per-core program lengths (interleaving enumeration input).
    #[must_use]
    pub fn lens(&self) -> Vec<usize> {
        self.cores.iter().map(Vec::len).collect()
    }
}

/// One model-relevant event of an execution: `(core, po, inst)`.
type Event = (usize, usize, Inst);

/// Per-execution derived data: persist-order edges over canonical store
/// indices and the τ-position of each store.
struct Execution {
    /// Edges `(older, newer, axiom)` over indices into `Prog::stores()`.
    /// Every edge points forward in τ order.
    edges: Vec<(usize, usize, &'static str)>,
    /// `tau_pos[i]` = position of store `i` in this execution's τ order.
    tau_pos: Vec<usize>,
    /// Transitive reachability: bit `j` of `reach[i]` set iff a
    /// persist-order path `i -> j` exists.
    reach: Vec<u32>,
}

/// Evaluates the mode's axioms over every execution of `prog`, returning
/// the allowed/forbidden outcome partition with witnesses.
///
/// # Panics
///
/// Panics if the program has more than [`MAX_STORES`] stores, stores the
/// same value twice to one location (outcomes would be ambiguous), or —
/// defensively — if a forbidden outcome admits no witness (impossible by
/// construction; see DESIGN.md §9).
#[must_use]
pub fn evaluate(prog: &Prog, mode: PersistencyMode) -> ModelVerdicts {
    let stores = prog.stores();
    let n = stores.len();
    assert!(n <= MAX_STORES, "too many stores for cut enumeration");
    let locs = prog.num_locs();
    // Distinct values per location keep image -> cut projection unambiguous.
    let mut seen = BTreeSet::new();
    for s in &stores {
        assert!(
            seen.insert((s.loc, s.val)),
            "duplicate value {} at location {}",
            s.val,
            s.loc
        );
    }

    // Enumerate executions, deduplicated by their model-relevant event
    // projection (Ld/Delay placement cannot change persist edges).
    let mut projections: BTreeSet<Vec<Event>> = BTreeSet::new();
    for schedule in interleavings(&prog.lens()) {
        let mut next = vec![0usize; prog.cores.len()];
        let mut proj = Vec::new();
        for core in schedule {
            let po = next[core];
            next[core] += 1;
            let inst = prog.cores[core][po];
            match inst {
                Inst::St { .. } | Inst::Fl { .. } | Inst::Fence => proj.push((core, po, inst)),
                Inst::Ld { .. } | Inst::Delay { .. } => {}
            }
        }
        projections.insert(proj);
    }

    let executions: Vec<Execution> = projections
        .iter()
        .map(|proj| build_execution(proj, &stores, mode))
        .collect();

    // Allowed outcomes: downward-closed cuts of each execution.
    let mut allowed: BTreeSet<Outcome> = BTreeSet::new();
    for exec in &executions {
        'mask: for mask in 0u32..(1 << n) {
            for &(a, b, _) in &exec.edges {
                if mask & (1 << b) != 0 && mask & (1 << a) == 0 {
                    continue 'mask;
                }
            }
            allowed.insert(outcome_of(mask, &stores, &exec.tau_pos, locs));
        }
    }

    // Outcome universe: per location, 0 or any stored value.
    let mut per_loc: Vec<Vec<u64>> = vec![vec![0]; locs];
    for s in &stores {
        per_loc[s.loc].push(s.val);
    }
    let mut universe = vec![Vec::new()];
    for vals in &per_loc {
        let mut next_universe = Vec::with_capacity(universe.len() * vals.len());
        for prefix in &universe {
            for &v in vals {
                let mut o = prefix.clone();
                o.push(v);
                next_universe.push(o);
            }
        }
        universe = next_universe;
    }

    // Reachability common to all executions, for universal witnesses.
    let mut common_reach = vec![u32::MAX; n];
    for exec in &executions {
        for (c, r) in common_reach.iter_mut().zip(&exec.reach) {
            *c &= *r;
        }
    }

    let mut forbidden = BTreeMap::new();
    for outcome in universe {
        if allowed.contains(&outcome) {
            continue;
        }
        let witness =
            find_witness(&outcome, &stores, &executions, &common_reach).unwrap_or_else(|| {
                panic!(
                    "forbidden outcome {:?} of {} has no witness",
                    outcome,
                    prog.display()
                )
            });
        forbidden.insert(outcome, witness);
    }

    ModelVerdicts {
        locs,
        executions: executions.len(),
        allowed,
        forbidden,
    }
}

/// Builds one execution's persist-order edges from its model-relevant
/// event projection.
fn build_execution(proj: &[Event], stores: &[StoreRef], mode: PersistencyMode) -> Execution {
    let n = stores.len();
    let store_idx = |core: usize, po: usize| {
        stores
            .iter()
            .position(|s| s.core == core && s.po == po)
            .expect("event store is a program store")
    };
    // τ positions of the stores, in projection order.
    let mut tau_pos = vec![0usize; n];
    let mut tau_stores: Vec<usize> = Vec::with_capacity(n);
    for &(core, po, inst) in proj {
        if let Inst::St { .. } = inst {
            let i = store_idx(core, po);
            tau_pos[i] = tau_stores.len();
            tau_stores.push(i);
        }
    }

    let mut edges: Vec<(usize, usize, &'static str)> = Vec::new();
    // coherence: τ-consecutive same-location stores (all modes).
    let mut last_to: BTreeMap<Loc, usize> = BTreeMap::new();
    for &i in &tau_stores {
        if let Some(&prev) = last_to.get(&stores[i].loc) {
            edges.push((prev, i, "coherence"));
        }
        last_to.insert(stores[i].loc, i);
    }
    match mode {
        PersistencyMode::Eadr
        | PersistencyMode::BbbMemorySide
        | PersistencyMode::BbbProcessorSide => {
            // pov-pop: the persist order is the visibility order.
            for pair in tau_stores.windows(2) {
                edges.push((pair[0], pair[1], "pov-pop"));
            }
        }
        PersistencyMode::Pmem => {
            // flush-fence: clwb(loc) @ core k, then the next same-core
            // fence, orders k's last prior store to loc before every
            // τ-later store.
            for (p, &(core, _, inst)) in proj.iter().enumerate() {
                let Inst::Fl { loc } = inst else { continue };
                let flushed = proj[..p].iter().rev().find_map(|&(c, po, i)| match i {
                    Inst::St { loc: l, .. } if c == core && l == loc => Some(store_idx(c, po)),
                    _ => None,
                });
                let Some(s) = flushed else { continue };
                let fence_pos = proj[p + 1..]
                    .iter()
                    .position(|&(c, _, i)| c == core && i == Inst::Fence)
                    .map(|off| p + 1 + off);
                let Some(f) = fence_pos else { continue };
                for &(c, po, i) in &proj[f + 1..] {
                    if let Inst::St { .. } = i {
                        edges.push((s, store_idx(c, po), "flush-fence"));
                    }
                }
            }
        }
        PersistencyMode::Bep => {
            // epoch-barrier: a fence orders every same-core prior store
            // before every τ-later store.
            for (p, &(core, _, inst)) in proj.iter().enumerate() {
                if inst != Inst::Fence {
                    continue;
                }
                let before: Vec<usize> = proj[..p]
                    .iter()
                    .filter_map(|&(c, po, i)| match i {
                        Inst::St { .. } if c == core => Some(store_idx(c, po)),
                        _ => None,
                    })
                    .collect();
                for &(c, po, i) in &proj[p + 1..] {
                    if let Inst::St { .. } = i {
                        let w = store_idx(c, po);
                        for &s in &before {
                            edges.push((s, w, "epoch-barrier"));
                        }
                    }
                }
            }
        }
    }

    // Transitive reachability. Every edge points forward in τ order, so a
    // single reverse-τ pass reaches a fixpoint.
    let mut reach = vec![0u32; n];
    for &i in tau_stores.iter().rev() {
        for &(a, b, _) in &edges {
            if a == i {
                reach[i] |= (1 << b) | reach[b];
            }
        }
    }

    Execution {
        edges,
        tau_pos,
        reach,
    }
}

/// Projects a cut (bitmask over stores) to its outcome under an
/// execution's τ order.
fn outcome_of(mask: u32, stores: &[StoreRef], tau_pos: &[usize], locs: usize) -> Outcome {
    let mut out = vec![0u64; locs];
    let mut best = vec![None::<usize>; locs];
    for (i, s) in stores.iter().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        if best[s.loc].is_none_or(|t| tau_pos[i] > t) {
            best[s.loc] = Some(tau_pos[i]);
            out[s.loc] = s.val;
        }
    }
    out
}

/// Finds the minimal axiom-violation witness for a forbidden outcome:
/// a persist path from a store the outcome excludes to a store it
/// includes — universal (holds in every execution) when one exists,
/// otherwise from the canonical execution.
fn find_witness(
    outcome: &Outcome,
    stores: &[StoreRef],
    executions: &[Execution],
    common_reach: &[u32],
) -> Option<ModelWitness> {
    let n = stores.len();
    // Stores the outcome proves persisted: the producer of each nonzero
    // location value.
    let included: Vec<usize> = (0..n)
        .filter(|&i| outcome[stores[i].loc] == stores[i].val)
        .collect();
    // Execution-independent exclusion: the location reads 0, or it reads
    // the value of a same-core program-order-earlier store (so this store
    // would have overwritten it in every execution).
    let excluded_universal = |i: usize| {
        let s = stores[i];
        outcome[s.loc] == 0
            || stores.iter().any(|a| {
                a.core == s.core && a.loc == s.loc && a.po < s.po && outcome[s.loc] == a.val
            })
    };

    let canonical = executions.first()?;
    let mut best: Option<(usize, Vec<StoreRef>, Vec<&'static str>, bool)> = None;
    for universal_pass in [true, false] {
        for &b in &included {
            for (a, &common) in common_reach.iter().enumerate().take(n) {
                if a == b {
                    continue;
                }
                let (reachable, excluded) = if universal_pass {
                    (common & (1 << b) != 0, excluded_universal(a))
                } else {
                    (
                        canonical.reach[a] & (1 << b) != 0,
                        excluded_universal(a) || excluded_in(a, outcome, stores, canonical),
                    )
                };
                if !reachable || !excluded {
                    continue;
                }
                let (path, axioms) = shortest_path(a, b, canonical, stores);
                let better = best.as_ref().is_none_or(|(len, p, _, _)| {
                    path.len() < *len || (path.len() == *len && path < *p)
                });
                if better {
                    best = Some((path.len(), path, axioms, universal_pass));
                }
            }
        }
        if best.is_some() {
            break;
        }
    }
    best.map(|(_, path, axioms, universal)| ModelWitness {
        path,
        axioms,
        universal,
    })
}

/// Canonical-execution-specific exclusion: the outcome's value for this
/// store's location was produced by a τ-earlier store, so including this
/// store would overwrite it.
fn excluded_in(i: usize, outcome: &Outcome, stores: &[StoreRef], exec: &Execution) -> bool {
    let s = stores[i];
    stores.iter().enumerate().any(|(j, a)| {
        a.loc == s.loc && outcome[s.loc] == a.val && exec.tau_pos[j] < exec.tau_pos[i]
    })
}

/// BFS shortest persist path `a -> b` in one execution's edge graph.
fn shortest_path(
    a: usize,
    b: usize,
    exec: &Execution,
    stores: &[StoreRef],
) -> (Vec<StoreRef>, Vec<&'static str>) {
    let n = stores.len();
    let mut prev: Vec<Option<(usize, &'static str)>> = vec![None; n];
    let mut queue = std::collections::VecDeque::from([a]);
    let mut seen = vec![false; n];
    seen[a] = true;
    while let Some(u) = queue.pop_front() {
        if u == b {
            break;
        }
        for &(x, y, label) in &exec.edges {
            if x == u && !seen[y] {
                seen[y] = true;
                prev[y] = Some((u, label));
                queue.push_back(y);
            }
        }
    }
    let mut path = vec![stores[b]];
    let mut axioms = Vec::new();
    let mut cur = b;
    while let Some((p, label)) = prev[cur] {
        path.push(stores[p]);
        axioms.push(label);
        cur = p;
    }
    assert_eq!(cur, a, "witness path must reach its source");
    path.reverse();
    axioms.reverse();
    (path, axioms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(loc: Loc, val: u64) -> Inst {
        Inst::St { loc, val }
    }

    /// `Wx1; Wy1` on one core.
    fn ss() -> Prog {
        Prog {
            cores: vec![vec![st(0, 1), st(1, 1)]],
        }
    }

    #[test]
    fn battery_modes_forbid_the_store_reorder() {
        for mode in [
            PersistencyMode::Eadr,
            PersistencyMode::BbbMemorySide,
            PersistencyMode::BbbProcessorSide,
        ] {
            let v = evaluate(&ss(), mode);
            assert!(v.allowed.contains(&vec![0, 0]));
            assert!(v.allowed.contains(&vec![1, 0]));
            assert!(v.allowed.contains(&vec![1, 1]));
            let w = v.forbidden.get(&vec![0, 1]).expect("y-without-x forbidden");
            assert!(w.universal, "single interleaving: witness is universal");
            assert!(w
                .axioms
                .iter()
                .all(|a| *a == "pov-pop" || *a == "coherence"));
        }
    }

    #[test]
    fn pmem_allows_the_reorder_without_flushes() {
        let v = evaluate(&ss(), PersistencyMode::Pmem);
        assert_eq!(v.universe(), 4);
        assert!(v.forbidden.is_empty(), "no flush: any subset persists");
    }

    #[test]
    fn pmem_flush_fence_orders_across_the_fence() {
        // Wx1; Cx; F; Wy1 — strict discipline orders x before y.
        let prog = Prog {
            cores: vec![vec![st(0, 1), Inst::Fl { loc: 0 }, Inst::Fence, st(1, 1)]],
        };
        let v = evaluate(&prog, PersistencyMode::Pmem);
        let w = v.forbidden.get(&vec![0, 1]).expect("y-without-x forbidden");
        assert_eq!(w.axioms, vec!["flush-fence"]);
        assert_eq!(w.path.len(), 2);
        assert!(w.universal);
    }

    #[test]
    fn bep_fence_is_an_epoch_barrier() {
        // Wx1; F; Wy1: cross-epoch order enforced...
        let prog = Prog {
            cores: vec![vec![st(0, 1), Inst::Fence, st(1, 1)]],
        };
        let v = evaluate(&prog, PersistencyMode::Bep);
        assert_eq!(
            v.forbidden.get(&vec![0, 1]).expect("cross-epoch").axioms,
            vec!["epoch-barrier"]
        );
        // ...but intra-epoch reordering is free.
        let v = evaluate(&ss(), PersistencyMode::Bep);
        assert!(v.forbidden.is_empty());
    }

    #[test]
    fn cross_core_outcomes_depend_on_the_interleaving() {
        // c0: Wx1 || c1: Wy1 — either may persist alone even under
        // battery modes (some interleaving puts it first).
        let prog = Prog {
            cores: vec![vec![st(0, 1)], vec![st(1, 1)]],
        };
        for mode in PersistencyMode::ALL {
            let v = evaluate(&prog, mode);
            assert_eq!(v.executions, 2);
            assert!(v.forbidden.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn same_location_coherence_holds_in_every_mode() {
        // Wx1; Wx2 on one core: x=2 without... x can only be 0, 1 or 2,
        // and the image can never skip to 2 while "losing" 1 — coherence
        // forbids nothing *observable* here, so check the universe only.
        let prog = Prog {
            cores: vec![vec![st(0, 1), st(0, 2)]],
        };
        for mode in PersistencyMode::ALL {
            let v = evaluate(&prog, mode);
            assert_eq!(v.universe(), 3);
            assert!(v.allowed.contains(&vec![0]));
            assert!(v.allowed.contains(&vec![1]));
            assert!(v.allowed.contains(&vec![2]));
        }
    }

    #[test]
    fn every_forbidden_outcome_carries_a_witness_path() {
        let prog = Prog {
            cores: vec![
                vec![st(0, 1), Inst::Fence, st(1, 1)],
                vec![st(2, 1), Inst::Fl { loc: 2 }, Inst::Fence, st(0, 2)],
            ],
        };
        for mode in PersistencyMode::ALL {
            let v = evaluate(&prog, mode);
            for (outcome, w) in &v.forbidden {
                assert!(!w.path.is_empty(), "{mode:?} {outcome:?}");
                assert_eq!(w.axioms.len(), w.path.len() - 1);
            }
        }
    }

    #[test]
    fn evaluation_is_pure() {
        let prog = Prog {
            cores: vec![
                vec![st(0, 1), st(1, 1), Inst::Fl { loc: 1 }],
                vec![Inst::Ld { loc: 1 }, st(2, 1), Inst::Fence],
            ],
        };
        for mode in PersistencyMode::ALL {
            let a = evaluate(&prog, mode);
            let b = evaluate(&prog, mode);
            assert_eq!(a, b);
        }
    }
}

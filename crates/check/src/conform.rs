//! Differential conformance driver: the axiomatic model vs. the
//! simulator, shape by shape.
//!
//! For every generated litmus shape and every [`PersistencyMode`]:
//!
//! 1. [`evaluate`] computes the model's allowed/forbidden outcome
//!    partition (with a witness per forbidden outcome).
//! 2. The shape is compiled onto the simulator under several
//!    interleavings and crash-swept two ways: a progressive op-boundary
//!    sweep (non-destructive [`System::crash_image`] after every op,
//!    memoized by `crash_image_epoch`), and a cycle-granular sweep
//!    through the crashfuzz grid planner on the [`bbb_core::ScheduledOps`]
//!    bridge ([`bbb_crashfuzz::schedule_images`]), which crashes *inside*
//!    ops where drains are in flight.
//! 3. Observed post-crash outcomes are diffed against the model in both
//!    directions: an observed outcome the model forbids is a **soundness
//!    violation** (sim bug or model bug — either way a finding); an
//!    allowed outcome never observed is recorded as *coverage*, not
//!    failure (the sim's fixed timing cannot reach every cut the axioms
//!    admit).

use std::collections::BTreeMap;

use bbb_core::{NvmImage, PersistencyMode, System};
use bbb_crashfuzz::{schedule_images, GridSpec, CRASHFUZZ_SEED};
use bbb_runner::Runner;
use bbb_sim::{AddressMap, SimConfig};

use crate::enumerate::interleavings;
use crate::model::{evaluate, loc_name, Outcome, Prog};

/// Byte offsets (from the persistent heap base) of generated-shape
/// locations: distinct cache blocks in distinct L1/L2 sets, so capacity
/// conflicts between litmus locations cannot mask orderings.
pub const GEN_OFFSETS: [u64; 4] = [0x0000, 0x1040, 0x2080, 0x30C0];

/// Schedules swept per (shape, mode) — an even stride over the full
/// interleaving enumeration when there are more.
pub const MAX_SCHEDULES: usize = 4;

/// The conformance sweep's cycle grid (dense + random + store-boundary
/// points, planned per schedule).
#[must_use]
pub fn conform_grid() -> GridSpec {
    GridSpec::bounded(12, 4, CRASHFUZZ_SEED)
}

/// The machine generated shapes run on: the small test machine widened
/// to the shape's core count.
///
/// # Panics
///
/// Panics if the widened configuration fails validation.
#[must_use]
pub fn conform_config(cores: usize) -> SimConfig {
    let cfg = SimConfig {
        cores,
        ..SimConfig::small_for_tests()
    };
    cfg.validate().expect("conform config");
    cfg
}

/// One sim-shows-forbidden disagreement.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The observed outcome the model forbids.
    pub outcome: Outcome,
    /// Human-readable outcome, e.g. `x=1 y=0`.
    pub outcome_str: String,
    /// Where the sim produced it (schedule index and crash point).
    pub provenance: String,
    /// The model witness explaining why it is forbidden.
    pub witness: String,
}

/// Conformance result of one (shape, mode) cell.
#[derive(Debug, Clone)]
pub struct ModeConform {
    /// Mode under test.
    pub mode: PersistencyMode,
    /// Deduplicated model executions.
    pub executions: usize,
    /// Model-allowed outcomes.
    pub allowed: usize,
    /// Model-forbidden outcomes.
    pub forbidden: usize,
    /// Forbidden outcomes carrying a non-empty witness path (the model
    /// guarantees this equals `forbidden`; reported so the gate can check).
    pub witnessed: usize,
    /// Forbidden outcomes whose witness path holds in every execution.
    pub universal: usize,
    /// Distinct outcomes the sim produced across all sweeps.
    pub observed: usize,
    /// Allowed outcomes the sim actually exhibited (coverage).
    pub covered: usize,
    /// Crash images examined.
    pub crash_points: usize,
    /// Observed-but-forbidden outcomes (must be empty).
    pub violations: Vec<Violation>,
    /// One forbidden outcome's witness, for reporting.
    pub sample_witness: Option<String>,
}

/// Conformance results of one shape across every mode.
#[derive(Debug, Clone)]
pub struct ShapeConform {
    /// Compact litmus notation of the shape.
    pub shape: String,
    /// Core count.
    pub cores: usize,
    /// Store count.
    pub stores: usize,
    /// Per-mode results, in [`PersistencyMode::ALL`] order.
    pub per_mode: Vec<ModeConform>,
}

impl ShapeConform {
    /// Total sim-shows-forbidden disagreements across modes.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.per_mode.iter().map(|m| m.violations.len()).sum()
    }
}

/// Projects a crash image to the shape's outcome vector.
fn project(img: &NvmImage, base: u64, locs: usize) -> Outcome {
    (0..locs)
        .map(|l| img.read_u64(base + GEN_OFFSETS[l]))
        .collect()
}

/// Runs the full differential for one shape: model evaluation plus both
/// sim sweeps, per mode.
///
/// # Panics
///
/// Panics if the shape violates the model's structural limits (store
/// count, duplicate values) or the sim configuration is invalid.
#[must_use]
pub fn run_shape_conform(prog: &Prog) -> ShapeConform {
    let cfg = conform_config(prog.num_cores());
    let base = AddressMap::new(&cfg).persistent_base();
    let locs = prog.num_locs();
    let grid = conform_grid();

    let all_schedules = interleavings(&prog.lens());
    let picked: Vec<&Vec<usize>> = if all_schedules.len() <= MAX_SCHEDULES {
        all_schedules.iter().collect()
    } else {
        (0..MAX_SCHEDULES)
            .map(|i| &all_schedules[i * all_schedules.len() / MAX_SCHEDULES])
            .collect()
    };

    let per_mode = PersistencyMode::ALL
        .into_iter()
        .map(|mode| {
            let verdicts = evaluate(prog, mode);
            let mut observed: BTreeMap<Outcome, String> = BTreeMap::new();
            let mut crash_points = 0usize;

            for (si, schedule) in picked.iter().enumerate() {
                let ops = prog.compile(schedule, &GEN_OFFSETS, base);
                // Op-boundary sweep: one machine stepped op by op.
                let mut sys = System::new(cfg.clone(), mode).expect("conform config");
                let mut last_epoch = None;
                for k in 0..=ops.len() {
                    if k > 0 {
                        let (core, op) = &ops[k - 1];
                        sys.step_op(*core, op);
                    }
                    let epoch = sys.crash_image_epoch(true);
                    if last_epoch == Some(epoch) {
                        continue;
                    }
                    last_epoch = Some(epoch);
                    crash_points += 1;
                    observed
                        .entry(project(&sys.crash_image(true), base, locs))
                        .or_insert_with(|| format!("schedule {si}, after op {k}"));
                }
                // Cycle-granular sweep through the workload bridge: the
                // crashfuzz planner straddles every persisting-store
                // boundary and crashes mid-op.
                for (pi, img) in schedule_images(&cfg, mode, &ops, &grid).iter().enumerate() {
                    crash_points += 1;
                    observed
                        .entry(project(img, base, locs))
                        .or_insert_with(|| format!("schedule {si}, cycle point {pi}"));
                }
            }

            let covered = observed
                .keys()
                .filter(|o| verdicts.allowed.contains(*o))
                .count();
            let violations: Vec<Violation> = observed
                .iter()
                .filter(|(o, _)| !verdicts.allowed.contains(*o))
                .map(|(o, provenance)| {
                    let outcome_str = outcome_str(o);
                    let witness = verdicts.forbidden.get(o).map_or_else(
                        || "outcome outside the model universe".to_owned(),
                        |w| w.to_string(),
                    );
                    Violation {
                        outcome: o.clone(),
                        outcome_str,
                        provenance: provenance.clone(),
                        witness,
                    }
                })
                .collect();
            let sample_witness = verdicts
                .forbidden
                .iter()
                .next()
                .map(|(o, w)| format!("{} forbidden — {w}", outcome_str(o)));

            ModeConform {
                mode,
                executions: verdicts.executions,
                allowed: verdicts.allowed.len(),
                forbidden: verdicts.forbidden.len(),
                witnessed: verdicts
                    .forbidden
                    .values()
                    .filter(|w| !w.path.is_empty())
                    .count(),
                universal: verdicts.forbidden.values().filter(|w| w.universal).count(),
                observed: observed.len(),
                covered,
                crash_points,
                violations,
                sample_witness,
            }
        })
        .collect();

    ShapeConform {
        shape: prog.display(),
        cores: prog.num_cores(),
        stores: prog.stores().len(),
        per_mode,
    }
}

/// Human-readable outcome, e.g. `x=1 y=0`.
#[must_use]
pub fn outcome_str(outcome: &Outcome) -> String {
    outcome
        .iter()
        .enumerate()
        .map(|(l, v)| format!("{}={v}", loc_name(l)))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Runs the differential over a whole suite on the experiment-runner
/// worker pool, in suite order.
#[must_use]
pub fn run_suite(progs: &[Prog]) -> Vec<ShapeConform> {
    Runner::from_env().map(progs, run_shape_conform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{generate, GenBounds};
    use crate::model::Inst;

    #[test]
    fn small_generated_suite_has_zero_violations() {
        let bounds = GenBounds {
            cores: 2,
            locs: 2,
            max_insts: 2,
            max_shapes: 12,
        };
        for (i, prog) in generate(&bounds).iter().enumerate() {
            let r = run_shape_conform(prog);
            for m in &r.per_mode {
                assert!(
                    m.violations.is_empty(),
                    "shape {i} ({}) under {:?}: {:?}",
                    r.shape,
                    m.mode,
                    m.violations[0].outcome_str
                );
                assert_eq!(
                    m.witnessed, m.forbidden,
                    "every forbidden outcome witnessed"
                );
                assert!(m.observed >= 1, "at least the empty image is observed");
                assert!(m.covered >= 1);
            }
        }
    }

    #[test]
    fn model_evaluation_is_pure_across_parallel_workers() {
        // The same shape evaluated on every worker of the pool must
        // yield the identical verdict partition.
        let prog = Prog {
            cores: vec![
                vec![
                    Inst::St { loc: 0, val: 1 },
                    Inst::Fence,
                    Inst::St { loc: 1, val: 1 },
                ],
                vec![Inst::Ld { loc: 1 }],
            ],
        };
        let cells: Vec<(Prog, PersistencyMode)> = PersistencyMode::ALL
            .into_iter()
            .flat_map(|m| std::iter::repeat_n((prog.clone(), m), 4))
            .collect();
        let results = Runner::from_env().map(&cells, |(p, m)| evaluate(p, *m));
        for chunk in results.chunks(4) {
            for r in &chunk[1..] {
                assert_eq!(*r, chunk[0]);
            }
        }
    }

    #[test]
    fn sim_covers_every_prefix_under_battery_modes() {
        // Wx1;Wy1 single core: the op-boundary sweep must observe all
        // three prefixes under pov-pop modes — full coverage.
        let prog = Prog {
            cores: vec![vec![
                Inst::St { loc: 0, val: 1 },
                Inst::St { loc: 1, val: 1 },
            ]],
        };
        let r = run_shape_conform(&prog);
        for m in &r.per_mode {
            if matches!(
                m.mode,
                PersistencyMode::Eadr
                    | PersistencyMode::BbbMemorySide
                    | PersistencyMode::BbbProcessorSide
            ) {
                assert_eq!(m.allowed, 3);
                assert_eq!(m.forbidden, 1);
                assert_eq!(m.covered, 3, "every τ-prefix is reachable");
                assert!(m.violations.is_empty());
            }
        }
    }
}

//! Golden-file test: a checked-in miniature `BENCH_*.json` artifact is
//! parsed, navigated, checked, and re-serialized byte-identically. This
//! pins both the serializer format (what the bench binaries write) and
//! the parser (what the parity gate reads) to the committed bytes.

use bbb_bench::parity::{check_artifact, find_cell, parse_cell, Status};
use bbb_bench::registry::{ArtifactPolicy, CellBand};
use bbb_bench::Json;

const GOLDEN: &str = include_str!("golden/BENCH_mini.json");

fn mini() -> Json {
    Json::parse(GOLDEN).expect("golden artifact parses")
}

#[test]
fn golden_round_trips_byte_identically() {
    // Artifacts are written as one compact line plus a trailing newline;
    // re-serializing the parsed document must reproduce the exact bytes.
    assert_eq!(format!("{}\n", mini()), GOLDEN);
}

#[test]
fn golden_navigates_like_a_real_artifact() {
    let doc = mini();
    assert_eq!(doc.get("name").and_then(Json::as_str), Some("mini"));
    assert_eq!(
        doc.get("meta")
            .and_then(|m| m.get("scale"))
            .and_then(Json::as_str),
        Some("smoke")
    );

    let band = CellBand {
        artifact: "mini",
        table: 0,
        row: "geomean",
        col: "BBB (32)",
        paper: 1.0,
        tol: 0.05,
        scale: "smoke",
    };
    assert_eq!(find_cell(&doc, &band), Some("1.015"));

    let unit_band = CellBand {
        table: 1,
        row: "Server Class",
        col: "Energy",
        ..band
    };
    let cell = find_cell(&doc, &unit_band).expect("unit cell present");
    assert_eq!(parse_cell(cell), Some(552.8));
}

#[test]
fn golden_passes_the_provenance_checks() {
    // "mini" has no registered bands, so check_artifact exercises exactly
    // the provenance/scale half of the gate.
    let policy = ArtifactPolicy {
        name: "mini",
        scale: "smoke",
        regen: "n/a (test fixture)",
    };
    let findings = check_artifact(&policy, &mini(), Some(&mini()));
    assert!(
        findings.iter().all(|f| f.status != Status::Fail),
        "unexpected failures: {findings:?}"
    );

    let wrong_scale = ArtifactPolicy {
        scale: "default",
        ..policy
    };
    let findings = check_artifact(&wrong_scale, &mini(), None);
    assert!(findings
        .iter()
        .any(|f| f.what == "meta.scale" && f.status == Status::Fail));
}

//! Regression lock for the Fig. 7(b) fidelity fix: at smoke scale the
//! per-core persistent footprint fits the 1024-entry bbPB, so BBB-1024
//! must match eADR's steady-state NVMM write volume (the paper's "<1%"
//! claim). Before the watermark-draining fix this ratio sat near 1.06
//! and crept with every drain-policy change — this test fails that
//! class of drift at `cargo test` time, without needing the full
//! default-scale artifact regeneration.

use bbb_bench::{norm, paper_config, ExperimentSpec, Scale};
use bbb_core::PersistencyMode;
use bbb_workloads::WorkloadKind;

#[test]
fn bbb_1024_matches_eadr_writes_at_smoke_scale() {
    let scale = Scale::SMOKE;
    let cfg = paper_config(scale);
    for kind in [WorkloadKind::Rtree, WorkloadKind::Ctree] {
        let eadr = bbb_bench::execute_spec(&ExperimentSpec::new(
            kind,
            PersistencyMode::Eadr,
            &cfg,
            scale,
        ));
        let bbb = bbb_bench::execute_spec(
            &ExperimentSpec::new(kind, PersistencyMode::BbbMemorySide, &cfg, scale)
                .with_entries(1024),
        );
        let ratio = norm(bbb.nvmm_writes_steady(), eadr.nvmm_writes_steady());
        assert!(
            (ratio - 1.0).abs() <= 0.005,
            "{}: BBB-1024 steady NVMM writes {:.4}x eADR (paper: <1%)",
            kind.name(),
            ratio
        );
    }
}

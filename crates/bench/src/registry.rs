//! The paper-parity registry: the machine-readable expected values every
//! committed `BENCH_*.json` artifact is gated against.
//!
//! Two kinds of entry:
//!
//! * [`ArtifactPolicy`] — one per report name: the scale its committed
//!   artifact must be produced at and the command that regenerates it.
//!   The parity gate fails any artifact whose recorded `meta.scale`
//!   disagrees (a stale file regenerated at the wrong fidelity is exactly
//!   the drift this catches), or whose provenance metadata is missing.
//! * [`CellBand`] — one per gated table cell or figure series point: the
//!   paper's value, the tolerance our reproduction is held to, and the
//!   scale at which the band applies. Bands are checked only when the
//!   artifact's recorded scale matches the band's.
//!
//! Tolerances encode two different claims. The paper-scale tables
//! (VII–X) reproduce the paper's arithmetic at the paper's platform
//! parameters — their committed artifacts must record `meta.scale ==
//! "paper"` and their bands are tight (rounding width). The simulation
//! results (Fig. 7/8, §V-C) come from
//! our own simulator; their bands are anchored on the paper's numbers
//! with enough width for the documented modeling deviations — wide
//! enough to pass an honest reproduction, tight enough that the drifts
//! this gate exists for (e.g. BBB-1024 NVMM writes creeping to 1.06×
//! eADR) fail.

/// Requirements on one committed `BENCH_<name>.json` artifact.
#[derive(Debug, Clone, Copy)]
pub struct ArtifactPolicy {
    /// Report name (`BENCH_<name>.json`).
    pub name: &'static str,
    /// Required `meta.scale` of the committed artifact.
    pub scale: &'static str,
    /// The command that regenerates the artifact.
    pub regen: &'static str,
}

/// One gated cell: where it lives, what the paper says, how close our
/// reproduction must stay.
#[derive(Debug, Clone, Copy)]
pub struct CellBand {
    /// Report name the cell belongs to.
    pub artifact: &'static str,
    /// Index into the report's `tables` array.
    pub table: usize,
    /// First-column key of the row.
    pub row: &'static str,
    /// Header name of the column.
    pub col: &'static str,
    /// The paper's value for this cell.
    pub paper: f64,
    /// Maximum |measured − paper|; also the per-cell drift allowance
    /// against the previously committed run.
    pub tol: f64,
    /// Scale the band applies at (must match the artifact's recorded
    /// `meta.scale` for the band to be checked).
    pub scale: &'static str,
}

const fn band(
    artifact: &'static str,
    table: usize,
    row: &'static str,
    col: &'static str,
    paper: f64,
    tol: f64,
    scale: &'static str,
) -> CellBand {
    CellBand {
        artifact,
        table,
        row,
        col,
        paper,
        tol,
        scale,
    }
}

/// Every artifact the parity gate understands. Artifacts not present on
/// disk are skipped (the repo commits only a subset); present ones must
/// satisfy their policy.
#[must_use]
pub fn policies() -> &'static [ArtifactPolicy] {
    const P: &[ArtifactPolicy] = &[
        ArtifactPolicy {
            name: "fig7",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin fig7 -- --json",
        },
        ArtifactPolicy {
            name: "fig8",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin fig8 -- --json",
        },
        ArtifactPolicy {
            name: "procside",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin procside -- --json",
        },
        ArtifactPolicy {
            name: "spectrum",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin spectrum -- --json",
        },
        ArtifactPolicy {
            name: "strict_cost",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin strict_cost -- --json",
        },
        ArtifactPolicy {
            name: "ablation",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin ablation -- --json",
        },
        ArtifactPolicy {
            name: "table2",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin table2 -- --json",
        },
        ArtifactPolicy {
            name: "table4",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin table4 -- --json",
        },
        ArtifactPolicy {
            name: "config",
            scale: "analytic",
            regen: "cargo run --release -p bbb-bench --bin config -- --json",
        },
        ArtifactPolicy {
            name: "table1",
            scale: "analytic",
            regen: "cargo run --release -p bbb-bench --bin table1 -- --json",
        },
        ArtifactPolicy {
            name: "table6",
            scale: "analytic",
            regen: "cargo run --release -p bbb-bench --bin table6 -- --json",
        },
        ArtifactPolicy {
            name: "table7",
            scale: "paper",
            regen: "cargo run --release -p bbb-bench --bin table7 -- --json",
        },
        ArtifactPolicy {
            name: "table8",
            scale: "paper",
            regen: "cargo run --release -p bbb-bench --bin table8 -- --json",
        },
        ArtifactPolicy {
            name: "table9",
            scale: "paper",
            regen: "cargo run --release -p bbb-bench --bin table9 -- --json",
        },
        ArtifactPolicy {
            name: "table10",
            scale: "paper",
            regen: "cargo run --release -p bbb-bench --bin table10 -- --json",
        },
        ArtifactPolicy {
            name: "pstore",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin pstore -- --json",
        },
        ArtifactPolicy {
            name: "kv",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin kv -- --json",
        },
        ArtifactPolicy {
            name: "wal",
            scale: "default",
            regen: "BBB_SCALE=default cargo run --release -p bbb-bench --bin wal -- --json",
        },
        ArtifactPolicy {
            name: "crashfuzz",
            scale: "smoke",
            regen: "cargo run --release -p bbb-crashfuzz --bin crashfuzz -- --smoke --json",
        },
        ArtifactPolicy {
            name: "perf",
            scale: "smoke",
            regen: "cargo run --release -p bbb-crashfuzz --bin crashfuzz -- --smoke --json",
        },
        ArtifactPolicy {
            name: "litmus",
            scale: "litmus",
            regen: "cargo run --release -p bbb-check -- litmus --json",
        },
        ArtifactPolicy {
            name: "check_audit",
            scale: "smoke",
            regen: "cargo run --release -p bbb-check -- audit --json",
        },
        ArtifactPolicy {
            name: "conform",
            scale: "smoke",
            regen: "cargo run --release -p bbb-check -- conform --json",
        },
        ArtifactPolicy {
            name: "explore",
            scale: "smoke",
            regen: "BBB_SCALE=smoke cargo run --release -p bbb-bench --bin explore -- --json",
        },
    ];
    P
}

/// The policy for one artifact name, if the gate knows it.
#[must_use]
pub fn policy_for(name: &str) -> Option<&'static ArtifactPolicy> {
    policies().iter().find(|p| p.name == name)
}

/// Every registered cell band.
///
/// Column labels below follow the binaries' table headers; `table` is the
/// index within the artifact's `tables` array.
#[must_use]
pub fn bands() -> &'static [CellBand] {
    const B32_T: &str = "BBB (32)";
    const B1024_T: &str = "BBB (1024)";
    const B: &[CellBand] = &[
        // ---- Fig. 7(a): execution time normalized to eADR (table 0).
        // Paper: BBB-32 ≈1% slower on average, 2.8% worst case (a swap
        // variant); BBB-1024 indistinguishable from eADR.
        band("fig7", 0, "rtree", B32_T, 1.01, 0.04, "default"),
        band("fig7", 0, "ctree", B32_T, 1.01, 0.04, "default"),
        band("fig7", 0, "hashmap", B32_T, 1.01, 0.04, "default"),
        band("fig7", 0, "mutateNC", B32_T, 1.01, 0.04, "default"),
        band("fig7", 0, "mutateC", B32_T, 1.01, 0.04, "default"),
        band("fig7", 0, "swapNC", B32_T, 1.028, 0.04, "default"),
        band("fig7", 0, "swapC", B32_T, 1.028, 0.04, "default"),
        band("fig7", 0, "geomean", B32_T, 1.01, 0.02, "default"),
        band("fig7", 0, "geomean", B1024_T, 1.0, 0.01, "default"),
        band("fig7", 0, "geomean", "eADR", 1.0, 0.0, "default"),
        // ---- Fig. 7(b): NVMM writes normalized to eADR (table 1).
        // Paper: BBB-32 +4.9% on average (range 1–7.9%); BBB-1024 <1%.
        // At default scale the per-core working set exceeds the bbPB, so
        // coalescing capture falls short of the paper's (geomean 1.147
        // for BBB-32, 1.056 for BBB-1024 — capacity-structural, see
        // EXPERIMENTS.md). The bands stay anchored on the paper values
        // with width for that documented gap; they are tight enough that
        // a regression past it (or per-commit drift beyond the same
        // width) still fails.
        band("fig7", 1, "rtree", B32_T, 1.049, 0.08, "default"),
        band("fig7", 1, "ctree", B32_T, 1.01, 0.08, "default"),
        band("fig7", 1, "hashmap", B32_T, 1.049, 0.08, "default"),
        band("fig7", 1, "mutateNC", B32_T, 1.079, 0.1, "default"),
        band("fig7", 1, "mutateC", B32_T, 1.079, 0.1, "default"),
        band("fig7", 1, "swapNC", B32_T, 1.079, 0.21, "default"),
        band("fig7", 1, "swapC", B32_T, 1.079, 0.21, "default"),
        band("fig7", 1, "geomean", B32_T, 1.049, 0.12, "default"),
        band("fig7", 1, "rtree", B1024_T, 1.0, 0.08, "default"),
        band("fig7", 1, "ctree", B1024_T, 1.0, 0.02, "default"),
        band("fig7", 1, "geomean", B1024_T, 1.0, 0.08, "default"),
        band("fig7", 1, "geomean", "eADR", 1.0, 0.0, "default"),
        // ---- Fig. 8 series (normalized to 1 entry): rejections near
        // zero by 16–32 entries; execution time flat past 32; drains keep
        // shrinking to ~0.4 by 1024 (coalescing captured).
        band("fig8", 0, "1", "(a) rejections", 1.0, 0.0, "default"),
        band("fig8", 0, "32", "(a) rejections", 0.0, 0.1, "default"),
        band("fig8", 0, "1024", "(a) rejections", 0.0, 0.005, "default"),
        band("fig8", 0, "32", "(b) execution time", 1.0, 0.02, "default"),
        band(
            "fig8",
            0,
            "1024",
            "(b) execution time",
            1.0,
            0.02,
            "default",
        ),
        band("fig8", 0, "1024", "(c) bbPB drains", 0.45, 0.15, "default"),
        // ---- §V-C processor-side organization: paper geomean ≈2.8× eADR
        // writes for processor-side vs ≈1.05× memory-side. Our array
        // workloads dilute the processor-side geomean and the memory-side
        // column carries the same capacity gap as Fig. 7(b) (documented
        // in EXPERIMENTS.md), hence the wide bands.
        band(
            "procside",
            0,
            "geomean",
            "Memory-side (32)",
            1.05,
            0.12,
            "default",
        ),
        band(
            "procside",
            0,
            "geomean",
            "Processor-side (32)",
            2.8,
            1.2,
            "default",
        ),
        // ---- Strict-persistency cost: software strict persistency well
        // above eADR (paper Table I row motivates >1.1×), BBB at parity.
        band(
            "strict_cost",
            0,
            "geomean",
            "PMEM (software strict)",
            1.18,
            0.1,
            "default",
        ),
        // ---- Spectrum ordering: PMEM slowest, BEP between, BBB ≈ eADR.
        band(
            "spectrum",
            0,
            "geomean",
            "PMEM (strict, SW)",
            1.18,
            0.12,
            "default",
        ),
        band("spectrum", 0, "geomean", "BBB (32)", 1.01, 0.02, "default"),
        // ---- bbb-pstore ring: the protocol's ordering-instruction count
        // under the battery-backed modes is pinned to *exactly zero* —
        // this is the PR's acceptance claim (commit path provably
        // fence-free), not a tolerance question. The bbb-mem runtime is
        // pinned to eADR parity: the op streams are identical, so any
        // drift means the commit path grew mode-dependent work.
        band("pstore", 0, "eadr", "fences", 0.0, 0.0, "default"),
        band("pstore", 0, "bbb-mem", "fences", 0.0, 0.0, "default"),
        band("pstore", 0, "bbb-proc", "fences", 0.0, 0.0, "default"),
        band("pstore", 0, "eadr", "vs eADR", 1.0, 0.0, "default"),
        band("pstore", 0, "bbb-mem", "vs eADR", 1.0, 0.02, "default"),
        // ---- Table VII: draining energy (paper: mobile 46.5 mJ vs
        // 145 µJ; server 550 mJ vs 775 µJ). Analytic, so rounding-tight.
        band("table7", 1, "Mobile Class", "eADR", 46.5, 0.5, "paper"),
        band(
            "table7",
            1,
            "Mobile Class",
            "BBB (32-entry bbPB)",
            145.0,
            2.0,
            "paper",
        ),
        band("table7", 1, "Server Class", "eADR", 550.0, 5.0, "paper"),
        band(
            "table7",
            1,
            "Server Class",
            "BBB (32-entry bbPB)",
            775.0,
            5.0,
            "paper",
        ),
        // ---- Table VIII: draining time (mobile cells render in µs,
        // server eADR in ms; paper: 0.8 ms / 2.6 µs, 1.8 ms / 2.4 µs).
        band("table8", 0, "Mobile Class", "eADR", 800.0, 120.0, "paper"),
        band(
            "table8",
            0,
            "Mobile Class",
            "BBB (32-entry bbPB)",
            2.6,
            0.2,
            "paper",
        ),
        band("table8", 0, "Server Class", "eADR", 1.8, 0.1, "paper"),
        band(
            "table8",
            0,
            "Server Class",
            "BBB (32-entry bbPB)",
            2.4,
            0.2,
            "paper",
        ),
        // ---- Table IX: battery volume. Row lookup matches the first row
        // per system, which is the eADR scheme — the paper's headline
        // 2.9e3 (mobile) / 34e3 (server) mm³ SuperCap contrast.
        band(
            "table9",
            0,
            "Mobile Class",
            "SuperCap (mm^3)",
            2900.0,
            100.0,
            "paper",
        ),
        band(
            "table9",
            0,
            "Server Class",
            "SuperCap (mm^3)",
            34000.0,
            1000.0,
            "paper",
        ),
        // ---- Table X: battery volume vs entries, linear from the 32-entry
        // anchors (4.1 / 21.9 mm³); endpoints of the SuperCap rows.
        band(
            "table10",
            0,
            "SuperCap / Mobile Class",
            "1",
            0.13,
            0.01,
            "paper",
        ),
        band(
            "table10",
            0,
            "SuperCap / Mobile Class",
            "1024",
            131.2,
            1.0,
            "paper",
        ),
        band(
            "table10",
            0,
            "SuperCap / Server Class",
            "1",
            0.68,
            0.05,
            "paper",
        ),
        band(
            "table10",
            0,
            "SuperCap / Server Class",
            "1024",
            700.0,
            2.0,
            "paper",
        ),
        // ---- Server-scale KV (mix A table). Self-defined bands (the
        // paper has no server workloads): the battery-backed modes'
        // fence count and p999 persist latency are pinned to *exactly
        // zero* — PoP == PoV is the acceptance claim, not a tolerance
        // question. The PMEM/BEP latency and write-amplification bands
        // are anchored on the committed run and act as drift gates.
        band("kv", 0, "eadr", "fences", 0.0, 0.0, "default"),
        band("kv", 0, "bbb-mem", "fences", 0.0, 0.0, "default"),
        band("kv", 0, "bbb-proc", "fences", 0.0, 0.0, "default"),
        band("kv", 0, "eadr", "p999", 0.0, 0.0, "default"),
        band("kv", 0, "bbb-mem", "p999", 0.0, 0.0, "default"),
        band("kv", 0, "bbb-proc", "p999", 0.0, 0.0, "default"),
        band("kv", 0, "pmem", "p50", 42.0, 8.0, "default"),
        band("kv", 0, "pmem", "p999", 336.0, 48.0, "default"),
        band("kv", 0, "bep", "p50", 90.0, 16.0, "default"),
        band("kv", 0, "bbb-mem", "WA", 3.125, 0.4, "default"),
        band("kv", 0, "pmem", "WA", 7.534, 0.9, "default"),
        // ---- Server-scale WAL: same zero pins; bbb-mem runtime band
        // records the measured bbPB-saturation gap vs eADR under
        // append-dense group-commit traffic (see EXPERIMENTS.md).
        band("wal", 0, "eadr", "fences", 0.0, 0.0, "default"),
        band("wal", 0, "bbb-mem", "fences", 0.0, 0.0, "default"),
        band("wal", 0, "bbb-proc", "fences", 0.0, 0.0, "default"),
        band("wal", 0, "eadr", "p999", 0.0, 0.0, "default"),
        band("wal", 0, "bbb-mem", "p999", 0.0, 0.0, "default"),
        band("wal", 0, "bbb-proc", "p999", 0.0, 0.0, "default"),
        band("wal", 0, "eadr", "vs eADR", 1.0, 0.0, "default"),
        band("wal", 0, "bbb-mem", "vs eADR", 1.55, 0.2, "default"),
        band("wal", 0, "pmem", "p50", 42.0, 8.0, "default"),
        // ---- Model-vs-sim conformance: the smoke suite's shape count is
        // pinned (the generator is deterministic; a drop means shapes were
        // silently lost) and every mode's sim-shows-forbidden disagreement
        // count is pinned to exactly zero — soundness, not a tolerance
        // question.
        // 448 = the smoke suite with cross-core write-conflict shapes
        // included (they were excluded before the τ-order crash-drain fix).
        band("conform", 0, "pmem", "shapes", 448.0, 0.0, "smoke"),
        band("conform", 0, "pmem", "violations", 0.0, 0.0, "smoke"),
        band("conform", 0, "eadr", "violations", 0.0, 0.0, "smoke"),
        band("conform", 0, "bbb-mem", "violations", 0.0, 0.0, "smoke"),
        band("conform", 0, "bbb-proc", "violations", 0.0, 0.0, "smoke"),
        band("conform", 0, "bep", "violations", 0.0, 0.0, "smoke"),
        // ---- Design-space explorer: the swept-config count is pinned
        // (grid enumeration is deterministic; a drop means configs were
        // silently lost), as are the smoke frontier's size and the
        // measured WAL-desaturation bbPB size — the sweep's headline
        // answer (bbb-mem WAL back under 5% of eADR at 64 entries).
        band("explore", 0, "configs", "value", 2304.0, 0.0, "smoke"),
        band("explore", 0, "frontier", "value", 61.0, 0.0, "smoke"),
        band(
            "explore",
            0,
            "wal-desat-entries",
            "value",
            64.0,
            0.0,
            "smoke",
        ),
    ];
    B
}

/// The bands for one artifact at one recorded scale.
#[must_use]
pub fn bands_for(artifact: &str, scale: &str) -> Vec<&'static CellBand> {
    bands()
        .iter()
        .filter(|b| b.artifact == artifact && b.scale == scale)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_band_has_a_policy_at_its_scale() {
        for b in bands() {
            let p = policy_for(b.artifact)
                .unwrap_or_else(|| panic!("band for unknown artifact {}", b.artifact));
            assert_eq!(
                p.scale, b.scale,
                "band {}/{}/{} applies at {} but the committed artifact is {}",
                b.artifact, b.row, b.col, b.scale, p.scale
            );
        }
    }

    #[test]
    fn tolerances_are_sane() {
        for b in bands() {
            assert!(
                b.tol >= 0.0,
                "negative tolerance on {}/{}",
                b.artifact,
                b.row
            );
            assert!(
                b.paper.is_finite() && b.paper >= 0.0,
                "bad paper value on {}/{}",
                b.artifact,
                b.row
            );
        }
    }

    #[test]
    fn policies_are_unique() {
        let mut names: Vec<_> = policies().iter().map(|p| p.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}

//! `bbb-explore`: the design-space autoexplorer (ROADMAP item 5).
//!
//! Sweeps bbPB entries × drain threshold × battery capacity × WPQ depth
//! × core count over the server-scale KV and WAL workloads, prices every
//! point's battery, and reports the Pareto frontier over (performance,
//! battery volume, endurance) plus the two answers the paper can't give:
//! the bbPB size that desaturates the WAL, and the core count where the
//! memory-side bbPB stops paying off.

use bbb_bench::explore::{
    config_count, core_scaling, explore_scale, measure, pareto_frontier, sim_points,
    wal_desaturation_entries, Measurement, CAPACITY_TIERS_J, DESAT_BOUND,
};
use bbb_bench::{unique_points, Report, Runner, Scale};
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

fn frontier_row(m: &Measurement) -> Vec<String> {
    vec![
        format!(
            "{}/e{}/t{}/q{}/c{}",
            m.point.workload.name(),
            m.point.entries,
            m.point.threshold_pct,
            m.point.wpq,
            m.point.cores
        ),
        format!("{:.3}", m.slowdown),
        format!("{:.3}", m.endurance),
        format!("{:.3}", m.write_amp),
        m.p999.to_string(),
        m.fences.to_string(),
        format!("{:.3}", m.battery_j * 1e3),
        format!("{:.2}", m.volume_mm3),
        m.min_tier_j
            .map_or_else(|| "-".to_owned(), |t| format!("{:.0e}", t)),
    ]
}

fn main() {
    let preset = Scale::from_env().name();
    let scale = explore_scale(preset);
    let runner = Runner::from_env();
    let points = sim_points();
    let specs = bbb_bench::explore::all_specs(&points, scale);
    let unique = unique_points(&specs);

    #[allow(clippy::disallowed_methods)] // wall clock goes to stderr only
    let t0 = std::time::Instant::now();
    let results = measure(&points, scale, &runner);
    #[allow(clippy::disallowed_methods)]
    let wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "explore: {} configs ({} sim points, {unique} unique sims) in {wall:.2}s",
        config_count(),
        points.len(),
    );

    let frontier = pareto_frontier(&results);
    let desat = wal_desaturation_entries(&results);
    let scaling = core_scaling(&results);
    let feasible = results.iter().filter(|m| m.min_tier_j.is_some()).count();

    let mut summary = Table::new("Explore summary", &["metric", "value"]);
    summary.row(&["configs", &config_count().to_string()]);
    summary.row(&["sim points", &points.len().to_string()]);
    summary.row(&["unique sims", &unique.to_string()]);
    summary.row(&["feasible", &feasible.to_string()]);
    summary.row(&["frontier", &frontier.len().to_string()]);
    summary.row(&[
        "wal-desat-entries",
        &desat.map_or_else(|| "none".to_owned(), |e| e.to_string()),
    ]);

    let mut ft = Table::new(
        "Pareto frontier: performance vs battery volume vs endurance (per workload)",
        &[
            "config", "vs eADR", "NVMM xE", "WA", "p999", "fences", "batt mJ", "vol mm3", "tier J",
        ],
    );
    for m in &frontier {
        ft.row_owned(frontier_row(m));
    }

    let mut wt = Table::new(
        "WAL desaturation: bbb-mem vs eADR by bbPB entries (t75/q64/c8)",
        &["entries", "vs eADR", "NVMM xE", "p999", "batt mJ"],
    );
    let mut wal: Vec<&Measurement> = results
        .iter()
        .filter(|m| {
            m.point.workload == WorkloadKind::Wal
                && m.point.threshold_pct == 75
                && m.point.wpq == 64
                && m.point.cores == 8
        })
        .collect();
    wal.sort_by_key(|m| m.point.entries);
    for m in wal {
        wt.row_owned(vec![
            m.point.entries.to_string(),
            format!("{:.3}", m.slowdown),
            format!("{:.3}", m.endurance),
            m.p999.to_string(),
            format!("{:.3}", m.battery_j * 1e3),
        ]);
    }

    let mut ct = Table::new(
        "Core-count scaling: geomean bbb-mem slowdown at the paper point (e32/t75/q64)",
        &["cores", "vs eADR", "status"],
    );
    for &(cores, ratio) in &scaling {
        ct.row_owned(vec![
            cores.to_string(),
            format!("{ratio:.3}"),
            if ratio <= DESAT_BOUND {
                "pays off".to_owned()
            } else {
                "saturated".to_owned()
            },
        ]);
    }

    let mut report = Report::new("explore");
    report.meta_scale_name(preset);
    report.meta("initial", scale.initial);
    report.meta("per_core_ops", scale.per_core_ops);
    report.meta("threads", runner.threads());
    report.meta("capacity_tiers", CAPACITY_TIERS_J.len() as u64);
    report.table(summary);
    report.table(ft);
    report.table(wt);
    report.table(ct);
    report.note("Grid: bbPB entries x drain threshold x battery capacity x WPQ depth");
    report.note("x core count (8-64), KV mix A + WAL, bbb-mem vs matched eADR baseline.");
    report.note("Battery priced for worst-case full bbPBs on a core-scaled server");
    report.note("platform (SuperCap volume); a config is feasible when its provisioned");
    report.note("energy fits a capacity tier. Frontier minimizes (slowdown, volume,");
    report.note("endurance) per workload over feasible points.");
    report.emit().expect("report output");
}

//! Prints the simulated system configuration (paper Table III).

use bbb_bench::Report;
use bbb_sim::{SimConfig, Table};

fn main() {
    let c = SimConfig::default();
    let mut t = Table::new(
        "Table III: the simulated system configuration",
        &["Component", "Configuration"],
    );
    t.row_owned(vec![
        "Processor".into(),
        format!(
            "{} cores, OoO, 2GHz, {}-wide issue/retire, ROB {}, LSQ {}, SB {}",
            c.cores,
            c.core.issue_width,
            c.core.rob_entries,
            c.core.lsq_entries,
            c.core.store_buffer_entries
        ),
    ]);
    t.row_owned(vec![
        "L1D (private)".into(),
        format!(
            "{} kB, {}-way, 64 B blocks, {} cycles",
            c.l1d.capacity_bytes / 1024,
            c.l1d.ways,
            c.l1d.latency
        ),
    ]);
    t.row_owned(vec![
        "L2 (shared LLC)".into(),
        format!(
            "{} MB, {}-way, 64 B blocks, {} cycles, MESI directory",
            c.l2.capacity_bytes / (1024 * 1024),
            c.l2.ways,
            c.l2.latency
        ),
    ]);
    t.row_owned(vec![
        "DRAM".into(),
        format!(
            "{} GB, {} ns access",
            c.dram_bytes >> 30,
            c.mem.dram_access / 2
        ),
    ]);
    t.row_owned(vec![
        "NVMM".into(),
        format!(
            "{} GB, {} ns read / {} ns write (ADR), WPQ {} entries, {} banks",
            c.nvmm_bytes >> 30,
            c.mem.nvmm_read / 2,
            c.mem.nvmm_write / 2,
            c.mem.wpq_entries,
            c.mem.nvmm_channels
        ),
    ]);
    t.row_owned(vec![
        "bbPB".into(),
        format!(
            "{} entries per core, drain policy {:?}",
            c.bbpb.entries, c.bbpb.drain_policy
        ),
    ]);
    let mut report = Report::new("config");
    report.meta_scale_name("analytic");
    report.table(t);
    report.emit().expect("report output");
}

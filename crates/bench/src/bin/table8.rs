//! Regenerates Table VIII: estimated draining time for BBB vs eADR
//! (dirty blocks only).

use bbb_bench::Report;
use bbb_energy::{DrainModel, EnergyCosts, Platform};
use bbb_sim::table::{ratio, si_time};
use bbb_sim::Table;

fn main() {
    let mut t = Table::new(
        "Table VIII: estimated draining time, eADR vs BBB (dirty blocks only)",
        &["System", "eADR", "BBB (32-entry bbPB)", "eADR/BBB"],
    );
    for p in [Platform::mobile(), Platform::server()] {
        let name = p.name;
        let model = DrainModel::new(p, EnergyCosts::default());
        let eadr = model.eadr_drain_time_s(true);
        let bbb = model.bbb_drain_time_s(32);
        t.row_owned(vec![
            name.into(),
            si_time(eadr),
            si_time(bbb),
            ratio(eadr / bbb),
        ]);
    }
    let mut report = Report::new("table8");
    // Paper scale: these tables are the paper's own analytic arithmetic at
    // the paper's platform parameters, so the committed artifacts carry
    // (and the parity gate enforces) paper-scale provenance.
    report.meta_scale_name("paper");
    report.table(t);
    report.note("paper: mobile 0.8 ms vs 2.6 µs (307x); server 1.8 ms vs 2.4 µs (750x)");
    report.emit().expect("report output");
}

//! General-purpose simulation driver: run any workload under any
//! persistency mode with configurable scale, and print the full statistics
//! dump — the tool for exploring design points beyond the paper's tables.
//!
//! ```text
//! usage: simulate [WORKLOAD] [MODE] [key=value ...] [--json]
//!
//!   WORKLOAD: rtree|ctree|hashmap|mutateNC|mutateC|swapNC|swapC|btree
//!   MODE:     pmem|eadr|bbb|procside|bep
//!   keys:     initial=N per-core-ops=N entries=N threshold=PCT seed=N
//!             cores=N epoch-barriers=0|1 crash-at=N
//! ```
//!
//! The normal path runs through the experiment runner like every other
//! binary; `crash-at=N` drives the [`System`] directly because the
//! post-crash image and recovery check need the machine itself.

use bbb_bench::{ExperimentSpec, Report, Runner, Scale};
use bbb_core::{PersistencyMode, System};
use bbb_sim::{DrainPolicy, SimConfig};
use bbb_workloads::suite::with_epoch_barriers;
use bbb_workloads::{make_workload, verify_recovery, WorkloadKind, WorkloadParams};

fn usage() -> ! {
    eprintln!("usage: simulate [WORKLOAD] [MODE] [key=value ...] [--json]");
    eprintln!("  WORKLOAD: rtree|ctree|hashmap|mutateNC|mutateC|swapNC|swapC|btree");
    eprintln!("  MODE:     pmem|eadr|bbb|procside|bep");
    eprintln!("  keys:     initial=N per-core-ops=N entries=N threshold=PCT");
    eprintln!("            seed=N cores=N epoch-barriers=0|1 crash-at=N");
    std::process::exit(2);
}

fn parse_workload(s: &str) -> Option<WorkloadKind> {
    WorkloadKind::EXTENDED
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(s))
}

fn parse_mode(s: &str) -> Option<PersistencyMode> {
    match s.to_ascii_lowercase().as_str() {
        "pmem" => Some(PersistencyMode::Pmem),
        "eadr" => Some(PersistencyMode::Eadr),
        "bbb" | "memside" => Some(PersistencyMode::BbbMemorySide),
        "procside" => Some(PersistencyMode::BbbProcessorSide),
        "bep" => Some(PersistencyMode::Bep),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind = WorkloadKind::Ctree;
    let mut mode = PersistencyMode::BbbMemorySide;
    let mut params = WorkloadParams {
        initial: 50_000,
        per_core_ops: 2_000,
        seed: 0xBBB,
        instrument: false,
    };
    let mut cfg = SimConfig::default();
    let mut epoch_barriers = false;
    let mut crash_at: Option<u64> = None;

    let mut positional = 0;
    for arg in &args {
        if arg == "--json" {
            continue; // handled by Report::new
        }
        if let Some((key, value)) = arg.split_once('=') {
            let parse = |v: &str| v.parse::<u64>().unwrap_or_else(|_| usage());
            match key {
                "initial" => params.initial = parse(value),
                "per-core-ops" => params.per_core_ops = parse(value),
                "entries" => cfg.bbpb.entries = parse(value) as usize,
                "threshold" => {
                    cfg.bbpb.drain_policy = DrainPolicy::Threshold {
                        threshold_pct: parse(value) as u8,
                    };
                }
                "seed" => params.seed = parse(value),
                "cores" => cfg.cores = parse(value) as usize,
                "epoch-barriers" => epoch_barriers = parse(value) != 0,
                "crash-at" => crash_at = Some(parse(value)),
                _ => usage(),
            }
        } else {
            match positional {
                0 => kind = parse_workload(arg).unwrap_or_else(|| usage()),
                1 => mode = parse_mode(arg).unwrap_or_else(|| usage()),
                _ => usage(),
            }
            positional += 1;
        }
    }
    params.instrument = mode.requires_flushes();
    // Size the heap for the requested structure.
    let need = (params.initial + cfg.cores as u64 * params.per_core_ops) * 512;
    cfg.persistent_heap_bytes = need.next_power_of_two().max(64 * 1024 * 1024);

    let mut report = Report::new("simulate");
    report.meta_scale_name(
        Scale {
            initial: params.initial,
            per_core_ops: params.per_core_ops,
        }
        .name(),
    );
    report.meta("workload", kind.name());
    report.meta("mode", mode.to_string());
    report.meta("entries", cfg.bbpb.entries);
    report.note(format!(
        "workload={} mode={mode} entries={}",
        kind.name(),
        cfg.bbpb.entries
    ));

    // Perf-timing site: wall time is reported, never fed back into the sim.
    #[allow(clippy::disallowed_methods)]
    let t0 = std::time::Instant::now();
    let (summary, stats) = if let Some(budget) = crash_at {
        // Crash exploration: run the machine directly so we can take the
        // post-crash NVMM image and check recovery.
        let mut w = make_workload(kind, &cfg, params);
        if epoch_barriers || mode.requires_epoch_barriers() {
            w = with_epoch_barriers(w);
        }
        let mut sys = System::new(cfg, mode).expect("valid config");
        sys.prepare(w.as_mut());
        let summary = sys.run(w.as_mut(), budget);
        report.note(format!("crash-drain set: {}", sys.crash_cost()));
        let stats = sys.stats();
        let cfg_for_verify = sys.config().clone();
        let img = sys.crash_now();
        match verify_recovery(kind, &img, &cfg_for_verify, params) {
            Ok(n) => report.note(format!(
                "post-crash verification: OK, {n} elements recovered"
            )),
            Err(e) => report.note(format!("post-crash verification: CORRUPT ({e})")),
        }
        (summary, stats)
    } else {
        let scale = Scale {
            initial: params.initial,
            per_core_ops: params.per_core_ops,
        };
        let spec = ExperimentSpec::new(kind, mode, &cfg, scale)
            .with_params(params)
            .with_epoch_barriers(epoch_barriers);
        let r = Runner::from_env().run_one(&spec);
        (r.summary, r.stats)
    };
    // Wall time goes to stderr: stdout stays identical run-to-run.
    eprintln!("wall time: {:?}", t0.elapsed());

    report.note(format!(
        "ran {} ops in {} cycles; completed={}",
        summary.ops, summary.cycles, summary.completed
    ));
    report.note("");
    for line in stats.to_string().lines() {
        report.note(line);
    }
    report.emit().expect("report output");
}
